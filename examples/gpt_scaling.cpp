// Scaling study in the spirit of the paper's introduction and Sec. VII-B
// ("It is highly likely that the size of DNN models would continue to
// grow" — citing GPT-3): how the TW speedup behaves as transformer
// width grows from BERT-base to GPT-2/3-class layers, at fixed 75% and
// at the extreme 95% sparsity the speedup-scalability study uses.

#include <cstdio>

#include "prune/tw_pruner.hpp"
#include "sim/gemm_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace tilesparse;

namespace {

double tw_layer_latency(const DeviceModel& dev, std::size_t m,
                        std::size_t hidden, double sparsity,
                        std::uint64_t seed) {
  // One transformer layer's weight GEMMs: 4x (h -> h) + (h -> 4h) + (4h -> h).
  Rng rng(seed);
  double total = 0.0;
  auto add = [&](std::size_t k, std::size_t n) {
    MatrixF scores(k, n);
    fill_uniform(scores, rng, 0.01f, 1.0f);
    const TilePattern p = tw_pattern_from_scores(scores, sparsity, 128);
    total += tw_gemm_latency(dev, m, p).seconds();
  };
  for (int i = 0; i < 4; ++i) add(hidden, hidden);
  add(hidden, 4 * hidden);
  add(4 * hidden, hidden);
  return total;
}

double dense_layer_latency(const DeviceModel& dev, std::size_t m,
                           std::size_t hidden) {
  double total = 0.0;
  for (int i = 0; i < 4; ++i)
    total += dense_gemm_latency(dev, {m, hidden, hidden}, Core::kTensor).seconds();
  total += dense_gemm_latency(dev, {m, 4 * hidden, hidden}, Core::kTensor).seconds();
  total += dense_gemm_latency(dev, {m, hidden, 4 * hidden}, Core::kTensor).seconds();
  return total;
}

}  // namespace

int main() {
  std::puts("TW speedup vs transformer width (one layer, seq 128, V100 model)\n");
  const DeviceModel dev = DeviceModel::v100();
  const std::size_t m = 128;

  Table table("Per-layer latency and TW speedup by model class");
  table.set_header({"model class", "hidden", "dense (ms)", "TW-75% speedup",
                    "TW-95% speedup"});
  struct Row {
    const char* name;
    std::size_t hidden;
  };
  for (const Row& row : {Row{"BERT-base", 768}, Row{"BERT-large", 1024},
                         Row{"GPT-2", 1600}, Row{"GPT-2-XL~", 2048},
                         Row{"GPT-3-ish", 4096}}) {
    const double dense = dense_layer_latency(dev, m, row.hidden);
    const double tw75 = tw_layer_latency(dev, m, row.hidden, 0.75, row.hidden);
    const double tw95 = tw_layer_latency(dev, m, row.hidden, 0.95, row.hidden + 1);
    table.add_row({row.name, std::to_string(row.hidden),
                   format_double(dense * 1e3, 3),
                   format_double(dense / tw75, 2) + "x",
                   format_double(dense / tw95, 2) + "x"});
  }
  table.print();
  std::puts(
      "\nLarger layers keep the SMs busy even after pruning, so the TW\n"
      "speedup improves with model scale — the paper's argument that\n"
      "tile-wise sparsity matters more as models keep growing.");
  return 0;
}
