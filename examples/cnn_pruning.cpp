// CNN pruning example: the VggMini conv net on the synthetic image task.
// Shows the im2col view of convolution pruning — the conv weight that
// gets TW-pruned is the (C_in*9) x C_out lowered matrix, exactly as the
// paper prunes VGG-16 (Sec. VII-A).

#include <cstdio>

#include "nn/prune_experiment.hpp"
#include "workload/shapes.hpp"

using namespace tilesparse;

int main() {
  std::puts("pre-training VggMini on the clustered-image proxy...");
  auto task = make_vgg_task(/*pretrain_steps=*/300);
  const auto baseline = snapshot_params(task->prunable());
  const double dense_acc = task->evaluate();
  std::printf("dense accuracy: %.3f\n\n", dense_acc);

  std::puts("pattern sweep at 60% sparsity (60 fine-tune steps each):");
  for (const auto kind : {PatternKind::kEw, PatternKind::kTw, PatternKind::kVw,
                          PatternKind::kBw}) {
    restore_params(task->prunable(), baseline);
    PatternSpec spec;
    spec.kind = kind;
    spec.sparsity = 0.60;
    spec.g = 8;
    spec.block = 8;
    spec.vector_len = 8;
    const auto result = prune_and_evaluate(*task, spec, 60);
    std::printf("  %-4s accuracy %.3f (drop %+.3f), sparsity %.3f\n",
                pattern_name(kind), result.metric, dense_acc - result.metric,
                result.achieved_sparsity);
  }

  std::puts("\nVGG-16 im2col GEMM shapes the latency experiments use:");
  for (const auto& gemm : vgg16_gemms()) {
    std::printf("  %-8s M=%-6zu K=%-5zu N=%zu\n", gemm.name.c_str(),
                gemm.shape.m, gemm.shape.k, gemm.shape.n);
  }
  return 0;
}
