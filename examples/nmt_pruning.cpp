// NMT pruning example: the LSTM encoder-decoder proxy scored with BLEU,
// mirroring the paper's NMT benchmark.  Demonstrates the finding that
// the NMT model prefers fine granularity: TW loses more BLEU than on
// classification tasks at high sparsity.

#include <cstdio>

#include "nn/prune_experiment.hpp"

using namespace tilesparse;

int main() {
  std::puts("pre-training NmtMini on the sequence-reversal proxy...");
  auto task = make_nmt_task(/*pretrain_steps=*/500);
  const auto baseline = snapshot_params(task->prunable());
  const double dense_bleu = task->evaluate();
  std::printf("dense BLEU: %.2f\n\n", dense_bleu);

  for (double sparsity : {0.4, 0.6, 0.8}) {
    std::printf("sparsity %.0f%%:\n", sparsity * 100.0);
    for (const auto kind :
         {PatternKind::kEw, PatternKind::kTw, PatternKind::kVw}) {
      restore_params(task->prunable(), baseline);
      PatternSpec spec;
      spec.kind = kind;
      spec.sparsity = sparsity;
      spec.g = 16;
      spec.vector_len = 8;
      const auto result = prune_and_evaluate(*task, spec, 100);
      std::printf("  %-4s BLEU %.2f (drop %+.2f)\n", pattern_name(kind),
                  result.metric, dense_bleu - result.metric);
    }
  }
  return 0;
}
