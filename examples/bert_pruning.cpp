// End-to-end BERT-proxy pruning walkthrough: pre-train the BertMini
// transformer on the synthetic MNLI-like task, prune it to 70% with TW
// and with TEW-5%, fine-tune under the masks, and compare accuracy and
// modelled inference latency against the dense baseline.

#include <cstdio>

#include "nn/prune_experiment.hpp"
#include "sim/device_model.hpp"
#include "sim/gemm_model.hpp"
#include "sim/tw_model.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

using namespace tilesparse;

int main() {
  std::puts("pre-training BertMini on the sentence-classification proxy...");
  auto task = make_bert_cls_task(/*pretrain_steps=*/300);
  const auto baseline = snapshot_params(task->prunable());
  const double dense_acc = task->evaluate();
  std::printf("dense accuracy: %.3f\n\n", dense_acc);

  for (const auto kind : {PatternKind::kTw, PatternKind::kTew}) {
    restore_params(task->prunable(), baseline);
    PatternSpec spec;
    spec.kind = kind;
    spec.sparsity = 0.70;
    spec.g = 16;
    spec.tew_delta = 0.05;
    const auto result = prune_and_evaluate(*task, spec, /*finetune_steps=*/80);
    std::printf("%s @%.0f%%: accuracy %.3f (drop %.3f), achieved sparsity "
                "%.3f\n",
                pattern_name(kind), 100.0 * spec.sparsity, result.metric,
                dense_acc - result.metric, result.achieved_sparsity);
  }

  // Latency story at full BERT-base scale for the same sparsity.
  const DeviceModel dev = DeviceModel::v100();
  double dense_latency = 0.0, tw_latency = 0.0;
  Rng rng(7);
  for (const auto& gemm : bert_base_gemms()) {
    dense_latency += dense_gemm_latency(dev, gemm.shape, Core::kTensor).seconds();
    MatrixF scores(gemm.shape.k, gemm.shape.n);
    fill_uniform(scores, rng, 0.01f, 1.0f);
    const TilePattern p = tw_pattern_from_scores(scores, 0.70, 128);
    tw_latency += tw_gemm_latency(dev, gemm.shape.m, p).seconds();
  }
  std::printf("\nBERT-base GEMM latency (V100 tensor-core model): dense "
              "%.2f ms, TW-70%% %.2f ms -> %.2fx\n",
              dense_latency * 1e3, tw_latency * 1e3,
              dense_latency / tw_latency);
  return 0;
}
