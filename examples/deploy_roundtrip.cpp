// Deployment round-trip: the training side prunes and *serialises* the
// compacted tiles; the inference side loads them back (no re-pruning),
// wraps them in PackedWeight execution backends and serves requests —
// in fp32 or INT8 from the same artifact.  This is the flow a
// production integration of TW would use.

#include <cmath>
#include <cstdio>

#include "core/tile_exec.hpp"
#include "exec/quant_tw_weight.hpp"
#include "exec/tw_weight.hpp"
#include "io/serialize.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace tilesparse;

int main() {
  const char* pattern_path = "/tmp/tilesparse_demo_pattern.bin";
  const char* tiles_path = "/tmp/tilesparse_demo_tiles.bin";

  // ---- "training side": prune and export.
  {
    Rng rng(11);
    MatrixF weights(512, 1024);
    fill_normal(weights, rng);
    TwPruneOptions options;
    options.target_sparsity = 0.8;
    options.g = 64;
    options.stages = 3;
    const TilePattern pattern = tw_prune_single(weights, options);
    save_pattern(pattern_path, pattern);
    save_tiles(tiles_path, compact_tiles(weights, pattern));
    std::printf("exported: %.1f%% sparse, %zu tiles -> %s\n",
                100.0 * pattern.sparsity(), pattern.tiles.size(), tiles_path);
  }

  // ---- "inference side": load, wrap as execution backends, serve.
  {
    const TilePattern pattern = load_pattern(pattern_path);
    const auto tiles = load_tiles(tiles_path);
    std::printf("loaded:   %.1f%% sparse, %zu tiles\n",
                100.0 * pattern.sparsity(), tiles.size());

    // Same artifact, two serving precisions behind one interface.
    const TwWeight fp32_weight(tiles, pattern.k, pattern.n);
    const QuantTwWeight int8_weight(tiles, pattern.k, pattern.n);

    Rng rng(12);
    MatrixF activations(64, 512);
    fill_normal(activations, rng);

    const ExecContext ctx;
    const MatrixF fp32 = fp32_weight.matmul(ctx, activations);
    const MatrixF int8 = int8_weight.matmul(ctx, activations);

    std::printf("'%s' %zu KiB vs '%s' %zu KiB\n",
                std::string(fp32_weight.format()).c_str(),
                fp32_weight.bytes() / 1024,
                std::string(int8_weight.format()).c_str(),
                int8_weight.bytes() / 1024);
    std::printf("fp32 vs int8 output: max |diff| = %.4f "
                "(output norm %.2f)\n",
                max_abs_diff(fp32, int8),
                frobenius_norm(fp32) / std::sqrt(fp32.size()));
  }
  return 0;
}
