// Deployment round-trip: the training side prunes, packs and writes ONE
// format-tagged artifact holding every layer's complete PackedWeight —
// compacted tiles, CSR arrays, int8 tiles *with their scales*.  The
// inference side loads the artifact straight into execution backends
// through the BackendRegistry loader table and serves requests without
// re-pruning, re-packing or re-quantising anything.  This is the flow a
// production integration of TW would use: prune once, ship the packed
// bytes, serve forever.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "exec/backend_registry.hpp"
#include "gemm/dense_gemm.hpp"
#include "io/serialize.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

using namespace tilesparse;

namespace {

/// Removes the artifact on every exit path.  CI runs examples in
/// parallel, so the path is unique per run (pid) and never left behind.
class ScopedArtifact {
 public:
  ScopedArtifact() {
    const char* tmpdir = std::getenv("TMPDIR");
    path_ = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
            "/tilesparse_deploy_" + std::to_string(getpid()) + ".bin";
  }
  ~ScopedArtifact() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace

int main() {
  const ScopedArtifact artifact;

  // The model: three GEMM layers served under different formats from
  // the same file — the paper's TW format, the TEW hybrid, and int8 TW.
  struct LayerSpec {
    const char* name;
    std::size_t k, n;
    const char* format;
  };
  const std::vector<LayerSpec> specs = {
      {"encoder.ffn_in.w", 512, 1024, "tw"},
      {"encoder.ffn_out.w", 1024, 512, "tew"},
      {"classifier.w", 512, 256, "tw-int8"},
  };

  // ---- "training side": prune, pack, export one artifact.
  {
    Rng rng(11);
    std::vector<std::unique_ptr<PackedWeight>> packed;
    std::vector<std::pair<std::string, const PackedWeight*>> entries;
    for (const LayerSpec& spec : specs) {
      MatrixF weights(spec.k, spec.n);
      fill_normal(weights, rng);
      TwPruneOptions options;
      options.target_sparsity = 0.8;
      options.g = 64;
      options.stages = 3;
      const TilePattern pattern = tw_prune_single(weights, options);
      // Pack from the unpruned weights: the TW-family factories gather
      // kept entries through the pattern, and "tew" restores its
      // element-wise remainder from the values the pattern pruned.
      const MatrixF scores = magnitude_scores(weights);

      PackOptions pack;
      pack.pattern = &pattern;
      pack.scores = &scores;
      packed.push_back(make_packed(spec.format, weights, pack));
      entries.emplace_back(spec.name, packed.back().get());
      std::printf("packed  %-20s %-8s %5.1f%% sparse %6zu KiB\n", spec.name,
                  spec.format, 100.0 * pattern.sparsity(),
                  packed.back()->bytes() / 1024);
    }
    save_model_weights(artifact.path(), entries);
    std::printf("exported %zu layers -> %s\n\n", entries.size(),
                artifact.path().c_str());
  }

  // ---- "inference side": the same artifact through both load paths —
  // stream (copies payloads into owned storage) and mmap (backends
  // borrow the mapping zero-copy) — with load latency and the RSS cost
  // of each reported side by side.
  struct LoadPath {
    const char* label;
    std::vector<NamedWeight> (*load)(const std::string&);
  };
  const LoadPath paths[] = {
      {"stream", &load_model_weights},
      {"mmap", &load_model_weights_mapped},
  };
  for (const LoadPath& path : paths) {
    const std::size_t rss_before = process_rss_kb();
    Stopwatch timer;
    const std::vector<NamedWeight> layers = path.load(artifact.path());
    const double load_ms = timer.milliseconds();
    const std::size_t rss_after = process_rss_kb();
    std::printf("loaded   %zu layers via %-6s in %6.2f ms, RSS +%zu KiB%s\n",
                layers.size(), path.label, load_ms,
                rss_after > rss_before ? rss_after - rss_before : 0,
                layers.front().weight->borrows_storage()
                    ? " (weights borrow the mapping)"
                    : "");

    Rng rng(12);
    const ExecContext ctx;
    for (const NamedWeight& layer : layers) {
      MatrixF activations(64, layer.weight->k());
      fill_normal(activations, rng);
      const MatrixF served = layer.weight->matmul(ctx, activations);
      // The packed representation is ground truth: serving must equal
      // dense execution of its own reconstruction.
      const MatrixF reference = matmul(activations, layer.weight->to_dense());
      const double norm =
          frobenius_norm(reference) / std::sqrt(reference.size());
      std::printf("served  %-20s %-8s %6zu KiB  max |diff| vs own dense "
                  "= %.4g (output norm %.2f)\n",
                  layer.name.c_str(),
                  std::string(layer.weight->format()).c_str(),
                  layer.weight->bytes() / 1024,
                  max_abs_diff(served, reference), norm);
      // fp32 formats serve exactly; int8 is bounded by the dynamic
      // activation-quantisation step (see the backend conformance suite).
      if (max_abs_diff(served, reference) > 0.15 * norm + 1e-4) {
        std::fprintf(stderr, "FAIL: served output diverged for %s\n",
                     layer.name.c_str());
        return 1;
      }
    }
    std::printf("\n");
  }
  return 0;
}
