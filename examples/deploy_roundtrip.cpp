// Deployment round-trip: the training side prunes and *serialises* the
// compacted tiles; the inference side loads them back (no re-pruning)
// and serves requests — optionally in INT8.  This is the artifact flow
// a production integration of TW would use.

#include <cstdio>

#include "core/tile_exec.hpp"
#include "io/serialize.hpp"
#include "prune/tw_pruner.hpp"
#include "quant/quant_gemm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace tilesparse;

int main() {
  const char* pattern_path = "/tmp/tilesparse_demo_pattern.bin";
  const char* tiles_path = "/tmp/tilesparse_demo_tiles.bin";

  // ---- "training side": prune and export.
  {
    Rng rng(11);
    MatrixF weights(512, 1024);
    fill_normal(weights, rng);
    TwPruneOptions options;
    options.target_sparsity = 0.8;
    options.g = 64;
    options.stages = 3;
    const TilePattern pattern = tw_prune_single(weights, options);
    save_pattern(pattern_path, pattern);
    save_tiles(tiles_path, compact_tiles(weights, pattern));
    std::printf("exported: %.1f%% sparse, %zu tiles -> %s\n",
                100.0 * pattern.sparsity(), pattern.tiles.size(), tiles_path);
  }

  // ---- "inference side": load and serve.
  {
    const TilePattern pattern = load_pattern(pattern_path);
    const auto tiles = load_tiles(tiles_path);
    std::printf("loaded:   %.1f%% sparse, %zu tiles\n",
                100.0 * pattern.sparsity(), tiles.size());

    Rng rng(12);
    MatrixF activations(64, 512);
    fill_normal(activations, rng);

    const MatrixF fp32 = tw_matmul(activations, tiles, pattern.n);
    const auto qtiles = quantize_tiles(tiles);
    const MatrixF int8 = quant_tw_matmul(activations, qtiles, pattern.n);

    std::printf("fp32 vs int8 output: max |diff| = %.4f "
                "(output norm %.2f)\n",
                max_abs_diff(fp32, int8),
                frobenius_norm(fp32) / std::sqrt(fp32.size()));
  }
  return 0;
}
