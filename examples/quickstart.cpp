// Quickstart: prune one weight matrix to 75% tile-wise sparsity and run
// the sparse product through the unified weight-execution API.
//
//   1. build a weight matrix,
//   2. prune it with the multi-stage TW algorithm (Algorithm 1),
//   3. pack it into an executable PackedWeight via the BackendRegistry
//      (offline pre-processing of Fig. 7 happens inside the "tw" backend),
//   4. execute C = A * W_sparse with PackedWeight::matmul,
//   5. ask the V100 model what this would buy on a tensor-core GPU.

#include <cstdio>

#include "exec/backend_registry.hpp"
#include "exec/planner.hpp"
#include "gemm/dense_gemm.hpp"
#include "prune/tw_pruner.hpp"
#include "sim/gemm_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace tilesparse;

int main() {
  // 1. A 768 x 3072 weight matrix (BERT FFN shape) and its activations.
  Rng rng(42);
  MatrixF weights(768, 3072);
  fill_normal(weights, rng);
  MatrixF activations(128, 768);
  fill_normal(activations, rng);

  // 2. Prune to 75% TW sparsity with G=128, 3 stages, no fine-tuning
  //    (plug a training callback into tw_prune for real models).
  TwPruneOptions options;
  options.target_sparsity = 0.75;
  options.g = 128;
  options.stages = 3;
  const TilePattern pattern = tw_prune_single(weights, options);
  std::printf("pruned to %.1f%% sparsity in %zu tiles (G=%zu)\n",
              100.0 * pattern.sparsity(), pattern.tiles.size(), pattern.g);

  // 3. Pack into an executable weight.  Every format behind the
  //    registry ("dense", "tw", "tew", "csr", "tw-int8") executes the
  //    same logical C = A * W; the planner can also pick the cheapest
  //    format from the pattern statistics (pack_weight in exec/planner.hpp).
  PackOptions pack;
  pack.pattern = &pattern;
  const auto packed = make_packed("tw", weights, pack);
  std::printf("packed as '%s': %.2f MiB, %.0fk MACs/row\n",
              std::string(packed->format()).c_str(),
              static_cast<double>(packed->bytes()) / (1024.0 * 1024.0),
              packed->macs(1) / 1e3);

  // 4. Sparse product through the unified API, checked against dense
  //    GEMM on the zeroed weights.
  const ExecContext ctx;
  const MatrixF c_sparse = packed->matmul(ctx, activations);
  const MatrixF c_dense = matmul(activations, weights);
  std::printf("max |sparse - dense| = %.2e\n",
              max_abs_diff(c_sparse, c_dense));

  const double dense_time = time_best_of([&] { matmul(activations, weights); });
  MatrixF c(128, 3072);
  const double sparse_time =
      time_best_of([&] { packed->matmul(ctx, activations, c); });
  std::printf("measured on this CPU: dense %.2f ms, TW-sparse %.2f ms "
              "(%.2fx)\n",
              dense_time * 1e3, sparse_time * 1e3, dense_time / sparse_time);

  // 5. What the V100 model predicts for the same pattern on tensor cores.
  const DeviceModel dev = DeviceModel::v100();
  const double model_dense =
      dense_gemm_latency(dev, {128, 3072, 768}, Core::kTensor).seconds();
  const double model_tw = tw_gemm_latency(dev, 128, pattern).seconds();
  std::printf("V100 tensor-core model: dense %.1f us, TW %.1f us (%.2fx)\n",
              model_dense * 1e6, model_tw * 1e6, model_dense / model_tw);
  return 0;
}
