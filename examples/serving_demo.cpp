// Serving demo: the full production flow through the model-level
// execution API.
//
//   train side:  pre-train BERT-mini -> TW-prune -> fine-tune ->
//                export ONE deployment artifact (packed tiles)
//   serve side:  load the artifact into execution backends, build the
//                ExecGraph once, and serve requests through the
//                ExecScheduler — independent layers overlapping across
//                streams, very wide outputs column-sharded — with the
//                single-stream fallback as the bit-identical reference.
//
// Exits nonzero if the scheduled serving path diverges from the
// single-stream fallback (they must be the same bits) or the artifact
// round trip loses accuracy.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "exec/scheduler.hpp"
#include "exec/validate.hpp"
#include "nn/prune_experiment.hpp"
#include "util/stopwatch.hpp"

using namespace tilesparse;

namespace {

class ScopedArtifact {
 public:
  ScopedArtifact() {
    const char* tmpdir = std::getenv("TMPDIR");
    path_ = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
            "/tilesparse_serving_" + std::to_string(getpid()) + ".bin";
  }
  ~ScopedArtifact() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace

int main() {
  const ScopedArtifact artifact;

  std::printf("== train side ==\n");
  auto task = make_bert_cls_task(/*pretrain_steps=*/40);
  const double dense_metric = task->evaluate();
  std::printf("pre-trained accuracy:    %.3f\n", dense_metric);

  PatternSpec spec;
  spec.kind = PatternKind::kTw;
  spec.sparsity = 0.5;
  spec.g = 8;
  const PruneResult pruned = prune_and_evaluate(*task, spec, /*finetune=*/30);
  std::printf("TW-pruned accuracy:      %.3f (sparsity %.2f)\n", pruned.metric,
              pruned.achieved_sparsity);

  export_packed_weights(*task, "tw", &pruned.patterns, artifact.path());
  std::printf("artifact:                %s\n", artifact.path().c_str());

  std::printf("== serve side ==\n");
  // Static verification before serving a single request: def-use,
  // hazard-edge completeness, acyclicity, shapes, shard plans.  A
  // malformed plan fails fast here with the verifier's diagnostics
  // instead of serving wrong bits.
  if (ExecGraph* graph = task->build_exec_graph()) {
    const auto findings = validate_graph(*graph);
    for (const GraphFinding& finding : findings)
      std::printf("  %s\n", to_string(finding).c_str());
    for (const GraphFinding& finding : findings) {
      if (finding.severity == FindingSeverity::kError) {
        std::printf("FAIL: execution graph rejected by the verifier\n");
        return 1;
      }
    }
    std::printf("graph verified:          %zu nodes, %zu finding(s)\n",
                graph->node_count(), findings.size());
  }

  // Single-stream fallback: the reference the scheduled path must match.
  SchedulerOptions single;
  single.streams = 1;
  Stopwatch sw_single;
  const double served_single =
      evaluate_from_artifact(*task, artifact.path(), ExecContext{}, single);
  const double ms_single = sw_single.milliseconds();

  SchedulerOptions overlapped;  // streams = pool size, wide-N sharding on
  Stopwatch sw_overlap;
  const double served_overlap =
      evaluate_from_artifact(*task, artifact.path(), ExecContext{}, overlapped);
  const double ms_overlap = sw_overlap.milliseconds();

  std::printf("served (1 stream):       %.3f   (%.0f ms)\n", served_single,
              ms_single);
  std::printf("served (overlapped):     %.3f   (%.0f ms)\n", served_overlap,
              ms_overlap);

  if (served_overlap != served_single) {
    std::printf("FAIL: scheduled serving diverged from the single-stream "
                "fallback\n");
    return 1;
  }
  if (std::fabs(served_single - pruned.metric) > 0.05) {
    std::printf("FAIL: artifact round trip lost accuracy\n");
    return 1;
  }
  std::printf("OK: scheduled == fallback, artifact serves the pruned model\n");
  return 0;
}
