// Serving demo: the full production flow through the fault-tolerant
// serving runtime.
//
//   train side:  pre-train BERT-mini -> TW-prune -> fine-tune ->
//                export ONE deployment artifact (packed tiles)
//   serve side:  stand up a ServingRuntime and push mixed traffic at
//                it — interactive/normal/batch evaluation requests
//                served from the artifact, one request against a
//                deliberately CORRUPT artifact copy, and one request
//                whose deadline has already passed — then verify every
//                request reached exactly the terminal status it should:
//                OK (bit-identical across streams), FAILED (corrupt
//                artifact surfaced as a request error, worker alive),
//                TIMEOUT (deadline enforced without execution).
//
// A second section then stands up a batching runtime and pushes TWO
// TENANTS at mixed priorities through one shared batchable GEMM entry:
// the batcher coalesces their rows into wide-M runs, every response
// must be bit-identical to its solo reference, and the per-tenant
// ledgers must partition the global books exactly.
//
// Exits nonzero unless every request lands on its expected terminal
// status, the OK metrics agree with the train-side pruned accuracy,
// the runtime's conservation identity holds after shutdown, and the
// multi-tenant fairness accounting balances.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "exec/backend_registry.hpp"
#include "exec/batch_entry.hpp"
#include "exec/exec_context.hpp"
#include "exec/validate.hpp"
#include "io/serialize.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/serving_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace tilesparse;

namespace {

class ScopedArtifact {
 public:
  explicit ScopedArtifact(const char* stem) {
    const char* tmpdir = std::getenv("TMPDIR");
    path_ = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/" + stem +
            "_" + std::to_string(getpid()) + ".bin";
  }
  ~ScopedArtifact() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes a truncated copy of `src` at `dst`: a mid-stream corruption
/// the artifact reader must reject, and the runtime must absorb.
bool write_corrupt_copy(const std::string& src, const std::string& dst) {
  std::ifstream in(src, std::ios::binary);
  if (!in) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (bytes.size() < 32) return false;
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  return out.good();
}

MatrixF metric_matrix(double metric) {
  MatrixF m(1, 1);
  m(0, 0) = static_cast<float>(metric);
  return m;
}

bool bit_identical(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main() {
  const ScopedArtifact artifact("tilesparse_serving");
  const ScopedArtifact corrupt("tilesparse_serving_corrupt");

  std::printf("== train side ==\n");
  auto task = make_bert_cls_task(/*pretrain_steps=*/40);
  const double dense_metric = task->evaluate();
  std::printf("pre-trained accuracy:    %.3f\n", dense_metric);

  PatternSpec spec;
  spec.kind = PatternKind::kTw;
  spec.sparsity = 0.5;
  spec.g = 8;
  const PruneResult pruned = prune_and_evaluate(*task, spec, /*finetune=*/30);
  std::printf("TW-pruned accuracy:      %.3f (sparsity %.2f)\n", pruned.metric,
              pruned.achieved_sparsity);

  export_packed_weights(*task, "tw", &pruned.patterns, artifact.path());
  std::printf("artifact:                %s\n", artifact.path().c_str());
  if (!write_corrupt_copy(artifact.path(), corrupt.path())) {
    std::printf("FAIL: could not stage the corrupt artifact copy\n");
    return 1;
  }

  std::printf("== serve side ==\n");
  // One runtime, one worker (the task model is shared mutable state),
  // two streams on the primary path, retries allowed so the corrupt
  // artifact also demonstrates the degraded retry before FAILING.
  serve::ServingOptions options;
  options.workers = 1;
  options.streams = 2;
  options.queue_capacity = 16;
  options.max_attempts = 2;
  options.retry_backoff = std::chrono::microseconds(200);
  serve::ServingRuntime runtime(options);

  // The evaluation request: load the artifact into the task's layers
  // and evaluate through the worker's scheduler.  Idempotent, so safe
  // to retry.
  const auto evaluate_artifact = [&task,
                                  &artifact](serve::WorkerContext& ctx) {
    task->set_exec_scheduler(&ctx.scheduler);
    double metric = -1.0;
    try {
      metric = evaluate_from_artifact(*task, artifact.path());
    } catch (...) {
      task->set_exec_scheduler(nullptr);
      throw;
    }
    task->set_exec_scheduler(nullptr);
    return metric_matrix(metric);
  };

  struct Submitted {
    const char* label;
    serve::RequestHandle handle;
    serve::RequestStatus expect;
  };
  std::vector<Submitted> traffic;

  // Mixed-priority evaluation requests (all must serve OK).
  const serve::Priority priorities[] = {serve::Priority::kInteractive,
                                        serve::Priority::kNormal,
                                        serve::Priority::kBatch};
  const char* labels[] = {"eval-interactive", "eval-normal", "eval-batch"};
  for (int i = 0; i < 3; ++i) {
    serve::Request request;
    request.priority = priorities[i];
    request.tag = labels[i];
    request.work = evaluate_artifact;
    traffic.push_back({labels[i], runtime.submit(std::move(request)),
                       serve::RequestStatus::kOk});
  }

  // A request served from the corrupt artifact copy: the load failure
  // must surface as THIS request's error, not kill the worker.
  {
    serve::Request request;
    request.priority = serve::Priority::kNormal;
    request.tag = "corrupt-artifact";
    request.work = [&corrupt](serve::WorkerContext&) {
      const auto weights = load_model_weights(corrupt.path());
      return metric_matrix(static_cast<double>(weights.size()));
    };
    traffic.push_back({"corrupt-artifact", runtime.submit(std::move(request)),
                       serve::RequestStatus::kFailed});
  }

  // A request whose deadline has already passed: TIMEOUT, no execution.
  {
    serve::Request request;
    request.priority = serve::Priority::kInteractive;
    request.tag = "missed-deadline";
    request.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
    request.work = evaluate_artifact;
    traffic.push_back({"missed-deadline", runtime.submit(std::move(request)),
                       serve::RequestStatus::kTimeout});
  }

  // One more healthy request AFTER the faulty ones: proves the worker
  // keeps serving.
  {
    serve::Request request;
    request.priority = serve::Priority::kNormal;
    request.tag = "eval-after-faults";
    request.work = evaluate_artifact;
    traffic.push_back({"eval-after-faults", runtime.submit(std::move(request)),
                       serve::RequestStatus::kOk});
  }

  runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);

  bool ok = true;
  double served_metric = -1.0;
  for (const Submitted& entry : traffic) {
    const serve::Response& response = entry.handle->response();
    std::printf("%-18s -> %-8s", entry.label,
                serve::status_name(response.status));
    if (response.status == serve::RequestStatus::kOk) {
      std::printf("  metric %.3f  (attempts %u%s)\n",
                  static_cast<double>(response.result(0, 0)),
                  response.attempts, response.degraded ? ", degraded" : "");
    } else {
      std::printf("  attempts %u  error: %s\n", response.attempts,
                  response.error.c_str());
    }
    if (response.status != entry.expect) {
      std::printf("FAIL: %s expected %s\n", entry.label,
                  serve::status_name(entry.expect));
      ok = false;
      continue;
    }
    if (response.status == serve::RequestStatus::kOk) {
      const double metric = static_cast<double>(response.result(0, 0));
      if (served_metric < 0.0) served_metric = metric;
      if (metric != served_metric) {
        std::printf("FAIL: OK responses disagree (%.6f vs %.6f)\n", metric,
                    served_metric);
        ok = false;
      }
    }
  }

  if (ok && std::fabs(served_metric - pruned.metric) > 0.05) {
    std::printf("FAIL: artifact round trip lost accuracy (%.3f vs %.3f)\n",
                served_metric, pruned.metric);
    ok = false;
  }

  const auto stats = runtime.stats();
  std::printf("stats: submitted=%llu ok=%llu failed=%llu timeout=%llu "
              "rejected=%llu retries=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.ok),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.timeout),
              static_cast<unsigned long long>(stats.rejected_full +
                                              stats.rejected_closed +
                                              stats.evicted),
              static_cast<unsigned long long>(stats.retries));
  if (!stats.conserved()) {
    std::printf("FAIL: conservation identity violated\n");
    ok = false;
  }

  std::printf("== multi-tenant batching ==\n");
  // Two tenants at mixed priorities share one batchable TW GEMM entry.
  // Every request must come back OK with exactly the bits a solo run
  // would have produced, and the per-tenant ledgers must balance and
  // partition the global books — fairness accounting divergence is a
  // demo failure, same as a wrong terminal status.
  Rng rng(4096);
  MatrixF w(64, 96);
  fill_normal(w, rng);
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, 0.5, 16);
  PackOptions pack;
  pack.pattern = &pattern;
  const auto packed = make_packed("tw", w, pack);

  serve::ServingOptions batch_options;
  batch_options.workers = 2;
  batch_options.streams = 1;
  batch_options.queue_capacity = 32;
  batch_options.batch.enabled = true;
  batch_options.batch.max_batch_m = 64;
  batch_options.batch.max_linger = std::chrono::milliseconds(5);
  serve::ServingRuntime batch_runtime(batch_options);
  batch_runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  struct TenantTraffic {
    serve::RequestHandle handle;
    MatrixF expected;
    std::string tenant;
  };
  const struct {
    const char* tenant;
    serve::Priority priority;
  } tenants[] = {{"tenant-a", serve::Priority::kInteractive},
                 {"tenant-b", serve::Priority::kBatch}};
  // Stage inputs and solo references first, then submit in a tight
  // loop so the traffic is actually concurrent from the batcher's
  // point of view (references computed mid-loop would space arrivals
  // past the linger window).
  std::vector<MatrixF> tenant_inputs, tenant_expected;
  for (int i = 0; i < 12; ++i) {
    MatrixF input(2, 64);
    fill_normal(input, rng);
    tenant_expected.push_back(packed->matmul(ExecContext{}, input));
    tenant_inputs.push_back(std::move(input));
  }
  std::vector<TenantTraffic> tenant_traffic;
  for (int i = 0; i < 12; ++i) {
    const auto& who = tenants[i % 2];
    serve::Request request;
    request.priority = who.priority;
    request.tenant_id = who.tenant;
    request.tag = who.tenant;
    request.entry = "gemm";
    request.input = std::move(tenant_inputs[static_cast<std::size_t>(i)]);
    tenant_traffic.push_back(
        {batch_runtime.submit(std::move(request)),
         std::move(tenant_expected[static_cast<std::size_t>(i)]), who.tenant});
  }
  // Wait for terminal responses BEFORE shutting down: drain mode tells
  // leaders to stop lingering, so a shutdown-then-wait ordering would
  // flush every member as a batch of one.
  for (const TenantTraffic& entry : tenant_traffic) entry.handle->wait();
  batch_runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);

  std::size_t batched_served = 0;
  for (const TenantTraffic& entry : tenant_traffic) {
    const serve::Response& response = entry.handle->response();
    if (response.status != serve::RequestStatus::kOk) {
      std::printf("FAIL: %s batchable request -> %s (%s)\n",
                  entry.tenant.c_str(), serve::status_name(response.status),
                  response.error.c_str());
      ok = false;
      continue;
    }
    if (!bit_identical(response.result, entry.expected)) {
      std::printf("FAIL: %s batched result differs from its solo bits\n",
                  entry.tenant.c_str());
      ok = false;
    }
    if (response.batched) ++batched_served;
  }

  const auto batch_stats = batch_runtime.stats();
  const auto per_tenant = batch_runtime.tenant_stats();
  if (!batch_stats.conserved()) {
    std::printf("FAIL: batching runtime conservation identity violated\n");
    ok = false;
  }
  std::uint64_t tenant_submitted = 0, tenant_ok = 0;
  for (const auto& [tenant, ledger] : per_tenant) {
    std::printf("%-10s submitted=%llu ok=%llu batched_ok=%llu cost=%.0f\n",
                tenant.c_str(),
                static_cast<unsigned long long>(ledger.submitted),
                static_cast<unsigned long long>(ledger.ok),
                static_cast<unsigned long long>(ledger.batched_ok),
                ledger.cost_ok);
    if (!ledger.conserved() || ledger.ok != ledger.submitted) {
      std::printf("FAIL: %s ledger does not balance\n", tenant.c_str());
      ok = false;
    }
    tenant_submitted += ledger.submitted;
    tenant_ok += ledger.ok;
  }
  if (tenant_submitted != batch_stats.submitted ||
      tenant_ok != batch_stats.ok) {
    std::printf("FAIL: tenant ledgers do not partition the global books "
                "(%llu/%llu vs %llu/%llu)\n",
                static_cast<unsigned long long>(tenant_submitted),
                static_cast<unsigned long long>(tenant_ok),
                static_cast<unsigned long long>(batch_stats.submitted),
                static_cast<unsigned long long>(batch_stats.ok));
    ok = false;
  }
  if (batched_served == 0) {
    std::printf("FAIL: no request was served inside a coalesced batch\n");
    ok = false;
  }
  std::printf("batched %zu/%zu requests across %llu wide-M runs\n",
              batched_served, tenant_traffic.size(),
              static_cast<unsigned long long>(
                  batch_runtime.batch_stats().batches));

  if (!ok) return 1;
  std::printf("OK: every request reached its expected terminal status and "
              "the tenant books balance\n");
  return 0;
}
