// Multi-process zero-copy weight sharing — the measurement behind the
// mmap load path.  One process exports a v2 (aligned) model artifact;
// N serving processes map it with SharedModel::load_mapped and serve
// requests through a ServingRuntime whose WorkerContext exposes the
// shared model.  Because the mapping is MAP_SHARED and read-only, the
// kernel keeps ONE physical copy of the weight pages for all N
// processes, and /proc/self/smaps proves it:
//
//   * per-process Rss of the mapping  ~ file size   (each touched it all)
//   * per-process Pss of the mapping  ~ file size/N (pages are shared)
//   * Private_Dirty of the mapping    ~ 0           (nobody writes it)
//
// The demo fails (non-zero exit) when sharing does not materialise
// (per-process Pss >= 2 * file_size / N), when any process dirties the
// mapping, or when any mmap-served output differs bit-for-bit from the
// parent's stream-loaded baseline.
//
// Fork ordering matters: every child is forked BEFORE this process runs
// any OpenMP region (packing and baseline GEMMs run in a separate
// builder child / after the forks), so no child inherits a dead OpenMP
// runtime.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exec/backend_registry.hpp"
#include "io/serialize.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/serving_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace tilesparse;

namespace {

constexpr std::size_t kProcesses = 4;

struct LayerSpec {
  const char* name;
  std::size_t k, n;
  const char* format;
};

const std::vector<LayerSpec>& layer_specs() {
  static const std::vector<LayerSpec> specs = {
      {"encoder.ffn_in.w", 768, 1536, "tw"},
      {"encoder.ffn_out.w", 1536, 768, "tew"},
      {"encoder.proj.w", 768, 768, "dense"},
      {"encoder.attn.w", 768, 768, "csr"},
      {"classifier.w", 768, 1024, "tw-int8"},
  };
  return specs;
}

/// FNV-1a over raw bytes: a cheap, deterministic fingerprint for
/// bit-identity comparison across processes.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t hash = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Serves every layer once (deterministic activations) and fingerprints
/// the concatenated outputs.  `lookup` abstracts stream vs mmap source.
template <typename Lookup>
std::uint64_t serve_fingerprint(const Lookup& lookup) {
  const ExecContext ctx;
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const LayerSpec& spec : layer_specs()) {
    const PackedWeight* weight = lookup(spec.name);
    if (!weight) return 0;
    Rng rng(fnv1a(spec.name, std::strlen(spec.name)));
    MatrixF activations(32, weight->k());
    fill_normal(activations, rng);
    const MatrixF y = weight->matmul(ctx, activations);
    hash = fnv1a(y.data(), y.size() * sizeof(float), hash);
  }
  return hash;
}

/// Rss/Pss/Private_Dirty (KiB) summed over every /proc/self/smaps
/// mapping of `path`.
struct MapCost {
  std::uint64_t rss_kb = 0;
  std::uint64_t pss_kb = 0;
  std::uint64_t private_dirty_kb = 0;
};

MapCost smaps_cost(const std::string& path) {
  std::ifstream smaps("/proc/self/smaps");
  MapCost cost;
  bool in_mapping = false;
  std::string line;
  while (std::getline(smaps, line)) {
    // Mapping headers start with the address range ("7f..-7f.. r--s ...");
    // field lines with "Key: value".  The first token of a header
    // contains '-' and no ':', which no smaps field key does.  A header
    // resets whether we are inside our file's mapping.
    const std::size_t first_space = line.find(' ');
    const std::string token = line.substr(0, first_space);
    if (token.find('-') != std::string::npos &&
        token.find(':') == std::string::npos) {
      in_mapping = line.size() >= path.size() &&
                   line.compare(line.size() - path.size(), path.size(),
                                path) == 0;
      continue;
    }
    if (!in_mapping) continue;
    std::uint64_t kb = 0;
    if (std::sscanf(line.c_str(), "Rss: %lu kB",
                    reinterpret_cast<unsigned long*>(&kb)) == 1)
      cost.rss_kb += kb;
    else if (std::sscanf(line.c_str(), "Pss: %lu kB",
                         reinterpret_cast<unsigned long*>(&kb)) == 1)
      cost.pss_kb += kb;
    else if (std::sscanf(line.c_str(), "Private_Dirty: %lu kB",
                         reinterpret_cast<unsigned long*>(&kb)) == 1)
      cost.private_dirty_kb += kb;
  }
  return cost;
}

bool write_all(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Builds the model and writes the v2 artifact.  Runs in its own child
/// so its OpenMP regions never precede the serving forks in this
/// process.
int build_artifact(const std::string& path) {
  Rng rng(11);
  std::vector<std::unique_ptr<PackedWeight>> packed;
  std::vector<std::pair<std::string, const PackedWeight*>> entries;
  for (const LayerSpec& spec : layer_specs()) {
    MatrixF weights(spec.k, spec.n);
    fill_normal(weights, rng);
    TwPruneOptions options;
    options.target_sparsity = 0.75;
    options.g = 64;
    const TilePattern pattern = tw_prune_single(weights, options);
    const MatrixF scores = magnitude_scores(weights);
    PackOptions pack;
    pack.pattern = &pattern;
    pack.scores = &scores;
    if (std::strcmp(spec.format, "csr") == 0) {
      apply_pattern(pattern, weights);  // CSR of the pruned weights
      pack.csr_tol = 0.0f;
    }
    packed.push_back(make_packed(spec.format, weights, pack));
    entries.emplace_back(spec.name, packed.back().get());
  }
  save_model_weights(path, entries);
  return 0;
}

/// One serving process: maps the artifact, serves through a
/// ServingRuntime, reports its output fingerprint and mapping cost to
/// the parent over pipes, and holds the mapping until released.
int serve_child(const std::string& path, int report_fd, int gate_fd) {
  const auto model = serve::SharedModel::load_mapped(path);
  for (const auto& entry : model->weights) {
    if (!entry.weight->borrows_storage()) {
      std::fprintf(stderr, "child %d: '%s' did not borrow mapped storage\n",
                   getpid(), entry.name.c_str());
      return 1;
    }
  }

  serve::ServingOptions options;
  options.workers = 1;
  options.streams = 1;
  serve::ServingRuntime runtime(options);
  runtime.attach_model(model);

  // Serve every layer as a request; the work callable sees the shared
  // model through its WorkerContext, the way production handlers would.
  std::uint64_t hash = 0;
  {
    serve::Request request;
    request.tag = "fingerprint";
    request.work = [&](serve::WorkerContext& context) {
      hash = serve_fingerprint([&](const char* name) {
        return context.model ? context.model->find(name) : nullptr;
      });
      return MatrixF(1, 1);
    };
    const serve::RequestHandle handle = runtime.submit(std::move(request));
    const serve::Response& response = handle->wait();
    if (response.status != serve::RequestStatus::kOk || hash == 0) {
      std::fprintf(stderr, "child %d: serving failed: %s\n", getpid(),
                   response.error.c_str());
      return 1;
    }
  }
  runtime.shutdown();

  if (!write_all(report_fd, &hash, sizeof(hash))) return 1;
  char go = 0;
  // Wait until every sibling has mapped and touched the file, so the
  // Pss measurement sees the fully shared steady state.
  if (!read_all(gate_fd, &go, 1)) return 1;

  const MapCost cost = smaps_cost(path);
  const std::uint64_t report[3] = {cost.rss_kb, cost.pss_kb,
                                   cost.private_dirty_kb};
  if (!write_all(report_fd, report, sizeof(report))) return 1;
  if (!read_all(gate_fd, &go, 1)) return 1;  // hold the mapping until released
  return 0;
}

}  // namespace

int main() {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
                           "/tilesparse_shared_" + std::to_string(getpid()) +
                           ".bin";

  // ---- build the artifact in a separate process (OpenMP isolation).
  {
    const pid_t builder = fork();
    if (builder < 0) return 2;
    if (builder == 0) _exit(build_artifact(path));
    int status = 0;
    waitpid(builder, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "FAIL: artifact build failed\n");
      return 1;
    }
  }
  struct stat st {};
  if (stat(path.c_str(), &st) != 0 || st.st_size <= 0) return 2;
  const auto file_kb = static_cast<std::uint64_t>(st.st_size) / 1024;
  std::printf("artifact: %s (%lu KiB, %zu layers)\n", path.c_str(),
              static_cast<unsigned long>(file_kb), layer_specs().size());

  // ---- fork N serving processes (before any OpenMP work here).
  struct Child {
    pid_t pid = -1;
    int report_fd = -1;  // child -> parent
    int gate_fd = -1;    // parent -> child
  };
  std::vector<Child> children(kProcesses);
  for (Child& child : children) {
    int report[2], gate[2];
    if (pipe(report) != 0 || pipe(gate) != 0) return 2;
    const pid_t pid = fork();
    if (pid < 0) return 2;
    if (pid == 0) {
      close(report[0]);
      close(gate[1]);
      _exit(serve_child(path, report[1], gate[0]));
    }
    close(report[1]);
    close(gate[0]);
    child.pid = pid;
    child.report_fd = report[0];
    child.gate_fd = gate[1];
  }

  // ---- stream-loaded baseline in this process (after the forks).
  const std::vector<NamedWeight> baseline = load_model_weights(path);
  const std::uint64_t expected = serve_fingerprint([&](const char* name) {
    for (const NamedWeight& entry : baseline)
      if (entry.name == name) return entry.weight.get();
    return static_cast<PackedWeight*>(nullptr);
  });

  // ---- phase 1: every child served; outputs must be bit-identical.
  bool ok = true;
  for (std::size_t i = 0; i < children.size(); ++i) {
    std::uint64_t hash = 0;
    if (!read_all(children[i].report_fd, &hash, sizeof(hash)) ||
        hash != expected) {
      std::fprintf(stderr,
                   "FAIL: process %zu fingerprint %016llx != stream baseline "
                   "%016llx\n",
                   i, static_cast<unsigned long long>(hash),
                   static_cast<unsigned long long>(expected));
      ok = false;
    }
  }
  std::printf("outputs:  %zu mmap-serving processes bit-identical to the "
              "stream baseline\n",
              children.size());

  // ---- phase 2: all children hold the mapping; measure sharing.
  for (const Child& child : children) write_all(child.gate_fd, "g", 1);
  const std::uint64_t pss_budget_kb = 2 * file_kb / kProcesses;
  std::uint64_t pss_total = 0, private_dirty_total = 0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    std::uint64_t report[3] = {0, 0, 0};
    if (!read_all(children[i].report_fd, report, sizeof(report))) {
      std::fprintf(stderr, "FAIL: no smaps report from process %zu\n", i);
      ok = false;
      continue;
    }
    std::printf(
        "process %zu: mapping Rss %6lu KiB  Pss %6lu KiB  Private_Dirty "
        "%lu KiB\n",
        i, static_cast<unsigned long>(report[0]),
        static_cast<unsigned long>(report[1]),
        static_cast<unsigned long>(report[2]));
    pss_total += report[1];
    private_dirty_total += report[2];
    if (report[1] >= pss_budget_kb) {
      std::fprintf(stderr,
                   "FAIL: process %zu Pss %lu KiB >= budget %lu KiB "
                   "(file %lu KiB / %zu processes x2)\n",
                   i, static_cast<unsigned long>(report[1]),
                   static_cast<unsigned long>(pss_budget_kb),
                   static_cast<unsigned long>(file_kb), kProcesses);
      ok = false;
    }
  }
  // A read-only MAP_SHARED file mapping has nothing to dirty; a few KiB
  // of slack covers kernel accounting quirks.
  if (private_dirty_total > 16) {
    std::fprintf(stderr, "FAIL: summed Private_Dirty %lu KiB != ~0\n",
                 static_cast<unsigned long>(private_dirty_total));
    ok = false;
  }
  std::printf(
      "sharing:  summed Pss %lu KiB over %zu processes vs %lu KiB file "
      "(one physical copy, ~%.0f%% shared)\n",
      static_cast<unsigned long>(pss_total), kProcesses,
      static_cast<unsigned long>(file_kb),
      100.0 * (1.0 - static_cast<double>(pss_total) /
                         (static_cast<double>(file_kb) * kProcesses)));

  // ---- release and reap.
  for (const Child& child : children) write_all(child.gate_fd, "g", 1);
  for (const Child& child : children) {
    int status = 0;
    waitpid(child.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "FAIL: serving process exited abnormally\n");
      ok = false;
    }
    close(child.report_fd);
    close(child.gate_fd);
  }
  std::remove(path.c_str());
  std::printf("%s\n", ok ? "PASS: N processes, one copy of the weights"
                         : "FAIL: see diagnostics above");
  return ok ? 0 : 1;
}
