// TW on other platforms (paper Sec. VIII): the paper argues TW with
// G = 128 maps onto a TPU-class 128x128 systolic array, but the missing
// low-level interface (no stream concurrency, no per-tile row masks)
// costs efficiency.  This bench quantifies the projection and contrasts
// it with the GPU path and the hypothetical VW sparse tensor core.

#include <cstdio>

#include "bench_util.hpp"
#include "sim/systolic_model.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main() {
  std::puts("== Extension: TW projected onto a TPU-class systolic array ==\n");
  const DeviceModel gpu = DeviceModel::v100();
  const SystolicModel tpu = SystolicModel::tpu_v3();
  const auto gemms = bert_base_gemms();

  Table table("BERT weight GEMMs: normalized latency vs dense per platform");
  table.set_header({"sparsity", "GPU TW G=128", "TPU TW G=128",
                    "VW sparse-TC (hw mod)"});
  // Dense references per platform.
  double gpu_dense = 0.0, tpu_dense = 0.0;
  for (const auto& gemm : gemms) {
    gpu_dense += dense_gemm_latency(gpu, gemm.shape, Core::kTensor).seconds();
    tpu_dense += systolic_dense_latency(tpu, gemm.shape).seconds();
  }

  for (double s : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    double gpu_tw = 0.0, tpu_tw = 0.0, vw_stc = 0.0;
    std::uint64_t seed = 2100;
    for (const auto& gemm : gemms) {
      const TilePattern p = make_tw_pattern(gemm.shape, s, 128, seed++);
      gpu_tw += tw_gemm_latency(gpu, gemm.shape.m, p).seconds();
      tpu_tw += systolic_tw_latency(tpu, gemm.shape.m, p).seconds();
      vw_stc += vw_sparse_tensor_core_latency(gpu, gemm.shape, 1.0 - s).seconds();
    }
    table.add_row({format_double(s, 2), format_double(gpu_tw / gpu_dense, 3),
                   format_double(tpu_tw / tpu_dense, 3),
                   format_double(vw_stc / gpu_dense, 3)});
  }
  table.print();
  std::printf(
      "\npaper discussion check: TW on the TPU is feasible (75%% speedup "
      "%.2fx vs GPU %.2fx) — G=128 matches the 128x128 array — but the "
      "high-level interface costs it the stream/mask optimizations at "
      "higher sparsity; VW sparse-TC reaches ~1.5x only with hardware "
      "modification.\n",
      tpu_dense / [&] {
        double t = 0.0;
        std::uint64_t seed = 2100 + 72 * 3;
        for (const auto& gemm : gemms)
          t += systolic_tw_latency(tpu, gemm.shape.m,
                                   make_tw_pattern(gemm.shape, 0.75, 128, seed++))
                   .seconds();
        return t;
      }(),
      gpu_dense / [&] {
        double t = 0.0;
        std::uint64_t seed = 2100 + 72 * 3;
        for (const auto& gemm : gemms)
          t += tw_gemm_latency(gpu, gemm.shape.m,
                               make_tw_pattern(gemm.shape, 0.75, 128, seed++))
                   .seconds();
        return t;
      }());
  return 0;
}
