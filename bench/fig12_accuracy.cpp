// Fig. 12 — Accuracy of the four tasks (MNLI proxy, SQuAD proxy,
// VGG/ImageNet proxy, NMT proxy in BLEU) under EW / TW / TEW-5% / VW /
// BW at increasing sparsity.
//
// Paper shapes: EW best everywhere; TW ~= VW below ~70%, TW better above
// (except NMT where VW's small granularity wins); BW worst; TEW-5%
// tracks EW closely.

#include <cstdio>
#include <functional>
#include <memory>

#include "nn/prune_experiment.hpp"
#include "util/table.hpp"

using namespace tilesparse;

namespace {

void run_task(const char* title, PruneTask& task, int finetune) {
  const auto baseline = snapshot_params(task.prunable());
  const double dense = task.evaluate();

  Table table(std::string("Fig. 12: ") + title);
  table.set_header({"sparsity", "EW", "TW", "TEW-5%", "VW", "BW"});
  for (double sparsity : {0.4, 0.6, 0.8}) {
    auto eval = [&](PatternKind kind) {
      restore_params(task.prunable(), baseline);
      PatternSpec spec;
      spec.kind = kind;
      spec.sparsity = sparsity;
      spec.g = 16;
      spec.block = 8;
      spec.vector_len = 8;
      spec.tew_delta = 0.05;
      return format_double(prune_and_evaluate(task, spec, finetune).metric, 3);
    };
    table.add_row({format_double(sparsity, 2), eval(PatternKind::kEw),
                   eval(PatternKind::kTw), eval(PatternKind::kTew),
                   eval(PatternKind::kVw), eval(PatternKind::kBw)});
  }
  table.print();
  std::printf("dense reference: %.3f\n\n", dense);
}

}  // namespace

int main() {
  std::puts("== Reproduction of paper Fig. 12 ==\n");
  const int pretrain = 250;
  const int finetune = 60;
  {
    auto task = make_bert_cls_task(pretrain);
    run_task("BERT sentence classification (MNLI proxy)", *task, finetune);
  }
  {
    auto task = make_bert_span_task(pretrain);
    run_task("BERT span extraction (SQuAD proxy)", *task, finetune);
  }
  {
    auto task = make_vgg_task(pretrain);
    run_task("VGG image classification (ImageNet proxy)", *task, finetune);
  }
  {
    auto task = make_nmt_task(400);
    run_task("NMT translation (BLEU, IWSLT proxy)", *task, 100);
  }
  return 0;
}
