// Fig. 10 — The hybrid TEW pattern:
//  (a) accuracy vs sparsity for TEW with delta in {1%, 2.5%, 5%, 10%}
//      against pure TW and EW (BertMini proxy);
//  (b) latency at fixed 75% sparsity for Dense / TW / TEW-deltas, on both
//      the tensor-core and the CUDA-core model, all normalized to the
//      dense model on CUDA cores.
//
// Paper shapes: TEW closes most of the TW-vs-EW accuracy gap by
// delta=5%; on tensor cores even delta=1% erases the TW speedup (the EW
// remainder runs on CUDA cores), while on CUDA cores TEW-1% stays ~2x.

#include <cstdio>

#include "bench_util.hpp"
#include "nn/prune_experiment.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main() {
  std::puts("== Reproduction of paper Fig. 10 ==\n");

  // ---------------- (a) accuracy ----------------
  auto task = make_bert_cls_task(/*pretrain_steps=*/250);
  const auto baseline = snapshot_params(task->prunable());
  const int finetune = 60;

  Table acc_table("Fig. 10a: accuracy vs sparsity (BertMini proxy)");
  acc_table.set_header({"sparsity", "EW", "TW", "TEW 1%", "TEW 5%", "TEW 10%"});
  for (double sparsity : {0.5, 0.7, 0.85}) {
    auto eval = [&](PatternSpec spec) {
      restore_params(task->prunable(), baseline);
      spec.sparsity = sparsity;
      spec.g = 16;
      return format_double(prune_and_evaluate(*task, spec, finetune).metric, 3);
    };
    PatternSpec ew;
    ew.kind = PatternKind::kEw;
    PatternSpec tw;
    tw.kind = PatternKind::kTw;
    std::vector<std::string> row{format_double(sparsity, 2), eval(ew), eval(tw)};
    for (double delta : {0.01, 0.05, 0.10}) {
      PatternSpec tew;
      tew.kind = PatternKind::kTew;
      tew.tew_delta = delta;
      row.push_back(eval(tew));
    }
    acc_table.add_row(std::move(row));
  }
  acc_table.print();
  std::puts("");

  // ---------------- (b) latency at 75% ----------------
  const DeviceModel dev = DeviceModel::v100();
  const auto gemms = bert_base_gemms();
  const double dense_cc = dense_model_latency(dev, gemms, Core::kCuda);
  const double dense_tc = dense_model_latency(dev, gemms, Core::kTensor);

  auto tew_latency = [&](double delta, Core core) {
    TwExecOptions options;
    options.core = core;
    double total = 0.0;
    std::uint64_t seed = 500;
    for (const auto& gemm : gemms) {
      const TilePattern p =
          make_tw_pattern(gemm.shape, 0.75 + delta, 128, seed++);
      total += tew_gemm_latency(dev, gemm.shape.m, p, delta, options).seconds();
    }
    return total;
  };

  Table lat_table(
      "Fig. 10b: latency @75% sparsity, normalized to Dense on CUDA cores");
  lat_table.set_header({"config", "tensor cores", "CUDA cores"});
  lat_table.add_row({"Dense", format_double(dense_tc / dense_cc, 3), "1.000"});
  TwExecOptions tc_opts, cc_opts;
  cc_opts.core = Core::kCuda;
  lat_table.add_row(
      {"TW",
       format_double(tw_model_latency(dev, gemms, 0.75, 128, tc_opts) / dense_cc, 3),
       format_double(tw_model_latency(dev, gemms, 0.75, 128, cc_opts) / dense_cc, 3)});
  for (double delta : {0.01, 0.05, 0.10, 0.15}) {
    lat_table.add_row(
        {"TEW " + format_double(delta * 100, 1) + "%",
         format_double(tew_latency(delta, Core::kTensor) / dense_cc, 3),
         format_double(tew_latency(delta, Core::kCuda) / dense_cc, 3)});
  }
  lat_table.print();

  const double tew1_tc = tew_latency(0.01, Core::kTensor);
  std::printf(
      "\npaper shape check: TEW-1%% ~no speedup vs dense-TC (ratio %.2f, "
      "paper ~1.0+), TW keeps speedup: %s\n",
      tew1_tc / dense_tc,
      (tew1_tc > 0.9 * dense_tc &&
       tw_model_latency(dev, gemms, 0.75, 128, tc_opts) < dense_tc)
          ? "yes"
          : "NO");
  return 0;
}
