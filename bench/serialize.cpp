// Serialize bench: artifact load time vs re-pack time per PackedWeight
// format — the number that justifies shipping whole packed objects.  A
// serving process that re-packs (and for int8, re-quantises) a weight
// it already packed at training time pays the "pack" column on every
// cold start; loading the artifact pays the "load" column instead.
//
// A second table compares the two *file* load paths the runtime offers:
// stream loads copy every payload into owned storage; mmap loads borrow
// the page cache zero-copy, so they are faster AND add almost no
// process-private RSS (the mapping is shared with every other process
// serving the same artifact — see examples/shared_weights).
//
// Usage: serialize [--k=3072] [--n=768] [--layers=4] [--sparsity=75]
//                  [--json=<path>]
// (--sparsity is an integer percent)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "io/serialize.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace tilesparse;

int main(int argc, char** argv) {
  using tilesparse::bench::size_flag;
  const std::string json_path = tilesparse::bench::take_json_flag(argc, argv);
  const std::size_t k = size_flag(argc, argv, "k", 3072);
  const std::size_t n = size_flag(argc, argv, "n", 768);
  const std::size_t layers = size_flag(argc, argv, "layers", 4);
  const double sparsity =
      static_cast<double>(size_flag(argc, argv, "sparsity", 75)) / 100.0;

  // One BERT-ish FFN weight per layer, pruned once (training-time cost,
  // not measured here) — the bench compares what happens after.
  Rng rng(17);
  std::vector<MatrixF> weights;
  std::vector<TilePattern> patterns;
  std::vector<MatrixF> scores;
  for (std::size_t i = 0; i < layers; ++i) {
    MatrixF w(k, n);
    fill_normal(w, rng);
    TwPruneOptions options;
    options.target_sparsity = sparsity;
    options.g = 64;
    patterns.push_back(tw_prune_single(w, options));
    scores.push_back(magnitude_scores(w));
    weights.push_back(std::move(w));
  }

  std::printf("serialize bench: %zu layers of %zu x %zu, %.0f%% target TW "
              "sparsity\n\n",
              layers, k, n, 100.0 * sparsity);

  Table table("artifact load vs re-pack (" + std::to_string(layers) +
              " layers, ms)");
  table.set_header({"format", "artifact KiB", "pack ms", "save ms", "load ms",
                    "pack/load"});

  for (const std::string& format : registered_formats()) {
    const auto pack_all = [&] {
      std::vector<std::unique_ptr<PackedWeight>> packed;
      for (std::size_t i = 0; i < layers; ++i) {
        PackOptions options;
        options.pattern = &patterns[i];
        options.scores = &scores[i];
        packed.push_back(make_packed(format, weights[i], options));
      }
      return packed;
    };
    const double pack_s = time_best_of([&] { pack_all(); }, 3);

    std::vector<std::pair<std::string, const PackedWeight*>> entries;
    const auto packed = pack_all();
    for (std::size_t i = 0; i < layers; ++i)
      entries.emplace_back("layer." + std::to_string(i), packed[i].get());

    std::string artifact;
    const double save_s = time_best_of(
        [&] {
          std::ostringstream out;
          write_model_weights(out, entries);
          artifact = out.str();
        },
        3);

    const double load_s = time_best_of(
        [&] {
          std::istringstream in(artifact);
          const auto loaded = read_model_weights(in);
          if (loaded.size() != layers) std::abort();
        },
        3);

    table.add_row({format, std::to_string(artifact.size() / 1024),
                   format_double(pack_s * 1e3, 2),
                   format_double(save_s * 1e3, 2),
                   format_double(load_s * 1e3, 2),
                   format_double(pack_s / load_s, 1)});
  }

  table.print();
  std::printf("\n");

  // ---- file artifacts: stream load (copying) vs mmap load (zero-copy).
  //
  // One on-disk v2 artifact per format; load latency is best-of-3 and
  // the RSS delta is taken across a single load while the loaded
  // backends are still alive.  Read the RSS columns carefully: the
  // stream delta is private heap (often masked in-process by allocator
  // reuse of pages the packing phase freed), while the mmap delta is
  // shared page cache — counted in VmRSS once validation touches the
  // pages, but reclaimable under pressure and shared with every other
  // process mapping the same artifact (examples/shared_weights measures
  // the per-process Pss, which is what multi-process serving pays).
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string artifact_path =
      std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
      "/tilesparse_bench_serialize_" + std::to_string(getpid()) + ".bin";

  tilesparse::bench::BenchJson json;
  Table load_table("file artifact: stream vs mmap load (" +
                   std::to_string(layers) + " layers)");
  load_table.set_header(
      {"format", "file KiB", "stream ms", "mmap ms", "speedup",
       "stream +KiB (private)", "mmap +KiB (shared)"});

  for (const std::string& format : registered_formats()) {
    std::vector<std::unique_ptr<PackedWeight>> packed;
    std::vector<std::pair<std::string, const PackedWeight*>> entries;
    for (std::size_t i = 0; i < layers; ++i) {
      PackOptions options;
      options.pattern = &patterns[i];
      options.scores = &scores[i];
      packed.push_back(make_packed(format, weights[i], options));
      entries.emplace_back("layer." + std::to_string(i), packed.back().get());
    }
    save_model_weights(artifact_path, entries);
    const std::size_t file_bytes = [&] {
      std::ifstream in(artifact_path, std::ios::binary | std::ios::ate);
      return static_cast<std::size_t>(in.tellg());
    }();

    struct LoadPath {
      const char* label;
      std::vector<NamedWeight> (*load)(const std::string&);
    };
    const LoadPath paths[] = {
        {"stream", &load_model_weights},
        {"mmap", &load_model_weights_mapped},
    };
    double load_ms[2] = {0.0, 0.0};
    std::size_t rss_delta_kb[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
      {
        // Cold(ish) RSS cost: one load, measured while still held.
        const std::size_t before = process_rss_kb();
        const auto held = paths[p].load(artifact_path);
        const std::size_t after = process_rss_kb();
        rss_delta_kb[p] = after > before ? after - before : 0;
      }
      load_ms[p] = 1e3 * time_best_of(
                             [&] {
                               const auto loaded =
                                   paths[p].load(artifact_path);
                               if (loaded.size() != layers) std::abort();
                             },
                             3);

      tilesparse::bench::BenchRecord record;
      record.name = "serialize/" + format + "/" + paths[p].label;
      record.format = format;
      record.k = k;
      record.n = n;
      record.load_ms = load_ms[p];
      record.rss_kb = static_cast<std::int64_t>(rss_delta_kb[p]);
      record.file_bytes = static_cast<std::int64_t>(file_bytes);
      json.add(std::move(record));
    }

    load_table.add_row({format, std::to_string(file_bytes / 1024),
                        format_double(load_ms[0], 2),
                        format_double(load_ms[1], 2),
                        format_double(load_ms[0] / load_ms[1], 1),
                        std::to_string(rss_delta_kb[0]),
                        std::to_string(rss_delta_kb[1])});
  }
  std::remove(artifact_path.c_str());

  load_table.print();
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
