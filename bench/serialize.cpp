// Serialize bench: artifact load time vs re-pack time per PackedWeight
// format — the number that justifies shipping whole packed objects.  A
// serving process that re-packs (and for int8, re-quantises) a weight
// it already packed at training time pays the "pack" column on every
// cold start; loading the artifact pays the "load" column instead.
//
// Usage: serialize [--k=3072] [--n=768] [--layers=4] [--sparsity=75]
// (--sparsity is an integer percent)

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "io/serialize.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace tilesparse;

int main(int argc, char** argv) {
  using tilesparse::bench::size_flag;
  const std::size_t k = size_flag(argc, argv, "k", 3072);
  const std::size_t n = size_flag(argc, argv, "n", 768);
  const std::size_t layers = size_flag(argc, argv, "layers", 4);
  const double sparsity =
      static_cast<double>(size_flag(argc, argv, "sparsity", 75)) / 100.0;

  // One BERT-ish FFN weight per layer, pruned once (training-time cost,
  // not measured here) — the bench compares what happens after.
  Rng rng(17);
  std::vector<MatrixF> weights;
  std::vector<TilePattern> patterns;
  std::vector<MatrixF> scores;
  for (std::size_t i = 0; i < layers; ++i) {
    MatrixF w(k, n);
    fill_normal(w, rng);
    TwPruneOptions options;
    options.target_sparsity = sparsity;
    options.g = 64;
    patterns.push_back(tw_prune_single(w, options));
    scores.push_back(magnitude_scores(w));
    weights.push_back(std::move(w));
  }

  std::printf("serialize bench: %zu layers of %zu x %zu, %.0f%% target TW "
              "sparsity\n\n",
              layers, k, n, 100.0 * sparsity);

  Table table("artifact load vs re-pack (" + std::to_string(layers) +
              " layers, ms)");
  table.set_header({"format", "artifact KiB", "pack ms", "save ms", "load ms",
                    "pack/load"});

  for (const std::string& format : registered_formats()) {
    const auto pack_all = [&] {
      std::vector<std::unique_ptr<PackedWeight>> packed;
      for (std::size_t i = 0; i < layers; ++i) {
        PackOptions options;
        options.pattern = &patterns[i];
        options.scores = &scores[i];
        packed.push_back(make_packed(format, weights[i], options));
      }
      return packed;
    };
    const double pack_s = time_best_of([&] { pack_all(); }, 3);

    std::vector<std::pair<std::string, const PackedWeight*>> entries;
    const auto packed = pack_all();
    for (std::size_t i = 0; i < layers; ++i)
      entries.emplace_back("layer." + std::to_string(i), packed[i].get());

    std::string artifact;
    const double save_s = time_best_of(
        [&] {
          std::ostringstream out;
          write_model_weights(out, entries);
          artifact = out.str();
        },
        3);

    const double load_s = time_best_of(
        [&] {
          std::istringstream in(artifact);
          const auto loaded = read_model_weights(in);
          if (loaded.size() != layers) std::abort();
        },
        3);

    table.add_row({format, std::to_string(artifact.size() / 1024),
                   format_double(pack_s * 1e3, 2),
                   format_double(save_s * 1e3, 2),
                   format_double(load_s * 1e3, 2),
                   format_double(pack_s / load_s, 1)});
  }

  table.print();
  return 0;
}
