// Extension bench: TW + INT8 quantization (the paper's stated future
// work, Sec. VIII).  Measures on the CPU substrate:
//  * numerical error of int8 TW execution vs fp32 and fp16 TW,
//  * measured kernel time (int8 arithmetic is narrower; on real tensor
//    cores it doubles peak throughput on top of the sparsity win),
// and reports the projected energy per inference from the device model.

#include <cstdio>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "gemm/dense_gemm.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main(int argc, char** argv) {
  const std::string json_path = take_json_flag(argc, argv);
  BenchJson sink;
  std::puts("== Extension: TW x INT8 quantization ==\n");
  Rng rng(3);
  const std::size_t m = 256, k = 768, n = 768;
  MatrixF a(m, k);
  fill_normal(a, rng, 0.0f, 0.5f);
  MatrixF w(k, n);
  fill_normal(w, rng, 0.0f, 0.5f);

  Table table("TW GEMM numerics and measured CPU time per sparsity");
  table.set_header({"sparsity", "fp16 max err", "int8 max err",
                    "fp32 time (ms)", "int8 time (ms)"});
  for (double s : {0.0, 0.5, 0.75, 0.9}) {
    const TilePattern p =
        tw_pattern_from_scores(synthetic_scores(k, n, 17), s, 128);
    MatrixF pruned = w;
    apply_pattern(p, pruned);

    // One artifact, three execution modes: the "tw" backend under fp32
    // and fp16 activation numerics, and the "tw-int8" backend.
    PackOptions pack;
    pack.pattern = &p;
    const auto tw = make_packed("tw", pruned, pack);
    const auto tw_int8 = make_packed("tw-int8", pruned, pack);

    ExecContext fp32_ctx, fp16_ctx;
    fp16_ctx.numerics = Numerics::kFp16;

    const MatrixF c_fp32 = tw->matmul(fp32_ctx, a);
    const MatrixF c_fp16 = tw->matmul(fp16_ctx, a);
    const MatrixF c_int8 = tw_int8->matmul(fp32_ctx, a);

    MatrixF c(m, n);
    const double t_fp32 = time_best_of([&] { tw->matmul(fp32_ctx, a, c); });
    const double t_int8 = time_best_of([&] { tw_int8->matmul(fp32_ctx, a, c); });

    const char* fmt[] = {"tw", "tw-int8"};
    const PackedWeight* packed[] = {tw.get(), tw_int8.get()};
    const double times[] = {t_fp32, t_int8};
    for (int v = 0; v < 2; ++v) {
      BenchRecord record;
      record.name = std::string("quant_tw/") + fmt[v];
      record.format = fmt[v];
      record.m = m;
      record.k = k;
      record.n = n;
      record.sparsity = s;
      record.ns_per_iter = times[v] * 1e9;
      record.gflops = 2.0 * packed[v]->macs(m) / times[v] * 1e-9;
      sink.add(std::move(record));
    }

    table.add_row({format_double(s, 2),
                   format_double(max_abs_diff(c_fp32, c_fp16), 4),
                   format_double(max_abs_diff(c_fp32, c_int8), 4),
                   format_double(t_fp32 * 1e3, 3),
                   format_double(t_int8 * 1e3, 3)});
  }
  table.print();

  std::puts("\nProjected V100 energy per BERT inference (device model):");
  const DeviceModel dev = DeviceModel::v100();
  const auto gemms = bert_base_gemms();
  double dense_energy = 0.0, tw_energy = 0.0;
  std::uint64_t seed = 3000;
  for (const auto& gemm : gemms) {
    dense_energy += dense_gemm_latency(dev, gemm.shape, Core::kTensor)
                        .energy_joules(dev, Core::kTensor);
    const TilePattern p = make_tw_pattern(gemm.shape, 0.75, 128, seed++);
    tw_energy += tw_gemm_latency(dev, gemm.shape.m, p)
                     .energy_joules(dev, Core::kTensor);
  }
  std::printf("  dense %.3f mJ | TW-75%% %.3f mJ | saving %.1f%%\n",
              dense_energy * 1e3, tw_energy * 1e3,
              100.0 * (1.0 - tw_energy / dense_energy));
  if (!json_path.empty() && !sink.write(json_path)) return 1;
  return 0;
}
