// Fig. 5 — Per-weight-matrix sparsity when pruning BERT with a *global*
// EW ranking at 75% overall sparsity: the 72 matrices end up with very
// different sparsities (0.5 .. 1.0), the unevenness TW exploits and VW
// cannot.
//
// We reproduce the statistic on the BertMini proxy (trained weights) and
// additionally on synthetic layer-scaled scores at full BERT-base shape.

#include <cstdio>

#include "bench_util.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/analysis.hpp"
#include "prune/importance.hpp"
#include "prune/patterns.hpp"
#include "util/table.hpp"

using namespace tilesparse;

int main() {
  std::puts("== Reproduction of paper Fig. 5 ==");
  std::puts("Global EW pruning at 75%; per-matrix sparsity distribution.\n");

  // --- Proxy model with real trained weights.
  auto task = make_bert_cls_task(/*pretrain_steps=*/200);
  const auto weights = task->prunable();
  std::vector<MatrixF> scores;
  std::vector<const MatrixF*> ptrs;
  for (const Param* p : weights) scores.push_back(magnitude_scores(p->value));
  for (const auto& s : scores) ptrs.push_back(&s);
  const auto masks = ew_mask_global(ptrs, 0.75);
  const auto sparsities = mask_sparsities(masks);

  Table table("BertMini (trained) weight-matrix sparsity under global EW@75%");
  table.set_header({"matrix", "sparsity"});
  double lo = 1.0, hi = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < sparsities.size(); ++i) {
    table.add_row({"w" + std::to_string(i), format_double(sparsities[i], 3)});
    lo = std::min(lo, sparsities[i]);
    hi = std::max(hi, sparsities[i]);
    sum += sparsities[i];
  }
  table.print();
  std::printf("matrices: %zu | mean %.3f | min %.3f | max %.3f | spread %.3f\n",
              sparsities.size(), sum / sparsities.size(), lo, hi, hi - lo);
  std::printf("paper shape check: mean~0.75 and wide spread (>0.2): %s\n\n",
              (std::abs(sum / sparsities.size() - 0.75) < 0.05 && hi - lo > 0.2)
                  ? "yes"
                  : "NO");

  // --- Full BERT-base shapes with layer-scaled synthetic magnitudes
  // (72 matrices, the paper's exact x-axis extent).
  const auto gemms = bert_base_gemms();
  std::vector<MatrixF> big_scores;
  std::vector<const MatrixF*> big_ptrs;
  Rng rng(42);
  std::size_t li = 0;
  for (const auto& gemm : gemms) {
    MatrixF s(gemm.shape.k, gemm.shape.n);
    const float layer_scale = 0.4f + 0.1f * static_cast<float>(li++ % 12);
    for (float& v : s.flat()) v = std::fabs(rng.normal(0.0f, layer_scale));
    big_scores.push_back(std::move(s));
  }
  for (const auto& s : big_scores) big_ptrs.push_back(&s);
  const auto big_masks = ew_mask_global(big_ptrs, 0.75);
  const auto big_sparsities = mask_sparsities(big_masks);
  double blo = 1.0, bhi = 0.0;
  for (double s : big_sparsities) {
    blo = std::min(blo, s);
    bhi = std::max(bhi, s);
  }
  std::printf(
      "BERT-base shapes (synthetic layer-scaled scores): 72 matrices, "
      "min %.3f max %.3f\n",
      blo, bhi);
  return 0;
}
