// Fig. 13 — What the four patterns look like at 75% sparsity on a
// layer-0 attention weight matrix: EW is salt-and-pepper with visible
// dense/sparse regions, VW is forced uniform, BW and TW adapt to the
// uneven density (TW with row/column structure).
//
// Rendered as ASCII density maps (darker = more weights kept) plus a
// quantitative unevenness statistic: the stddev of region densities.

#include <cstdio>

#include "bench_util.hpp"
#include "prune/analysis.hpp"
#include "prune/patterns.hpp"
#include "prune/tw_pruner.hpp"
#include "util/stats.hpp"

using namespace tilesparse;
using tilesparse::bench::synthetic_scores;

namespace {

double density_stddev(const MatrixU8& mask) {
  const MatrixF map = density_map(mask, 16);
  std::vector<float> cells(map.flat().begin(), map.flat().end());
  return stddev(cells);
}

void show(const char* name, const MatrixU8& mask) {
  std::printf("--- %s (kept density map, 16x16 regions) ---\n", name);
  std::fputs(render_density_map(density_map(mask, 16)).c_str(), stdout);
  std::size_t kept = 0;
  for (auto v : mask.flat()) kept += v != 0;
  std::printf("sparsity %.3f | region-density stddev %.3f\n\n",
              1.0 - static_cast<double>(kept) / mask.size(),
              density_stddev(mask));
}

}  // namespace

int main() {
  std::puts("== Reproduction of paper Fig. 13 ==");
  std::puts("Patterns at 75% sparsity on a 256x256 attention-like matrix.\n");

  const MatrixF scores = synthetic_scores(256, 256, 13);

  const MatrixU8 ew = ew_mask(scores, 0.75);
  const MatrixU8 vw = vw_mask(scores, 0.75, 16);
  const MatrixU8 bw = bw_mask(scores, 0.75, 32);
  const TilePattern tw = tw_pattern_from_scores(scores, 0.75, 64);
  const MatrixU8 twm = pattern_to_mask(tw);

  show("EW", ew);
  show("VW", vw);
  show("BW (32x32)", bw);
  show("TW (G=64)", twm);

  std::printf(
      "paper shape check — VW is uniform (lowest stddev), EW/BW/TW adapt:\n"
      "  stddev VW %.3f < EW %.3f <= {BW %.3f, TW %.3f}: %s\n",
      density_stddev(vw), density_stddev(ew), density_stddev(bw),
      density_stddev(twm),
      (density_stddev(vw) < density_stddev(ew) &&
       density_stddev(vw) < density_stddev(bw) &&
       density_stddev(vw) < density_stddev(twm))
          ? "yes"
          : "NO");
  return 0;
}
