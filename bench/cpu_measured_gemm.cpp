// Measured (not modelled) kernels on the CPU substrate under
// google-benchmark: dense GEMM, TW masked GEMM at several sparsities
// (gather vs packed variants — the coalescing ablation), CSR SpMM and
// BSR GEMM.  Sanity anchor for the analytical model: TW time must fall
// with sparsity because work is actually skipped.
//
// Shapes run at BERT-mini Linear (128x256x256) and BERT-base-ish
// (256x768x768).  Pass --json=<path> (conventionally BENCH_gemm.json)
// to also dump {name, format, shape, GFLOP/s, ns/iter} records — the
// perf trajectory future PRs diff against.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/tile_exec.hpp"
#include "exec/backend_registry.hpp"
#include "gemm/dense_gemm.hpp"
#include "gemm/masked_gemm.hpp"
#include "prune/tw_pruner.hpp"
#include "sparse/bsr.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace tilesparse;

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

TilePattern pattern_at(std::size_t k, std::size_t n, double sparsity) {
  Rng rng(3);
  MatrixF scores(k, n);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  return tw_pattern_from_scores(scores, sparsity, 128);
}

void set_shape_counters(benchmark::State& state, std::size_t m, std::size_t k,
                        std::size_t n, double flops_per_iter) {
  state.counters["m"] = static_cast<double>(m);
  state.counters["k"] = static_cast<double>(k);
  state.counters["n"] = static_cast<double>(n);
  state.counters["flops_per_iter"] = flops_per_iter;
}

void BM_DenseGemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const MatrixF a = random_matrix(m, k, 1);
  const MatrixF w = random_matrix(k, n, 2);
  MatrixF c(m, n);
  for (auto _ : state) {
    dense_gemm(a, w, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations());
  set_shape_counters(state, m, k, n, gemm_flops(m, n, k));
}
BENCHMARK(BM_DenseGemm)->Args({128, 256, 256})->Args({256, 768, 768});

void BM_TwMaskedGemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const double sparsity = static_cast<double>(state.range(3)) / 100.0;
  const MatrixF a = random_matrix(m, k, 1);
  MatrixF w = random_matrix(k, n, 2);
  const TilePattern pattern = pattern_at(k, n, sparsity);
  apply_pattern(pattern, w);
  PackOptions pack;
  pack.pattern = &pattern;
  const auto tw = make_packed("tw", w, pack);
  const ExecContext ctx;
  MatrixF c(m, n);
  for (auto _ : state) {
    tw->matmul(ctx, a, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = sparsity;
  set_shape_counters(state, m, k, n, 2.0 * tw->macs(m));
}
BENCHMARK(BM_TwMaskedGemm)
    ->Args({256, 768, 768, 0})
    ->Args({256, 768, 768, 25})
    ->Args({256, 768, 768, 50})
    ->Args({256, 768, 768, 75})
    ->Args({256, 768, 768, 90})
    ->Args({256, 768, 768, 99});

void BM_TwPrepackedPanels(benchmark::State& state) {
  // Replaces the old tw-gather row (the uncoalesced fallback that ran
  // at ~13 GFLOP/s): tile B panels are now pre-packed once at pack
  // time, so the steady-state matmul pays zero per-call weight packing.
  // Deliberately below the PackedWeight API to time exactly the kernel
  // the "tw" backend executes.
  constexpr std::size_t m = 256, k = 768, n = 768;
  const MatrixF a = random_matrix(m, k, 1);
  const MatrixF w = random_matrix(k, n, 2);
  const auto tiles = compact_tiles(w, pattern_at(k, n, 0.75));
  const auto panels = prepack_all_tile_panels(tiles);
  MatrixF c(m, n);
  double macs = 0.0;
  for (const auto& tile : tiles)
    macs += static_cast<double>(m) * static_cast<double>(tile.kept_rows.size()) *
            static_cast<double>(tile.out_cols.size());
  for (auto _ : state) {
    c.fill(0.0f);
    masked_gemm_all(a, tiles, c, /*fp16_inputs=*/false, &panels);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = 0.75;
  set_shape_counters(state, m, k, n, 2.0 * macs);
}
BENCHMARK(BM_TwPrepackedPanels);

void BM_CsrSpmm(benchmark::State& state) {
  constexpr std::size_t m = 256, k = 768, n = 768;
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(4);
  const MatrixF a = random_matrix(m, k, 1);
  MatrixF w = random_matrix(k, n, 2);
  for (float& v : w.flat())
    if (rng.uniform() < sparsity) v = 0.0f;
  const auto csr = make_packed("csr", w);
  const ExecContext ctx;
  MatrixF c(m, n);
  for (auto _ : state) {
    csr->matmul(ctx, a, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = sparsity;
  set_shape_counters(state, m, k, n, 2.0 * csr->macs(m));
}
BENCHMARK(BM_CsrSpmm)->Arg(75)->Arg(95);

void BM_BsrGemm(benchmark::State& state) {
  constexpr std::size_t m = 256, k = 768, n = 768;
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(5);
  const MatrixF a = random_matrix(m, k, 1);
  MatrixF w = random_matrix(k, n, 2);
  // Block-sparse weights: zero whole 32x32 blocks.
  std::size_t live_blocks = 0;
  for (std::size_t br = 0; br < k / 32; ++br)
    for (std::size_t bc = 0; bc < n / 32; ++bc) {
      if (rng.uniform() < sparsity) {
        for (std::size_t r = 0; r < 32; ++r)
          for (std::size_t c = 0; c < 32; ++c) w(br * 32 + r, bc * 32 + c) = 0.0f;
      } else {
        ++live_blocks;
      }
    }
  const Bsr bsr = bsr_from_dense(w, 32);
  MatrixF c(m, n);
  for (auto _ : state) {
    c.fill(0.0f);
    bsr_gemm_accumulate(a, bsr, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = sparsity;
  set_shape_counters(state, m, k, n,
                     2.0 * static_cast<double>(m) *
                         static_cast<double>(live_blocks) * 32.0 * 32.0);
}
BENCHMARK(BM_BsrGemm)->Arg(50)->Arg(75);

/// Console output as usual, plus one BenchRecord per run for --json.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(tilesparse::bench::BenchJson* sink)
      : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      // Aggregate rows (_mean/_median/_stddev/_cv under --benchmark_
      // repetitions) are statistics over other rows, not measurements;
      // recording them would corrupt the cross-PR trajectory.
      if (run.run_type == Run::RT_Aggregate) continue;
      if (run.iterations <= 0) continue;
      tilesparse::bench::BenchRecord record;
      record.name = run.benchmark_name();
      record.format = format_of(record.name);
      const double seconds_per_iter =
          run.real_accumulated_time / static_cast<double>(run.iterations);
      record.ns_per_iter = seconds_per_iter * 1e9;
      record.m = counter_of(run, "m");
      record.k = counter_of(run, "k");
      record.n = counter_of(run, "n");
      const auto flops = run.counters.find("flops_per_iter");
      if (flops != run.counters.end() && seconds_per_iter > 0.0)
        record.gflops = flops->second.value / seconds_per_iter * 1e-9;
      const auto sparsity = run.counters.find("sparsity");
      if (sparsity != run.counters.end())
        record.sparsity = sparsity->second.value;
      sink_->add(std::move(record));
    }
  }

 private:
  static std::size_t counter_of(const Run& run, const char* key) {
    const auto it = run.counters.find(key);
    return it == run.counters.end()
               ? 0
               : static_cast<std::size_t>(it->second.value);
  }

  static std::string format_of(const std::string& name) {
    if (name.find("BM_DenseGemm") == 0) return "dense";
    if (name.find("BM_TwMaskedGemm") == 0) return "tw";
    if (name.find("BM_TwPrepackedPanels") == 0) return "tw-prepacked";
    if (name.find("BM_CsrSpmm") == 0) return "csr";
    if (name.find("BM_BsrGemm") == 0) return "bsr";
    return "?";
  }

  tilesparse::bench::BenchJson* sink_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = tilesparse::bench::take_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  tilesparse::bench::BenchJson sink;
  JsonCaptureReporter reporter(&sink);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !sink.write(json_path)) return 1;
  return 0;
}
