// Measured (not modelled) kernels on the CPU substrate under
// google-benchmark: dense GEMM, TW masked GEMM at several sparsities
// (gather vs packed variants — the coalescing ablation), CSR SpMM and
// BSR GEMM on the same shape.  Sanity anchor for the analytical model:
// TW time must fall with sparsity because work is actually skipped.

#include <benchmark/benchmark.h>

#include "core/tile_exec.hpp"
#include "exec/backend_registry.hpp"
#include "gemm/dense_gemm.hpp"
#include "gemm/masked_gemm.hpp"
#include "prune/tw_pruner.hpp"
#include "sparse/bsr.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace tilesparse;

constexpr std::size_t kM = 256, kK = 768, kN = 768;

MatrixF make_a() {
  Rng rng(1);
  MatrixF a(kM, kK);
  fill_normal(a, rng);
  return a;
}

MatrixF make_w() {
  Rng rng(2);
  MatrixF w(kK, kN);
  fill_normal(w, rng);
  return w;
}

TilePattern pattern_at(double sparsity) {
  Rng rng(3);
  MatrixF scores(kK, kN);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  return tw_pattern_from_scores(scores, sparsity, 128);
}

void BM_DenseGemm(benchmark::State& state) {
  const MatrixF a = make_a();
  const MatrixF w = make_w();
  MatrixF c(kM, kN);
  for (auto _ : state) {
    dense_gemm(a, w, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseGemm);

void BM_TwMaskedGemm(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  const MatrixF a = make_a();
  MatrixF w = make_w();
  const TilePattern pattern = pattern_at(sparsity);
  apply_pattern(pattern, w);
  PackOptions pack;
  pack.pattern = &pattern;
  const auto tw = make_packed("tw", w, pack);
  const ExecContext ctx;
  MatrixF c(kM, kN);
  for (auto _ : state) {
    tw->matmul(ctx, a, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = sparsity;
}
BENCHMARK(BM_TwMaskedGemm)->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(90)->Arg(99);

void BM_TwGatherVariant(benchmark::State& state) {
  // The uncoalesced analogue: indexed loads instead of packed panels.
  // Deliberately below the PackedWeight API — this row exists to
  // measure the raw kernel variant the "tw" backend does NOT use
  // (the coalescing ablation of paper Fig. 7).
  const MatrixF a = make_a();
  const MatrixF w = make_w();
  const auto tiles = compact_tiles(w, pattern_at(0.75));
  MatrixF c(kM, kN);
  for (auto _ : state) {
    c.fill(0.0f);
    for (const auto& tile : tiles) masked_gemm_gather(a, tile, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_TwGatherVariant);

void BM_CsrSpmm(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(4);
  const MatrixF a = make_a();
  MatrixF w = make_w();
  for (float& v : w.flat())
    if (rng.uniform() < sparsity) v = 0.0f;
  const auto csr = make_packed("csr", w);
  const ExecContext ctx;
  MatrixF c(kM, kN);
  for (auto _ : state) {
    csr->matmul(ctx, a, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = sparsity;
}
BENCHMARK(BM_CsrSpmm)->Arg(75)->Arg(95);

void BM_BsrGemm(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(5);
  const MatrixF a = make_a();
  MatrixF w = make_w();
  // Block-sparse weights: zero whole 32x32 blocks.
  for (std::size_t br = 0; br < kK / 32; ++br)
    for (std::size_t bc = 0; bc < kN / 32; ++bc)
      if (rng.uniform() < sparsity)
        for (std::size_t r = 0; r < 32; ++r)
          for (std::size_t c = 0; c < 32; ++c) w(br * 32 + r, bc * 32 + c) = 0.0f;
  const Bsr bsr = bsr_from_dense(w, 32);
  MatrixF c(kM, kN);
  for (auto _ : state) {
    c.fill(0.0f);
    bsr_gemm_accumulate(a, bsr, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sparsity"] = sparsity;
}
BENCHMARK(BM_BsrGemm)->Arg(50)->Arg(75);

}  // namespace

BENCHMARK_MAIN();
