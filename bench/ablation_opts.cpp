// Ablation bench for the design choices DESIGN.md calls out:
//  1. transpose (memory coalescing) on/off        — kernel level
//  2. equal-width batching on/off                 — kernel level
//  3. stream concurrency on/off                   — kernel level
//  4. global vs per-matrix tile ranking           — algorithm level
//  5. column-before-row split (column_split)      — algorithm level

#include <cstdio>

#include "bench_util.hpp"
#include "nn/prune_experiment.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main() {
  std::puts("== Ablation: TW execution and pruning design choices ==\n");
  const DeviceModel dev = DeviceModel::v100();
  const auto gemms = bert_base_gemms();
  const double dense = dense_model_latency(dev, gemms, Core::kTensor);

  // ---- kernel-level toggles at 75% sparsity.
  Table kernel_table("Kernel optimizations (BERT @75%, tensor-core model)");
  kernel_table.set_header({"config", "norm latency", "speedup vs dense"});
  auto kernel_row = [&](const char* name, TwExecOptions options) {
    const double t = tw_model_latency(dev, gemms, 0.75, 128, options);
    kernel_table.add_row({name, format_double(t / dense, 3),
                          format_double(dense / t, 2) + "x"});
  };
  TwExecOptions all;
  kernel_row("all optimizations", all);
  TwExecOptions no_transpose = all;
  no_transpose.transpose_opt = false;
  kernel_row("w/o transpose (uncoalesced)", no_transpose);
  TwExecOptions no_batch = all;
  no_batch.batching = false;
  kernel_row("w/o batching (per-tile launch)", no_batch);
  TwExecOptions no_streams = all;
  no_streams.streams = false;
  kernel_row("w/o streams (serial groups)", no_streams);
  TwExecOptions none;
  none.transpose_opt = none.batching = none.streams = false;
  kernel_row("naive (none)", none);
  kernel_table.print();
  std::puts("");

  // ---- algorithm-level: global vs per-matrix ranking (accuracy).
  auto task = make_bert_cls_task(250);
  const auto baseline = snapshot_params(task->prunable());

  Table algo_table("Pruning algorithm ablations (BertMini proxy, @70%)");
  algo_table.set_header({"config", "accuracy", "achieved sparsity"});
  auto algo_row = [&](const char* name, PatternSpec spec) {
    restore_params(task->prunable(), baseline);
    spec.kind = PatternKind::kTw;
    spec.sparsity = 0.70;
    spec.g = 16;
    const auto r = prune_and_evaluate(*task, spec, 60);
    algo_table.add_row({name, format_double(r.metric, 3),
                        format_double(r.achieved_sparsity, 3)});
  };
  PatternSpec base;
  algo_row("global rank + apriori (default)", base);
  PatternSpec local = base;
  local.global_rank = false;
  algo_row("per-matrix rank", local);
  PatternSpec no_apriori = base;
  no_apriori.apriori = false;
  algo_row("w/o apriori tuning", no_apriori);
  PatternSpec single_stage = base;
  single_stage.stages = 1;
  algo_row("single-stage pruning", single_stage);
  algo_table.print();
  return 0;
}
