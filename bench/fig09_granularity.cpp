// Fig. 9 — TW design space on BERT:
//  (a) accuracy versus sparsity for TW G in {8, 32, 64, 128} and BW
//      {8, 32, 64} against EW (run on the BertMini proxy; granularities
//      scaled to the proxy's 64-wide matrices);
//  (b) latency versus sparsity for TW G in {64, 128} and BW blocks on
//      the tensor-core model at full BERT-base shapes.
//
// Paper shapes: accuracy EW >= TW(small G) >= TW(large G) >> BW(large);
// latency TW-128 crosses dense near 40% sparsity, ~2.26x at 75%.

#include <cstdio>

#include "bench_util.hpp"
#include "nn/prune_experiment.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main() {
  std::puts("== Reproduction of paper Fig. 9 ==\n");

  // ---------------- (a) accuracy vs sparsity on the proxy -------------
  auto task = make_bert_cls_task(/*pretrain_steps=*/250);
  const auto baseline = snapshot_params(task->prunable());
  const double dense_acc = task->evaluate();
  std::printf("dense proxy accuracy: %.3f\n\n", dense_acc);

  Table acc_table("Fig. 9a: accuracy vs sparsity (BertMini proxy)");
  acc_table.set_header(
      {"sparsity", "EW", "TW G=8", "TW G=16", "TW G=32", "BW 8x8", "BW 16x16"});
  const int finetune = 60;
  for (double sparsity : {0.3, 0.5, 0.7, 0.85}) {
    std::vector<std::string> row{format_double(sparsity, 2)};
    auto eval = [&](PatternSpec spec) {
      restore_params(task->prunable(), baseline);
      spec.sparsity = sparsity;
      const auto r = prune_and_evaluate(*task, spec, finetune);
      return format_double(r.metric, 3);
    };
    PatternSpec ew;
    ew.kind = PatternKind::kEw;
    row.push_back(eval(ew));
    for (std::size_t g : {8u, 16u, 32u}) {
      PatternSpec tw;
      tw.kind = PatternKind::kTw;
      tw.g = g;
      row.push_back(eval(tw));
    }
    for (std::size_t b : {8u, 16u}) {
      PatternSpec bw;
      bw.kind = PatternKind::kBw;
      bw.block = b;
      row.push_back(eval(bw));
    }
    acc_table.add_row(std::move(row));
  }
  acc_table.print();
  std::puts("");

  // ---------------- (b) latency vs sparsity at BERT-base shape --------
  const DeviceModel dev = DeviceModel::v100();
  const auto gemms = bert_base_gemms();
  const double dense = dense_model_latency(dev, gemms, Core::kTensor);

  Table lat_table(
      "Fig. 9b: normalized latency vs sparsity (tensor-core model)");
  lat_table.set_header(
      {"sparsity", "TW G=64", "TW G=128", "BW 32x32", "BW 64x64"});
  for (double s : {0.0, 0.2, 0.4, 0.6, 0.75, 0.9}) {
    lat_table.add_row(
        {format_double(s, 2),
         format_double(tw_model_latency(dev, gemms, s, 64) / dense, 3),
         format_double(tw_model_latency(dev, gemms, s, 128) / dense, 3),
         format_double(bsr_model_latency(dev, gemms, 1.0 - s, 32) / dense, 3),
         format_double(bsr_model_latency(dev, gemms, 1.0 - s, 64) / dense, 3)});
  }
  lat_table.print();

  const double tw75 = tw_model_latency(dev, gemms, 0.75, 128);
  std::printf("\nTW-128 speedup at 75%%: %.2fx (paper: 2.26x)\n", dense / tw75);
  const double tw40 = tw_model_latency(dev, gemms, 0.40, 128);
  std::printf("TW-128 at 40%% vs dense: %.2fx (paper: ~break-even)\n",
              dense / tw40);
  return 0;
}
