#pragma once
// Shared helpers for the per-figure benchmark binaries.

#include <cstdio>
#include <vector>

#include "core/tile_pattern.hpp"
#include "prune/tw_pruner.hpp"
#include "sim/device_model.hpp"
#include "sim/gemm_model.hpp"
#include "sim/sparse_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace tilesparse::bench {

/// Synthetic importance scores shaped like trained-network statistics:
/// i.i.d. magnitudes with a fraction of globally weak columns (weak
/// output neurons) and weak rows (dead input features) — the structure
/// TW's row/column pruning exploits.
inline MatrixF synthetic_scores(std::size_t k, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  MatrixF scores(k, n);
  for (float& v : scores.flat()) v = std::fabs(rng.normal());
  for (std::size_t c = 0; c < n; ++c) {
    if (rng.uniform() < 0.15f) {
      const float scale = rng.uniform(0.02f, 0.3f);
      for (std::size_t r = 0; r < k; ++r) scores(r, c) *= scale;
    }
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (rng.uniform() < 0.10f) {
      const float scale = rng.uniform(0.02f, 0.3f);
      for (std::size_t c = 0; c < n; ++c) scores(r, c) *= scale;
    }
  }
  return scores;
}

/// TW pattern for a weight-GEMM shape at the given sparsity.
inline TilePattern make_tw_pattern(const GemmShape& shape, double sparsity,
                                   std::size_t g, std::uint64_t seed) {
  return tw_pattern_from_scores(synthetic_scores(shape.k, shape.n, seed),
                                sparsity, g);
}

/// Sum of dense-GEMM model latency over a whole network's weight GEMMs.
inline double dense_model_latency(const DeviceModel& dev,
                                  const std::vector<LayerGemm>& gemms,
                                  Core core) {
  double total = 0.0;
  for (const auto& gemm : gemms)
    total += dense_gemm_latency(dev, gemm.shape, core).seconds() *
             static_cast<double>(gemm.repeat);
  return total;
}

/// Sum of TW model latency over a network at a uniform sparsity level.
inline double tw_model_latency(const DeviceModel& dev,
                               const std::vector<LayerGemm>& gemms,
                               double sparsity, std::size_t g,
                               const TwExecOptions& options = {}) {
  double total = 0.0;
  std::uint64_t seed = 100;
  for (const auto& gemm : gemms) {
    const TilePattern p = make_tw_pattern(gemm.shape, sparsity, g, seed++);
    total += tw_gemm_latency(dev, gemm.shape.m, p, options).seconds() *
             static_cast<double>(gemm.repeat);
  }
  return total;
}

/// CSR (cuSparse) model latency over a network.
inline double csr_model_latency(const DeviceModel& dev,
                                const std::vector<LayerGemm>& gemms,
                                double density, bool vector_wise) {
  double total = 0.0;
  for (const auto& gemm : gemms)
    total += csr_spmm_latency(dev, gemm.shape, density, vector_wise).seconds() *
             static_cast<double>(gemm.repeat);
  return total;
}

/// BSR (BlockSparse) model latency over a network.
inline double bsr_model_latency(const DeviceModel& dev,
                                const std::vector<LayerGemm>& gemms,
                                double block_density, std::size_t block) {
  double total = 0.0;
  for (const auto& gemm : gemms)
    total += bsr_gemm_latency(dev, gemm.shape, block_density, block).seconds() *
             static_cast<double>(gemm.repeat);
  return total;
}

}  // namespace tilesparse::bench
