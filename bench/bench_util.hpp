#pragma once
// Shared helpers for the per-figure benchmark binaries.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/tile_pattern.hpp"
#include "prune/tw_pruner.hpp"
#include "sim/device_model.hpp"
#include "sim/gemm_model.hpp"
#include "sim/sparse_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace tilesparse::bench {

// ------------------------------------------------------- JSON reporter
//
// Measured benches accept `--json=<path>` and append one record per
// measurement, so every PR leaves a machine-readable perf trajectory
// (BENCH_gemm.json) future PRs can diff against.

struct BenchRecord {
  std::string name;    ///< benchmark row, e.g. "dense_gemm/128x256x256"
  std::string format;  ///< weight format exercised ("dense", "tw", ...)
  std::size_t m = 0, k = 0, n = 0;
  double gflops = 0.0;       ///< 2 * effective MACs / second
  double ns_per_iter = 0.0;  ///< wall time per iteration
  double sparsity = -1.0;    ///< fraction pruned; < 0 when not applicable
  // Serving-bench fields (bench/serving): emitted only when set.
  double requests_per_sec = -1.0;  ///< end-to-end model forwards / second
  std::size_t streams = 0;         ///< scheduler streams (0 = not a serving row)
  double metric = -1.0;            ///< task metric (fmt_pareto); < 0 when n/a
  double bytes = -1.0;             ///< packed footprint (fmt_pareto)
  double macs = -1.0;              ///< effective MACs (fmt_pareto)
  // Request-latency distribution + shed counts (bench/serving rows
  // measured through the ServingRuntime); emitted only when set.
  double p50_ms = -1.0;
  double p95_ms = -1.0;
  double p99_ms = -1.0;
  std::int64_t timeouts = -1;  ///< requests that missed their deadline
  std::int64_t rejected = -1;  ///< requests shed at admission
  // Artifact-loading fields (bench/serialize); emitted only when set.
  double load_ms = -1.0;          ///< artifact -> ready backends, wall ms
  std::int64_t rss_kb = -1;       ///< process VmRSS delta across the load
  std::int64_t file_bytes = -1;   ///< artifact size on disk
};

class BenchJson {
 public:
  void add(BenchRecord record) { records_.push_back(std::move(record)); }
  bool empty() const noexcept { return records_.empty(); }

  /// Writes the accumulated records as a JSON array.  Returns false
  /// (after printing a diagnostic) when the file cannot be opened.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      out << "  {\"name\": \"" << r.name << "\", \"format\": \"" << r.format
          << "\", \"m\": " << r.m << ", \"k\": " << r.k << ", \"n\": " << r.n
          << ", \"gflops\": " << r.gflops
          << ", \"ns_per_iter\": " << r.ns_per_iter;
      if (r.sparsity >= 0.0) out << ", \"sparsity\": " << r.sparsity;
      if (r.requests_per_sec >= 0.0)
        out << ", \"requests_per_sec\": " << r.requests_per_sec;
      if (r.streams > 0) out << ", \"streams\": " << r.streams;
      if (r.metric >= 0.0) out << ", \"metric\": " << r.metric;
      if (r.bytes >= 0.0) out << ", \"bytes\": " << r.bytes;
      if (r.macs >= 0.0) out << ", \"macs\": " << r.macs;
      if (r.p50_ms >= 0.0) out << ", \"p50_ms\": " << r.p50_ms;
      if (r.p95_ms >= 0.0) out << ", \"p95_ms\": " << r.p95_ms;
      if (r.p99_ms >= 0.0) out << ", \"p99_ms\": " << r.p99_ms;
      if (r.timeouts >= 0) out << ", \"timeouts\": " << r.timeouts;
      if (r.rejected >= 0) out << ", \"rejected\": " << r.rejected;
      if (r.load_ms >= 0.0) out << ", \"load_ms\": " << r.load_ms;
      if (r.rss_kb >= 0) out << ", \"rss_kb\": " << r.rss_kb;
      if (r.file_bytes >= 0) out << ", \"file_bytes\": " << r.file_bytes;
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::printf("wrote %zu records to %s\n", records_.size(), path.c_str());
    return true;
  }

 private:
  std::vector<BenchRecord> records_;
};

// ------------------------------------------------------- CLI flag helpers
//
// One `--name=value` scanner for all bench binaries (each used to roll
// its own copy).  Unknown flags are left untouched so argv stays
// parseable by other handlers (e.g. google-benchmark's).

/// The raw value of `--name=...`, or `fallback` when absent.
inline std::string string_flag(int argc, char** argv, const char* name,
                               const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  }
  return fallback;
}

inline double double_flag(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string value = string_flag(argc, argv, name, "");
  return value.empty() ? fallback : std::strtod(value.c_str(), nullptr);
}

inline std::size_t size_flag(int argc, char** argv, const char* name,
                             std::size_t fallback) {
  const std::string value = string_flag(argc, argv, name, "");
  return value.empty() ? fallback
                       : static_cast<std::size_t>(
                             std::strtoull(value.c_str(), nullptr, 10));
}

/// Extracts and removes a `--json=<path>` argument; returns the path or
/// "" when absent.  Removal keeps the remaining argv parseable by other
/// flag handlers (e.g. google-benchmark's).
inline std::string take_json_flag(int& argc, char** argv) {
  std::string path;
  int write_at = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[write_at++] = argv[i];
    }
  }
  argc = write_at;
  return path;
}

/// Synthetic importance scores shaped like trained-network statistics:
/// i.i.d. magnitudes with a fraction of globally weak columns (weak
/// output neurons) and weak rows (dead input features) — the structure
/// TW's row/column pruning exploits.
inline MatrixF synthetic_scores(std::size_t k, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  MatrixF scores(k, n);
  for (float& v : scores.flat()) v = std::fabs(rng.normal());
  for (std::size_t c = 0; c < n; ++c) {
    if (rng.uniform() < 0.15f) {
      const float scale = rng.uniform(0.02f, 0.3f);
      for (std::size_t r = 0; r < k; ++r) scores(r, c) *= scale;
    }
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (rng.uniform() < 0.10f) {
      const float scale = rng.uniform(0.02f, 0.3f);
      for (std::size_t c = 0; c < n; ++c) scores(r, c) *= scale;
    }
  }
  return scores;
}

/// TW pattern for a weight-GEMM shape at the given sparsity.
inline TilePattern make_tw_pattern(const GemmShape& shape, double sparsity,
                                   std::size_t g, std::uint64_t seed) {
  return tw_pattern_from_scores(synthetic_scores(shape.k, shape.n, seed),
                                sparsity, g);
}

/// Sum of dense-GEMM model latency over a whole network's weight GEMMs.
inline double dense_model_latency(const DeviceModel& dev,
                                  const std::vector<LayerGemm>& gemms,
                                  Core core) {
  double total = 0.0;
  for (const auto& gemm : gemms)
    total += dense_gemm_latency(dev, gemm.shape, core).seconds() *
             static_cast<double>(gemm.repeat);
  return total;
}

/// Sum of TW model latency over a network at a uniform sparsity level.
inline double tw_model_latency(const DeviceModel& dev,
                               const std::vector<LayerGemm>& gemms,
                               double sparsity, std::size_t g,
                               const TwExecOptions& options = {}) {
  double total = 0.0;
  std::uint64_t seed = 100;
  for (const auto& gemm : gemms) {
    const TilePattern p = make_tw_pattern(gemm.shape, sparsity, g, seed++);
    total += tw_gemm_latency(dev, gemm.shape.m, p, options).seconds() *
             static_cast<double>(gemm.repeat);
  }
  return total;
}

/// CSR (cuSparse) model latency over a network.
inline double csr_model_latency(const DeviceModel& dev,
                                const std::vector<LayerGemm>& gemms,
                                double density, bool vector_wise) {
  double total = 0.0;
  for (const auto& gemm : gemms)
    total += csr_spmm_latency(dev, gemm.shape, density, vector_wise).seconds() *
             static_cast<double>(gemm.repeat);
  return total;
}

/// BSR (BlockSparse) model latency over a network.
inline double bsr_model_latency(const DeviceModel& dev,
                                const std::vector<LayerGemm>& gemms,
                                double block_density, std::size_t block) {
  double total = 0.0;
  for (const auto& gemm : gemms)
    total += bsr_gemm_latency(dev, gemm.shape, block_density, block).seconds() *
             static_cast<double>(gemm.repeat);
  return total;
}

}  // namespace tilesparse::bench
