// calibrate_planner — measures the format planner's cost-model
// constants on THIS host instead of trusting the shipped guesses.
//
// The planner charges each format `macs * penalty + macs_per_byte *
// bytes`.  Here we time the real kernels behind each PackedWeight
// format at a reference shape, derive the penalties as throughput
// ratios against dense fp32, and write the result as a JSON artifact
// (default planner_calibration.json) that io/serialize's
// load_planner_calibration() installs process-wide.
//
// Usage: calibrate_planner [--out=<path>] [--m=<rows>] [--kn=<dim>]

#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "exec/planner.hpp"
#include "io/serialize.hpp"
#include "sparse/bsr.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

namespace {

/// Effective MACs/s of one packed format: macs(m) / best-of wall time.
double measured_rate(const PackedWeight& packed, const MatrixF& a,
                     MatrixF& c) {
  const ExecContext ctx;
  const double t = time_best_of([&] { packed.matmul(ctx, a, c); }, 7);
  return packed.macs(a.rows()) / t;
}

std::string flag_value(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return argv[i] + len + 1;
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      flag_value(argc, argv, "--out", "planner_calibration.json");
  std::size_t m = 0, kn = 0;
  try {
    m = std::stoul(flag_value(argc, argv, "--m", "64"));  // planner default
    kn = std::stoul(flag_value(argc, argv, "--kn", "512"));
  } catch (const std::exception&) {
    m = 0;
  }
  if (m == 0 || kn == 0) {
    std::fprintf(stderr,
                 "usage: calibrate_planner [--out=<path>] [--m=<rows>] "
                 "[--kn=<dim>]  (--m/--kn take positive integers)\n");
    return 1;
  }

  std::printf("== Planner calibration (m=%zu, k=n=%zu) ==\n\n", m, kn);
  Rng rng(11);
  MatrixF a(m, kn);
  fill_normal(a, rng);
  MatrixF w(kn, kn);
  fill_normal(w, rng);
  MatrixF c(m, kn);

  // Dense fp32: the reference rate everything else is normalised to.
  const auto dense = make_packed("dense", w);
  const double dense_rate = measured_rate(*dense, a, c);

  // TW at moderate sparsity (the format's design point).
  const TilePattern pattern =
      tw_pattern_from_scores(synthetic_scores(kn, kn, 17), 0.5, 64);
  MatrixF pruned = w;
  apply_pattern(pattern, pruned);
  PackOptions pack;
  pack.pattern = &pattern;
  const auto tw = make_packed("tw", pruned, pack);
  const double tw_rate = measured_rate(*tw, a, c);

  // int8 TW on the same pattern.
  const auto tw_int8 = make_packed("tw-int8", pruned, pack);
  const double int8_rate = measured_rate(*tw_int8, a, c);

  // CSR at 75% unstructured sparsity (its claimed regime), through the
  // strip-panel SpMM the CsrWeight backend executes.
  MatrixF unstructured = w;
  for (float& v : unstructured.flat())
    if (rng.uniform() < 0.75f) v = 0.0f;
  const auto csr = make_packed("csr", unstructured);
  const double csr_rate = measured_rate(*csr, a, c);

  // BSR at 50% block sparsity (32x32 blocks): not a PackedWeight
  // backend, but the planner prices it for format comparisons.
  MatrixF blocky = w;
  {
    Rng block_rng(29);
    const std::size_t blk = 32;
    for (std::size_t br = 0; br < kn / blk; ++br)
      for (std::size_t bc = 0; bc < kn / blk; ++bc) {
        if (block_rng.uniform() >= 0.5) continue;
        for (std::size_t r = 0; r < blk; ++r)
          for (std::size_t col = 0; col < blk; ++col)
            blocky(br * blk + r, bc * blk + col) = 0.0f;
      }
  }
  const Bsr bsr = bsr_from_dense(blocky, 32);
  const double bsr_macs = static_cast<double>(m) *
                          static_cast<double>(bsr.stored_blocks()) * 32.0 *
                          32.0;
  const double bsr_time = time_best_of(
      [&] {
        c.fill(0.0f);
        bsr_gemm_accumulate(a, bsr, c);
      },
      7);
  const double bsr_rate = bsr_macs / bsr_time;

  PlannerCalibration calib;
  calib.csr_mac_penalty = dense_rate / csr_rate;
  calib.tw_mac_penalty = dense_rate / tw_rate;
  calib.bsr_mac_penalty = dense_rate / bsr_rate;
  calib.int8_mac_discount = dense_rate / int8_rate;
  calib.dense_gflops = 2.0 * dense_rate * 1e-9;

  // Tile-shard overhead: time the wide dense matmul whole vs split
  // into 4 column shards run back-to-back (slice dispatch + join cost
  // with zero overlap); the per-shard surcharge prices shard dispatch
  // for the scheduler.
  {
    constexpr std::size_t kShards = 4;
    std::vector<std::unique_ptr<PackedWeight>> shards;
    std::vector<MatrixF> parts;
    for (std::size_t s = 0; s < kShards; ++s) {
      const std::size_t n0 = s * kn / kShards, n1 = (s + 1) * kn / kShards;
      shards.push_back(dense->shard_cols(n0, n1));
      parts.emplace_back(m, n1 - n0);
    }
    const ExecContext shard_ctx;
    const double t_whole =
        time_best_of([&] { dense->matmul(shard_ctx, a, c); }, 7);
    const double t_shards = time_best_of(
        [&] {
          for (std::size_t s = 0; s < kShards; ++s) {
            shards[s]->matmul(shard_ctx, a, parts[s]);
            for (std::size_t r = 0; r < m; ++r)
              std::memcpy(c.data() + r * kn + s * kn / kShards,
                          parts[s].data() + r * parts[s].cols(),
                          parts[s].cols() * sizeof(float));
          }
        },
        7);
    calib.shard_overhead_us =
        std::max(1.0, (t_shards - t_whole) / kShards * 1e6);
  }

  // Weight-traffic term: at m=1 a dense matmul is memory bound, so its
  // cost over and above its MACs prices the packed bytes.
  MatrixF a1(1, kn), c1(1, kn);
  fill_normal(a1, rng);
  const ExecContext ctx;
  const double t1 = time_best_of([&] { dense->matmul(ctx, a1, c1); }, 7);
  const double mac_equiv = t1 * dense_rate - static_cast<double>(kn) *
                                                 static_cast<double>(kn);
  calib.macs_per_byte =
      std::max(0.25, mac_equiv / static_cast<double>(dense->bytes()));

  const std::time_t now = std::time(nullptr);
  char stamp[32] = "?";
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::localtime(&now));
  calib.source = std::string("calibrate_planner m=") + std::to_string(m) +
                 " kn=" + std::to_string(kn) + " " + stamp;

  const PlannerCalibration defaults;
  Table table("Measured planner constants vs shipped defaults");
  table.set_header({"constant", "default", "measured"});
  table.add_row({"csr_mac_penalty", format_double(defaults.csr_mac_penalty, 2),
                 format_double(calib.csr_mac_penalty, 2)});
  table.add_row({"tw_mac_penalty", format_double(defaults.tw_mac_penalty, 2),
                 format_double(calib.tw_mac_penalty, 2)});
  table.add_row({"bsr_mac_penalty", format_double(defaults.bsr_mac_penalty, 2),
                 format_double(calib.bsr_mac_penalty, 2)});
  table.add_row({"shard_overhead_us",
                 format_double(defaults.shard_overhead_us, 2),
                 format_double(calib.shard_overhead_us, 2)});
  table.add_row({"int8_mac_discount",
                 format_double(defaults.int8_mac_discount, 2),
                 format_double(calib.int8_mac_discount, 2)});
  table.add_row({"macs_per_byte", format_double(defaults.macs_per_byte, 2),
                 format_double(calib.macs_per_byte, 2)});
  table.add_row({"dense GFLOP/s", "-", format_double(calib.dense_gflops, 2)});
  table.print();

  // Show what the measurement changes: format ranking for the pruned
  // reference matrix under default vs measured constants.
  PlannerOptions options;
  options.m = m;
  options.allow_int8 = true;
  const auto before = rank_formats(pruned, &pattern, options);
  options.calibration = &calib;
  const auto after = rank_formats(pruned, &pattern, options);
  std::printf("\nranking (default):  ");
  for (const auto& choice : before) std::printf("%s ", choice.format.c_str());
  std::printf("\nranking (measured): ");
  for (const auto& choice : after) std::printf("%s ", choice.format.c_str());
  std::printf("\n\n");

  save_calibration(out_path, calib);
  set_planner_calibration(calib);
  std::printf("wrote %s (load with load_planner_calibration())\n",
              out_path.c_str());
  return 0;
}
