// Serving throughput: requests/sec through the model-level ExecGraph
// vs stream count vs weight format, at an EQUAL total thread budget —
// the measurement behind the stream-assignment claim (paper Fig. 7-4):
// on small serving GEMMs, overlapping independent layers across
// streams (with very wide outputs column-sharded) beats spending the
// same threads inside one GEMM at a time.
//
//   streams=1  -> the single-stream fallback: the graph executed
//                 serially, OpenMP threads *inside* each kernel.
//   streams=S  -> S scheduler streams, budget/S threads per kernel.
//
// Formats are measured at their own operating point: "dense" serves
// the unpruned model; the sparse formats serve a 75%-pruned copy of
// every encoder weight (magnitude pruning for csr, the TW tile
// pattern for tw / tw-int8) — the apples-to-apples serving question
// is "pruned model on format X vs unpruned model on dense", not
// "dense weights forced through a sparse container".  Each row
// reports the *effective* GFLOP/s actually sustained
// (2 * packed encoder MACs per request / wall time) and the measured
// MAC sparsity (1 - packed/dense MACs), both also emitted to --json.
//
// Usage: serving [--json=PATH] [--batch=N] [--budget=T] [--layers=L]
//                [--dim=D] [--ffn=F] [--seq=S] [--secs=X]
//                [--sparsity=P] [--mode=M] [--clients=C] [--tenants=N]
// Defaults measure real BERT-mini shapes (L4/H256/FFN1024, seq 32).
// --secs bounds the measuring time per configuration (tiny CI smoke:
// --secs=0.05 --batch=2 --dim=64 --ffn=128 --layers=2 --seq=8).
//
// --mode selects the section (default "all" runs every one):
//   throughput    the closed-loop format x streams sweep + the
//                 runtime overload section above
//   batch         cross-request batching on vs off at an equal thread
//                 budget: C closed-loop clients submit decode-style
//                 one-row requests into a fat GEMM entry; the batcher
//                 coalesces them into wide-M runs (bit-identical per
//                 row to solo)
//   fairness      one noisy tenant (10 clients) against N-1 light
//                 tenants (2 clients each) through the DRR batcher;
//                 per-tenant req/s + p50/p95/p99 and Jain's fairness
//                 index, batching off vs on
//   dynamic-load  open-loop two-priority mix (interactive w/ deadline,
//                 batch-class without) under a step-function arrival
//                 rate: base -> 3x base -> base; per-phase, per-class
//                 latency tails and shed/expired counts

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "exec/scheduler.hpp"
#include "exec/validate.hpp"
#include "nn/batch_entry.hpp"
#include "nn/bert_mini.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/serving_runtime.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace tilesparse;
using bench::double_flag;
using bench::size_flag;
using bench::string_flag;

struct Measured {
  double requests_per_sec = 0.0;
  double ms_per_request = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Nearest-rank percentile over an unsorted sample (sorts in place).
double percentile_ms(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, rank > 0 ? rank - 1 : 0)];
}

void fill_percentiles(Measured& out, std::vector<double>& latencies_ms) {
  out.p50_ms = percentile_ms(latencies_ms, 0.50);
  out.p95_ms = percentile_ms(latencies_ms, 0.95);
  out.p99_ms = percentile_ms(latencies_ms, 0.99);
}

/// Serves `batch`-sized requests for ~secs and returns the rate plus
/// the per-request latency distribution.
Measured serve_closed_loop(BertMini& model, const TokenTeacherDataset& dataset,
               std::size_t batch, double secs) {
  Rng rng(4242);
  const TokenBatch request = dataset.sample(batch, rng);
  model.forward(request);  // warm-up: graph build, panel packs, pool spin-up
  std::vector<double> latencies_ms;
  Stopwatch sw;
  std::size_t served = 0;
  do {
    Stopwatch one;
    (void)model.forward(request);
    latencies_ms.push_back(one.seconds() * 1e3);
    ++served;
  } while (sw.seconds() < secs);
  const double elapsed = sw.seconds();  // one read: both fields consistent
  Measured out;
  out.ms_per_request = elapsed * 1e3 / static_cast<double>(served);
  out.requests_per_sec = static_cast<double>(served) / elapsed;
  fill_percentiles(out, latencies_ms);
  return out;
}

/// One overload measurement through the ServingRuntime: open-loop
/// arrivals paced at ~2x the closed-loop service rate into a short
/// admission queue, with a deadline of 3x the closed-loop latency.  The
/// runtime must shed (REJECTED) and expire (TIMEOUT) the excess while
/// the served requests keep a bounded latency distribution — the
/// graceful-degradation claim, measured.
struct OverloadMeasured {
  Measured latency;           ///< distribution over OK requests
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;
};

OverloadMeasured serve_overloaded(BertMini& model,
                                  const TokenTeacherDataset& dataset,
                                  std::size_t batch, std::size_t streams,
                                  double closed_loop_ms, double secs) {
  Rng rng(24242);
  const TokenBatch request = dataset.sample(batch, rng);

  serve::ServingOptions options;
  options.workers = 1;  // one worker: the model is not concurrency-safe
  options.streams = streams;
  options.queue_capacity = 4;
  options.max_attempts = 1;
  serve::ServingRuntime runtime(options);

  const auto deadline_budget = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(3.0 * closed_loop_ms));
  const double interval_s = closed_loop_ms * 1e-3 / 2.0;

  std::vector<serve::RequestHandle> handles;
  Stopwatch sw;
  std::size_t submitted = 0;
  while (sw.seconds() < secs) {
    serve::Request req;
    req.deadline = serve::Clock::now() + deadline_budget;
    req.work = [&model, &request](serve::WorkerContext& ctx) {
      model.set_exec_scheduler(&ctx.scheduler);
      MatrixF logits = model.forward(request);
      model.set_exec_scheduler(nullptr);
      return logits;
    };
    handles.push_back(runtime.submit(std::move(req)));
    ++submitted;
    const double next_arrival = interval_s * static_cast<double>(submitted);
    const double now = sw.seconds();
    if (now < next_arrival) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_arrival - now));
    }
  }
  runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);
  const double elapsed = sw.seconds();

  OverloadMeasured out;
  std::vector<double> latencies_ms;
  for (const auto& handle : handles) {
    const serve::Response& response = handle->response();
    switch (response.status) {
      case serve::RequestStatus::kOk: {
        ++out.ok;
        const auto total = response.queue_wait + response.service_time;
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(total).count());
        break;
      }
      case serve::RequestStatus::kTimeout:
        ++out.timeouts;
        break;
      case serve::RequestStatus::kRejected:
        ++out.rejected;
        break;
      default:
        break;
    }
  }
  out.latency.requests_per_sec = static_cast<double>(out.ok) / elapsed;
  fill_percentiles(out.latency, latencies_ms);
  return out;
}

/// Encoder MAC totals for one request, packed vs unpruned dense.
struct PackedStats {
  double macs = 0.0;
  double dense_macs = 0.0;
  double sparsity() const {
    return dense_macs > 0.0 ? 1.0 - macs / dense_macs : 0.0;
  }
};

/// Zeroes the smallest-|w| `sparsity` fraction of `w` in place.
void prune_by_magnitude(MatrixF& w, double sparsity) {
  std::vector<float> mags;
  mags.reserve(w.size());
  for (float v : w.flat()) mags.push_back(std::fabs(v));
  const auto cut =
      static_cast<std::size_t>(sparsity * static_cast<double>(mags.size()));
  if (cut == 0) return;
  std::nth_element(mags.begin(), mags.begin() + (cut - 1), mags.end());
  const float threshold = mags[cut - 1];
  for (float& v : w.flat())
    if (std::fabs(v) <= threshold) v = 0.0f;
}

/// Installs `format` backends on every prunable encoder layer.  The
/// dense master weights are never modified: pruned formats pack a
/// pruned *copy* (magnitude scores for csr; a TW pattern from the
/// same scores for the tile formats), so formats measure back to back
/// on identical masters.  `rows` is the encoder GEMM row count per
/// request (batch * seq) the MAC totals are quoted at.
PackedStats pack_model(BertMini& model, const std::string& format,
                       double sparsity, std::size_t rows,
                       const ExecContext& ctx) {
  PackedStats stats;
  for (Linear* layer : model.prunable_layers()) {
    const MatrixF& w = layer->weight().value;
    stats.dense_macs += static_cast<double>(rows) *
                        static_cast<double>(w.rows()) *
                        static_cast<double>(w.cols());
    std::unique_ptr<PackedWeight> packed;
    if (sparsity <= 0.0) {
      packed = make_packed(format, w);
    } else if (format == "csr" || format == "dense") {
      MatrixF pruned = w;
      prune_by_magnitude(pruned, sparsity);
      packed = make_packed(format, pruned);
    } else {  // tw family: pattern from the same magnitude scores
      MatrixF scores(w.rows(), w.cols());
      for (std::size_t i = 0; i < w.size(); ++i)
        scores.data()[i] = std::fabs(w.data()[i]);
      const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, 64);
      MatrixF pruned = w;
      apply_pattern(pattern, pruned);
      PackOptions pack;
      pack.pattern = &pattern;
      packed = make_packed(format, pruned, pack);
    }
    stats.macs += packed->macs(rows);
    layer->set_packed_weight(std::move(packed));
    layer->set_exec_context(ctx);
  }
  return stats;
}

/// The classic closed-loop format x streams sweep plus the runtime
/// overload section (--mode=throughput).
void run_throughput(BertMini& model, const TokenTeacherDataset& dataset,
                    std::size_t batch, std::size_t budget, double secs,
                    double pruned_sparsity, bench::BenchJson& json) {
  const BertMiniConfig& config = model.config();
  std::vector<std::size_t> stream_counts{1, 2, 4};
  if (budget >= 8) stream_counts.push_back(8);

  // (format, weight sparsity) operating points.  Dense serves the
  // unpruned model — the baseline every pruned format must beat.
  struct Config {
    const char* format;
    double sparsity;
  };
  const std::vector<Config> configs{{"dense", 0.0},
                                    {"csr", pruned_sparsity},
                                    {"tw", pruned_sparsity},
                                    {"tw-int8", pruned_sparsity}};

  std::printf("%-8s %-9s %-8s %12s %12s %8s %8s %8s %10s %10s\n", "format",
              "sparsity", "streams", "req/s", "ms/req", "p50", "p95", "p99",
              "GFLOP/s", "speedup");

  const std::size_t rows = batch * config.seq;
  struct OverloadPoint {
    Config cfg;
    std::size_t streams;
    double closed_loop_ms;
    double sparsity;
  };
  std::vector<OverloadPoint> overload_points;
  for (const Config& cfg : configs) {
    double baseline = 0.0;
    for (const std::size_t streams : stream_counts) {
      ExecContext ctx;
      ctx.threads =
          static_cast<int>(std::max<std::size_t>(1, budget / streams));
      const PackedStats stats =
          pack_model(model, cfg.format, cfg.sparsity, rows, ctx);

      SchedulerOptions options;
      options.streams = streams;
      options.reference_m = rows;
      ExecScheduler scheduler(options);
      model.set_exec_scheduler(&scheduler);
      const Measured measured = serve_closed_loop(model, dataset, batch, secs);
      model.set_exec_scheduler(nullptr);
      model.clear_packed_weights();

      if (streams == 1) baseline = measured.requests_per_sec;
      const double speedup =
          baseline > 0.0 ? measured.requests_per_sec / baseline : 1.0;
      // Effective rate over the packed encoder GEMMs: work the request
      // actually buys (pruned MACs), not the dense-equivalent count.
      const double gflops = 2.0 * stats.macs * measured.requests_per_sec * 1e-9;
      std::printf("%-8s %-9.2f %-8zu %12.1f %12.3f %8.3f %8.3f %8.3f %10.2f "
                  "%9.2fx\n",
                  cfg.format, stats.sparsity(), streams,
                  measured.requests_per_sec, measured.ms_per_request,
                  measured.p50_ms, measured.p95_ms, measured.p99_ms, gflops,
                  speedup);

      bench::BenchRecord record;
      record.name = "serving/bert-mini/b" + std::to_string(batch);
      record.format = cfg.format;
      record.m = rows;
      record.k = config.dim;
      record.n = config.ffn_dim;
      record.ns_per_iter = measured.ms_per_request * 1e6;
      record.requests_per_sec = measured.requests_per_sec;
      record.streams = streams;
      record.gflops = gflops;
      record.sparsity = stats.sparsity();
      record.p50_ms = measured.p50_ms;
      record.p95_ms = measured.p95_ms;
      record.p99_ms = measured.p99_ms;
      json.add(record);

      // Overload-measure each format at its widest stream count.
      if (streams == stream_counts.back()) {
        overload_points.push_back(
            {cfg, streams, measured.ms_per_request, stats.sparsity()});
      }
    }
  }

  // ------------------------------------------- runtime overload section
  // Open-loop arrivals through the fault-tolerant ServingRuntime at
  // ~1.3x the closed-loop service rate: the shed/expire counts and the
  // OK-latency tail quantify graceful degradation under saturation.
  std::printf("\nserving-runtime overload (arrivals at 2x capacity, "
              "deadline 3x ms/req, queue=4)\n");
  std::printf("%-8s %-8s %12s %8s %8s %8s %9s %9s\n", "format", "streams",
              "ok req/s", "p50", "p95", "p99", "timeouts", "rejected");
  for (const OverloadPoint& point : overload_points) {
    ExecContext ctx;
    ctx.threads =
        static_cast<int>(std::max<std::size_t>(1, budget / point.streams));
    pack_model(model, point.cfg.format, point.cfg.sparsity, rows, ctx);
    const OverloadMeasured overload = serve_overloaded(
        model, dataset, batch, point.streams, point.closed_loop_ms, secs);
    model.clear_packed_weights();

    std::printf("%-8s %-8zu %12.1f %8.3f %8.3f %8.3f %9llu %9llu\n",
                point.cfg.format, point.streams,
                overload.latency.requests_per_sec, overload.latency.p50_ms,
                overload.latency.p95_ms, overload.latency.p99_ms,
                static_cast<unsigned long long>(overload.timeouts),
                static_cast<unsigned long long>(overload.rejected));

    bench::BenchRecord record;
    record.name = "serving-runtime/bert-mini/b" + std::to_string(batch);
    record.format = point.cfg.format;
    record.m = rows;
    record.k = config.dim;
    record.n = config.ffn_dim;
    record.ns_per_iter = overload.latency.p50_ms * 1e6;
    record.requests_per_sec = overload.latency.requests_per_sec;
    record.streams = point.streams;
    record.sparsity = point.sparsity;
    record.p50_ms = overload.latency.p50_ms;
    record.p95_ms = overload.latency.p95_ms;
    record.p99_ms = overload.latency.p99_ms;
    record.timeouts = static_cast<std::int64_t>(overload.timeouts);
    record.rejected = static_cast<std::int64_t>(overload.rejected);
    json.add(record);
  }
}

// ------------------------------------------------- batching sections
//
// The sections below measure the cross-request batcher (serve/batch/):
// clients submit BATCHABLE requests — an embedded sequence plus an
// entry name — and the runtime coalesces concurrent sequences into one
// wide-M graph run, each member getting back exactly the rows a solo
// run would have produced.

/// Jain's fairness index over per-tenant allocations:
/// (sum x)^2 / (n * sum x^2); 1.0 = perfectly equal shares.
double jain_index(const std::vector<double>& xs) {
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0 || xs.empty()) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

/// One embedded sequence per client (batchable request payloads).
/// Embedding is independent of weight packing, so the inputs are
/// reusable across formats and modes.
std::vector<MatrixF> embedded_inputs(BertMini& model,
                                     const TokenTeacherDataset& dataset,
                                     std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MatrixF> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    inputs.push_back(model.embed(dataset.sample(1, rng)));
  return inputs;
}

/// One tenant's offered load: `clients` closed-loop submitters.
struct TenantLoad {
  std::string tenant;
  std::size_t clients = 1;
};

/// What one tenant's clients observed over a run.
struct TenantOutcome {
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::vector<double> latencies_ms;  ///< OK requests, submit -> terminal
};

/// Runs closed-loop clients against `runtime` for ~secs: each client
/// submits one batchable request, waits for the terminal response, and
/// immediately resubmits.  Returns per-tenant outcomes and the wall
/// time actually covered (including the final drain).
std::map<std::string, TenantOutcome> run_closed_loop_clients(
    serve::ServingRuntime& runtime, const std::string& entry_name,
    const std::vector<MatrixF>& inputs, const std::vector<TenantLoad>& loads,
    double secs, double& elapsed_out) {
  struct Slot {
    std::string tenant;
    TenantOutcome out;
  };
  std::size_t total_clients = 0;
  for (const TenantLoad& load : loads) total_clients += load.clients;
  std::vector<Slot> slots(total_clients);
  std::vector<std::thread> threads;
  threads.reserve(total_clients);
  Stopwatch sw;
  std::size_t slot_idx = 0;
  for (const TenantLoad& load : loads) {
    for (std::size_t c = 0; c < load.clients; ++c, ++slot_idx) {
      Slot& mine = slots[slot_idx];
      mine.tenant = load.tenant;
      const MatrixF& input = inputs[slot_idx % inputs.size()];
      threads.emplace_back([&runtime, &entry_name, &input, &mine, &sw, secs] {
        while (sw.seconds() < secs) {
          serve::Request req;
          req.entry = entry_name;
          req.input = input;
          req.tenant_id = mine.tenant;
          Stopwatch one;
          const serve::RequestHandle handle = runtime.submit(std::move(req));
          const serve::Response& response = handle->wait();
          switch (response.status) {
            case serve::RequestStatus::kOk:
              ++mine.out.ok;
              mine.out.latencies_ms.push_back(one.seconds() * 1e3);
              break;
            case serve::RequestStatus::kTimeout:
              ++mine.out.timeouts;
              break;
            case serve::RequestStatus::kRejected:
              ++mine.out.rejected;
              break;
            default:
              ++mine.out.failed;
              break;
          }
        }
      });
    }
  }
  for (std::thread& t : threads) t.join();
  elapsed_out = sw.seconds();
  std::map<std::string, TenantOutcome> merged;
  for (Slot& s : slots) {
    TenantOutcome& dst = merged[s.tenant];
    dst.ok += s.out.ok;
    dst.timeouts += s.out.timeouts;
    dst.rejected += s.out.rejected;
    dst.failed += s.out.failed;
    dst.latencies_ms.insert(dst.latencies_ms.end(), s.out.latencies_ms.begin(),
                            s.out.latencies_ms.end());
  }
  return merged;
}

Measured measured_from(const TenantOutcome& outcome, double elapsed) {
  Measured m;
  m.requests_per_sec =
      elapsed > 0.0 ? static_cast<double>(outcome.ok) / elapsed : 0.0;
  m.ms_per_request =
      outcome.ok > 0 ? elapsed * 1e3 / static_cast<double>(outcome.ok) : 0.0;
  std::vector<double> latencies = outcome.latencies_ms;  // percentile sorts
  fill_percentiles(m, latencies);
  return m;
}

/// Runtime options for the batching sections: a fixed two-worker
/// front end whose ONLY varied knob is the batch switch — the kernel
/// thread budget lives in the packed layers' ExecContext, so batched
/// and unbatched runs spend identical compute resources.
serve::ServingOptions batch_serving_options(bool batching,
                                            std::size_t total_clients,
                                            std::size_t seq) {
  serve::ServingOptions options;
  options.workers = 2;
  options.streams = 1;
  options.queue_capacity = std::max<std::size_t>(64, 2 * total_clients);
  options.max_attempts = 1;
  options.batch.enabled = batching;
  options.batch.max_batch_m = std::max<std::size_t>(seq, total_clients * seq);
  options.batch.max_linger = std::chrono::microseconds(1000);
  return options;
}

/// Registers `entry` on `runtime` and primes it with one request
/// (graph build for the solo M, pool spin-up).
void register_and_warm(serve::ServingRuntime& runtime,
                       std::shared_ptr<BatchEntry> entry,
                       const MatrixF& input) {
  const std::string name = entry->name();
  runtime.register_batch_entry(std::move(entry));
  serve::Request req;
  req.entry = name;
  req.input = input;
  runtime.submit(std::move(req))->wait();
}

/// Packs one weight matrix for `format` at `sparsity`, mirroring
/// pack_model's per-layer recipe.
std::unique_ptr<PackedWeight> pack_weight(const std::string& format,
                                          const MatrixF& w, double sparsity) {
  if (sparsity <= 0.0) return make_packed(format, w);
  if (format == "csr" || format == "dense") {
    MatrixF pruned = w;
    prune_by_magnitude(pruned, sparsity);
    return make_packed(format, pruned);
  }
  MatrixF scores(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i)
    scores.data()[i] = std::fabs(w.data()[i]);
  const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, 64);
  MatrixF pruned = w;
  apply_pattern(pattern, pruned);
  PackOptions pack;
  pack.pattern = &pattern;
  return make_packed(format, pruned, pack);
}

/// Batched vs unbatched requests/sec at an equal thread budget — the
/// headline batching claim, measured on the traffic shape the batcher
/// exists for: decode-style requests carrying ONE activation row each
/// through a fat serving GEMM (dim x ffn).  Solo, every row pays the
/// whole per-run cost by itself — B-panel packs for dense, a 1-of-6
/// partial micro-kernel row block per tile for the tile formats;
/// batched, concurrent rows coalesce into one wide-M run that fills
/// the register tiles and amortizes the packs.  Same workers, same
/// kernel threads, same offered traffic — only the coalescing differs.
void run_batch_compare(const BertMiniConfig& config, std::size_t budget,
                       double pruned_sparsity, double secs, std::size_t clients,
                       bench::BenchJson& json) {
  const std::size_t k = config.dim;
  const std::size_t n = config.ffn_dim;
  Rng rng(9004);
  MatrixF w(k, n);
  for (float& v : w.flat()) v = rng.normal() * 0.05f;
  std::vector<MatrixF> inputs;
  inputs.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    MatrixF row(1, k);
    for (float& v : row.flat()) v = rng.normal();
    inputs.push_back(std::move(row));
  }

  std::printf("\ncross-request batching: %zu closed-loop clients, 1 row/"
              "request through a %zux%zu GEMM, equal thread budget (%zu)\n",
              clients, k, n, budget);
  std::printf("%-8s %12s %12s %9s %8s %8s %10s\n", "format", "solo req/s",
              "batch req/s", "speedup", "p50", "p95", "rows/batch");

  struct Point {
    const char* format;
    double sparsity;
  };
  const std::vector<Point> points{
      {"dense", 0.0}, {"tw", pruned_sparsity}, {"tw-int8", pruned_sparsity}};
  for (const Point& point : points) {
    const std::unique_ptr<PackedWeight> packed =
        pack_weight(point.format, w, point.sparsity);

    Measured by_mode[2];
    serve::RequestBatcher::BatchStats bstats;
    for (int batching = 0; batching <= 1; ++batching) {
      serve::ServingRuntime runtime(
          batch_serving_options(batching != 0, clients, 1));
      register_and_warm(runtime, make_gemm_entry("gemm", packed.get()),
                        inputs[0]);
      double elapsed = 0.0;
      const auto outcomes = run_closed_loop_clients(
          runtime, "gemm", inputs, {{"", clients}}, secs, elapsed);
      runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);
      if (batching != 0) bstats = runtime.batch_stats();
      TenantOutcome all;
      for (const auto& [tenant, outcome] : outcomes) {
        (void)tenant;
        all.ok += outcome.ok;
        all.latencies_ms.insert(all.latencies_ms.end(),
                                outcome.latencies_ms.begin(),
                                outcome.latencies_ms.end());
      }
      by_mode[batching] = measured_from(all, elapsed);
    }

    const double speedup =
        by_mode[0].requests_per_sec > 0.0
            ? by_mode[1].requests_per_sec / by_mode[0].requests_per_sec
            : 0.0;
    const double rows_per_batch =
        bstats.batches > 0 ? static_cast<double>(bstats.batched_members) /
                                 static_cast<double>(bstats.batches)
                           : 0.0;
    std::printf("%-8s %12.1f %12.1f %8.2fx %8.3f %8.3f %10.1f\n", point.format,
                by_mode[0].requests_per_sec, by_mode[1].requests_per_sec,
                speedup, by_mode[1].p50_ms, by_mode[1].p95_ms, rows_per_batch);

    for (int batching = 0; batching <= 1; ++batching) {
      bench::BenchRecord record;
      record.name = std::string("serving-batch/gemm/") +
                    (batching != 0 ? "batched" : "solo");
      record.format = point.format;
      record.m = 1;
      record.k = k;
      record.n = n;
      record.ns_per_iter = by_mode[batching].ms_per_request * 1e6;
      record.requests_per_sec = by_mode[batching].requests_per_sec;
      record.sparsity = point.sparsity;
      record.p50_ms = by_mode[batching].p50_ms;
      record.p95_ms = by_mode[batching].p95_ms;
      record.p99_ms = by_mode[batching].p99_ms;
      if (batching != 0) record.metric = speedup;
      json.add(record);
    }
  }
}

/// N-tenant fairness: tenant-0 offers ~5x the closed-loop concurrency
/// of every other tenant.  Batching off, the admission queue serves
/// FIFO and the noisy tenant buys throughput proportional to its
/// flood; batching on, DRR equalizes service across backlogged
/// tenants.  Reported per tenant: req/s + latency tail; summarized as
/// Jain's index over per-tenant served throughput.
void run_fairness(BertMini& model, const TokenTeacherDataset& dataset,
                  std::size_t budget, double pruned_sparsity, double secs,
                  std::size_t tenant_count, bench::BenchJson& json) {
  const BertMiniConfig& config = model.config();
  const std::size_t seq = config.seq;
  tenant_count = std::max<std::size_t>(2, tenant_count);
  constexpr std::size_t kNoisyClients = 10;
  constexpr std::size_t kLightClients = 2;

  std::vector<TenantLoad> loads;
  std::size_t total_clients = 0;
  for (std::size_t t = 0; t < tenant_count; ++t) {
    const std::size_t clients = t == 0 ? kNoisyClients : kLightClients;
    loads.push_back({"tenant-" + std::to_string(t), clients});
    total_clients += clients;
  }
  const std::vector<MatrixF> inputs =
      embedded_inputs(model, dataset, total_clients, 9002);

  ExecContext ctx;
  ctx.threads = static_cast<int>(budget);
  pack_model(model, "tw", pruned_sparsity, seq, ctx);

  std::printf("\nfairness: tenant-0 x%zu clients vs %zu light tenants x%zu "
              "clients (tw, DRR when batched)\n",
              kNoisyClients, tenant_count - 1, kLightClients);
  std::printf("%-8s %-10s %10s %8s %8s %8s\n", "mode", "tenant", "ok req/s",
              "p50", "p95", "p99");

  for (int batching = 0; batching <= 1; ++batching) {
    const char* mode = batching != 0 ? "batched" : "solo";
    serve::ServingOptions options =
        batch_serving_options(batching != 0, total_clients, seq);
    // Scarcity is what DRR arbitrates: cap each flush at ~one sequence
    // per tenant so the scheduler must pick members, instead of every
    // pending sequence fitting into every batch.
    options.batch.max_batch_m = tenant_count * seq;
    options.batch.max_linger = std::chrono::microseconds(500);
    serve::ServingRuntime runtime(options);
    register_and_warm(runtime, make_bert_entry("bert", model), inputs[0]);
    double elapsed = 0.0;
    const auto outcomes = run_closed_loop_clients(runtime, "bert", inputs,
                                                  loads, secs, elapsed);
    runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);

    std::vector<double> rates;
    for (const TenantLoad& load : loads) {
      const auto it = outcomes.find(load.tenant);
      const TenantOutcome empty;
      const TenantOutcome& outcome = it != outcomes.end() ? it->second : empty;
      const Measured m = measured_from(outcome, elapsed);
      rates.push_back(m.requests_per_sec);
      std::printf("%-8s %-10s %10.1f %8.3f %8.3f %8.3f\n", mode,
                  load.tenant.c_str(), m.requests_per_sec, m.p50_ms, m.p95_ms,
                  m.p99_ms);

      bench::BenchRecord record;
      record.name = std::string("serving-fairness/bert-mini/") + mode + "/" +
                    load.tenant;
      record.format = "tw";
      record.m = seq;
      record.k = config.dim;
      record.n = config.ffn_dim;
      record.ns_per_iter = m.ms_per_request * 1e6;
      record.requests_per_sec = m.requests_per_sec;
      record.sparsity = pruned_sparsity;
      record.p50_ms = m.p50_ms;
      record.p95_ms = m.p95_ms;
      record.p99_ms = m.p99_ms;
      json.add(record);
    }
    const double jain = jain_index(rates);
    std::printf("%-8s %-10s %10s Jain's index = %.3f\n", mode, "(all)", "",
                jain);

    bench::BenchRecord summary;
    summary.name = std::string("serving-fairness/bert-mini/") + mode + "/jain";
    summary.format = "tw";
    summary.m = seq;
    summary.k = config.dim;
    summary.n = config.ffn_dim;
    summary.metric = jain;
    json.add(summary);
  }
  model.clear_packed_weights();
}

/// Step-function arrival rate with a two-priority mix: base rate, a 3x
/// overload step, then base again, every 4th request interactive (with
/// a deadline) and the rest batch-class (without).  Measures how the
/// batcher + admission control absorb the step: per-phase, per-class
/// served rate, latency tail, and shed/expired counts.
void run_dynamic_load(BertMini& model, const TokenTeacherDataset& dataset,
                      std::size_t budget, double pruned_sparsity, double secs,
                      bench::BenchJson& json) {
  const BertMiniConfig& config = model.config();
  const std::size_t seq = config.seq;
  const std::vector<MatrixF> inputs = embedded_inputs(model, dataset, 4, 9003);

  ExecContext ctx;
  ctx.threads = static_cast<int>(budget);
  pack_model(model, "tw", pruned_sparsity, seq, ctx);

  // Calibrate the solo service time directly (entry->run on a local
  // scheduler): the open-loop base rate targets ~60% of that capacity,
  // the step 3x the base — past solo capacity, inside batched capacity.
  double solo_ms = 0.0;
  {
    const std::unique_ptr<GraphBatchEntry> probe =
        make_bert_entry("probe", model);
    ExecScheduler scheduler;
    (void)probe->run(scheduler, inputs[0]);  // warm-up: graph + panels
    Stopwatch sw;
    std::size_t iters = 0;
    do {
      (void)probe->run(scheduler, inputs[0]);
      ++iters;
    } while (sw.seconds() < 0.05);
    solo_ms = sw.seconds() * 1e3 / static_cast<double>(iters);
  }
  const double base_interval_s = solo_ms * 1e-3 / 0.6;
  const double phase_len_s = std::max(secs, 0.15) / 3.0;
  // Interactive deadline: generous against solo service and the linger
  // window at the base rate, tight once the step's backlog builds.
  const auto deadline_budget =
      std::chrono::duration_cast<serve::Clock::duration>(
          std::chrono::duration<double, std::milli>(8.0 * solo_ms + 4.0));

  serve::ServingOptions options = batch_serving_options(true, 16, seq);
  options.queue_capacity = 16;
  serve::ServingRuntime runtime(options);
  register_and_warm(runtime, make_bert_entry("bert", model), inputs[0]);

  struct Flight {
    serve::RequestHandle handle;
    int phase = 0;
    bool interactive = false;
  };
  std::vector<Flight> flights;
  Stopwatch sw;
  std::size_t submitted = 0;
  double t_next = 0.0;
  while (t_next < 3.0 * phase_len_s) {
    const int phase = std::min(2, static_cast<int>(t_next / phase_len_s));
    const double now = sw.seconds();
    if (now < t_next)
      std::this_thread::sleep_for(std::chrono::duration<double>(t_next - now));

    serve::Request req;
    req.entry = "bert";
    req.input = inputs[submitted % inputs.size()];
    const bool interactive = submitted % 4 == 0;
    if (interactive) {
      req.priority = serve::Priority::kInteractive;
      req.tenant_id = "interactive";
      req.deadline = serve::Clock::now() + deadline_budget;
    } else {
      req.priority = serve::Priority::kBatch;
      req.tenant_id = "batch";
    }
    flights.push_back({runtime.submit(std::move(req)), phase, interactive});
    ++submitted;
    t_next += phase == 1 ? base_interval_s / 3.0 : base_interval_s;
  }
  runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);

  std::printf("\ndynamic load: base %.1f req/s -> 3x step -> base "
              "(solo service %.3f ms, phases of %.2fs)\n",
              1.0 / base_interval_s, solo_ms, phase_len_s);
  std::printf("%-6s %-12s %9s %10s %8s %8s %8s %9s %9s\n", "phase", "class",
              "arrived", "ok req/s", "p50", "p95", "p99", "timeouts",
              "rejected");
  for (int phase = 0; phase < 3; ++phase) {
    for (const bool interactive : {true, false}) {
      std::uint64_t arrived = 0;
      TenantOutcome outcome;
      for (const Flight& flight : flights) {
        if (flight.phase != phase || flight.interactive != interactive)
          continue;
        ++arrived;
        const serve::Response& response = flight.handle->response();
        switch (response.status) {
          case serve::RequestStatus::kOk: {
            ++outcome.ok;
            const auto total = response.queue_wait + response.service_time;
            outcome.latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(total).count());
            break;
          }
          case serve::RequestStatus::kTimeout:
            ++outcome.timeouts;
            break;
          case serve::RequestStatus::kRejected:
            ++outcome.rejected;
            break;
          default:
            ++outcome.failed;
            break;
        }
      }
      const Measured m = measured_from(outcome, phase_len_s);
      const char* cls = interactive ? "interactive" : "batch";
      std::printf("%-6d %-12s %9llu %10.1f %8.3f %8.3f %8.3f %9llu %9llu\n",
                  phase, cls, static_cast<unsigned long long>(arrived),
                  m.requests_per_sec, m.p50_ms, m.p95_ms, m.p99_ms,
                  static_cast<unsigned long long>(outcome.timeouts),
                  static_cast<unsigned long long>(outcome.rejected));

      bench::BenchRecord record;
      record.name = "serving-dynamic/bert-mini/p" + std::to_string(phase) +
                    "/" + cls;
      record.format = "tw";
      record.m = seq;
      record.k = config.dim;
      record.n = config.ffn_dim;
      record.ns_per_iter = m.ms_per_request * 1e6;
      record.requests_per_sec = m.requests_per_sec;
      record.sparsity = pruned_sparsity;
      record.p50_ms = m.p50_ms;
      record.p95_ms = m.p95_ms;
      record.p99_ms = m.p99_ms;
      record.timeouts = static_cast<std::int64_t>(outcome.timeouts);
      record.rejected = static_cast<std::int64_t>(outcome.rejected);
      json.add(record);
    }
  }
  model.clear_packed_weights();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const std::size_t batch = size_flag(argc, argv, "batch", 8);
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t budget = size_flag(argc, argv, "budget", hw > 0 ? hw : 4);
  const double secs = double_flag(argc, argv, "secs", 0.5);
  const double pruned_sparsity = double_flag(argc, argv, "sparsity", 0.75);
  const std::string mode = string_flag(argc, argv, "mode", "all");
  const std::size_t clients = size_flag(argc, argv, "clients", 8);
  const std::size_t tenants = size_flag(argc, argv, "tenants", 4);
  const auto mode_on = [&mode](const char* name) {
    return mode == "all" || mode == name;
  };
  if (mode != "all" && mode != "throughput" && mode != "batch" &&
      mode != "fairness" && mode != "dynamic-load") {
    std::fprintf(stderr,
                 "serving: unknown --mode=%s (throughput | batch | fairness "
                 "| dynamic-load | all)\n",
                 mode.c_str());
    return 2;
  }

  BertMiniConfig config;
  config.dim = size_flag(argc, argv, "dim", 256);
  config.heads = 4;
  config.layers = size_flag(argc, argv, "layers", 4);
  config.ffn_dim = size_flag(argc, argv, "ffn", 1024);
  config.seq = size_flag(argc, argv, "seq", 32);
  const TokenTeacherDataset dataset(64, config.seq, config.classes,
                                    config.dim, 77);
  BertMini model(config, dataset.embedding());

  // Fail fast on a malformed execution plan: run the static verifier
  // (exec/validate.hpp) once at startup, before any measurement —
  // GraphValidationError prints every finding and aborts the bench.
  validate_graph_or_throw(model.build_exec_graph());

  bench::BenchJson json;
  std::printf(
      "serving bert-mini dim=%zu ffn=%zu layers=%zu seq=%zu batch=%zu "
      "budget=%zu threads\n",
      config.dim, config.ffn_dim, config.layers, config.seq, batch, budget);

  if (mode_on("throughput"))
    run_throughput(model, dataset, batch, budget, secs, pruned_sparsity, json);
  if (mode_on("batch"))
    run_batch_compare(config, budget, pruned_sparsity, secs, clients, json);
  if (mode_on("fairness"))
    run_fairness(model, dataset, budget, pruned_sparsity, secs, tenants, json);
  if (mode_on("dynamic-load"))
    run_dynamic_load(model, dataset, budget, pruned_sparsity, secs, json);

  if (!json_path.empty() && !json.empty()) json.write(json_path);
  return 0;
}
