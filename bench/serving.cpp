// Serving throughput: requests/sec through the model-level ExecGraph
// vs stream count vs weight format, at an EQUAL total thread budget —
// the measurement behind the stream-assignment claim (paper Fig. 7-4):
// on small serving GEMMs, overlapping independent layers across
// streams (with very wide outputs column-sharded) beats spending the
// same threads inside one GEMM at a time.
//
//   streams=1  -> the single-stream fallback: the graph executed
//                 serially, OpenMP threads *inside* each kernel.
//   streams=S  -> S scheduler streams, budget/S threads per kernel.
//
// Usage: serving [--json=PATH] [--batch=N] [--budget=T] [--layers=L]
//                [--dim=D] [--ffn=F] [--seq=S] [--secs=X]
// Defaults measure real BERT-mini shapes (L4/H256/FFN1024, seq 32).
// --secs bounds the measuring time per configuration (tiny CI smoke:
// --secs=0.05 --batch=2 --dim=64 --ffn=128 --layers=2 --seq=8).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/scheduler.hpp"
#include "nn/bert_mini.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace tilesparse;
using bench::double_flag;
using bench::size_flag;

struct Measured {
  double requests_per_sec = 0.0;
  double ms_per_request = 0.0;
};

/// Serves `batch`-sized requests for ~secs and returns the rate.
Measured serve(BertMini& model, const TokenTeacherDataset& dataset,
               std::size_t batch, double secs) {
  Rng rng(4242);
  const TokenBatch request = dataset.sample(batch, rng);
  model.forward(request);  // warm-up: graph build, panel packs, pool spin-up
  Stopwatch sw;
  std::size_t served = 0;
  do {
    (void)model.forward(request);
    ++served;
  } while (sw.seconds() < secs);
  const double elapsed = sw.seconds();  // one read: both fields consistent
  Measured out;
  out.ms_per_request = elapsed * 1e3 / static_cast<double>(served);
  out.requests_per_sec = static_cast<double>(served) / elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const std::size_t batch = size_flag(argc, argv, "batch", 8);
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t budget = size_flag(argc, argv, "budget", hw > 0 ? hw : 4);
  const double secs = double_flag(argc, argv, "secs", 0.5);

  BertMiniConfig config;
  config.dim = size_flag(argc, argv, "dim", 256);
  config.heads = 4;
  config.layers = size_flag(argc, argv, "layers", 4);
  config.ffn_dim = size_flag(argc, argv, "ffn", 1024);
  config.seq = size_flag(argc, argv, "seq", 32);
  const TokenTeacherDataset dataset(64, config.seq, config.classes,
                                    config.dim, 77);
  BertMini model(config, dataset.embedding());

  std::vector<std::size_t> stream_counts{1, 2, 4};
  if (budget >= 8) stream_counts.push_back(8);

  bench::BenchJson json;
  std::printf(
      "serving bert-mini dim=%zu ffn=%zu layers=%zu seq=%zu batch=%zu "
      "budget=%zu threads\n",
      config.dim, config.ffn_dim, config.layers, config.seq, batch, budget);
  std::printf("%-8s %-8s %12s %12s %10s\n", "format", "streams", "req/s",
              "ms/req", "speedup");

  for (const std::string format : {"dense", "csr"}) {
    double baseline = 0.0;
    for (const std::size_t streams : stream_counts) {
      ExecContext ctx;
      ctx.threads = static_cast<int>(std::max<std::size_t>(1, budget / streams));
      model.pack_weights(format, nullptr, ctx);

      SchedulerOptions options;
      options.streams = streams;
      options.reference_m = batch * config.seq;
      ExecScheduler scheduler(options);
      model.set_exec_scheduler(&scheduler);
      const Measured measured = serve(model, dataset, batch, secs);
      model.set_exec_scheduler(nullptr);
      model.clear_packed_weights();

      if (streams == 1) baseline = measured.requests_per_sec;
      const double speedup =
          baseline > 0.0 ? measured.requests_per_sec / baseline : 1.0;
      std::printf("%-8s %-8zu %12.1f %12.3f %9.2fx\n", format.c_str(), streams,
                  measured.requests_per_sec, measured.ms_per_request, speedup);

      bench::BenchRecord record;
      record.name = "serving/bert-mini/b" + std::to_string(batch);
      record.format = format;
      record.m = batch * config.seq;
      record.k = config.dim;
      record.n = config.ffn_dim;
      record.ns_per_iter = measured.ms_per_request * 1e6;
      record.requests_per_sec = measured.requests_per_sec;
      record.streams = streams;
      json.add(record);
    }
  }

  if (!json_path.empty() && !json.empty()) json.write(json_path);
  return 0;
}
