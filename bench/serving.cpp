// Serving throughput: requests/sec through the model-level ExecGraph
// vs stream count vs weight format, at an EQUAL total thread budget —
// the measurement behind the stream-assignment claim (paper Fig. 7-4):
// on small serving GEMMs, overlapping independent layers across
// streams (with very wide outputs column-sharded) beats spending the
// same threads inside one GEMM at a time.
//
//   streams=1  -> the single-stream fallback: the graph executed
//                 serially, OpenMP threads *inside* each kernel.
//   streams=S  -> S scheduler streams, budget/S threads per kernel.
//
// Formats are measured at their own operating point: "dense" serves
// the unpruned model; the sparse formats serve a 75%-pruned copy of
// every encoder weight (magnitude pruning for csr, the TW tile
// pattern for tw / tw-int8) — the apples-to-apples serving question
// is "pruned model on format X vs unpruned model on dense", not
// "dense weights forced through a sparse container".  Each row
// reports the *effective* GFLOP/s actually sustained
// (2 * packed encoder MACs per request / wall time) and the measured
// MAC sparsity (1 - packed/dense MACs), both also emitted to --json.
//
// Usage: serving [--json=PATH] [--batch=N] [--budget=T] [--layers=L]
//                [--dim=D] [--ffn=F] [--seq=S] [--secs=X]
//                [--sparsity=P]
// Defaults measure real BERT-mini shapes (L4/H256/FFN1024, seq 32).
// --secs bounds the measuring time per configuration (tiny CI smoke:
// --secs=0.05 --batch=2 --dim=64 --ffn=128 --layers=2 --seq=8).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "exec/scheduler.hpp"
#include "exec/validate.hpp"
#include "nn/bert_mini.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/serving_runtime.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace tilesparse;
using bench::double_flag;
using bench::size_flag;

struct Measured {
  double requests_per_sec = 0.0;
  double ms_per_request = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Nearest-rank percentile over an unsorted sample (sorts in place).
double percentile_ms(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, rank > 0 ? rank - 1 : 0)];
}

void fill_percentiles(Measured& out, std::vector<double>& latencies_ms) {
  out.p50_ms = percentile_ms(latencies_ms, 0.50);
  out.p95_ms = percentile_ms(latencies_ms, 0.95);
  out.p99_ms = percentile_ms(latencies_ms, 0.99);
}

/// Serves `batch`-sized requests for ~secs and returns the rate plus
/// the per-request latency distribution.
Measured serve_closed_loop(BertMini& model, const TokenTeacherDataset& dataset,
               std::size_t batch, double secs) {
  Rng rng(4242);
  const TokenBatch request = dataset.sample(batch, rng);
  model.forward(request);  // warm-up: graph build, panel packs, pool spin-up
  std::vector<double> latencies_ms;
  Stopwatch sw;
  std::size_t served = 0;
  do {
    Stopwatch one;
    (void)model.forward(request);
    latencies_ms.push_back(one.seconds() * 1e3);
    ++served;
  } while (sw.seconds() < secs);
  const double elapsed = sw.seconds();  // one read: both fields consistent
  Measured out;
  out.ms_per_request = elapsed * 1e3 / static_cast<double>(served);
  out.requests_per_sec = static_cast<double>(served) / elapsed;
  fill_percentiles(out, latencies_ms);
  return out;
}

/// One overload measurement through the ServingRuntime: open-loop
/// arrivals paced at ~2x the closed-loop service rate into a short
/// admission queue, with a deadline of 3x the closed-loop latency.  The
/// runtime must shed (REJECTED) and expire (TIMEOUT) the excess while
/// the served requests keep a bounded latency distribution — the
/// graceful-degradation claim, measured.
struct OverloadMeasured {
  Measured latency;           ///< distribution over OK requests
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;
};

OverloadMeasured serve_overloaded(BertMini& model,
                                  const TokenTeacherDataset& dataset,
                                  std::size_t batch, std::size_t streams,
                                  double closed_loop_ms, double secs) {
  Rng rng(24242);
  const TokenBatch request = dataset.sample(batch, rng);

  serve::ServingOptions options;
  options.workers = 1;  // one worker: the model is not concurrency-safe
  options.streams = streams;
  options.queue_capacity = 4;
  options.max_attempts = 1;
  serve::ServingRuntime runtime(options);

  const auto deadline_budget = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(3.0 * closed_loop_ms));
  const double interval_s = closed_loop_ms * 1e-3 / 2.0;

  std::vector<serve::RequestHandle> handles;
  Stopwatch sw;
  std::size_t submitted = 0;
  while (sw.seconds() < secs) {
    serve::Request req;
    req.deadline = serve::Clock::now() + deadline_budget;
    req.work = [&model, &request](serve::WorkerContext& ctx) {
      model.set_exec_scheduler(&ctx.scheduler);
      MatrixF logits = model.forward(request);
      model.set_exec_scheduler(nullptr);
      return logits;
    };
    handles.push_back(runtime.submit(std::move(req)));
    ++submitted;
    const double next_arrival = interval_s * static_cast<double>(submitted);
    const double now = sw.seconds();
    if (now < next_arrival) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_arrival - now));
    }
  }
  runtime.shutdown(serve::ServingRuntime::Shutdown::kDrain);
  const double elapsed = sw.seconds();

  OverloadMeasured out;
  std::vector<double> latencies_ms;
  for (const auto& handle : handles) {
    const serve::Response& response = handle->response();
    switch (response.status) {
      case serve::RequestStatus::kOk: {
        ++out.ok;
        const auto total = response.queue_wait + response.service_time;
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(total).count());
        break;
      }
      case serve::RequestStatus::kTimeout:
        ++out.timeouts;
        break;
      case serve::RequestStatus::kRejected:
        ++out.rejected;
        break;
      default:
        break;
    }
  }
  out.latency.requests_per_sec = static_cast<double>(out.ok) / elapsed;
  fill_percentiles(out.latency, latencies_ms);
  return out;
}

/// Encoder MAC totals for one request, packed vs unpruned dense.
struct PackedStats {
  double macs = 0.0;
  double dense_macs = 0.0;
  double sparsity() const {
    return dense_macs > 0.0 ? 1.0 - macs / dense_macs : 0.0;
  }
};

/// Zeroes the smallest-|w| `sparsity` fraction of `w` in place.
void prune_by_magnitude(MatrixF& w, double sparsity) {
  std::vector<float> mags;
  mags.reserve(w.size());
  for (float v : w.flat()) mags.push_back(std::fabs(v));
  const auto cut =
      static_cast<std::size_t>(sparsity * static_cast<double>(mags.size()));
  if (cut == 0) return;
  std::nth_element(mags.begin(), mags.begin() + (cut - 1), mags.end());
  const float threshold = mags[cut - 1];
  for (float& v : w.flat())
    if (std::fabs(v) <= threshold) v = 0.0f;
}

/// Installs `format` backends on every prunable encoder layer.  The
/// dense master weights are never modified: pruned formats pack a
/// pruned *copy* (magnitude scores for csr; a TW pattern from the
/// same scores for the tile formats), so formats measure back to back
/// on identical masters.  `rows` is the encoder GEMM row count per
/// request (batch * seq) the MAC totals are quoted at.
PackedStats pack_model(BertMini& model, const std::string& format,
                       double sparsity, std::size_t rows,
                       const ExecContext& ctx) {
  PackedStats stats;
  for (Linear* layer : model.prunable_layers()) {
    const MatrixF& w = layer->weight().value;
    stats.dense_macs += static_cast<double>(rows) *
                        static_cast<double>(w.rows()) *
                        static_cast<double>(w.cols());
    std::unique_ptr<PackedWeight> packed;
    if (sparsity <= 0.0) {
      packed = make_packed(format, w);
    } else if (format == "csr" || format == "dense") {
      MatrixF pruned = w;
      prune_by_magnitude(pruned, sparsity);
      packed = make_packed(format, pruned);
    } else {  // tw family: pattern from the same magnitude scores
      MatrixF scores(w.rows(), w.cols());
      for (std::size_t i = 0; i < w.size(); ++i)
        scores.data()[i] = std::fabs(w.data()[i]);
      const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, 64);
      MatrixF pruned = w;
      apply_pattern(pattern, pruned);
      PackOptions pack;
      pack.pattern = &pattern;
      packed = make_packed(format, pruned, pack);
    }
    stats.macs += packed->macs(rows);
    layer->set_packed_weight(std::move(packed));
    layer->set_exec_context(ctx);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const std::size_t batch = size_flag(argc, argv, "batch", 8);
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t budget = size_flag(argc, argv, "budget", hw > 0 ? hw : 4);
  const double secs = double_flag(argc, argv, "secs", 0.5);
  const double pruned_sparsity = double_flag(argc, argv, "sparsity", 0.75);

  BertMiniConfig config;
  config.dim = size_flag(argc, argv, "dim", 256);
  config.heads = 4;
  config.layers = size_flag(argc, argv, "layers", 4);
  config.ffn_dim = size_flag(argc, argv, "ffn", 1024);
  config.seq = size_flag(argc, argv, "seq", 32);
  const TokenTeacherDataset dataset(64, config.seq, config.classes,
                                    config.dim, 77);
  BertMini model(config, dataset.embedding());

  // Fail fast on a malformed execution plan: run the static verifier
  // (exec/validate.hpp) once at startup, before any measurement —
  // GraphValidationError prints every finding and aborts the bench.
  validate_graph_or_throw(model.build_exec_graph());

  std::vector<std::size_t> stream_counts{1, 2, 4};
  if (budget >= 8) stream_counts.push_back(8);

  // (format, weight sparsity) operating points.  Dense serves the
  // unpruned model — the baseline every pruned format must beat.
  struct Config {
    const char* format;
    double sparsity;
  };
  const std::vector<Config> configs{{"dense", 0.0},
                                    {"csr", pruned_sparsity},
                                    {"tw", pruned_sparsity},
                                    {"tw-int8", pruned_sparsity}};

  bench::BenchJson json;
  std::printf(
      "serving bert-mini dim=%zu ffn=%zu layers=%zu seq=%zu batch=%zu "
      "budget=%zu threads\n",
      config.dim, config.ffn_dim, config.layers, config.seq, batch, budget);
  std::printf("%-8s %-9s %-8s %12s %12s %8s %8s %8s %10s %10s\n", "format",
              "sparsity", "streams", "req/s", "ms/req", "p50", "p95", "p99",
              "GFLOP/s", "speedup");

  const std::size_t rows = batch * config.seq;
  struct OverloadPoint {
    Config cfg;
    std::size_t streams;
    double closed_loop_ms;
    double sparsity;
  };
  std::vector<OverloadPoint> overload_points;
  for (const Config& cfg : configs) {
    double baseline = 0.0;
    for (const std::size_t streams : stream_counts) {
      ExecContext ctx;
      ctx.threads =
          static_cast<int>(std::max<std::size_t>(1, budget / streams));
      const PackedStats stats =
          pack_model(model, cfg.format, cfg.sparsity, rows, ctx);

      SchedulerOptions options;
      options.streams = streams;
      options.reference_m = rows;
      ExecScheduler scheduler(options);
      model.set_exec_scheduler(&scheduler);
      const Measured measured = serve_closed_loop(model, dataset, batch, secs);
      model.set_exec_scheduler(nullptr);
      model.clear_packed_weights();

      if (streams == 1) baseline = measured.requests_per_sec;
      const double speedup =
          baseline > 0.0 ? measured.requests_per_sec / baseline : 1.0;
      // Effective rate over the packed encoder GEMMs: work the request
      // actually buys (pruned MACs), not the dense-equivalent count.
      const double gflops = 2.0 * stats.macs * measured.requests_per_sec * 1e-9;
      std::printf("%-8s %-9.2f %-8zu %12.1f %12.3f %8.3f %8.3f %8.3f %10.2f "
                  "%9.2fx\n",
                  cfg.format, stats.sparsity(), streams,
                  measured.requests_per_sec, measured.ms_per_request,
                  measured.p50_ms, measured.p95_ms, measured.p99_ms, gflops,
                  speedup);

      bench::BenchRecord record;
      record.name = "serving/bert-mini/b" + std::to_string(batch);
      record.format = cfg.format;
      record.m = rows;
      record.k = config.dim;
      record.n = config.ffn_dim;
      record.ns_per_iter = measured.ms_per_request * 1e6;
      record.requests_per_sec = measured.requests_per_sec;
      record.streams = streams;
      record.gflops = gflops;
      record.sparsity = stats.sparsity();
      record.p50_ms = measured.p50_ms;
      record.p95_ms = measured.p95_ms;
      record.p99_ms = measured.p99_ms;
      json.add(record);

      // Overload-measure each format at its widest stream count.
      if (streams == stream_counts.back()) {
        overload_points.push_back(
            {cfg, streams, measured.ms_per_request, stats.sparsity()});
      }
    }
  }

  // ------------------------------------------- runtime overload section
  // Open-loop arrivals through the fault-tolerant ServingRuntime at
  // ~1.3x the closed-loop service rate: the shed/expire counts and the
  // OK-latency tail quantify graceful degradation under saturation.
  std::printf("\nserving-runtime overload (arrivals at 2x capacity, "
              "deadline 3x ms/req, queue=4)\n");
  std::printf("%-8s %-8s %12s %8s %8s %8s %9s %9s\n", "format", "streams",
              "ok req/s", "p50", "p95", "p99", "timeouts", "rejected");
  for (const OverloadPoint& point : overload_points) {
    ExecContext ctx;
    ctx.threads =
        static_cast<int>(std::max<std::size_t>(1, budget / point.streams));
    pack_model(model, point.cfg.format, point.cfg.sparsity, rows, ctx);
    const OverloadMeasured overload = serve_overloaded(
        model, dataset, batch, point.streams, point.closed_loop_ms, secs);
    model.clear_packed_weights();

    std::printf("%-8s %-8zu %12.1f %8.3f %8.3f %8.3f %9llu %9llu\n",
                point.cfg.format, point.streams,
                overload.latency.requests_per_sec, overload.latency.p50_ms,
                overload.latency.p95_ms, overload.latency.p99_ms,
                static_cast<unsigned long long>(overload.timeouts),
                static_cast<unsigned long long>(overload.rejected));

    bench::BenchRecord record;
    record.name = "serving-runtime/bert-mini/b" + std::to_string(batch);
    record.format = point.cfg.format;
    record.m = rows;
    record.k = config.dim;
    record.n = config.ffn_dim;
    record.ns_per_iter = overload.latency.p50_ms * 1e6;
    record.requests_per_sec = overload.latency.requests_per_sec;
    record.streams = point.streams;
    record.sparsity = point.sparsity;
    record.p50_ms = overload.latency.p50_ms;
    record.p95_ms = overload.latency.p95_ms;
    record.p99_ms = overload.latency.p99_ms;
    record.timeouts = static_cast<std::int64_t>(overload.timeouts);
    record.rejected = static_cast<std::int64_t>(overload.rejected);
    json.add(record);
  }

  if (!json_path.empty() && !json.empty()) json.write(json_path);
  return 0;
}
