// Fig. 6 — Cumulative probability of per-unit zero-element ratio under
// an EW-75% mask, for BW 8x8 blocks, BW 32x32 blocks, and TW row
// vectors of 64 elements (G=64).
//
// Paper's shape: TW(1x64) units are far more often (nearly) all-zero
// than same-size BW(8x8) blocks; BW(32x32) captures the fewest.

#include <cstdio>

#include "bench_util.hpp"
#include "prune/analysis.hpp"
#include "prune/patterns.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using tilesparse::bench::synthetic_scores;

int main() {
  std::puts("== Reproduction of paper Fig. 6 ==");
  std::puts("CDF of zero-element ratio per pruning unit (EW mask @75%).\n");

  // BERT-like weight matrix with column-correlated weak scores.
  const MatrixF scores = synthetic_scores(768, 3072, 7);
  const MatrixU8 mask = ew_mask(scores, 0.75);

  const auto bw8 = unit_zero_fractions(mask, 8, 8);
  const auto bw32 = unit_zero_fractions(mask, 32, 32);
  const auto tw64 = unit_zero_fractions(mask, 1, 64);

  std::vector<float> grid;
  for (float g = 0.50f; g <= 1.001f; g += 0.05f) grid.push_back(g);
  const auto cdf8 = empirical_cdf(bw8, grid);
  const auto cdf32 = empirical_cdf(bw32, grid);
  const auto cdf64 = empirical_cdf(tw64, grid);

  Table table("Cumulative probability of unit zero-ratio <= x");
  table.set_header({"zero ratio", "BW 8x8", "BW 32x32", "TW G=64"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({format_double(grid[i], 2), format_double(cdf8[i], 3),
                   format_double(cdf32[i], 3), format_double(cdf64[i], 3)});
  }
  table.print();

  auto tail = [](const std::vector<float>& units, float threshold) {
    std::size_t over = 0;
    for (float u : units) over += u >= threshold;
    return static_cast<double>(over) / static_cast<double>(units.size());
  };
  std::printf(
      "\nfraction of units >=95%% zero:  TW64 %.4f | BW8 %.4f | BW32 %.4f\n",
      tail(tw64, 0.95f), tail(bw8, 0.95f), tail(bw32, 0.95f));
  std::printf("paper shape check (TW64 > BW8 > BW32): %s\n",
              (tail(tw64, 0.95f) >= tail(bw8, 0.95f) &&
               tail(bw8, 0.95f) >= tail(bw32, 0.95f))
                  ? "yes"
                  : "NO");
  return 0;
}
