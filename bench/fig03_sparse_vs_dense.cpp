// Fig. 3 — Sparsity and execution time of dense (tensor core / CUDA
// core) versus EW / VW / BW sparse models, for VGG and BERT.
//
// Paper's qualitative result to reproduce: all sparse baselines achieve
// >50% sparsity yet run *slower* than the dense model; the tensor core
// (Dense-T) widens the gap further; BW is the fastest sparse baseline
// but still ~3x slower than Dense-T.

#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tilesparse;
using namespace tilesparse::bench;

void run_model(const char* name, const std::vector<LayerGemm>& gemms,
               double ew_sparsity, double vw_sparsity, double bw_sparsity) {
  const DeviceModel dev = DeviceModel::v100();

  const double dense_t = dense_model_latency(dev, gemms, Core::kTensor);
  const double dense_c = dense_model_latency(dev, gemms, Core::kCuda);
  const double ew = csr_model_latency(dev, gemms, 1.0 - ew_sparsity, false);
  const double vw = csr_model_latency(dev, gemms, 1.0 - vw_sparsity, true);
  // BW at ~matched accuracy reaches lower sparsity; 32x32 blocks.
  const double bw_block_density = 1.0 - bw_sparsity;
  const double bw = bsr_model_latency(dev, gemms, bw_block_density, 32);

  Table table(std::string("Fig. 3 (") + name +
              "): sparsity and execution time (modelled V100)");
  table.set_header({"config", "sparsity", "exec time (ms)", "vs Dense-T"});
  auto row = [&](const char* config, double sparsity, double seconds) {
    table.add_row({config, format_double(sparsity, 2),
                   format_double(seconds * 1e3, 3),
                   format_double(seconds / dense_t, 2) + "x"});
  };
  row("Dense-T", 0.0, dense_t);
  row("Dense-C", 0.0, dense_c);
  row("EW (cuSparse model)", ew_sparsity, ew);
  row("VW (cuSparse model)", vw_sparsity, vw);
  row("BW (BlockSparse model)", bw_sparsity, bw);
  table.print();
  std::printf(
      "paper shape check: EW/VW slower than Dense-C: %s | BW slower than "
      "Dense-T: %s\n\n",
      (ew > dense_c && vw > dense_c) ? "yes" : "NO",
      (bw > dense_t) ? "yes" : "NO");
}

}  // namespace

int main() {
  std::puts("== Reproduction of paper Fig. 3 ==\n"
            "Sparsity levels chosen at <1% accuracy drop per the paper:\n");
  // Paper reports all patterns above 50% sparsity at <=1% accuracy loss,
  // EW the highest.
  run_model("VGG", tilesparse::vgg16_gemms(), 0.80, 0.70, 0.55);
  run_model("BERT", tilesparse::bert_base_gemms(), 0.80, 0.70, 0.55);
  return 0;
}
