// Sec. VII-C headline averages — the paper's abstract-level numbers:
// at matched accuracy drop (<3% BERT, <1% VGG, <1 BLEU NMT), TW averages
// 1.95x on tensor cores (BW 0.41x) and 2.86x on CUDA cores (EW 0.69x,
// VW 0.47x).
//
// We reproduce the *structure*: per-model speedups at the paper's
// matched-accuracy sparsity levels, then the cross-model geometric mean.

#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main() {
  std::puts("== Reproduction of Sec. VII-C average speedups ==\n");
  const DeviceModel dev = DeviceModel::v100();

  struct Model {
    const char* name;
    std::vector<LayerGemm> gemms;
    // Sparsity each pattern reaches at the paper's accuracy budget
    // (from paper Fig. 12: EW highest, TW next, VW lower, BW lowest).
    double tw, bw, ew, vw;
  };
  const std::vector<Model> models = {
      {"BERT", bert_base_gemms(), 0.75, 0.55, 0.80, 0.70},
      {"VGG", vgg16_gemms(), 0.70, 0.50, 0.80, 0.65},
      {"NMT", nmt_gemms(), 0.70, 0.50, 0.80, 0.70},
  };

  std::vector<double> tw_tc, bw_tc, tw_cc, ew_cc, vw_cc;
  Table table("Per-model speedups at matched accuracy drop");
  table.set_header({"model", "TW (TC)", "BW (TC)", "TW (CC)", "EW (CC)",
                    "VW (CC)"});
  for (const auto& model : models) {
    const double dense_tc = dense_model_latency(dev, model.gemms, Core::kTensor);
    const double dense_cc = dense_model_latency(dev, model.gemms, Core::kCuda);

    TwExecOptions cc_opts;
    cc_opts.core = Core::kCuda;
    const double s_tw_tc =
        dense_tc / tw_model_latency(dev, model.gemms, model.tw, 128);
    const double s_bw_tc =
        dense_tc / bsr_model_latency(dev, model.gemms, 1.0 - model.bw, 32);
    const double s_tw_cc =
        dense_cc / tw_model_latency(dev, model.gemms, model.tw, 128, cc_opts);
    const double s_ew_cc =
        dense_cc / csr_model_latency(dev, model.gemms, 1.0 - model.ew, false);
    const double s_vw_cc =
        dense_cc / csr_model_latency(dev, model.gemms, 1.0 - model.vw, true);

    tw_tc.push_back(s_tw_tc);
    bw_tc.push_back(s_bw_tc);
    tw_cc.push_back(s_tw_cc);
    ew_cc.push_back(s_ew_cc);
    vw_cc.push_back(s_vw_cc);
    table.add_row(model.name,
                  {s_tw_tc, s_bw_tc, s_tw_cc, s_ew_cc, s_vw_cc}, 2);
  }
  table.add_row("geomean",
                {geomean(tw_tc), geomean(bw_tc), geomean(tw_cc),
                 geomean(ew_cc), geomean(vw_cc)},
                2);
  table.print();

  std::printf(
      "\npaper anchors: TW 1.95x (TC), BW 0.41x, TW 2.86x (CC), EW 0.69x, "
      "VW 0.47x\n"
      "shape check — TW > 1 on both cores, all baselines < 1: %s\n",
      (geomean(tw_tc) > 1.0 && geomean(tw_cc) > 1.0 && geomean(bw_tc) < 1.0 &&
       geomean(ew_cc) < 1.0 && geomean(vw_cc) < 1.0)
          ? "yes"
          : "NO");
  return 0;
}
