// Fig. 14 — Latency/accuracy Pareto: for each model (BERT, VGG, NMT)
// and each pattern, sweep sparsity and report (accuracy, speedup) pairs.
// Tensor-core comparison: TW vs BW; CUDA-core comparison: TW vs EW vs VW.
//
// Paper shape: only TW extends the Pareto frontier (speedup > 1 with
// small accuracy loss); EW/VW/BW all land below 1x.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "nn/prune_experiment.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

namespace {

struct SweepPoint {
  double sparsity;
  double metric;
};

/// Accuracy sweep for one pattern on one task.
std::vector<SweepPoint> accuracy_sweep(PruneTask& task,
                                       const std::vector<MatrixF>& baseline,
                                       PatternKind kind, int finetune) {
  std::vector<SweepPoint> points;
  for (double s : {0.4, 0.6, 0.75}) {
    restore_params(task.prunable(), baseline);
    PatternSpec spec;
    spec.kind = kind;
    spec.sparsity = s;
    spec.g = 16;
    spec.block = 8;
    spec.vector_len = 8;
    points.push_back({s, prune_and_evaluate(task, spec, finetune).metric});
  }
  return points;
}

/// Model-level latency speedup of a pattern at a sparsity, per core.
double speedup(const std::vector<LayerGemm>& gemms, PatternKind kind,
               double sparsity, Core core) {
  const DeviceModel dev = DeviceModel::v100();
  const double dense = dense_model_latency(dev, gemms, core);
  switch (kind) {
    case PatternKind::kTw: {
      TwExecOptions options;
      options.core = core;
      return dense / tw_model_latency(dev, gemms, sparsity, 128, options);
    }
    case PatternKind::kBw:
      return dense / bsr_model_latency(dev, gemms, 1.0 - sparsity, 32);
    case PatternKind::kEw:
      return dense / csr_model_latency(dev, gemms, 1.0 - sparsity, false);
    case PatternKind::kVw:
      return dense / csr_model_latency(dev, gemms, 1.0 - sparsity, true);
    default:
      return 1.0;
  }
}

void run_model(const char* title, PruneTask& task,
               const std::vector<LayerGemm>& gemms, int finetune) {
  const auto baseline = snapshot_params(task.prunable());
  const double dense_metric = task.evaluate();

  Table table(std::string("Fig. 14: ") + title +
              " — (metric, speedup) per pattern and sparsity");
  table.set_header({"pattern", "sparsity", "metric", "speedup TC",
                    "speedup CC"});
  table.add_row({"Dense", "0.00", format_double(dense_metric, 3), "1.000",
                 "1.000"});
  for (PatternKind kind : {PatternKind::kTw, PatternKind::kBw, PatternKind::kEw,
                           PatternKind::kVw}) {
    const auto points = accuracy_sweep(task, baseline, kind, finetune);
    for (const auto& pt : points) {
      table.add_row({pattern_name(kind), format_double(pt.sparsity, 2),
                     format_double(pt.metric, 3),
                     format_double(speedup(gemms, kind, pt.sparsity,
                                           Core::kTensor), 3),
                     format_double(speedup(gemms, kind, pt.sparsity,
                                           Core::kCuda), 3)});
    }
  }
  table.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("== Reproduction of paper Fig. 14 ==\n");
  {
    auto task = make_bert_cls_task(250);
    run_model("BERT", *task, bert_base_gemms(), 60);
  }
  {
    auto task = make_vgg_task(250);
    run_model("VGG", *task, vgg16_gemms(), 60);
  }
  {
    auto task = make_nmt_task(400);
    run_model("NMT", *task, nmt_gemms(), 100);
  }
  std::puts(
      "paper shape check: only TW rows should show speedup > 1 on both "
      "cores; EW/VW/BW < 1.");
  return 0;
}
