// Format Pareto sweep: pack each TW-pruned task under EVERY registered
// execution format and tabulate task metric vs packed bytes vs
// effective MACs — the serving-time Pareto view (which format to ship
// at which sparsity) that used to require a by-hand loop per format.
//
// The metric is measured end-to-end with evaluate_with_format (the
// model truly serves through the packed backend); bytes/MACs come from
// packing the same pruned weights standalone, so tasks whose packed
// path is not layer-shaped (conv im2col, LSTM gates) still report
// storage and compute.
//
// Usage: fmt_pareto [--json=PATH] [--pretrain=N] [--finetune=N]
//                   [--sparsity=PCT] [--m=ROWS] [--task=NAME]
// --task filters by substring ("bert_cls", "bert_span", "vgg", "nmt").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend_registry.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/importance.hpp"

namespace {

using namespace tilesparse;
using bench::double_flag;
using bench::size_flag;
using bench::string_flag;

struct TaskSpec {
  const char* key;
  std::function<std::unique_ptr<PruneTask>(int)> make;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const int pretrain = static_cast<int>(size_flag(argc, argv, "pretrain", 60));
  const int finetune = static_cast<int>(size_flag(argc, argv, "finetune", 30));
  const double sparsity = double_flag(argc, argv, "sparsity", 0.6);
  const std::size_t m = size_flag(argc, argv, "m", 64);
  const std::string filter = string_flag(argc, argv, "task", "");

  const std::vector<TaskSpec> specs = {
      {"bert_cls", [](int steps) { return make_bert_cls_task(steps); }},
      {"bert_span", [](int steps) { return make_bert_span_task(steps); }},
      {"vgg", [](int steps) { return make_vgg_task(steps); }},
      {"nmt", [](int steps) { return make_nmt_task(steps); }},
  };

  bench::BenchJson json;
  for (const TaskSpec& spec : specs) {
    if (!filter.empty() && std::string(spec.key).find(filter) == std::string::npos)
      continue;
    auto task = spec.make(pretrain);

    PatternSpec prune_spec;
    prune_spec.kind = PatternKind::kTw;
    prune_spec.sparsity = sparsity;
    prune_spec.g = 8;
    const PruneResult pruned = prune_and_evaluate(*task, prune_spec, finetune);

    std::printf("\n%s  (TW sparsity %.2f, pruned metric %.3f)\n",
                task->name().c_str(), pruned.achieved_sparsity, pruned.metric);
    std::printf("%-10s %10s %12s %14s\n", "format", "metric", "KiB", "MACs");

    for (const std::string& format : registered_formats()) {
      const double metric =
          evaluate_with_format(*task, format, &pruned.patterns);

      // Storage/compute from packing the same pruned weights standalone.
      double bytes = 0.0, macs = 0.0;
      const std::vector<Param*> weights = task->prunable();
      std::vector<MatrixF> scores;
      scores.reserve(weights.size());
      for (const Param* p : weights) scores.push_back(magnitude_scores(p->value));
      for (std::size_t i = 0; i < weights.size(); ++i) {
        PackOptions options;
        if (i < pruned.patterns.size()) options.pattern = &pruned.patterns[i];
        options.scores = &scores[i];
        const auto packed = make_packed(format, weights[i]->value, options);
        bytes += static_cast<double>(packed->bytes());
        macs += packed->macs(m);
      }
      std::printf("%-10s %10.3f %12.1f %14.0f\n", format.c_str(), metric,
                  bytes / 1024.0, macs);

      bench::BenchRecord record;
      record.name = "fmt_pareto/" + std::string(spec.key) + "/s" +
                    std::to_string(static_cast<int>(sparsity * 100));
      record.format = format;
      record.m = m;
      record.sparsity = pruned.achieved_sparsity;
      record.metric = metric;
      record.bytes = bytes;
      record.macs = macs;
      json.add(record);
    }
  }

  if (!json_path.empty() && !json.empty()) json.write(json_path);
  return 0;
}
