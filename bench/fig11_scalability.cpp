// Fig. 11 — Speedup scalability of TW (G=128) on BERT up to 99% sparsity
// plus performance counters: normalized load/store transactions and
// FLOPS efficiency.
//
// Paper shapes: ~0.74x at 0% (mask overhead, 2x loads), break-even near
// 40%, 2.26x at 75%, 11.6x at 99%; FLOPS efficiency holds until ~80%
// then collapses.

#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

int main() {
  std::puts("== Reproduction of paper Fig. 11 ==\n");
  const DeviceModel dev = DeviceModel::v100();
  // Batch 8 (M = 1024): at batch 1 the per-kernel launch floor caps the
  // extreme-sparsity speedup; the paper's scalability study needs the
  // compute term to dominate.
  const auto gemms = bert_base_gemms(128, 8);

  // Dense reference including counters.
  double dense_time = 0.0, dense_loads = 0.0, dense_stores = 0.0;
  for (const auto& gemm : gemms) {
    const auto r = dense_gemm_latency(dev, gemm.shape, Core::kTensor);
    dense_time += r.seconds();
    dense_loads += r.load_bytes;
    dense_stores += r.store_bytes;
  }

  Table table("TW (G=128) scalability on BERT, normalized to dense");
  table.set_header({"sparsity %", "speedup", "norm loads", "norm stores",
                    "FLOPS efficiency"});
  for (double s : {0.0, 0.10, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.70, 0.75,
                   0.80, 0.90, 0.95, 0.99}) {
    double time = 0.0, loads = 0.0, stores = 0.0, flops = 0.0;
    std::uint64_t seed = 900;
    for (const auto& gemm : gemms) {
      const TilePattern p = make_tw_pattern(gemm.shape, s, 128, seed++);
      const auto r = tw_gemm_latency(dev, gemm.shape.m, p);
      time += r.seconds();
      loads += r.load_bytes;
      stores += r.store_bytes;
      flops += r.useful_flops;
    }
    const double efficiency = flops / (time * dev.tensor_core_flops);
    table.add_row({format_double(s * 100, 0), format_double(dense_time / time, 2),
                   format_double(loads / dense_loads, 2),
                   format_double(stores / dense_stores, 2),
                   format_double(efficiency, 3)});
  }
  table.print();

  const double tw0 = tw_model_latency(dev, gemms, 0.0, 128);
  const double tw99 = tw_model_latency(dev, gemms, 0.99, 128);
  std::printf(
      "\npaper anchors: TW-0 speedup %.2f (paper ~0.74), TW-99 speedup %.1f "
      "(paper 11.6)\n",
      dense_time / tw0, dense_time / tw99);
  return 0;
}
