// Fig. 15 — End-to-end latency breakdown for TW-sparse BERT and NMT at
// 75% sparsity under four optimization settings: dense baseline, TW
// without the transpose optimization, transpose only, and transpose +
// kernel fusion.
//
// Paper shapes: without transpose the GEMM gains vanish; the transpose
// kernels cost ~10% unfused; with both optimizations BERT reaches
// ~1.61x end-to-end (GEMM-only 2.26x) and NMT ~1.86x (2.38x).

#include <cstdio>

#include "bench_util.hpp"
#include "sim/e2e_model.hpp"
#include "util/table.hpp"
#include "workload/model_ops.hpp"

using namespace tilesparse;
using namespace tilesparse::bench;

namespace {

struct ModelSetup {
  const char* name;
  std::vector<LayerGemm> gemms;
  std::vector<E2eOp> (*build)(std::size_t, std::size_t,
                              const std::vector<const TilePattern*>*);
  std::size_t seq, batch;
};

void run(const ModelSetup& setup) {
  const DeviceModel dev = DeviceModel::v100();

  // TW patterns at 75% for every weight GEMM.
  std::vector<TilePattern> patterns;
  std::uint64_t seed = 1500;
  for (const auto& gemm : setup.gemms)
    patterns.push_back(make_tw_pattern(gemm.shape, 0.75, 128, seed++));
  std::vector<const TilePattern*> ptrs;
  for (const auto& p : patterns) ptrs.push_back(&p);

  const auto sparse_ops = setup.build(setup.seq, setup.batch, &ptrs);
  const auto dense_ops = setup.build(setup.seq, setup.batch, nullptr);

  E2eOptions dense_opt;
  dense_opt.use_tw = false;
  const auto dense = e2e_latency(dev, dense_ops, dense_opt);

  auto tw_case = [&](bool transpose, bool fusion) {
    E2eOptions options;
    options.transpose_opt = transpose;
    options.fusion = fusion;
    return e2e_latency(dev, sparse_ops, options);
  };
  const auto no_transpose = tw_case(false, false);
  const auto transpose_only = tw_case(true, false);
  const auto transpose_fusion = tw_case(true, true);

  Table table(std::string("Fig. 15 (") + setup.name +
              " @75%): e2e latency breakdown, normalized to dense total");
  table.set_header({"config", "GEMM", "transpose", "others", "total",
                    "e2e speedup"});
  auto row = [&](const char* name, const E2eBreakdown& b) {
    table.add_row({name, format_double(b.gemm_s / dense.total(), 3),
                   format_double(b.transpose_s / dense.total(), 3),
                   format_double(b.other_s / dense.total(), 3),
                   format_double(b.total() / dense.total(), 3),
                   format_double(dense.total() / b.total(), 2) + "x"});
  };
  row("Dense (fused)", dense);
  row("TW w/o transpose", no_transpose);
  row("TW transpose only", transpose_only);
  row("TW transpose+fusion", transpose_fusion);
  table.print();

  const double gemm_speedup = dense.gemm_s / transpose_fusion.gemm_s;
  std::printf("GEMM-only speedup: %.2fx | e2e speedup: %.2fx\n\n",
              gemm_speedup, dense.total() / transpose_fusion.total());
}

}  // namespace

int main() {
  std::puts("== Reproduction of paper Fig. 15 ==\n");
  run({"BERT", bert_base_gemms(), &build_bert_ops, 128, 1});
  run({"NMT", nmt_gemms(), &build_nmt_ops, 32, 32});
  return 0;
}
