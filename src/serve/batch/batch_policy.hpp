#pragma once
// BatchPolicy — the knobs governing cross-request batching.
//
// The batcher trades a little latency (linger) for a lot of throughput
// (wide-M GEMM).  This struct is the whole trade-off surface; it is
// plain data so benches and tests can sweep it.

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

namespace tilesparse::serve {

struct BatchPolicy {
  /// Master switch.  Off, every batchable request runs solo on the
  /// worker that popped it (the PR 8 path, bit-for-bit).
  bool enabled = false;
  /// Flush a forming batch once its input rows reach this many.
  std::size_t max_batch_m = 256;
  /// How long the batch leader waits for co-travellers after the oldest
  /// member arrived before flushing anyway.
  std::chrono::microseconds max_linger{200};
  /// Deadline-aware bypass: a request whose remaining budget is below
  /// bypass_slack_factor * max_linger skips batching and runs solo
  /// immediately — lingering would eat the budget it has left.
  double bypass_slack_factor = 2.0;
  /// DRR quantum (byte·MAC) added to each backlogged tenant's deficit
  /// per round.  0 = auto: the largest member cost seen so far, so
  /// every round lets each tenant afford at least one member.
  double drr_quantum = 0.0;
  /// Per-tenant DRR weights (quantum multipliers).  Tenants absent
  /// from the map get weight 1.  Weights <= 0 are treated as 1.
  std::map<std::string, double> tenant_weights;
};

}  // namespace tilesparse::serve
