#include "serve/batch/request_batcher.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "util/guards.hpp"

namespace tilesparse::serve {

RequestBatcher::RequestBatcher(const BatchPolicy& policy, Completer completer)
    : policy_(policy), completer_(std::move(completer)) {
  TS_CHECK(completer_ != nullptr, "RequestBatcher: null completer");
  if (policy_.max_batch_m == 0) policy_.max_batch_m = 1;
  if (policy_.max_linger.count() < 0) policy_.max_linger = {};
}

void RequestBatcher::complete_member(BatchMember& member, Response response) {
  response.tag = member.tag;
  response.queue_wait = member.arrival - member.enqueued;
  response.service_time = Clock::now() - member.arrival;
  completer_(member, std::move(response));
}

void RequestBatcher::complete_timeout(BatchMember& member, const char* reason) {
  Response response;
  response.status = RequestStatus::kTimeout;
  response.error = reason;
  complete_member(member, std::move(response));
}

void RequestBatcher::serve(const std::shared_ptr<BatchEntry>& entry,
                           BatchMember member, const BatchWorker& worker) {
  const Clock::time_point now = Clock::now();
  // Deadline-aware bypass: lingering costs up to max_linger; a member
  // without at least bypass_slack_factor x that much budget left would
  // spend its remaining life waiting for co-travellers.
  const auto slack = std::chrono::duration_cast<Clock::duration>(
      policy_.bypass_slack_factor * policy_.max_linger);
  const bool bypass =
      !policy_.enabled || (member.deadline != Clock::time_point::max() &&
                           member.deadline - now < slack);

  std::unique_lock lock(mutex_);
  if (cancelled_) {
    lock.unlock();
    complete_timeout(member, "cancelled: runtime shutdown");
    return;
  }
  if (bypass) {
    if (policy_.enabled) ++stats_.solo_bypass;
    lock.unlock();
    run_solo(*entry, member, worker, /*force_fallback=*/false,
             /*prior_attempts=*/0);
    return;
  }

  auto& slot = groups_[entry->name()];
  if (!slot) slot = std::make_unique<Group>(&policy_);
  Group& group = *slot;
  group.scheduler.enqueue(std::move(member));
  if (group.leader_active) {
    // A leader is lingering: wake it so it can re-check quorum, and
    // return to the admission queue — popping workers are the feeders
    // that keep this batch filling.
    group.cv.notify_all();
    return;
  }
  group.leader_active = true;
  lead(group, entry, worker, lock);
}

void RequestBatcher::lead(Group& group, const std::shared_ptr<BatchEntry>& entry,
                          const BatchWorker& worker,
                          std::unique_lock<std::mutex>& lock) {
  for (;;) {
    // Linger: wait for rows to reach max_batch_m, but never past
    // oldest-member arrival + max_linger.
    while (!cancelled_ && !draining_ && !group.scheduler.empty() &&
           group.scheduler.pending_rows() < policy_.max_batch_m) {
      const Clock::time_point flush_at =
          group.scheduler.oldest_arrival() + policy_.max_linger;
      if (Clock::now() >= flush_at) break;
      group.cv.wait_until(lock, flush_at);
    }
    if (group.scheduler.empty()) break;
    if (cancelled_) {
      std::vector<BatchMember> members = group.scheduler.drain();
      lock.unlock();
      for (BatchMember& member : members)
        complete_timeout(member, "cancelled: runtime shutdown");
      lock.lock();
      break;
    }
    std::vector<BatchMember> expired;
    std::vector<BatchMember> members =
        group.scheduler.select(policy_.max_batch_m, Clock::now(), expired);
    lock.unlock();
    for (BatchMember& member : expired)
      complete_timeout(member, "deadline expired while waiting in batch");
    if (!members.empty())
      run_batch(group, *entry, std::move(members), worker);
    lock.lock();
    if (group.scheduler.empty()) break;
  }
  group.leader_active = false;
}

void RequestBatcher::run_batch(Group& group, BatchEntry& entry,
                               std::vector<BatchMember> members,
                               const BatchWorker& worker) {
  std::vector<const MatrixF*> parts;
  parts.reserve(members.size());
  Clock::time_point batch_deadline = Clock::time_point::min();
  for (const BatchMember& member : members) {
    parts.push_back(&member.input);
    batch_deadline = std::max(batch_deadline, member.deadline);
  }
  const MatrixF& staged = group.stage.gather(parts);
  const std::size_t batch_rows = staged.rows();

  // The armed deadline is the LATEST member deadline: the tightest
  // member must not kill its co-travellers — if it expires mid-run it
  // alone times out at scatter.
  worker.cancel->reset(batch_deadline);
  MatrixF out;
  try {
    out = entry.run(*worker.primary, staged);
  } catch (const CancelledError& e) {
    // Past the latest deadline (or shutdown cancel): the whole batch
    // is out of time.
    for (BatchMember& member : members) complete_timeout(member, e.what());
    return;
  } catch (...) {
    // Batch-level fault (a poisoned member, an injected fault, a
    // rejected graph): isolate by re-running every member SOLO on the
    // serial fallback path, so exactly the culpable member fails.
    {
      std::lock_guard stats_lock(mutex_);
      stats_.solo_fallback += members.size();
    }
    for (BatchMember& member : members)
      run_solo(entry, member, worker, /*force_fallback=*/true,
               /*prior_attempts=*/1);
    return;
  }

  {
    std::lock_guard stats_lock(mutex_);
    ++stats_.batches;
    stats_.batched_members += members.size();
    stats_.max_batch_rows = std::max(stats_.max_batch_rows, batch_rows);
  }
  const Clock::time_point done = Clock::now();
  const std::vector<RowStage::Slice>& slices = group.stage.slices();
  TS_ASSERT(slices.size() == members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    BatchMember& member = members[i];
    if (done >= member.deadline) {
      // The member's own budget ran out while the (longer-deadlined)
      // batch executed: drop its output slice, terminal TIMEOUT; its
      // co-travellers are unaffected.
      complete_timeout(member, "deadline expired during batched execution");
      continue;
    }
    Response response;
    response.status = RequestStatus::kOk;
    response.attempts = 1;
    response.batched = true;
    response.batch_rows = batch_rows;
    const RowStage::Slice out_slice = RowStage::map_groups(
        slices[i], entry.group_rows_in(), entry.group_rows_out());
    response.result = RowStage::scatter(out, out_slice);
    complete_member(member, std::move(response));
  }
}

void RequestBatcher::run_solo(BatchEntry& entry, BatchMember& member,
                              const BatchWorker& worker, bool force_fallback,
                              std::uint32_t prior_attempts) {
  Response response;
  for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
    const bool use_fallback = force_fallback || attempt > 0;
    response.attempts = prior_attempts + attempt + 1;
    response.degraded = use_fallback;
    worker.cancel->reset(member.deadline);
    ExecScheduler& scheduler =
        use_fallback ? *worker.fallback : *worker.primary;
    try {
      response.result = entry.run(scheduler, member.input);
      response.status = RequestStatus::kOk;
      break;
    } catch (const CancelledError& e) {
      response.status = RequestStatus::kTimeout;
      response.error = e.what();
      break;
    } catch (const std::exception& e) {
      response.status = RequestStatus::kFailed;
      response.error = e.what();
    } catch (...) {
      response.status = RequestStatus::kFailed;
      response.error = "unknown exception from batch entry";
    }
    if (use_fallback) break;  // the fallback attempt was the last word
    if (Clock::now() >= member.deadline) {
      response.status = RequestStatus::kTimeout;
      response.error = "deadline expired before solo retry";
      break;
    }
  }
  complete_member(member, std::move(response));
}

void RequestBatcher::close(Close mode) {
  std::vector<BatchMember> orphaned;
  {
    std::lock_guard lock(mutex_);
    if (mode == Close::kCancel) {
      cancelled_ = true;
      for (auto& [name, group] : groups_) {
        std::vector<BatchMember> drained = group->scheduler.drain();
        for (BatchMember& member : drained)
          orphaned.push_back(std::move(member));
      }
    } else {
      draining_ = true;  // leaders flush without further lingering
    }
    for (auto& [name, group] : groups_) group->cv.notify_all();
  }
  for (BatchMember& member : orphaned)
    complete_timeout(member, "cancelled: runtime shutdown");
}

RequestBatcher::BatchStats RequestBatcher::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace tilesparse::serve
