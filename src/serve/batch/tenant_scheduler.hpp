#pragma once
// TenantScheduler — deficit-round-robin fairness across tenants
// sharing one batching runtime.
//
// Without it, batch composition is FIFO over arrival order, so a
// tenant blasting 10x the traffic owns 10x of every batch and the
// quiet tenant's latency collapses.  DRR fixes that with per-tenant
// queues and a deficit counter: each round every backlogged tenant's
// deficit grows by quantum x weight, and a tenant may place members
// into the forming batch only while its deficit covers their cost.
// Cost is the entry's byte·MAC figure (BatchEntry::cost) — a tenant
// sending few huge requests and one sending many small ones are
// charged the same currency — so at equal weights two backlogged
// tenants converge to ~1:1 *service*, not 1:1 request count.
// serve_batch_test drives a 10:1 offered-load pair through this and
// asserts the served-cost ratio stays near 1.
//
// The scheduler is externally locked: RequestBatcher calls every
// method under its own mutex (enqueue from follower workers, select
// from the batch leader).  It holds no lock of its own.

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "serve/batch/batch_policy.hpp"
#include "serve/request.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse::serve {

/// One request riding through the batcher: its completion handle, its
/// activation, and the accounting facts the scheduler needs.
struct BatchMember {
  RequestHandle handle;
  MatrixF input;
  std::string tenant;
  std::string tag;
  Clock::time_point enqueued{};  ///< runtime admission (queue_wait base)
  Clock::time_point arrival{};   ///< batcher arrival (linger base)
  Clock::time_point deadline = Clock::time_point::max();
  double cost = 1.0;  ///< byte·MAC service cost (BatchEntry::cost)
};

class TenantScheduler {
 public:
  /// `policy` must outlive the scheduler (the batcher owns both).
  explicit TenantScheduler(const BatchPolicy* policy) : policy_(policy) {}

  void enqueue(BatchMember member);

  std::size_t pending_members() const noexcept { return pending_members_; }
  std::size_t pending_rows() const noexcept { return pending_rows_; }
  bool empty() const noexcept { return pending_members_ == 0; }
  /// Earliest batcher-arrival among queued members; time_point::max()
  /// when empty.  The leader's flush deadline is this + max_linger.
  Clock::time_point oldest_arrival() const;

  /// DRR round: pops members for the next batch, up to `max_rows`
  /// input rows in total.  A member past its deadline at `now` is
  /// moved to `expired` instead of selected.  When nothing has been
  /// selected yet, one oversize member (rows >= max_rows) is admitted
  /// alone rather than starved forever.  Selection order within the
  /// batch is round-robin from a cursor that persists across calls.
  std::vector<BatchMember> select(std::size_t max_rows, Clock::time_point now,
                                  std::vector<BatchMember>& expired);

  /// Removes and returns every queued member (shutdown path).
  std::vector<BatchMember> drain();

  /// Cumulative byte·MAC cost select() has handed out per tenant —
  /// the service measure the fairness tests assert on.
  double served_cost(const std::string& tenant) const;
  std::vector<std::string> tenants() const;

 private:
  struct Tenant {
    std::deque<BatchMember> queue;
    double deficit = 0.0;
    double served = 0.0;
  };

  double quantum() const noexcept;
  double weight(const std::string& tenant) const noexcept;

  const BatchPolicy* policy_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> order_;  ///< round-robin order (first-seen)
  std::size_t cursor_ = 0;
  std::size_t pending_members_ = 0;
  std::size_t pending_rows_ = 0;
  double max_cost_seen_ = 1.0;  ///< auto-quantum when policy quantum is 0
};

}  // namespace tilesparse::serve
