#include "serve/batch/tenant_scheduler.hpp"

#include <algorithm>
#include <utility>

namespace tilesparse::serve {

void TenantScheduler::enqueue(BatchMember member) {
  auto [it, inserted] = tenants_.try_emplace(member.tenant);
  if (inserted) order_.push_back(member.tenant);
  max_cost_seen_ = std::max(max_cost_seen_, member.cost);
  ++pending_members_;
  pending_rows_ += member.input.rows();
  it->second.queue.push_back(std::move(member));
}

Clock::time_point TenantScheduler::oldest_arrival() const {
  Clock::time_point oldest = Clock::time_point::max();
  for (const auto& [name, tenant] : tenants_) {
    for (const BatchMember& member : tenant.queue)
      oldest = std::min(oldest, member.arrival);
  }
  return oldest;
}

double TenantScheduler::quantum() const noexcept {
  return policy_->drr_quantum > 0.0 ? policy_->drr_quantum : max_cost_seen_;
}

double TenantScheduler::weight(const std::string& tenant) const noexcept {
  auto it = policy_->tenant_weights.find(tenant);
  if (it == policy_->tenant_weights.end() || it->second <= 0.0) return 1.0;
  return it->second;
}

std::vector<BatchMember> TenantScheduler::select(
    std::size_t max_rows, Clock::time_point now,
    std::vector<BatchMember>& expired) {
  // Purge deadline-expired members first: they must not occupy batch
  // rows, and their tenants must not be charged for them.
  for (auto& [name, tenant] : tenants_) {
    auto it = tenant.queue.begin();
    while (it != tenant.queue.end()) {
      if (it->deadline <= now) {
        --pending_members_;
        pending_rows_ -= it->input.rows();
        expired.push_back(std::move(*it));
        it = tenant.queue.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::vector<BatchMember> out;
  if (max_rows == 0) max_rows = 1;
  std::size_t rows = 0;
  // A round that selects nothing into an empty batch doubles the next
  // replenish: no service was handed out, so fairness is untouched,
  // and a pathologically small configured quantum converges in
  // O(log(cost / quantum)) rounds instead of cost / quantum.
  double boost = 1.0;
  while (rows < max_rows && !order_.empty()) {
    bool any_pending = false;
    bool any_selected = false;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const std::size_t idx = (cursor_ + i) % order_.size();
      Tenant& tenant = tenants_.at(order_[idx]);
      if (tenant.queue.empty()) continue;
      any_pending = true;
      // One replenish per tenant per round, the classic DRR step.
      tenant.deficit += quantum() * weight(order_[idx]) * boost;
      while (!tenant.queue.empty()) {
        BatchMember& head = tenant.queue.front();
        const std::size_t head_rows = head.input.rows();
        // Oversize members are admitted only into an empty batch: they
        // run alone rather than starve (rows == 0 lifts the row cap).
        if (rows > 0 && rows + head_rows > max_rows) break;
        if (head.cost > tenant.deficit) break;
        tenant.deficit -= head.cost;
        tenant.served += head.cost;
        rows += head_rows;
        --pending_members_;
        pending_rows_ -= head_rows;
        out.push_back(std::move(head));
        tenant.queue.pop_front();
        any_selected = true;
        if (rows >= max_rows) break;
      }
      // An emptied queue forfeits its balance: deficit only accrues
      // while backlogged, so an idle tenant cannot bank service.
      if (tenant.queue.empty()) tenant.deficit = 0.0;
      if (rows >= max_rows) {
        cursor_ = (idx + 1) % order_.size();
        return out;
      }
    }
    if (!any_pending) break;
    // A full round with queues pending but nothing selected: every
    // head either does not fit the remaining rows (batch effectively
    // full — ship it) or is still saving deficit (only possible with
    // an empty batch; loop again and let deficits accrue).
    if (!any_selected && rows > 0) break;
    if (!any_selected) boost *= 2.0;
  }
  if (!order_.empty()) cursor_ = (cursor_ + 1) % order_.size();
  return out;
}

std::vector<BatchMember> TenantScheduler::drain() {
  std::vector<BatchMember> out;
  out.reserve(pending_members_);
  for (auto& [name, tenant] : tenants_) {
    for (BatchMember& member : tenant.queue) out.push_back(std::move(member));
    tenant.queue.clear();
    tenant.deficit = 0.0;
  }
  pending_members_ = 0;
  pending_rows_ = 0;
  return out;
}

double TenantScheduler::served_cost(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.served;
}

std::vector<std::string> TenantScheduler::tenants() const { return order_; }

}  // namespace tilesparse::serve
