#pragma once
// RequestBatcher — coalesces concurrent admitted requests for the same
// BatchEntry into one wide-M graph execution.
//
// The serving runtime's workers discover batches cooperatively, with
// no dedicated batching thread:
//
//   worker pops item ──► serve(entry, member, worker)
//        │
//        ├─ bypass?  remaining deadline budget below the linger
//        │  window (policy.bypass_slack_factor x max_linger), or
//        │  batching disabled ──► run solo on the calling worker now.
//        │
//        ├─ a leader is already forming a batch for this entry ──►
//        │  deposit the member with the TenantScheduler, nudge the
//        │  leader, return (the worker goes back to popping — it is
//        │  the feeder that keeps batches filling).
//        │
//        └─ no leader ──► become the leader: linger up to
//           policy.max_linger from the oldest member's arrival (or
//           until pending rows reach policy.max_batch_m), DRR-select
//           a fair batch, gather rows (exec/row_stage.hpp), run the
//           entry ONCE through this worker's scheduler, scatter each
//           member its own output rows.  Repeat while members remain,
//           then step down.
//
// Failure isolation: a batch run that throws CancelledError times out
// every member (the deadline armed is the latest member deadline, so
// this means the whole batch was doomed or the runtime is shutting
// down).  Any other failure re-runs each member SOLO on the worker's
// serial fallback scheduler — one poisoned member then fails alone
// (FAILED) while its co-travellers still complete OK.  A member whose
// own deadline expired while the batch executed gets TIMEOUT and its
// output slice is dropped.  Every member reaches exactly one terminal
// status through the Completer, whatever path it took.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/batch_entry.hpp"
#include "exec/row_stage.hpp"
#include "exec/scheduler.hpp"
#include "serve/batch/batch_policy.hpp"
#include "serve/batch/tenant_scheduler.hpp"
#include "util/cancellation.hpp"

namespace tilesparse::serve {

/// The execution resources a serving worker lends the batcher while it
/// serves (or leads) a batch.  All pointers outlive the call.
struct BatchWorker {
  ExecScheduler* primary = nullptr;
  ExecScheduler* fallback = nullptr;  ///< serial, validation-off
  CancelToken* cancel = nullptr;
  std::size_t worker_id = 0;
};

class RequestBatcher {
 public:
  /// Called exactly once per member with its terminal response; the
  /// runtime's completer records global + per-tenant accounting and
  /// completes the member's handle.
  using Completer = std::function<void(BatchMember& member, Response response)>;

  RequestBatcher(const BatchPolicy& policy, Completer completer);

  /// Serves one admitted member of `entry` using the calling worker.
  /// May block while the caller acts as batch leader.  On return the
  /// member either reached a terminal status or was deposited with the
  /// current leader (which will complete it).
  void serve(const std::shared_ptr<BatchEntry>& entry, BatchMember member,
             const BatchWorker& worker);

  enum class Close {
    kDrain,   ///< leaders flush immediately, new members still served
    kCancel,  ///< queued members complete TIMEOUT, new members too
  };
  void close(Close mode);

  struct BatchStats {
    std::uint64_t batches = 0;          ///< wide-M flushes executed
    std::uint64_t batched_members = 0;  ///< members served inside them
    std::uint64_t solo_bypass = 0;      ///< deadline-bypass solo runs
    std::uint64_t solo_fallback = 0;    ///< members re-run solo after a batch fault
    std::size_t max_batch_rows = 0;     ///< widest flush (input rows)
  };
  BatchStats stats() const;

  const BatchPolicy& policy() const noexcept { return policy_; }

 private:
  /// Per-entry batch formation state.  Stable address (unique_ptr in
  /// the map): the leader blocks on its cv with the batcher mutex.
  struct Group {
    explicit Group(const BatchPolicy* policy) : scheduler(policy) {}
    TenantScheduler scheduler;
    std::condition_variable cv;
    bool leader_active = false;
    RowStage stage;  ///< leader-only (one leader per group at a time)
  };

  void lead(Group& group, const std::shared_ptr<BatchEntry>& entry,
            const BatchWorker& worker, std::unique_lock<std::mutex>& lock);
  void run_batch(Group& group, BatchEntry& entry,
                 std::vector<BatchMember> members, const BatchWorker& worker);
  /// Solo execution on the calling worker: primary attempt, serial
  /// fallback retry on non-cancel failure (mirrors the runtime's
  /// max_attempts=2 shape without backoff).
  void run_solo(BatchEntry& entry, BatchMember& member,
                const BatchWorker& worker, bool force_fallback,
                std::uint32_t prior_attempts);
  void complete_member(BatchMember& member, Response response);
  void complete_timeout(BatchMember& member, const char* reason);

  BatchPolicy policy_;
  Completer completer_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Group>> groups_;
  bool draining_ = false;
  bool cancelled_ = false;
  BatchStats stats_;
};

}  // namespace tilesparse::serve
