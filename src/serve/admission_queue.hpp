#pragma once
// AdmissionQueue — the bounded, priority-classed MPMC queue between
// submitters and serving workers.
//
// The structural exemplar is the lock-aware request/submission-queue
// pair of accelerator virtualisation stacks (a producer-side interface
// that never blocks the submitter, a consumer side that parks on a
// condition variable): producers either admit in O(1) or learn
// immediately that the system is saturated.  Robustness properties:
//
//  * Bounded: explicit capacity, checked under the lock.  A full queue
//    SHEDS — push() never blocks, because a blocked submitter turns
//    overload into upstream back-pressure collapse.
//  * Priority-classed: pop() serves the highest non-empty class, FIFO
//    within a class.  Optionally, a full queue admits an urgent arrival
//    by evicting its newest entry of a strictly lower class (the callee
//    learns which entry was shed and completes it as REJECTED — the
//    entry still reaches a terminal status).
//  * Closeable: close() stops admissions while pops drain the backlog
//    (graceful shutdown); close_and_drain() additionally hands every
//    queued entry back to the caller for immediate terminal completion
//    (cancelling shutdown).  Blocked pops wake on close.
//
// The queue moves values of any type T; priorities are supplied at
// push time so T needs no intrusive fields.

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/request.hpp"
#include "util/guards.hpp"

namespace tilesparse::serve {

enum class PushOutcome {
  kAdmitted,
  kAdmittedAfterEvict,  ///< admitted; *evicted holds the shed entry
  kRejectedFull,
  kRejectedClosed,
};

template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return size_;
  }

  /// Non-blocking admission.  When the queue is full and `evicted` is
  /// non-null, an entry of the lowest class strictly below `priority`
  /// is shed into *evicted to make room; with no such entry (or
  /// evicted == nullptr) the push is rejected.  Within the victim
  /// class, the shed entry belongs to the tenant with the HIGHEST
  /// queue-wide in-queue count — one tenant flooding the queue is shed
  /// before anyone else — and is that tenant's newest entry; with no
  /// tenants (all pushes anonymous) or tied counts this degenerates to
  /// the plain newest entry.
  PushOutcome push(T value, Priority priority, T* evicted = nullptr,
                   std::string_view tenant = {}) {
    const auto cls = static_cast<std::size_t>(priority);
    TS_CHECK(cls < kPriorityClasses, "AdmissionQueue: priority out of range");
    std::unique_lock lock(mutex_);
    if (closed_) return PushOutcome::kRejectedClosed;
    PushOutcome outcome = PushOutcome::kAdmitted;
    if (size_ >= capacity_) {
      if (!evicted) return PushOutcome::kRejectedFull;
      // Shed from the lowest class below the arrival: lowest-class-
      // first protects the most urgent backlog.
      std::size_t victim = kPriorityClasses;
      for (std::size_t c = 0; c < cls; ++c) {
        if (!classes_[c].empty()) {
          victim = c;
          break;
        }
      }
      if (victim == kPriorityClasses) return PushOutcome::kRejectedFull;
      std::deque<Entry>& dq = classes_[victim];
      // Newest-to-oldest scan with a strict `>`: the newest entry of
      // the most-queued tenant wins; full count ties fall back to the
      // plain newest (the pre-tenant behavior, which wastes the least
      // already-invested queue time).
      std::size_t best = dq.size() - 1;
      std::size_t best_count = 0;
      for (std::size_t i = dq.size(); i-- > 0;) {
        const std::size_t count = tenant_count(dq[i].tenant);
        if (count > best_count) {
          best_count = count;
          best = i;
        }
      }
      drop_tenant(dq[best].tenant);
      *evicted = std::move(dq[best].value);
      dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(best));
      --size_;
      outcome = PushOutcome::kAdmittedAfterEvict;
    }
    if (!tenant.empty()) ++tenant_counts_[std::string(tenant)];
    classes_[cls].push_back(Entry{std::move(value), std::string(tenant)});
    ++size_;
    lock.unlock();
    cv_.notify_one();
    return outcome;
  }

  /// Blocks until an entry is available (highest class first, FIFO
  /// within a class) or the queue is closed AND empty; false means
  /// drained-and-closed (worker exit signal).
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    take_highest(out);
    return true;
  }

  /// Non-blocking pop; false when empty.
  bool try_pop(T& out) {
    std::lock_guard lock(mutex_);
    if (size_ == 0) return false;
    take_highest(out);
    return true;
  }

  /// Stops admissions; queued entries keep draining through pop().
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Stops admissions and removes the whole backlog (highest class
  /// first), returning it so the caller can complete every entry with a
  /// terminal status.  Blocked pops wake and return false.
  std::vector<T> close_and_drain() {
    std::vector<T> drained;
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      drained.reserve(size_);
      for (std::size_t c = kPriorityClasses; c-- > 0;) {
        for (Entry& entry : classes_[c]) drained.push_back(std::move(entry.value));
        classes_[c].clear();
      }
      size_ = 0;
      tenant_counts_.clear();
    }
    cv_.notify_all();
    return drained;
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Entries a tenant currently has queued (diagnostics/tests).
  std::size_t tenant_depth(std::string_view tenant) const {
    std::lock_guard lock(mutex_);
    return tenant_count(tenant);
  }

 private:
  struct Entry {
    T value;
    std::string tenant;  ///< empty = anonymous (untracked)
  };

  std::size_t tenant_count(std::string_view tenant) const {
    if (tenant.empty()) return 0;
    auto it = tenant_counts_.find(tenant);
    return it == tenant_counts_.end() ? 0 : it->second;
  }

  void drop_tenant(const std::string& tenant) {
    if (tenant.empty()) return;
    auto it = tenant_counts_.find(tenant);
    TS_CHECK(it != tenant_counts_.end() && it->second > 0,
             "AdmissionQueue: tenant count bookkeeping diverged");
    if (--it->second == 0) tenant_counts_.erase(it);
  }

  void take_highest(T& out) {
    for (std::size_t c = kPriorityClasses; c-- > 0;) {
      if (classes_[c].empty()) continue;
      drop_tenant(classes_[c].front().tenant);
      out = std::move(classes_[c].front().value);
      classes_[c].pop_front();
      --size_;
      return;
    }
    TS_CHECK(false, "AdmissionQueue: size/classes bookkeeping diverged");
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<Entry>, kPriorityClasses> classes_;
  /// In-queue entries per (non-anonymous) tenant, across all classes.
  std::map<std::string, std::size_t, std::less<>> tenant_counts_;
  std::size_t size_ = 0;  ///< sum of class sizes (kept for O(1) checks)
  bool closed_ = false;
};

}  // namespace tilesparse::serve
