#pragma once
// Request/response types for the fault-tolerant serving runtime.
//
// A Request is one unit of admitted traffic: a priority class, an
// absolute deadline, and the work itself — a callable that runs on a
// serving worker with that worker's ExecScheduler (deadline-armed
// cancel token installed) and returns the response payload.  The
// runtime guarantees every submitted request reaches EXACTLY ONE
// terminal status:
//
//   kOk       — the work returned a result,
//   kRejected — shed without execution: admission queue full, evicted
//               for a higher-priority arrival, or runtime shut down,
//   kTimeout  — deadline passed while queued, mid-graph (cooperative
//               cancellation at node boundaries), or between retries,
//   kFailed   — the work threw on every permitted attempt; the error
//               text of the last attempt is preserved.
//
// Completion is observed through a shared PendingRequest handle
// (wait/wait_for/response); the runtime completes each handle exactly
// once, enforced by TS_CHECK.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "tensor/matrix.hpp"
#include "util/guards.hpp"

namespace tilesparse::serve {

using Clock = std::chrono::steady_clock;

/// Priority classes, highest value most urgent.  The admission queue
/// serves strictly by class (FIFO within a class), and under overload a
/// full queue may shed its newest strictly-lower-priority entry to
/// admit a more urgent arrival.
enum class Priority : int { kBatch = 0, kNormal = 1, kInteractive = 2 };
inline constexpr std::size_t kPriorityClasses = 3;

inline const char* priority_name(Priority priority) noexcept {
  switch (priority) {
    case Priority::kBatch: return "batch";
    case Priority::kNormal: return "normal";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

enum class RequestStatus : int {
  kPending = 0,  ///< not yet terminal (never visible in a Response)
  kOk,
  kRejected,
  kTimeout,
  kFailed,
};

inline const char* status_name(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kPending: return "PENDING";
    case RequestStatus::kOk: return "OK";
    case RequestStatus::kRejected: return "REJECTED";
    case RequestStatus::kTimeout: return "TIMEOUT";
    case RequestStatus::kFailed: return "FAILED";
  }
  return "?";
}

struct WorkerContext;  // serve/serving_runtime.hpp

struct Request {
  Priority priority = Priority::kNormal;
  /// Absolute deadline; Clock::time_point::max() defers to the
  /// runtime's default_deadline option.
  Clock::time_point deadline = Clock::time_point::max();
  /// The work.  Runs on a serving worker; may be retried after a
  /// transient failure, so it must be idempotent.  Throwing reports
  /// failure; CancelledError (thrown by the scheduler's cancellation
  /// points) reports a deadline overrun.  Mutually exclusive with
  /// `entry` below: a request is either opaque work or batchable data.
  std::function<MatrixF(WorkerContext&)> work;
  /// Free-form tag carried into the response for diagnostics.
  std::string tag;
  /// Tenant this request bills to.  Feeds per-tenant Stats, the
  /// admission queue's tenant-aware eviction, and DRR fair scheduling
  /// in the batcher.  Empty = the anonymous tenant.
  std::string tenant_id;
  /// Batchable form: the name of a BatchEntry registered on the
  /// runtime (register_batch_entry).  Such a request carries its
  /// activation in `input` instead of a work callable; concurrent
  /// requests naming the same entry may be coalesced into one wide-M
  /// graph run, each getting back exactly the rows a solo run would
  /// have produced (bit-identical).
  std::string entry;
  /// Input activation for `entry` (rows must be a positive multiple of
  /// the entry's group_rows_in, cols must equal its input_cols).
  MatrixF input;
};

struct Response {
  RequestStatus status = RequestStatus::kPending;
  MatrixF result;     ///< valid iff status == kOk
  std::string error;  ///< last error text for kRejected/kTimeout/kFailed
  std::string tag;
  std::uint32_t attempts = 0;  ///< execution attempts consumed
  bool degraded = false;  ///< final attempt ran on the serial fallback path
  Clock::duration queue_wait{};    ///< admission -> first pop
  Clock::duration service_time{};  ///< first pop -> terminal status
  bool batched = false;       ///< served as a member of a coalesced batch
  std::size_t batch_rows = 0;  ///< total input rows of that batch (diagnostics)
};

/// Shared completion state for one submitted request.  The runtime is
/// the single completer; any number of threads may wait.
class PendingRequest {
 public:
  explicit PendingRequest(std::uint64_t id) : id_(id) {}

  std::uint64_t id() const noexcept { return id_; }

  /// Blocks until the request is terminal, then returns the response.
  const Response& wait() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    return response_;
  }

  /// Bounded wait; false on timeout (request still in flight).
  bool wait_for(Clock::duration timeout) const {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] { return done_; });
  }

  bool done() const {
    std::lock_guard lock(mutex_);
    return done_;
  }

  /// The terminal response; TS_CHECK-fails if not done yet.
  const Response& response() const {
    std::lock_guard lock(mutex_);
    TS_CHECK(done_, "PendingRequest::response: request not terminal yet");
    return response_;
  }

  /// Completes the request (runtime only).  Exactly-once is an
  /// invariant: a second completion is a library bug and TS_CHECK-throws.
  void complete(Response response) {
    {
      std::lock_guard lock(mutex_);
      TS_CHECK(!done_, "PendingRequest: completed twice");
      TS_CHECK(response.status != RequestStatus::kPending,
               "PendingRequest: completed with non-terminal status");
      response_ = std::move(response);
      done_ = true;
    }
    cv_.notify_all();
  }

 private:
  const std::uint64_t id_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  Response response_;
};

using RequestHandle = std::shared_ptr<PendingRequest>;

}  // namespace tilesparse::serve
