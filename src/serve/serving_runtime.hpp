#pragma once
// ServingRuntime — the fault-tolerant request front end above
// ExecScheduler.
//
// Nothing above the scheduler used to absorb traffic or isolate
// failures: one bad request, corrupt artifact, or hung stream took the
// process with it.  ServingRuntime is that missing layer.  It owns a
// bounded AdmissionQueue and a set of serving workers, each with its
// own ExecScheduler pair and deadline-armed CancelToken, and it
// guarantees that every submitted request reaches exactly one terminal
// status (see serve/request.hpp) no matter what fails underneath:
//
//  * Admission: push never blocks.  A full queue sheds (REJECTED) —
//    optionally evicting a strictly lower-priority entry to admit a
//    more urgent one (the evicted entry is itself completed REJECTED).
//  * Deadlines: checked when a worker pops (expired in queue ->
//    TIMEOUT without execution), at every graph node boundary during
//    execution (cooperative cancellation -> TIMEOUT mid-run), and
//    across retry backoff waits.
//  * Failure isolation: an exception from the work — a node throwing
//    mid-graph, an artifact that fails to parse, an injected fault —
//    is captured per-request (FAILED); the worker and its schedulers
//    keep serving subsequent requests.
//  * Graceful degradation: transient failures retry with bounded
//    exponential backoff, and after the overlapped multi-stream path
//    faults (or its graph fails validation) the retry runs on the
//    streams=1 serial fallback scheduler — slower, but with the
//    smallest possible machinery still in the loop.
//  * Teardown: shutdown(kDrain) serves the backlog to completion;
//    shutdown(kCancel) completes the backlog as TIMEOUT and cancels
//    in-flight work at the next node boundary.  Either way the
//    conservation identity holds once shutdown returns:
//        admitted == OK + TIMEOUT + FAILED + evicted.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exec/batch_entry.hpp"
#include "exec/scheduler.hpp"
#include "io/serialize.hpp"
#include "serve/admission_queue.hpp"
#include "serve/batch/batch_policy.hpp"
#include "serve/batch/request_batcher.hpp"
#include "serve/request.hpp"
#include "util/cancellation.hpp"
#include "util/threadpool.hpp"

namespace tilesparse::serve {

/// An immutable model — named PackedWeights loaded from one deployment
/// artifact — shared read-only by every worker of a runtime (and, via
/// load_mapped, by every *process* serving the same file: the bulk
/// payloads borrow a shared read-only mmap, so N serving processes cost
/// one physical copy of the weights between them; see
/// examples/shared_weights.cpp for the measurement).
struct SharedModel {
  std::string path;
  std::vector<NamedWeight> weights;

  /// Stream-loads the artifact into owned storage (accepts v1 and v2).
  static std::shared_ptr<const SharedModel> load(const std::string& path);
  /// Zero-copy load: maps the artifact and borrows bulk payloads in
  /// place (v2 only).  The mapping lives as long as the model.
  static std::shared_ptr<const SharedModel> load_mapped(
      const std::string& path);

  /// Weight by layer name; null when absent.
  const PackedWeight* find(std::string_view name) const noexcept;
};

struct ServingOptions {
  /// Serving workers; each owns a private ThreadPool sized for
  /// `streams` and serves one request at a time.
  std::size_t workers = 2;
  /// Admission queue capacity; arrivals beyond it are shed, never
  /// queued unboundedly and never blocking the submitter.
  std::size_t queue_capacity = 64;
  /// Scheduler streams per worker on the primary path; 1 serves every
  /// graph serially.
  std::size_t streams = 2;
  /// Total execution attempts per request (first try + retries).
  std::uint32_t max_attempts = 2;
  /// Backoff before the first retry; grows by backoff_multiplier per
  /// further retry.  The wait is deadline- and shutdown-aware.
  std::chrono::microseconds retry_backoff{200};
  double backoff_multiplier = 2.0;
  /// Deadline applied to requests that carry none;
  /// Clock::duration::max() = unlimited.
  Clock::duration default_deadline = Clock::duration::max();
  /// Allow a full queue to admit a higher-priority arrival by shedding
  /// its newest strictly-lower-priority entry.
  bool evict_lower_priority = true;
  /// Base options for each worker's primary scheduler (streams is
  /// overridden by `streams` above).
  SchedulerOptions scheduler;
  /// Cross-request batching policy (serve/batch/batch_policy.hpp).
  /// Disabled by default: batchable requests then run solo through the
  /// classic worker path, bit-for-bit.
  BatchPolicy batch;
};

/// What a Request::work callable sees while running on a worker.
struct WorkerContext {
  /// The scheduler to run graphs through.  Its cancel token is armed
  /// with the request deadline, so graph runs time out cooperatively.
  ExecScheduler& scheduler;
  /// The worker's cancel token, for work that loops outside graph runs
  /// (check cancel.expired() / throw_if_expired() at safe points).
  const CancelToken& cancel;
  std::size_t worker_id = 0;
  std::uint32_t attempt = 0;  ///< 0-based attempt number
  /// True on the serial fallback path (after an overlapped-path fault
  /// or validation failure, or always once streams == 1 retries).
  bool degraded = false;
  /// The runtime's attached model (attach_model), or null when none is
  /// attached.  Valid for the duration of the work callable.
  const SharedModel* model = nullptr;
};

class ServingRuntime {
 public:
  explicit ServingRuntime(ServingOptions options = {});
  /// Drains outstanding work (shutdown(kDrain)) before returning.
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Submits a request.  Never blocks: the returned handle is already
  /// terminal (REJECTED) when the queue is full and nothing lower
  /// priority could be shed, or when the runtime is shutting down.
  /// Throws std::invalid_argument on a null work callable, on a
  /// request naming both `work` and `entry`, on an unregistered entry
  /// name, or on an input whose shape does not match the entry.
  RequestHandle submit(Request request);

  /// Registers (or replaces) a batch-capable graph entry; requests
  /// naming it in Request::entry may be coalesced into wide-M runs
  /// when options().batch.enabled.  Thread-safe.
  void register_batch_entry(std::shared_ptr<BatchEntry> entry);
  /// Registered entry by name; null when absent.
  std::shared_ptr<BatchEntry> batch_entry(std::string_view name) const;

  enum class Shutdown {
    kDrain,   ///< stop admissions, serve the backlog to completion
    kCancel,  ///< stop admissions, TIMEOUT the backlog, cancel in-flight
  };
  /// Stops the runtime and joins every worker.  Idempotent; the first
  /// call's mode wins.  On return every submitted request is terminal.
  void shutdown(Shutdown mode = Shutdown::kDrain);

  /// Monotonic counters.  The conservation identities
  ///   submitted == admitted + rejected_full + rejected_closed
  ///   admitted  == ok + timeout + failed + evicted      (once quiesced)
  /// hold exactly after shutdown() returns (mid-flight, popped-but-
  /// unfinished requests are in neither bucket).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected_full = 0;    ///< shed at admission: queue full
    std::uint64_t rejected_closed = 0;  ///< shed at admission: shutting down
    std::uint64_t evicted = 0;     ///< admitted, then shed for higher priority
    std::uint64_t timeout = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;      ///< extra attempts beyond each first
    std::uint64_t degraded_ok = 0;  ///< OK served by the serial fallback
    std::uint64_t terminal() const noexcept {
      return ok + rejected_full + rejected_closed + evicted + timeout + failed;
    }
    bool conserved() const noexcept {
      return submitted == terminal() &&
             admitted == ok + evicted + timeout + failed;
    }
  };
  Stats stats() const;

  /// Per-tenant slice of the same accounting, keyed by
  /// Request::tenant_id (the empty key is the anonymous tenant).  The
  /// conservation identity holds for EVERY tenant after shutdown, not
  /// just globally — one tenant's chaos cannot leak statuses into
  /// another's books.  cost_ok additionally accumulates the byte·MAC
  /// service cost of OK batchable work, the measure DRR fairness is
  /// judged by.
  struct TenantStats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_closed = 0;
    std::uint64_t evicted = 0;
    std::uint64_t timeout = 0;
    std::uint64_t failed = 0;
    std::uint64_t batched_ok = 0;  ///< OK responses served inside a batch
    double cost_ok = 0.0;          ///< byte·MAC cost of OK batchable work
    std::uint64_t terminal() const noexcept {
      return ok + rejected_full + rejected_closed + evicted + timeout + failed;
    }
    bool conserved() const noexcept {
      return submitted == terminal() &&
             admitted == ok + evicted + timeout + failed;
    }
  };
  std::map<std::string, TenantStats> tenant_stats() const;

  /// Batching diagnostics (zeroed when batching is disabled).
  RequestBatcher::BatchStats batch_stats() const;

  const ServingOptions& options() const noexcept { return options_; }
  std::size_t queue_depth() const { return queue_->size(); }

  /// Attaches (or, with null, detaches) the model requests see as
  /// WorkerContext::model.  Thread-safe; requests already running keep
  /// the model they started with — the runtime pins it per attempt, so
  /// hot-swapping an artifact never pulls borrowed mmap storage out
  /// from under in-flight work.
  void attach_model(std::shared_ptr<const SharedModel> model);
  std::shared_ptr<const SharedModel> model() const;

 private:
  struct Item {
    Request request;
    RequestHandle handle;
    Clock::time_point enqueued{};
    Clock::time_point deadline = Clock::time_point::max();
    /// Resolved batch entry, pinned at submit (only set when batching
    /// is enabled; a later register_batch_entry replacing the name
    /// must not swap graphs under an admitted request).
    std::shared_ptr<BatchEntry> entry;
  };
  struct Worker {
    std::unique_ptr<ThreadPool> pool;  ///< null when streams == 1
    std::unique_ptr<ExecScheduler> primary;
    std::unique_ptr<ExecScheduler> fallback;  ///< streams=1, no sharding
    CancelToken cancel;
    std::thread thread;
  };
  struct Counters;

  void worker_loop(std::size_t worker_id);
  void serve_one(Worker& worker, std::size_t worker_id,
                 std::shared_ptr<Item> item);
  void complete(Item& item, Response response);
  /// Deadline/cancel-aware sleep; false when the wait was cut short.
  bool backoff_wait(const Worker& worker, Clock::duration wait,
                    Clock::time_point deadline);
  /// Per-tenant ledger entry for one terminal status (all terminal
  /// paths — worker, admission shed, batcher completer — funnel here).
  void bump_tenant(const std::string& tenant, RequestStatus status,
                   bool batched, double cost);

  ServingOptions options_;
  std::unique_ptr<AdmissionQueue<std::shared_ptr<Item>>> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Counters> counters_;
  std::unique_ptr<RequestBatcher> batcher_;
  mutable std::mutex entries_mutex_;
  std::map<std::string, std::shared_ptr<BatchEntry>, std::less<>> entries_;
  mutable std::mutex tenants_mutex_;
  std::map<std::string, TenantStats> tenant_stats_;
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
  mutable std::mutex model_mutex_;
  std::shared_ptr<const SharedModel> model_;
};

}  // namespace tilesparse::serve
