#include "serve/serving_runtime.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "exec/validate.hpp"
#include "util/guards.hpp"

namespace tilesparse::serve {

std::shared_ptr<const SharedModel> SharedModel::load(const std::string& path) {
  auto model = std::make_shared<SharedModel>();
  model->path = path;
  model->weights = load_model_weights(path);
  return model;
}

std::shared_ptr<const SharedModel> SharedModel::load_mapped(
    const std::string& path) {
  auto model = std::make_shared<SharedModel>();
  model->path = path;
  model->weights = load_model_weights_mapped(path);
  return model;
}

const PackedWeight* SharedModel::find(std::string_view name) const noexcept {
  for (const NamedWeight& entry : weights)
    if (entry.name == name) return entry.weight.get();
  return nullptr;
}

struct ServingRuntime::Counters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected_full{0};
  std::atomic<std::uint64_t> rejected_closed{0};
  std::atomic<std::uint64_t> evicted{0};
  std::atomic<std::uint64_t> timeout{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> degraded_ok{0};
};

ServingRuntime::ServingRuntime(ServingOptions options)
    : options_(options), counters_(std::make_unique<Counters>()) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.streams == 0) options_.streams = 1;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  queue_ = std::make_unique<AdmissionQueue<std::shared_ptr<Item>>>(
      options_.queue_capacity);
  // The batcher completes members directly (they never return to
  // serve_one), so its completer is the worker-side accounting path.
  batcher_ = std::make_unique<RequestBatcher>(
      options_.batch, [this](BatchMember& member, Response response) {
        switch (response.status) {
          case RequestStatus::kOk:
            counters_->ok.fetch_add(1, std::memory_order_relaxed);
            if (response.degraded)
              counters_->degraded_ok.fetch_add(1, std::memory_order_relaxed);
            break;
          case RequestStatus::kTimeout:
            counters_->timeout.fetch_add(1, std::memory_order_relaxed);
            break;
          case RequestStatus::kFailed:
            counters_->failed.fetch_add(1, std::memory_order_relaxed);
            break;
          case RequestStatus::kRejected:
          case RequestStatus::kPending:
            TS_CHECK(false, "RequestBatcher: unexpected member status");
            break;
        }
        if (response.attempts > 1)
          counters_->retries.fetch_add(response.attempts - 1,
                                       std::memory_order_relaxed);
        bump_tenant(member.tenant, response.status, response.batched,
                    member.cost);
        member.handle->complete(std::move(response));
      });

  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    SchedulerOptions primary = options_.scheduler;
    primary.streams = options_.streams;
    if (options_.streams > 1) {
      // Private pool per worker: streams - 1 pool threads + the worker
      // itself give exactly `streams` concurrent streams, and one
      // worker's load never steals another's threads.
      worker->pool = std::make_unique<ThreadPool>(options_.streams - 1);
      worker->primary =
          std::make_unique<ExecScheduler>(primary, worker->pool.get());
    } else {
      worker->primary = std::make_unique<ExecScheduler>(primary);
    }
    // The degraded path: serial, unsharded, and with validation off —
    // after the primary path rejects a graph (validation) or faults
    // (stream death), this is the smallest machinery that can still
    // serve the request.
    SchedulerOptions fallback;
    fallback.streams = 1;
    fallback.shard_wide_n = false;
    fallback.validate = false;
    worker->fallback = std::make_unique<ExecScheduler>(fallback);
    worker->primary->set_cancel_token(&worker->cancel);
    worker->fallback->set_cancel_token(&worker->cancel);
    workers_.push_back(std::move(worker));
  }
  // Threads last: workers touch only fully-constructed state.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

ServingRuntime::~ServingRuntime() { shutdown(Shutdown::kDrain); }

RequestHandle ServingRuntime::submit(Request request) {
  const bool batchable = !request.entry.empty();
  if (!batchable && !request.work) {
    throw std::invalid_argument("ServingRuntime::submit: null work callable");
  }
  if (batchable && request.work) {
    throw std::invalid_argument(
        "ServingRuntime::submit: a request carries either work or a batch "
        "entry, not both");
  }
  std::shared_ptr<BatchEntry> entry;
  if (batchable) {
    entry = batch_entry(request.entry);
    if (!entry) {
      throw std::invalid_argument("ServingRuntime::submit: unknown batch entry '" +
                                  request.entry + "'");
    }
    if (request.input.rows() == 0 ||
        request.input.rows() % entry->group_rows_in() != 0 ||
        request.input.cols() != entry->input_cols()) {
      throw std::invalid_argument(
          "ServingRuntime::submit: input for entry '" + request.entry +
          "' must be a non-empty multiple of " +
          std::to_string(entry->group_rows_in()) + " rows x " +
          std::to_string(entry->input_cols()) + " cols");
    }
    if (options_.batch.enabled) {
      // The resolved entry rides on the item; serve_one routes it to
      // the batcher instead of the work path.
      request.work = nullptr;
    } else {
      // Batching off: synthesize the classic PR 8 work callable, so
      // the request takes exactly the solo worker path (this is the
      // "unbatched" baseline batched runs are compared against).
      auto input = std::make_shared<const MatrixF>(std::move(request.input));
      request.work = [entry, input](WorkerContext& context) {
        return entry->run(context.scheduler, *input);
      };
    }
  }
  auto handle = std::make_shared<PendingRequest>(
      next_id_.fetch_add(1, std::memory_order_relaxed));
  counters_->submitted.fetch_add(1, std::memory_order_relaxed);

  auto item = std::make_shared<Item>();
  item->enqueued = Clock::now();
  item->deadline = request.deadline;
  if (item->deadline == Clock::time_point::max() &&
      options_.default_deadline != Clock::duration::max()) {
    item->deadline = item->enqueued + options_.default_deadline;
  }
  const Priority priority = request.priority;
  item->request = std::move(request);
  item->handle = handle;
  if (batchable && options_.batch.enabled) item->entry = std::move(entry);
  {
    std::lock_guard lock(tenants_mutex_);
    ++tenant_stats_[item->request.tenant_id].submitted;
  }

  std::shared_ptr<Item> shed;
  const PushOutcome outcome =
      queue_->push(item, priority, options_.evict_lower_priority ? &shed : nullptr,
                   item->request.tenant_id);
  switch (outcome) {
    case PushOutcome::kAdmitted:
      counters_->admitted.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(tenants_mutex_);
        ++tenant_stats_[item->request.tenant_id].admitted;
      }
      break;
    case PushOutcome::kAdmittedAfterEvict: {
      counters_->admitted.fetch_add(1, std::memory_order_relaxed);
      TS_CHECK(shed != nullptr, "ServingRuntime: evict outcome without victim");
      Response response;
      response.status = RequestStatus::kRejected;
      response.error = "shed from admission queue for a higher-priority arrival";
      counters_->evicted.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(tenants_mutex_);
        ++tenant_stats_[item->request.tenant_id].admitted;
        ++tenant_stats_[shed->request.tenant_id].evicted;
      }
      response.tag = shed->request.tag;
      response.queue_wait = Clock::now() - shed->enqueued;
      shed->handle->complete(std::move(response));
      break;
    }
    case PushOutcome::kRejectedFull: {
      counters_->rejected_full.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(tenants_mutex_);
        ++tenant_stats_[item->request.tenant_id].rejected_full;
      }
      Response response;
      response.status = RequestStatus::kRejected;
      response.error = "admission queue full";
      response.tag = item->request.tag;
      handle->complete(std::move(response));
      break;
    }
    case PushOutcome::kRejectedClosed: {
      counters_->rejected_closed.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(tenants_mutex_);
        ++tenant_stats_[item->request.tenant_id].rejected_closed;
      }
      Response response;
      response.status = RequestStatus::kRejected;
      response.error = "runtime shutting down";
      response.tag = item->request.tag;
      handle->complete(std::move(response));
      break;
    }
  }
  return handle;
}

void ServingRuntime::register_batch_entry(std::shared_ptr<BatchEntry> entry) {
  TS_CHECK(entry != nullptr, "register_batch_entry: null entry");
  std::lock_guard lock(entries_mutex_);
  entries_[entry->name()] = std::move(entry);
}

std::shared_ptr<BatchEntry> ServingRuntime::batch_entry(
    std::string_view name) const {
  std::lock_guard lock(entries_mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

void ServingRuntime::bump_tenant(const std::string& tenant,
                                 RequestStatus status, bool batched,
                                 double cost) {
  std::lock_guard lock(tenants_mutex_);
  TenantStats& stats = tenant_stats_[tenant];
  switch (status) {
    case RequestStatus::kOk:
      ++stats.ok;
      stats.cost_ok += cost;
      if (batched) ++stats.batched_ok;
      break;
    case RequestStatus::kTimeout:
      ++stats.timeout;
      break;
    case RequestStatus::kFailed:
      ++stats.failed;
      break;
    case RequestStatus::kRejected:
    case RequestStatus::kPending:
      TS_CHECK(false, "bump_tenant: unexpected worker-side status");
      break;
  }
}

void ServingRuntime::complete(Item& item, Response response) {
  // Admission-side rejections (full / closed / evicted) are counted and
  // completed inline in submit(); this path records worker-side
  // terminal statuses only.
  response.tag = item.request.tag;
  switch (response.status) {
    case RequestStatus::kOk:
      counters_->ok.fetch_add(1, std::memory_order_relaxed);
      if (response.degraded)
        counters_->degraded_ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kTimeout:
      counters_->timeout.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kFailed:
      counters_->failed.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kRejected:
    case RequestStatus::kPending:
      TS_CHECK(false, "ServingRuntime: unexpected worker-side status");
      break;
  }
  bump_tenant(item.request.tenant_id, response.status, response.batched, 0.0);
  item.handle->complete(std::move(response));
}

bool ServingRuntime::backoff_wait(const Worker& worker, Clock::duration wait,
                                  Clock::time_point deadline) {
  const Clock::time_point wake = Clock::now() + wait;
  while (true) {
    const Clock::time_point now = Clock::now();
    if (now >= wake) return true;
    if (now >= deadline || worker.cancel.cancel_requested()) return false;
    // Short slices keep the wait responsive to deadlines and to
    // shutdown(kCancel) without a dedicated per-worker condition
    // variable.
    const Clock::duration slice = std::min<Clock::duration>(
        std::chrono::microseconds(500), wake - now);
    std::this_thread::sleep_for(slice);
  }
}

void ServingRuntime::serve_one(Worker& worker, std::size_t worker_id,
                               std::shared_ptr<Item> item) {
  const Clock::time_point popped = Clock::now();
  Response response;
  response.queue_wait = popped - item->enqueued;

  if (popped >= item->deadline) {
    response.status = RequestStatus::kTimeout;
    response.error = "deadline expired in admission queue";
    complete(*item, std::move(response));
    return;
  }

  if (item->entry) {
    // Batchable request with batching enabled: hand it to the batcher,
    // which completes it (possibly inside a wide-M run with members
    // other workers deposited).  This worker may serve as the batch
    // leader for a while; that is by design — the remaining workers
    // keep popping and feeding the forming batch.
    BatchMember member;
    member.handle = item->handle;
    member.input = std::move(item->request.input);
    member.tenant = item->request.tenant_id;
    member.tag = item->request.tag;
    member.enqueued = item->enqueued;
    member.arrival = popped;
    member.deadline = item->deadline;
    member.cost = item->entry->cost(member.input.rows());
    BatchWorker batch_worker{worker.primary.get(), worker.fallback.get(),
                             &worker.cancel, worker_id};
    batcher_->serve(item->entry, std::move(member), batch_worker);
    return;
  }

  auto backoff = std::chrono::duration_cast<Clock::duration>(
      options_.retry_backoff);
  // Once streams == 1 the primary path IS serial; "degraded" then only
  // ever means the validation-off fallback engaged.
  bool degraded = false;
  for (std::uint32_t attempt = 0;; ++attempt) {
    response.attempts = attempt + 1;
    response.degraded = degraded;
    if (attempt > 0) counters_->retries.fetch_add(1, std::memory_order_relaxed);
    worker.cancel.reset(item->deadline);
    ExecScheduler& scheduler =
        degraded ? *worker.fallback : *worker.primary;
    // Pin the attached model for this attempt: a concurrent
    // attach_model must not destroy storage (possibly a borrowed mmap)
    // the work callable is executing against.
    const std::shared_ptr<const SharedModel> pinned_model = model();
    WorkerContext context{scheduler, worker.cancel, worker_id, attempt,
                          degraded, pinned_model.get()};
    bool validation_failure = false;
    try {
      response.result = item->request.work(context);
      response.status = RequestStatus::kOk;
      break;
    } catch (const CancelledError& e) {
      // Deadline overrun (or shutdown cancel) observed at a node
      // boundary: terminal, never retried — the deadline will not
      // come back.
      response.status = RequestStatus::kTimeout;
      response.error = e.what();
      break;
    } catch (const GraphValidationError& e) {
      response.status = RequestStatus::kFailed;
      response.error = e.what();
      validation_failure = true;
    } catch (const std::exception& e) {
      response.status = RequestStatus::kFailed;
      response.error = e.what();
    } catch (...) {
      response.status = RequestStatus::kFailed;
      response.error = "unknown exception from request work";
    }

    if (attempt + 1 >= options_.max_attempts) break;  // attempts exhausted
    // Every retry runs degraded: after a fault on the overlapped path
    // (a stream died mid-graph) or a rejected graph, the serial
    // fallback is the robust choice; a fault on the fallback itself
    // (transient, e.g. injected) retries there too.
    degraded = true;
    if (!validation_failure) {
      // Transient-failure backoff; validation failures skip it (the
      // fallback either serves the graph or never will).
      if (!backoff_wait(worker, backoff, item->deadline)) {
        if (Clock::now() >= item->deadline) {
          response.status = RequestStatus::kTimeout;
          response.error = "deadline expired during retry backoff";
          break;
        }
        // Shutdown cancel: report the last real failure as terminal.
        break;
      }
      backoff = std::chrono::duration_cast<Clock::duration>(
          backoff * options_.backoff_multiplier);
    }
    if (Clock::now() >= item->deadline) {
      response.status = RequestStatus::kTimeout;
      response.error = "deadline expired before retry";
      break;
    }
  }

  response.service_time = Clock::now() - popped;
  complete(*item, std::move(response));
}

void ServingRuntime::worker_loop(std::size_t worker_id) {
  Worker& worker = *workers_[worker_id];
  std::shared_ptr<Item> item;
  while (queue_->pop(item)) {
    serve_one(worker, worker_id, std::move(item));
    item.reset();
  }
}

void ServingRuntime::shutdown(Shutdown mode) {
  {
    std::lock_guard lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  if (mode == Shutdown::kCancel) {
    // Backlog first (so workers cannot pop any of it), then members
    // queued inside the batcher, then in-flight work.
    std::vector<std::shared_ptr<Item>> backlog = queue_->close_and_drain();
    for (std::shared_ptr<Item>& item : backlog) {
      Response response;
      response.status = RequestStatus::kTimeout;
      response.error = "cancelled: runtime shutdown";
      response.queue_wait = Clock::now() - item->enqueued;
      complete(*item, std::move(response));
    }
    batcher_->close(RequestBatcher::Close::kCancel);
    for (auto& worker : workers_) worker->cancel.cancel();
  } else {
    queue_->close();
    // Leaders flush without further lingering; members still drain.
    batcher_->close(RequestBatcher::Close::kDrain);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    if (worker->pool) worker->pool->shutdown();
  }
}

ServingRuntime::Stats ServingRuntime::stats() const {
  Stats stats;
  stats.submitted = counters_->submitted.load(std::memory_order_relaxed);
  stats.admitted = counters_->admitted.load(std::memory_order_relaxed);
  stats.ok = counters_->ok.load(std::memory_order_relaxed);
  stats.rejected_full =
      counters_->rejected_full.load(std::memory_order_relaxed);
  stats.rejected_closed =
      counters_->rejected_closed.load(std::memory_order_relaxed);
  stats.evicted = counters_->evicted.load(std::memory_order_relaxed);
  stats.timeout = counters_->timeout.load(std::memory_order_relaxed);
  stats.failed = counters_->failed.load(std::memory_order_relaxed);
  stats.retries = counters_->retries.load(std::memory_order_relaxed);
  stats.degraded_ok = counters_->degraded_ok.load(std::memory_order_relaxed);
  return stats;
}

std::map<std::string, ServingRuntime::TenantStats> ServingRuntime::tenant_stats()
    const {
  std::lock_guard lock(tenants_mutex_);
  return tenant_stats_;
}

RequestBatcher::BatchStats ServingRuntime::batch_stats() const {
  return batcher_->stats();
}

void ServingRuntime::attach_model(std::shared_ptr<const SharedModel> model) {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  model_ = std::move(model);
}

std::shared_ptr<const SharedModel> ServingRuntime::model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

}  // namespace tilesparse::serve
