#include "core/tile_pattern.hpp"

#include <cassert>
#include <stdexcept>

namespace tilesparse {

std::size_t TilePattern::kept_elements() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tiles) total += tile.kept_rows() * tile.width();
  return total;
}

double TilePattern::sparsity() const noexcept {
  const double total = static_cast<double>(k) * static_cast<double>(n);
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(kept_elements()) / total;
}

std::size_t TilePattern::kept_columns() const noexcept {
  std::size_t total = 0;
  for (auto v : col_keep) total += v != 0;
  return total;
}

double TilePattern::macs(std::size_t m) const noexcept {
  double total = 0.0;
  for (const auto& tile : tiles) {
    total += static_cast<double>(m) * static_cast<double>(tile.kept_rows()) *
             static_cast<double>(tile.width());
  }
  return total;
}

TilePattern full_pattern(std::size_t k, std::size_t n, std::size_t g) {
  std::vector<std::uint8_t> keep(n, 1);
  return reorganize_columns(k, n, g, keep);
}

TilePattern reorganize_columns(std::size_t k, std::size_t n, std::size_t g,
                               const std::vector<std::uint8_t>& col_keep) {
  if (g == 0) throw std::invalid_argument("reorganize_columns: g must be > 0");
  if (col_keep.size() != n)
    throw std::invalid_argument("reorganize_columns: col_keep size mismatch");

  TilePattern pattern;
  pattern.k = k;
  pattern.n = n;
  pattern.g = g;
  pattern.col_keep = col_keep;

  TwTile current;
  for (std::size_t c = 0; c < n; ++c) {
    if (!col_keep[c]) continue;
    current.out_cols.push_back(static_cast<std::int32_t>(c));
    if (current.out_cols.size() == g) {
      current.row_keep.assign(k, 1);
      pattern.tiles.push_back(std::move(current));
      current = TwTile{};
    }
  }
  if (!current.out_cols.empty()) {
    current.row_keep.assign(k, 1);
    pattern.tiles.push_back(std::move(current));
  }
  return pattern;
}

MatrixU8 pattern_to_mask(const TilePattern& pattern) {
  MatrixU8 mask(pattern.k, pattern.n);
  for (const auto& tile : pattern.tiles) {
    for (std::size_t r = 0; r < pattern.k; ++r) {
      if (!tile.row_keep[r]) continue;
      for (auto c : tile.out_cols)
        mask(r, static_cast<std::size_t>(c)) = 1;
    }
  }
  return mask;
}

void apply_pattern(const TilePattern& pattern, MatrixF& weights) {
  assert(weights.rows() == pattern.k && weights.cols() == pattern.n);
  const MatrixU8 mask = pattern_to_mask(pattern);
  float* w = weights.data();
  const unsigned char* m = mask.data();
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (!m[i]) w[i] = 0.0f;
}

void validate_pattern(const TilePattern& pattern) {
  if (pattern.col_keep.size() != pattern.n)
    throw std::logic_error("col_keep size != n");
  std::vector<std::uint8_t> seen(pattern.n, 0);
  for (const auto& tile : pattern.tiles) {
    if (tile.width() == 0) throw std::logic_error("empty tile");
    if (tile.width() > pattern.g) throw std::logic_error("tile wider than G");
    if (tile.row_keep.size() != pattern.k)
      throw std::logic_error("row_keep size != k");
    std::int32_t prev = -1;
    for (auto c : tile.out_cols) {
      if (c <= prev) throw std::logic_error("out_cols not ascending");
      prev = c;
      const auto idx = static_cast<std::size_t>(c);
      if (idx >= pattern.n) throw std::logic_error("column index out of range");
      if (!pattern.col_keep[idx])
        throw std::logic_error("tile references pruned column");
      if (seen[idx]) throw std::logic_error("column in two tiles");
      seen[idx] = 1;
    }
  }
  for (std::size_t c = 0; c < pattern.n; ++c) {
    if (pattern.col_keep[c] && !seen[c])
      throw std::logic_error("kept column not covered by any tile");
  }
}

}  // namespace tilesparse
