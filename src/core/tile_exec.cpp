#include "core/tile_exec.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace tilesparse {

std::vector<MaskedTile> compact_tiles(const MatrixF& weights,
                                      const TilePattern& pattern) {
  assert(weights.rows() == pattern.k && weights.cols() == pattern.n);
  std::vector<MaskedTile> tiles;
  tiles.reserve(pattern.tiles.size());
  for (const auto& spec : pattern.tiles) {
    MaskedTile tile;
    tile.out_cols = spec.out_cols;
    for (std::size_t r = 0; r < pattern.k; ++r)
      if (spec.row_keep[r]) tile.kept_rows.push_back(static_cast<std::int32_t>(r));

    tile.weights = MatrixF(tile.kept_rows.size(), tile.out_cols.size());
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t) {
      const auto r = static_cast<std::size_t>(tile.kept_rows[t]);
      for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
        tile.weights(t, j) = weights(r, static_cast<std::size_t>(tile.out_cols[j]));
      }
    }
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

std::vector<BatchGroup> build_batch_groups(const TilePattern& pattern) {
  std::map<std::size_t, BatchGroup> by_width;
  for (std::size_t i = 0; i < pattern.tiles.size(); ++i) {
    const auto& tile = pattern.tiles[i];
    auto& group = by_width[tile.width()];
    group.width = tile.width();
    group.tile_ids.push_back(i);
    group.kept_rows.push_back(tile.kept_rows());
  }
  std::vector<BatchGroup> groups;
  groups.reserve(by_width.size());
  for (auto& [width, group] : by_width) groups.push_back(std::move(group));
  std::sort(groups.begin(), groups.end(),
            [](const BatchGroup& a, const BatchGroup& b) {
              return a.width > b.width;
            });
  return groups;
}

MatrixF tw_matmul(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                  std::size_t n, bool fp16_inputs) {
  MatrixF c(a.rows(), n);
  masked_gemm_all(a, tiles, c, fp16_inputs);
  return c;
}

}  // namespace tilesparse
