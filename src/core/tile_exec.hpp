#pragma once
// Execution planning for TW-pruned weight matrices: compaction into
// MaskedTiles, equal-width batching groups (paper Fig. 7-3) and the
// stream assignment used by the latency model (Fig. 7-4).

#include <cstddef>
#include <vector>

#include "core/tile_pattern.hpp"
#include "gemm/masked_gemm.hpp"

namespace tilesparse {

/// Compacts a dense K x N weight matrix under a TW pattern into
/// executable tiles (pruned rows/columns physically removed).  This is
/// the offline pre-processing step of Fig. 7.
std::vector<MaskedTile> compact_tiles(const MatrixF& weights,
                                      const TilePattern& pattern);

/// A group of tiles with identical width, executable as one batched GEMM.
struct BatchGroup {
  std::size_t width = 0;             ///< shared W_t
  std::vector<std::size_t> tile_ids; ///< indices into the pattern's tiles
  /// Kept-row counts of each member (K_t may differ inside a group; the
  /// kernel handles it with per-tile masks, the latency model sums work).
  std::vector<std::size_t> kept_rows;
};

/// Groups tiles by width, widest groups first.  Same-width tiles batch
/// into one launch; each distinct width becomes its own launch that the
/// stream scheduler may overlap.
std::vector<BatchGroup> build_batch_groups(const TilePattern& pattern);

/// Runs the full TW-sparse product C = A * W_pruned on the CPU substrate
/// (packed masked GEMM over all tiles).  C is returned M x N with zero
/// columns where column-pruned.
MatrixF tw_matmul(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                  std::size_t n, bool fp16_inputs = false);

}  // namespace tilesparse
