#pragma once
// The Tile-Wise (TW) sparsity pattern — the paper's primary contribution
// (Sec. IV).
//
// A K x N weight matrix is processed in three steps:
//  1. column pruning: entire columns are removed, a different number per
//     G-wide tile (global importance ranking decides which);
//  2. re-organization: the surviving columns are re-packed left-to-right
//     into new tiles of width G (the last tile may be narrower) — this is
//     what lets same-width tiles batch into one GEMM (paper Fig. 4-4);
//  3. row pruning: within each re-organized tile, entire G-wide row
//     segments are removed, a different number per tile.
//
// The result keeps per-tile regularity (a tile is a dense K_t x W_t
// panel) while the *global* pattern stays irregular, which is the whole
// trade-off the paper is built on.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// One re-organized tile of a TW pattern.
struct TwTile {
  /// Original column indices (into the K x N matrix) owned by this tile,
  /// ascending.  Size is the tile width W_t <= G.
  std::vector<std::int32_t> out_cols;
  /// row_keep[k] != 0 iff original row k survives in this tile.  Size K.
  std::vector<std::uint8_t> row_keep;

  std::size_t width() const noexcept { return out_cols.size(); }
  std::size_t kept_rows() const noexcept {
    std::size_t n = 0;
    for (auto v : row_keep) n += v != 0;
    return n;
  }
};

/// A complete TW pattern for one K x N weight matrix.
struct TilePattern {
  std::size_t k = 0;  ///< original row count (reduction dim)
  std::size_t n = 0;  ///< original column count (output dim)
  std::size_t g = 0;  ///< tile granularity G
  /// col_keep[c] != 0 iff original column c survived column pruning. Size N.
  std::vector<std::uint8_t> col_keep;
  std::vector<TwTile> tiles;

  /// Number of weight elements still present.
  std::size_t kept_elements() const noexcept;
  /// 1 - kept / (K*N).
  double sparsity() const noexcept;
  /// Kept columns across the matrix.
  std::size_t kept_columns() const noexcept;
  /// Multiply-accumulate count for C(M x N) = A(M x K) * W under this
  /// pattern (sum over tiles of M * K_t * W_t).
  double macs(std::size_t m) const noexcept;
};

/// Builds the trivial pattern that keeps everything (0% sparsity).
TilePattern full_pattern(std::size_t k, std::size_t n, std::size_t g);

/// Re-organizes the surviving columns of `col_keep` into tiles of width g
/// with all rows kept.  Step 2 of the pipeline; row pruning then edits
/// tiles[i].row_keep in place.
TilePattern reorganize_columns(std::size_t k, std::size_t n, std::size_t g,
                               const std::vector<std::uint8_t>& col_keep);

/// Expands the pattern to a full K x N {0,1} element mask.
MatrixU8 pattern_to_mask(const TilePattern& pattern);

/// Zeroes all pruned elements of `weights` (K x N) in place.
void apply_pattern(const TilePattern& pattern, MatrixF& weights);

/// Validates internal consistency (every column in exactly one tile or
/// pruned, mask sizes, ascending indices).  Throws std::logic_error on
/// violation; used by tests and debug builds.
void validate_pattern(const TilePattern& pattern);

}  // namespace tilesparse
