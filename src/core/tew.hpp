#pragma once
// The hybrid Tile-Element-Wise (TEW) pattern (paper Sec. IV-A, "Pattern
// Overlay"): prune with TW to sparsity alpha + delta, then restore the
// delta fraction of pruned elements with the highest importance scores.
// The restored remainder is irregular, so it is stored in CSC and
// executed as a separate sparse GEMM (on CUDA cores in the paper);
// linearity of GEMM makes  A*W = A*W_tw + A*W_ew  exact.

#include <cstddef>
#include <vector>

#include "core/tile_pattern.hpp"
#include "gemm/masked_gemm.hpp"
#include "sparse/csc.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

/// A TEW-decomposed weight matrix.
struct TewMatrix {
  std::size_t k = 0;
  std::size_t n = 0;
  TilePattern pattern;             ///< the TW part's pattern
  std::vector<MaskedTile> tiles;   ///< compacted TW part
  Csc remainder;                   ///< restored EW elements (K x N)

  /// Overall achieved sparsity: 1 - (tw kept + ew kept) / (K*N).
  double sparsity() const noexcept;
  /// Fraction of elements carried by the EW remainder (the paper's delta).
  double ew_fraction() const noexcept;
};

/// Builds a TEW matrix: `pattern` is a TW pattern pruned to
/// alpha + delta; `scores` (K x N) ranks the pruned elements; the top
/// `delta` fraction (of the whole matrix) is restored into the CSC
/// remainder with its original values from `weights`.
TewMatrix build_tew(const MatrixF& weights, const TilePattern& pattern,
                    const MatrixF& scores, double delta);

/// C = A * (W_tw + W_ew): batched masked GEMM plus CSC accumulate.
MatrixF tew_matmul(const MatrixF& a, const TewMatrix& w,
                   bool fp16_inputs = false);

/// Reconstructs the dense K x N weight matrix the TEW pair represents.
MatrixF tew_to_dense(const TewMatrix& w);

}  // namespace tilesparse
