#include "core/tew.hpp"

#include <algorithm>
#include <cassert>

#include "core/tile_exec.hpp"

namespace tilesparse {

double TewMatrix::sparsity() const noexcept {
  const double total = static_cast<double>(k) * static_cast<double>(n);
  if (total == 0) return 0.0;
  const double kept =
      static_cast<double>(pattern.kept_elements() + remainder.nnz());
  return 1.0 - kept / total;
}

double TewMatrix::ew_fraction() const noexcept {
  const double total = static_cast<double>(k) * static_cast<double>(n);
  return total > 0 ? static_cast<double>(remainder.nnz()) / total : 0.0;
}

TewMatrix build_tew(const MatrixF& weights, const TilePattern& pattern,
                    const MatrixF& scores, double delta) {
  assert(weights.rows() == pattern.k && weights.cols() == pattern.n);
  assert(scores.rows() == pattern.k && scores.cols() == pattern.n);

  TewMatrix out;
  out.k = pattern.k;
  out.n = pattern.n;
  out.pattern = pattern;
  out.tiles = compact_tiles(weights, pattern);

  // Collect elements pruned by TW, ranked by score.
  const MatrixU8 mask = pattern_to_mask(pattern);
  struct Candidate {
    float score;
    std::uint32_t r, c;
  };
  std::vector<Candidate> candidates;
  for (std::size_t r = 0; r < pattern.k; ++r)
    for (std::size_t c = 0; c < pattern.n; ++c)
      if (!mask(r, c))
        candidates.push_back({scores(r, c), static_cast<std::uint32_t>(r),
                              static_cast<std::uint32_t>(c)});

  const auto restore_count = std::min(
      candidates.size(),
      static_cast<std::size_t>(delta * static_cast<double>(pattern.k) *
                               static_cast<double>(pattern.n)));
  std::partial_sort(candidates.begin(), candidates.begin() + restore_count,
                    candidates.end(), [](const Candidate& a, const Candidate& b) {
                      return a.score > b.score;
                    });

  MatrixF rest(pattern.k, pattern.n);
  for (std::size_t i = 0; i < restore_count; ++i)
    rest(candidates[i].r, candidates[i].c) =
        weights(candidates[i].r, candidates[i].c);
  out.remainder = csc_from_dense(rest);
  return out;
}

MatrixF tew_matmul(const MatrixF& a, const TewMatrix& w, bool fp16_inputs) {
  MatrixF c = tw_matmul(a, w.tiles, w.n, fp16_inputs);
  csc_gemm_accumulate(a, w.remainder, c);
  return c;
}

MatrixF tew_to_dense(const TewMatrix& w) {
  MatrixF dense = tiles_to_dense(w.tiles, w.k, w.n);
  const MatrixF ew = csc_to_dense(w.remainder);
  for (std::size_t i = 0; i < dense.size(); ++i)
    dense.data()[i] += ew.data()[i];
  return dense;
}

}  // namespace tilesparse
