#pragma once
// Debug-build memory guards and invariant-check macros.
//
// Two tiers of checking, chosen by cost:
//
//  * TS_CHECK(cond, msg) — always compiled.  For cheap internal
//    invariants on cold paths (scheduler bookkeeping, graph linking,
//    pool lifecycle).  Failure throws tilesparse::CheckError with the
//    source location; an invariant violation is a library bug, and a
//    throw is recoverable by the caller (and testable), unlike abort().
//
//  * TS_ASSERT(cond) — compiled only when TILESPARSE_ENABLE_GUARDS is
//    defined (the -DTILESPARSE_ENABLE_GUARDS=ON CMake option).  For
//    per-element conditions on hot paths (panel packing bounds, strip
//    indices) that would cost real throughput in release builds.
//
// The same option enables the memory instrumentation:
//
//  * GuardedVec<T> — a vector whose payload is bracketed by front/back
//    canary words.  Canaries are verified on every resize and on
//    destruction, so a kernel that writes past the end of its packing
//    scratch fails loudly at the next reuse instead of corrupting the
//    neighbouring allocation.  With guards off it compiles down to a
//    plain std::vector wrapper with zero overhead.
//
//  * poison_nan() — fills fresh float buffers with quiet NaNs, so a
//    consumer that reads a slot before its producer ran propagates NaN
//    into its output (caught by any result comparison) instead of
//    silently reading zeros that happen to look plausible.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace tilesparse {

/// Thrown by TS_CHECK (and guard verification) on a violated internal
/// invariant.  Distinct from invalid_argument: seeing this means a bug
/// *inside* the library, not bad caller input.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const char* msg);
}  // namespace detail

#define TS_CHECK(cond, msg)                                         \
  do {                                                              \
    if (!(cond))                                                    \
      ::tilesparse::detail::check_failed(#cond, __FILE__, __LINE__, \
                                         (msg));                    \
  } while (0)

#if defined(TILESPARSE_ENABLE_GUARDS)
#define TS_ASSERT(cond) TS_CHECK(cond, "debug assertion")
#else
#define TS_ASSERT(cond) \
  do {                  \
  } while (0)
#endif

/// Quiet-NaN poison fill for float buffers (no-op for other types, and
/// a no-op entirely when guards are off).
#if defined(TILESPARSE_ENABLE_GUARDS)
void poison_nan(float* data, std::size_t count) noexcept;
#else
inline void poison_nan(float*, std::size_t) noexcept {}
#endif

#if defined(TILESPARSE_ENABLE_GUARDS)

namespace detail {
/// Canary word pattern; repeated over kCanaryCount * sizeof(T) bytes on
/// each side of the payload.
inline constexpr unsigned char kCanaryByte = 0xA5;
inline constexpr std::size_t kCanaryBytes = 64;
void canary_failed(const char* where);
}  // namespace detail

/// std::vector with front/back canary regions around the payload.
/// Exposes only the slice of vector API the GEMM scratch paths use.
template <typename T>
class GuardedVec {
 public:
  GuardedVec() = default;
  GuardedVec(const GuardedVec&) = delete;
  GuardedVec& operator=(const GuardedVec&) = delete;
  ~GuardedVec() { check(); }

  /// Grow-only ("ensure at least count"): the scratch buffers this
  /// backs are high-water-mark reused, and keeping the back canary at
  /// the high-water edge means it guards every smaller use too.
  void resize(std::size_t count) {
    check();
    if (count <= size_) return;
    storage_.resize(pad() + count + pad());
    size_ = count;
    std::memset(storage_.data(), detail::kCanaryByte, pad() * sizeof(T));
    std::memset(storage_.data() + pad() + size_, detail::kCanaryByte,
                pad() * sizeof(T));
    if constexpr (std::is_same_v<T, float>) poison_nan(data(), size_);
  }

  T* data() noexcept { return storage_.data() + pad(); }
  const T* data() const noexcept { return storage_.data() + pad(); }
  std::size_t size() const noexcept { return size_; }

  /// Verifies both canary regions; called on resize and destruction.
  void check() const {
    if (storage_.empty()) return;
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(storage_.data());
    for (std::size_t i = 0; i < pad() * sizeof(T); ++i) {
      if (bytes[i] != detail::kCanaryByte)
        detail::canary_failed("front canary (buffer underrun)");
    }
    const auto* back =
        reinterpret_cast<const unsigned char*>(storage_.data() + pad() + size_);
    for (std::size_t i = 0; i < pad() * sizeof(T); ++i) {
      if (back[i] != detail::kCanaryByte)
        detail::canary_failed("back canary (buffer overrun)");
    }
  }

 private:
  static constexpr std::size_t pad() noexcept {
    return (detail::kCanaryBytes + sizeof(T) - 1) / sizeof(T);
  }

  std::vector<T> storage_;
  std::size_t size_ = 0;  ///< logical size; storage_ keeps the high-water mark
};

#else  // !TILESPARSE_ENABLE_GUARDS

/// Zero-overhead fallback: a thin std::vector wrapper with the same
/// surface, so call sites compile identically in both build modes.
template <typename T>
class GuardedVec {
 public:
  GuardedVec() = default;
  GuardedVec(const GuardedVec&) = delete;
  GuardedVec& operator=(const GuardedVec&) = delete;

  void resize(std::size_t count) { storage_.resize(count); }
  T* data() noexcept { return storage_.data(); }
  const T* data() const noexcept { return storage_.data(); }
  std::size_t size() const noexcept { return storage_.size(); }
  void check() const noexcept {}

 private:
  std::vector<T> storage_;
};

#endif  // TILESPARSE_ENABLE_GUARDS

}  // namespace tilesparse
