#include "util/guards.hpp"

namespace tilesparse {
namespace detail {

[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const char* msg) {
  throw CheckError(std::string("TS_CHECK failed: ") + msg + " [" + cond +
                   "] at " + file + ":" + std::to_string(line));
}

#if defined(TILESPARSE_ENABLE_GUARDS)
void canary_failed(const char* where) {
  // Corrupted canaries mean some kernel already scribbled outside its
  // buffer; the process state is untrusted, so fail hard rather than
  // unwind through it.
  throw CheckError(std::string("GuardedVec: ") + where + " corrupted");
}
#endif

}  // namespace detail

#if defined(TILESPARSE_ENABLE_GUARDS)
void poison_nan(float* data, std::size_t count) noexcept {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t i = 0; i < count; ++i) data[i] = nan;
}
#endif

}  // namespace tilesparse
