#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace tilesparse {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  assert(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size())
        out << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << quote(row[i]);
      if (i + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace tilesparse
