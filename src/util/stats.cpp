#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

namespace tilesparse {

double mean(std::span<const float> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const float> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (float v : values) {
    const double d = v - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

float percentile_inplace(std::vector<float>& values, double q) {
  if (values.empty()) return 0.0f;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<float>(values[lo] + (values[hi] - values[lo]) * frac);
}

float percentile(std::span<const float> values, double q) {
  std::vector<float> copy(values.begin(), values.end());
  return percentile_inplace(copy, q);
}

std::vector<double> empirical_cdf(std::span<const float> values,
                                  std::span<const float> grid) {
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cdf;
  cdf.reserve(grid.size());
  for (float g : grid) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), g);
    cdf.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return cdf;
}

double geomean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::size_t process_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::size_t kb = 0;
    fields >> kb;
    return kb;
  }
  return 0;
}

}  // namespace tilesparse
