#pragma once
// Cooperative cancellation for in-flight graph runs.
//
// A request that outlives its deadline must stop consuming worker time,
// but GEMM kernels cannot be interrupted mid-flight without corrupting
// scratch state.  The compromise is cooperative: the ExecScheduler
// checks an installed CancelToken at every node boundary (between
// kernels, where no state is half-written) and abandons the rest of the
// graph by throwing CancelledError.  The serving runtime arms one token
// per worker with the active request's deadline, so a hung or slow
// graph costs at most one node's worth of overrun.
//
// CancelledError deliberately does NOT derive from runtime_error's
// "failure" meaning in the serving runtime's eyes: the runtime maps it
// to the TIMEOUT terminal status and never retries it, while ordinary
// exceptions mean FAILED (with bounded retries).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace tilesparse {

/// Thrown at a cancellation point once the token's flag is set or its
/// deadline has passed.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A resettable cancel flag plus optional absolute deadline.  One
/// writer (the owner arming it per request) plus any number of
/// concurrent readers; cancel() may be called from any thread.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Re-arms the token for a new unit of work: clears the flag and
  /// installs `deadline` (Clock::time_point::max() = none).  Must not
  /// race with expired() checks for the *previous* unit of work.
  void reset(Clock::time_point deadline = Clock::time_point::max()) noexcept {
    deadline_ns_.store(to_ns(deadline), std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_release);
  }

  /// Requests cancellation now, regardless of deadline.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True once cancelled or past the deadline.
  bool expired() const noexcept {
    if (cancel_requested()) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline && to_ns(Clock::now()) >= deadline;
  }

  /// Cancellation point: throws CancelledError when expired.
  void throw_if_expired() const {
    if (!expired()) return;
    throw CancelledError(cancel_requested() ? "request cancelled"
                                            : "request deadline exceeded");
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  static std::int64_t to_ns(Clock::time_point tp) noexcept {
    if (tp == Clock::time_point::max()) return kNoDeadline;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace tilesparse
