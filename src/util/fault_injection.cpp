#include "util/fault_injection.hpp"

#if defined(TILESPARSE_ENABLE_FAULTS)

#include <atomic>
#include <mutex>
#include <string>

namespace tilesparse {
namespace {

// Hot-path state is all atomics so fault_point() never takes a lock;
// arm/disarm serialise on config_mutex and publish through `armed`.
struct SiteState {
  std::atomic<std::uint64_t> threshold{0};  ///< fire iff hash < threshold
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> fired{0};
};

std::mutex config_mutex;
std::atomic<bool> armed{false};
std::atomic<std::uint64_t> fault_seed{1};
SiteState sites[kFaultSiteCount];

/// splitmix64 finaliser over (seed, site, call index): a cheap, well
/// mixed, stateless hash so the Nth decision at a site is a pure
/// function of the config.
std::uint64_t mix(std::uint64_t seed, std::size_t site, std::uint64_t n) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (n + 1) +
                    0xbf58476d1ce4e5b9ull * (site + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rate_to_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~0ull;
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0 /* 2^64 */);
}

}  // namespace

void arm_faults(const FaultConfig& config) {
  std::lock_guard lock(config_mutex);
  armed.store(false, std::memory_order_release);
  fault_seed.store(config.seed, std::memory_order_relaxed);
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    sites[s].threshold.store(rate_to_threshold(config.rate[s]),
                             std::memory_order_relaxed);
    sites[s].calls.store(0, std::memory_order_relaxed);
    sites[s].fired.store(0, std::memory_order_relaxed);
  }
  armed.store(true, std::memory_order_release);
}

void disarm_faults() {
  std::lock_guard lock(config_mutex);
  armed.store(false, std::memory_order_release);
}

FaultCounts fault_counts() {
  FaultCounts counts;
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    counts.calls[s] = sites[s].calls.load(std::memory_order_relaxed);
    counts.fired[s] = sites[s].fired.load(std::memory_order_relaxed);
  }
  return counts;
}

void fault_point(FaultSite site) {
  if (!armed.load(std::memory_order_acquire)) return;
  SiteState& state = sites[static_cast<std::size_t>(site)];
  const std::uint64_t threshold = state.threshold.load(std::memory_order_relaxed);
  const std::uint64_t n = state.calls.fetch_add(1, std::memory_order_relaxed);
  if (threshold == 0) return;
  if (mix(fault_seed.load(std::memory_order_relaxed),
          static_cast<std::size_t>(site), n) < threshold) {
    state.fired.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(std::string("injected fault at ") +
                             fault_site_name(site) + " (call " +
                             std::to_string(n) + ")");
  }
}

}  // namespace tilesparse

#else

// Keep the TU non-empty in builds without the option so the glob'd
// source list is identical in every configuration.
namespace tilesparse::detail {
const int fault_injection_disabled = 0;
}

#endif  // TILESPARSE_ENABLE_FAULTS
