#pragma once
// Deterministic, seeded fault injection for resilience testing.
//
// The serving runtime promises that every admitted request reaches
// exactly one terminal status no matter what fails underneath it.  That
// promise is only worth something if failures actually happen in tests,
// so the library carries explicit injection points at its three failure
// surfaces:
//
//   kSchedulerDispatch — ExecScheduler task dispatch (a "stream fault":
//                        a node that dies mid-graph),
//   kKernelEntry       — PackedWeight::matmul entry, the gate every
//                        GEMM kernel family runs behind (chosen over
//                        the 6x16 micro-kernel body itself because it
//                        sits *outside* the OpenMP regions, so an
//                        injected exception unwinds safely),
//   kIoRead            — io/serialize artifact reads (a corrupt or
//                        unreadable weight file at load time).
//
// Faults are decided by a counter-indexed hash of a user seed: the Nth
// call at a site fires iff splitmix64(seed, site, N) falls under the
// configured rate.  The decision sequence per site is therefore fully
// reproducible for a given seed — thread interleaving changes *which
// request* absorbs the Nth fault, never how many fire or when in the
// sequence.  A fired point throws FaultInjectedError, which is an
// ordinary std::runtime_error: callers must survive it exactly like any
// real fault.
//
// The whole layer compiles away behind TILESPARSE_ENABLE_FAULTS
// (CMake -DTILESPARSE_ENABLE_FAULTS=ON): with the option off,
// fault_point() is an empty inline and the hot paths carry zero cost.
// Never enable faults in a production build.

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace tilesparse {

/// Thrown by an armed fault_point().  Derives from runtime_error so
/// fault-handling code paths are the same ones real faults exercise.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultSite : std::size_t {
  kSchedulerDispatch = 0,
  kKernelEntry = 1,
  kIoRead = 2,
};
inline constexpr std::size_t kFaultSiteCount = 3;

inline const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kSchedulerDispatch: return "scheduler.dispatch";
    case FaultSite::kKernelEntry: return "kernel.entry";
    case FaultSite::kIoRead: return "io.read";
  }
  return "?";
}

/// Process-wide injection plan: one firing rate per site, one seed for
/// the whole decision sequence.
struct FaultConfig {
  std::uint64_t seed = 1;
  /// Probability in [0, 1] that a call at the site throws, indexed by
  /// FaultSite.  0 disarms the site.
  std::array<double, kFaultSiteCount> rate{};

  FaultConfig& with_rate(FaultSite site, double probability) {
    rate[static_cast<std::size_t>(site)] = probability;
    return *this;
  }
};

/// Per-site counters since the last arm_faults(): calls seen and faults
/// fired.  Deterministic for a fixed seed and per-site call count.
struct FaultCounts {
  std::array<std::uint64_t, kFaultSiteCount> calls{};
  std::array<std::uint64_t, kFaultSiteCount> fired{};
  std::uint64_t total_fired() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t f : fired) sum += f;
    return sum;
  }
};

/// True when the build carries the injection points at all.
constexpr bool faults_compiled_in() noexcept {
#if defined(TILESPARSE_ENABLE_FAULTS)
  return true;
#else
  return false;
#endif
}

#if defined(TILESPARSE_ENABLE_FAULTS)

/// Installs `config` process-wide and zeroes the counters.  Thread-safe
/// with respect to concurrent fault_point() calls.
void arm_faults(const FaultConfig& config);
/// Disarms every site (fault_point becomes pass-through).  Counters
/// keep their values until the next arm_faults().
void disarm_faults();
/// Snapshot of the per-site counters.
FaultCounts fault_counts();
/// The injection point: counts the call and throws FaultInjectedError
/// when the seeded decision for this call fires.
void fault_point(FaultSite site);

#else

inline void arm_faults(const FaultConfig&) {}
inline void disarm_faults() {}
inline FaultCounts fault_counts() { return {}; }
inline void fault_point(FaultSite) noexcept {}

#endif  // TILESPARSE_ENABLE_FAULTS

/// RAII arm/disarm for tests: faults are active only inside the scope,
/// so reference results computed outside it stay fault-free.
class ScopedFaults {
 public:
  explicit ScopedFaults(const FaultConfig& config) { arm_faults(config); }
  ~ScopedFaults() { disarm_faults(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace tilesparse
