#pragma once
// A small work-sharing thread pool with a blocking parallel_for.
//
// The GEMM substrate uses this pool to emulate the multi-SM parallel
// execution of tiled GEMM (each output tile maps to one "core", mirroring
// the thread-block-per-SM mapping described in the paper, Sec. IV-A).
//
// Design notes (C++ Core Guidelines CP.*):
//  * No detached threads; the destructor joins everything (RAII).
//  * parallel_for is a fork-join primitive: it returns only after all
//    index chunks have completed, so callers never observe torn state.
//  * The calling thread participates in the work, so a pool of N threads
//    yields N+1 workers and nesting from a worker falls back to serial
//    execution instead of deadlocking.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tilesparse {

class ThreadPool {
 public:
  /// Creates `threads` workers.  0 means hardware_concurrency() - 1.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the caller of parallel_for.
  std::size_t worker_count() const noexcept {
    return live_workers_.load(std::memory_order_acquire) + 1;
  }

  /// Stops and joins the worker threads.  Safe to call with
  /// parallel_for calls in flight from other threads: tasks already
  /// claimed complete (a worker finishes its attached drain before
  /// exiting; the calling thread of a parallel_for always drains its
  /// own task even with no workers left), and parallel_for calls that
  /// arrive after shutdown run inline on the caller.  Idempotent; the
  /// destructor calls it.  The serving runtime uses this for clean
  /// teardown under load.
  void shutdown();

  /// True once shutdown() has begun; subsequent parallel_for calls run
  /// inline.
  bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  /// Runs body(i) for every i in [begin, end), partitioned into chunks.
  /// Blocks until all iterations are complete.  Safe to call with
  /// begin >= end (no-op).  Calls from inside a pool worker run serially.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) per chunk, so the
  /// callee can amortise per-call overhead over a range.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end, std::size_t min_chunk,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool sized to the machine; created on first use.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void(std::size_t, std::size_t)> body;
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> remaining_chunks{0};
    std::size_t attached = 0;  ///< workers inside drain(); guarded by mutex_
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  void worker_loop();
  static void drain(Task& task);

  std::vector<std::thread> workers_;  // guarded by mutex_ (moved out to join)
  std::atomic<std::size_t> live_workers_{0};
  std::atomic<bool> stopped_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable detached_cv_;  ///< signals task.attached -> 0
  Task* current_ = nullptr;  // guarded by mutex_
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  static thread_local bool inside_worker_;
};

}  // namespace tilesparse
