#pragma once
// Console table / CSV emitter used by the per-figure benchmark binaries.
//
// Every bench prints (a) a human-readable aligned table mirroring the
// rows/series of the paper figure it reproduces and (b) optionally the
// same data as CSV for plotting.

#include <string>
#include <vector>

namespace tilesparse {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers.  Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a pre-formatted row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  /// Renders the aligned table to a string (including title and rule lines).
  std::string to_string() const;

  /// Renders as CSV (header + rows, comma separated, quotes where needed).
  std::string to_csv() const;

  /// Prints to stdout (table form).
  void print() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
std::string format_double(double value, int precision = 4);

}  // namespace tilesparse
