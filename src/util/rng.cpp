#include "util/rng.hpp"

// Header-only; this translation unit exists so the library has an archive
// member and the header is compiled standalone at least once.
namespace tilesparse {
namespace {
[[maybe_unused]] Rng instantiation_check{42};
}  // namespace
}  // namespace tilesparse
