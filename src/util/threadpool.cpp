#include "util/threadpool.hpp"

#include <algorithm>

#include "util/guards.hpp"

namespace tilesparse {

thread_local bool ThreadPool::inside_worker_ = false;

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const auto hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  live_workers_.store(threads, std::memory_order_release);
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard lock(mutex_);
    stopped_.store(true, std::memory_order_release);
    stop_ = true;
    joinable.swap(workers_);
  }
  cv_.notify_all();
  // Join outside the mutex: an attached worker needs it to detach from
  // its final task before exiting.  live_workers_ drops to zero only
  // after every worker is truly gone, so worker_count() never counts a
  // thread that will not serve the next task.
  for (auto& worker : joinable) worker.join();
  if (!joinable.empty()) live_workers_.store(0, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::drain(Task& task) {
  for (;;) {
    const std::size_t start = task.next.fetch_add(task.chunk);
    if (start >= task.end) break;
    const std::size_t stop = std::min(task.end, start + task.chunk);
    task.body(start, stop);
    if (task.remaining_chunks.fetch_sub(1) == 1) {
      std::lock_guard lock(task.done_mutex);
      task.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  inside_worker_ = true;
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || (current_ && generation_ != seen_generation); });
      if (stop_) return;
      task = current_;
      seen_generation = generation_;
      // Attach under the lock: parallel_for_chunked cannot destroy the
      // task (its own stack frame) until every attached worker has let
      // go.  Without this a worker waking between "all chunks done" and
      // "current_ = nullptr" would drain a dead Task — a use-after-
      // return that manifests once pool workers run long scheduler
      // streams back to back.
      ++task->attached;
    }
    drain(*task);
    {
      std::lock_guard lock(mutex_);
      if (--task->attached == 0) detached_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  min_chunk = std::max<std::size_t>(1, min_chunk);

  // Nested, tiny, or post-shutdown calls run inline: simpler and avoids
  // deadlock (after shutdown there is nobody to help anyway).
  if (inside_worker_ || stopped() || worker_count() <= 1 ||
      total <= min_chunk) {
    body(begin, end);
    return;
  }

  Task task;
  task.body = [&body, begin](std::size_t lo, std::size_t hi) { body(begin + lo, begin + hi); };
  task.end = total;
  // Aim for ~4 chunks per worker for load balance, but never below min_chunk.
  const std::size_t target_chunks = worker_count() * 4;
  task.chunk = std::max(min_chunk, (total + target_chunks - 1) / target_chunks);
  task.remaining_chunks = (total + task.chunk - 1) / task.chunk;

  {
    std::lock_guard lock(mutex_);
    current_ = &task;
    ++generation_;
  }
  cv_.notify_all();
  drain(task);  // the caller participates

  {
    std::unique_lock lock(task.done_mutex);
    task.done_cv.wait(lock, [&] { return task.remaining_chunks.load() == 0; });
  }
  {
    // All chunks are finished, but a worker may still be between its
    // (now fruitless) claim and its detach; the task lives on this
    // stack frame, so wait until every worker has let go of it.
    std::unique_lock lock(mutex_);
    current_ = nullptr;
    detached_cv_.wait(lock, [&] { return task.attached == 0; });
    // The PR 5 use-after-return: releasing this frame with a worker
    // still attached (or chunks outstanding) is the exact bug class the
    // attach/detach protocol exists to prevent.
    TS_CHECK(task.attached == 0 && task.remaining_chunks.load() == 0,
             "ThreadPool: task released with workers attached");
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end, 1, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace tilesparse
