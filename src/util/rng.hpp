#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All experiments in this repository are seeded so that accuracy and
// latency numbers are reproducible run-to-run.  std::mt19937_64 is
// avoided in hot paths (weight init of large matrices) because xoshiro
// is ~4x faster and has a trivially copyable 32-byte state.

#include <cstdint>
#include <cmath>
#include <limits>

namespace tilesparse {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code,
/// re-implemented here).  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  /// Re-initialise the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  float uniform() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return (*this)() % n; }

  /// Standard normal via Box-Muller (one value per call; the spare is cached).
  float normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    float u1 = 0.0f;
    while (u1 <= 1e-12f) u1 = uniform();
    const float u2 = uniform();
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  float normal(float mean, float stddev) noexcept { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  float spare_ = 0.0f;
  bool have_spare_ = false;
};

/// Fisher-Yates shuffle of [first, last) using the given generator.
template <typename It>
void shuffle(It first, It last, Rng& rng) {
  const auto n = last - first;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = static_cast<decltype(i)>(rng.below(static_cast<std::uint64_t>(i) + 1));
    using std::swap;
    swap(first[i], first[j]);
  }
}

}  // namespace tilesparse
