#pragma once
// Small statistics helpers used by the pruning algorithms (percentile
// thresholds over importance scores, Algorithm 1 lines 7/15) and by the
// experiment reports (CDFs, means).

#include <cstddef>
#include <span>
#include <vector>

namespace tilesparse {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const float> values) noexcept;

/// Population standard deviation; 0 for fewer than 2 values.
double stddev(std::span<const float> values) noexcept;

/// The q-th percentile (q in [0, 1]) using linear interpolation between
/// order statistics, matching numpy.percentile's default.  The input is
/// copied; it is not modified.  Empty input returns 0.
float percentile(std::span<const float> values, double q);

/// As percentile(), but the caller donates a scratch vector that will be
/// sorted in place (avoids the copy in hot pruning loops).
float percentile_inplace(std::vector<float>& values, double q);

/// Empirical CDF of `values` evaluated at each point of `grid`
/// (fraction of values <= grid[i]).  Used for the Fig. 6 zero-element
/// cumulative-probability plot.
std::vector<double> empirical_cdf(std::span<const float> values,
                                  std::span<const float> grid);

/// Geometric mean of positive values; 0 for an empty span.  Used for
/// the cross-model average speedups quoted in Sec. VII-C.
double geomean(std::span<const double> values) noexcept;

/// This process's current resident set size in KiB (VmRSS from
/// /proc/self/status), or 0 where procfs is unavailable.  Used by the
/// deployment benches to report the RSS cost of stream vs mmap loads.
std::size_t process_rss_kb();

}  // namespace tilesparse
