#pragma once
// Wall-clock timing helpers for the measured (CPU substrate) benchmarks.

#include <chrono>
#include <cstdint>

namespace tilesparse {

/// Monotonic stopwatch.  Construction starts it.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }
  double microseconds() const noexcept { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs fn() repeatedly: a warm-up pass plus `iters` timed passes, and
/// returns the *minimum* per-iteration time in seconds.  Minimum (not
/// mean) is the standard estimator for short compute kernels since all
/// noise is additive.
template <typename Fn>
double time_best_of(Fn&& fn, int iters = 5) {
  fn();  // warm-up: page-in, caches, thread pool spin-up
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    fn();
    best = sw.seconds() < best ? sw.seconds() : best;
  }
  return best;
}

}  // namespace tilesparse
