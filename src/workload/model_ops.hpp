#pragma once
// Builders of end-to-end op timelines (GEMM + non-GEMM kernels) for the
// BERT and NMT forward passes, consumed by sim/e2e_model.  VGG is
// omitted from the e2e experiment exactly as in the paper ("only
// includes 5% non-GEMM computations", Sec. VII-D).

#include <vector>

#include "core/tile_pattern.hpp"
#include "sim/e2e_model.hpp"

namespace tilesparse {

/// Op timeline for a BERT-base forward pass.  `patterns`, when non-null,
/// must hold one TilePattern per weight GEMM in bert_base_gemms() order
/// (72 entries) and must outlive the returned ops.
std::vector<E2eOp> build_bert_ops(
    std::size_t seq, std::size_t batch,
    const std::vector<const TilePattern*>* patterns = nullptr);

/// Op timeline for the NMT encoder-decoder forward pass; `patterns`
/// follows nmt_gemms() order (10 entries).
std::vector<E2eOp> build_nmt_ops(
    std::size_t seq, std::size_t batch,
    const std::vector<const TilePattern*>* patterns = nullptr);

}  // namespace tilesparse
