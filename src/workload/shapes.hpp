#pragma once
// The weight-GEMM shapes of the paper's three benchmark models
// (Sec. VII-A).  These drive every latency experiment: we do not need
// trained ImageNet/MNLI weights to evaluate execution time, only the
// exact matrix dimensions the models multiply.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/device_model.hpp"

namespace tilesparse {

/// One prunable weight GEMM: activations (M x K) times weights (K x N).
struct LayerGemm {
  std::string name;
  GemmShape shape;  ///< m = activation rows, k/n = weight shape
  std::size_t repeat = 1;  ///< identical layers sharing this shape
};

/// BERT-base encoder (12 layers, hidden 768, FFN 3072) at the given
/// sequence length x batch (M = seq * batch).  6 weight GEMMs per layer:
/// Q, K, V, attention-output, FFN-in, FFN-out -> 72 weight matrices,
/// matching the x-axis of paper Fig. 5.
std::vector<LayerGemm> bert_base_gemms(std::size_t seq = 128,
                                       std::size_t batch = 1);

/// VGG-16 convolutional + FC layers lowered with im2col at 224x224 input:
/// M = output pixels, K = C_in * 3 * 3, N = C_out.
std::vector<LayerGemm> vgg16_gemms(std::size_t batch = 1);

/// 2-layer LSTM encoder-decoder NMT (hidden 512): gate GEMMs have
/// N = 4 * hidden; input and recurrent GEMMs per layer, M = batch tokens
/// per step times steps.
std::vector<LayerGemm> nmt_gemms(std::size_t seq = 32, std::size_t batch = 32);

/// Sum of dense FLOPs over a shape set.
double total_flops(const std::vector<LayerGemm>& gemms);

}  // namespace tilesparse
