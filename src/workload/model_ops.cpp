#include "workload/model_ops.hpp"

namespace tilesparse {
namespace {

constexpr double kFp16 = 2.0;

E2eOp gemm_op(const GemmShape& shape, const TilePattern* pattern) {
  E2eOp op;
  op.kind = E2eOp::Kind::kGemm;
  op.shape = shape;
  op.pattern = pattern;
  return op;
}

E2eOp fixed_gemm_op(const GemmShape& shape) {
  E2eOp op;
  op.kind = E2eOp::Kind::kGemmFixed;
  op.shape = shape;
  return op;
}

E2eOp ew_op(double bytes, bool fusable = true) {
  E2eOp op;
  op.kind = E2eOp::Kind::kElementwise;
  op.bytes = bytes;
  op.fusable = fusable;
  return op;
}

E2eOp transpose_op(double bytes) {
  E2eOp op;
  op.kind = E2eOp::Kind::kTranspose;
  op.bytes = bytes;
  return op;
}

}  // namespace

std::vector<E2eOp> build_bert_ops(
    std::size_t seq, std::size_t batch,
    const std::vector<const TilePattern*>* patterns) {
  constexpr std::size_t kHidden = 768;
  constexpr std::size_t kFfn = 3072;
  constexpr std::size_t kLayers = 12;
  const std::size_t m = seq * batch;
  const double hid_bytes = static_cast<double>(m) * kHidden * kFp16;
  const double ffn_bytes = static_cast<double>(m) * kFfn * kFp16;
  const double attn_bytes =
      static_cast<double>(m) * static_cast<double>(seq) * kFp16;

  auto pat = [&](std::size_t index) -> const TilePattern* {
    return patterns ? (*patterns)[index] : nullptr;
  };

  std::vector<E2eOp> ops;
  std::size_t w = 0;  // weight GEMM index into bert_base_gemms order
  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    // The TW transposed layout needs A transposed entering the layer;
    // with the optimization this folds into the adjacent fused kernels
    // for all but the first layer (paper Sec. VI, Kernel Fusion).
    ops.push_back(transpose_op(hid_bytes));

    // Self-attention: Q, K, V projections + bias each, then the
    // head-split permute (a real kernel in BERT implementations).
    for (int i = 0; i < 3; ++i) {
      ops.push_back(gemm_op({m, kHidden, kHidden}, pat(w++)));
      ops.push_back(ew_op(hid_bytes));
    }
    ops.push_back(ew_op(hid_bytes, /*fusable=*/false));  // head permute
    // Scores QK^T (all heads batched), mask-add + softmax + dropout,
    // context PV, merge-heads permute.
    ops.push_back(fixed_gemm_op({m, seq, kHidden}));
    ops.push_back(ew_op(attn_bytes, /*fusable=*/false));  // softmax
    ops.push_back(ew_op(attn_bytes));                     // attention dropout
    ops.push_back(fixed_gemm_op({m, kHidden, seq}));
    ops.push_back(ew_op(hid_bytes, /*fusable=*/false));  // merge-heads permute
    // Output projection + bias + residual + LayerNorm.
    ops.push_back(gemm_op({m, kHidden, kHidden}, pat(w++)));
    ops.push_back(ew_op(hid_bytes));
    ops.push_back(ew_op(hid_bytes));
    ops.push_back(ew_op(hid_bytes));
    // FFN: in-projection + bias + GELU, out-projection + bias + residual
    // + LayerNorm.
    ops.push_back(gemm_op({m, kFfn, kHidden}, pat(w++)));
    ops.push_back(ew_op(ffn_bytes));
    ops.push_back(ew_op(ffn_bytes));
    ops.push_back(gemm_op({m, kHidden, kFfn}, pat(w++)));
    ops.push_back(ew_op(hid_bytes));
    ops.push_back(ew_op(hid_bytes));
    ops.push_back(ew_op(hid_bytes));
  }
  return ops;
}

std::vector<E2eOp> build_nmt_ops(
    std::size_t seq, std::size_t batch,
    const std::vector<const TilePattern*>* patterns) {
  constexpr std::size_t kHidden = 512;
  constexpr std::size_t kGates = 4 * kHidden;
  const std::size_t m = seq * batch;
  const double hid_bytes = static_cast<double>(m) * kHidden * kFp16;
  const double gate_bytes = static_cast<double>(m) * kGates * kFp16;

  auto pat = [&](std::size_t index) -> const TilePattern* {
    return patterns ? (*patterns)[index] : nullptr;
  };

  std::vector<E2eOp> ops;
  std::size_t w = 0;
  for (int side = 0; side < 2; ++side) {
    for (int layer = 0; layer < 2; ++layer) {
      ops.push_back(transpose_op(hid_bytes));
      ops.push_back(gemm_op({m, kGates, kHidden}, pat(w++)));
      ops.push_back(gemm_op({m, kGates, kHidden}, pat(w++)));
      // Gate nonlinearities (sigmoid x3, tanh) + cell update + output.
      ops.push_back(ew_op(gate_bytes));
      ops.push_back(ew_op(gate_bytes));
      ops.push_back(ew_op(hid_bytes));
      ops.push_back(ew_op(hid_bytes, /*fusable=*/false));
    }
  }
  // Attention context + output projection + softmax.
  ops.push_back(gemm_op({m, kHidden, 2 * kHidden}, pat(w++)));
  ops.push_back(ew_op(hid_bytes));
  ops.push_back(gemm_op({m, 2048, kHidden}, pat(w++)));
  ops.push_back(ew_op(static_cast<double>(m) * 2048 * kFp16, /*fusable=*/false));
  return ops;
}

}  // namespace tilesparse
