#include "workload/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace tilesparse {

// ---------------------------------------------------------------- images

ClusterImageDataset::ClusterImageDataset(std::size_t classes,
                                         std::size_t channels,
                                         std::size_t height, std::size_t width,
                                         float noise, std::uint64_t seed)
    : classes_(classes),
      channels_(channels),
      height_(height),
      width_(width),
      noise_(noise),
      prototypes_(classes, channels * height * width) {
  Rng rng(seed);
  fill_normal(prototypes_, rng, 0.0f, 1.0f);
  // Smooth the prototypes spatially so they look image-like (neighbours
  // correlate), which makes 3x3 convolutions the right inductive bias.
  for (std::size_t cls = 0; cls < classes_; ++cls) {
    float* img = prototypes_.data() + cls * feature_count();
    for (std::size_t ch = 0; ch < channels_; ++ch) {
      float* plane = img + ch * height_ * width_;
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t r = 0; r < height_; ++r) {
          for (std::size_t c = 0; c + 1 < width_; ++c) {
            plane[r * width_ + c] =
                0.5f * (plane[r * width_ + c] + plane[r * width_ + c + 1]);
          }
        }
        for (std::size_t c = 0; c < width_; ++c) {
          for (std::size_t r = 0; r + 1 < height_; ++r) {
            plane[r * width_ + c] =
                0.5f * (plane[r * width_ + c] + plane[(r + 1) * width_ + c]);
          }
        }
      }
    }
  }
}

ClassificationBatch ClusterImageDataset::sample(std::size_t batch,
                                                Rng& rng) const {
  ClassificationBatch out;
  out.x = MatrixF(batch, feature_count());
  out.y.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto cls = static_cast<std::size_t>(rng.below(classes_));
    out.y[i] = static_cast<int>(cls);
    const float* proto = prototypes_.data() + cls * feature_count();
    float* x = out.x.data() + i * feature_count();
    const float brightness = rng.normal(0.0f, 0.2f);
    for (std::size_t f = 0; f < feature_count(); ++f) {
      x[f] = proto[f] + brightness + rng.normal(0.0f, noise_);
    }
  }
  return out;
}

// ---------------------------------------------------------------- tokens

TokenTeacherDataset::TokenTeacherDataset(std::size_t vocab, std::size_t seq,
                                         std::size_t classes,
                                         std::size_t embed_dim,
                                         std::uint64_t seed)
    : vocab_(vocab),
      seq_(seq),
      classes_(classes),
      embed_dim_(embed_dim),
      embedding_(vocab, embed_dim),
      teacher_w1_(embed_dim, 2 * embed_dim),
      teacher_w2_(2 * embed_dim, classes) {
  Rng rng(seed);
  fill_normal(embedding_, rng, 0.0f, 1.0f);
  fill_kaiming(teacher_w1_, rng);
  fill_kaiming(teacher_w2_, rng);
}

int TokenTeacherDataset::teacher_label(const int* tokens) const {
  // Mean embedding -> tanh hidden -> argmax logits.
  std::vector<float> pooled(embed_dim_, 0.0f);
  for (std::size_t t = 0; t < seq_; ++t) {
    const float* e = embedding_.data() +
                     static_cast<std::size_t>(tokens[t]) * embed_dim_;
    for (std::size_t d = 0; d < embed_dim_; ++d) pooled[d] += e[d];
  }
  for (float& v : pooled) v /= static_cast<float>(seq_);

  const std::size_t hidden = teacher_w1_.cols();
  std::vector<float> h(hidden, 0.0f);
  for (std::size_t d = 0; d < embed_dim_; ++d) {
    const float pd = pooled[d];
    const float* w = teacher_w1_.data() + d * hidden;
    for (std::size_t j = 0; j < hidden; ++j) h[j] += pd * w[j];
  }
  for (float& v : h) v = std::tanh(v);

  std::vector<float> logits(classes_, 0.0f);
  for (std::size_t j = 0; j < hidden; ++j) {
    const float hj = h[j];
    const float* w = teacher_w2_.data() + j * classes_;
    for (std::size_t c = 0; c < classes_; ++c) logits[c] += hj * w[c];
  }
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                          logits.begin());
}

TokenBatch TokenTeacherDataset::sample(std::size_t batch, Rng& rng) const {
  TokenBatch out;
  out.batch = batch;
  out.seq = seq_;
  out.tokens.resize(batch * seq_);
  out.y.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    int* row = out.tokens.data() + i * seq_;
    for (std::size_t t = 0; t < seq_; ++t)
      row[t] = static_cast<int>(rng.below(vocab_));
    out.y[i] = teacher_label(row);
  }
  return out;
}

SpanDataset::SpanDataset(std::size_t vocab, std::size_t seq,
                         std::size_t embed_dim, std::uint64_t seed)
    : vocab_(vocab), seq_(seq), embed_dim_(embed_dim),
      query_token_(0), embedding_(vocab, embed_dim) {
  Rng rng(seed);
  fill_normal(embedding_, rng, 0.0f, 1.0f);
}

TokenBatch SpanDataset::sample(std::size_t batch, Rng& rng) const {
  TokenBatch out;
  out.batch = batch;
  out.seq = seq_;
  out.tokens.resize(batch * seq_);
  out.y.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    int* row = out.tokens.data() + i * seq_;
    for (std::size_t t = 0; t < seq_; ++t) {
      // Avoid accidental query tokens in the background text.
      row[t] = 1 + static_cast<int>(rng.below(vocab_ - 1));
    }
    const auto pos = static_cast<std::size_t>(rng.below(seq_));
    row[pos] = query_token_;
    out.y[i] = static_cast<int>(pos);
  }
  return out;
}

// ---------------------------------------------------------------- seq2seq

ReverseDataset::ReverseDataset(std::size_t vocab, std::size_t seq,
                               std::uint64_t seed)
    : vocab_(vocab), seq_(seq) {
  (void)seed;
}

Seq2SeqBatch ReverseDataset::sample(std::size_t batch, Rng& rng) const {
  Seq2SeqBatch out;
  out.batch = batch;
  out.seq = seq_;
  out.src.resize(batch * seq_);
  out.tgt.resize(batch * seq_);
  for (std::size_t i = 0; i < batch; ++i) {
    int* src = out.src.data() + i * seq_;
    int* tgt = out.tgt.data() + i * seq_;
    for (std::size_t t = 0; t < seq_; ++t)
      src[t] = static_cast<int>(rng.below(vocab_));
    for (std::size_t t = 0; t < seq_; ++t) tgt[t] = src[seq_ - 1 - t];
  }
  return out;
}

}  // namespace tilesparse
