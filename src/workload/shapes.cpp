#include "workload/shapes.hpp"

namespace tilesparse {

std::vector<LayerGemm> bert_base_gemms(std::size_t seq, std::size_t batch) {
  const std::size_t m = seq * batch;
  constexpr std::size_t kHidden = 768;
  constexpr std::size_t kFfn = 3072;
  constexpr std::size_t kLayers = 12;
  std::vector<LayerGemm> gemms;
  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    std::string p = "L";
    p += std::to_string(layer);
    p += ".";
    gemms.push_back({p + "attn.q", {m, kHidden, kHidden}, 1});
    gemms.push_back({p + "attn.k", {m, kHidden, kHidden}, 1});
    gemms.push_back({p + "attn.v", {m, kHidden, kHidden}, 1});
    gemms.push_back({p + "attn.out", {m, kHidden, kHidden}, 1});
    gemms.push_back({p + "ffn.in", {m, kFfn, kHidden}, 1});
    gemms.push_back({p + "ffn.out", {m, kHidden, kFfn}, 1});
  }
  return gemms;
}

std::vector<LayerGemm> vgg16_gemms(std::size_t batch) {
  // {name, out_h*out_w, C_out, C_in*9}; input 224x224, pools halve.
  struct Conv {
    const char* name;
    std::size_t spatial, c_out, c_in;
  };
  static constexpr Conv kConvs[] = {
      {"conv1_1", 224 * 224, 64, 3},    {"conv1_2", 224 * 224, 64, 64},
      {"conv2_1", 112 * 112, 128, 64},  {"conv2_2", 112 * 112, 128, 128},
      {"conv3_1", 56 * 56, 256, 128},   {"conv3_2", 56 * 56, 256, 256},
      {"conv3_3", 56 * 56, 256, 256},   {"conv4_1", 28 * 28, 512, 256},
      {"conv4_2", 28 * 28, 512, 512},   {"conv4_3", 28 * 28, 512, 512},
      {"conv5_1", 14 * 14, 512, 512},   {"conv5_2", 14 * 14, 512, 512},
      {"conv5_3", 14 * 14, 512, 512},
  };
  std::vector<LayerGemm> gemms;
  for (const auto& conv : kConvs) {
    // im2col: M = batch * out pixels, K = C_in * 3 * 3, N = C_out.
    gemms.push_back(
        {conv.name, {batch * conv.spatial, conv.c_out, conv.c_in * 9}, 1});
  }
  gemms.push_back({"fc6", {batch, 4096, 512 * 7 * 7}, 1});
  gemms.push_back({"fc7", {batch, 4096, 4096}, 1});
  gemms.push_back({"fc8", {batch, 1000, 4096}, 1});
  return gemms;
}

std::vector<LayerGemm> nmt_gemms(std::size_t seq, std::size_t batch) {
  constexpr std::size_t kHidden = 512;
  constexpr std::size_t kGates = 4 * kHidden;
  const std::size_t m = seq * batch;
  std::vector<LayerGemm> gemms;
  // Encoder and decoder, 2 LSTM layers each: input + recurrent GEMMs.
  for (const char* side : {"enc", "dec"}) {
    for (int layer = 0; layer < 2; ++layer) {
      const std::string p =
          std::string(side) + std::to_string(layer) + ".";
      gemms.push_back({p + "input", {m, kGates, kHidden}, 1});
      gemms.push_back({p + "recurrent", {m, kGates, kHidden}, 1});
    }
  }
  // Attention context projection + output projection to vocab-ish dim.
  gemms.push_back({"attn.proj", {m, kHidden, 2 * kHidden}, 1});
  gemms.push_back({"out.proj", {m, 2048, kHidden}, 1});
  return gemms;
}

double total_flops(const std::vector<LayerGemm>& gemms) {
  double total = 0.0;
  for (const auto& g : gemms)
    total += g.shape.flops() * static_cast<double>(g.repeat);
  return total;
}

}  // namespace tilesparse
