#pragma once
// Synthetic dataset generators — the substitution for ImageNet / MNLI /
// SQuAD / IWSLT (see DESIGN.md).  Each task is learnable but requires a
// moderately over-parameterised model, so pruning-versus-accuracy curves
// have the same qualitative structure the paper reports: redundancy at
// low sparsity, pattern-dependent degradation at high sparsity.

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace tilesparse {

/// Dense-feature classification batch.
struct ClassificationBatch {
  MatrixF x;             ///< batch x features
  std::vector<int> y;    ///< batch labels
};

/// Token-sequence classification batch.
struct TokenBatch {
  std::vector<int> tokens;  ///< batch * seq token ids, row-major
  std::vector<int> y;       ///< batch labels
  std::size_t batch = 0;
  std::size_t seq = 0;
};

/// Sequence-to-sequence batch (tokens in, tokens out).
struct Seq2SeqBatch {
  std::vector<int> src;  ///< batch * seq
  std::vector<int> tgt;  ///< batch * seq
  std::size_t batch = 0;
  std::size_t seq = 0;
};

/// ImageNet proxy: Gaussian class prototypes in image space (C x H x W),
/// heavy per-sample noise plus random brightness/shift distortion.
class ClusterImageDataset {
 public:
  ClusterImageDataset(std::size_t classes, std::size_t channels,
                      std::size_t height, std::size_t width, float noise,
                      std::uint64_t seed);

  std::size_t feature_count() const noexcept {
    return channels_ * height_ * width_;
  }
  std::size_t classes() const noexcept { return classes_; }
  std::size_t channels() const noexcept { return channels_; }
  std::size_t height() const noexcept { return height_; }
  std::size_t width() const noexcept { return width_; }

  /// Draws a fresh batch (infinite stream; train/test split by seed).
  ClassificationBatch sample(std::size_t batch, Rng& rng) const;

 private:
  std::size_t classes_, channels_, height_, width_;
  float noise_;
  MatrixF prototypes_;  ///< classes x features
};

/// MNLI proxy: the label is produced by a fixed random two-layer teacher
/// network over the mean embedding of the token sequence.  Embeddings are
/// shared with the student via `embedding()`.
class TokenTeacherDataset {
 public:
  TokenTeacherDataset(std::size_t vocab, std::size_t seq, std::size_t classes,
                      std::size_t embed_dim, std::uint64_t seed);

  std::size_t vocab() const noexcept { return vocab_; }
  std::size_t seq() const noexcept { return seq_; }
  std::size_t classes() const noexcept { return classes_; }
  const MatrixF& embedding() const noexcept { return embedding_; }

  TokenBatch sample(std::size_t batch, Rng& rng) const;

 private:
  int teacher_label(const int* tokens) const;

  std::size_t vocab_, seq_, classes_, embed_dim_;
  MatrixF embedding_;   ///< vocab x embed_dim (fixed)
  MatrixF teacher_w1_;  ///< embed_dim x hidden
  MatrixF teacher_w2_;  ///< hidden x classes
};

/// SQuAD proxy: answer-position extraction.  A special "query" token is
/// planted at a random position; the label is that position (so the
/// output space is the sequence length, as in span prediction).
class SpanDataset {
 public:
  SpanDataset(std::size_t vocab, std::size_t seq, std::size_t embed_dim,
              std::uint64_t seed);

  std::size_t vocab() const noexcept { return vocab_; }
  std::size_t seq() const noexcept { return seq_; }
  std::size_t classes() const noexcept { return seq_; }
  const MatrixF& embedding() const noexcept { return embedding_; }

  TokenBatch sample(std::size_t batch, Rng& rng) const;

 private:
  std::size_t vocab_, seq_, embed_dim_;
  int query_token_;
  MatrixF embedding_;
};

/// IWSLT proxy: translate = reverse the source token sequence (requires
/// real sequence memory from the LSTM, unlike copy).
class ReverseDataset {
 public:
  ReverseDataset(std::size_t vocab, std::size_t seq, std::uint64_t seed);

  std::size_t vocab() const noexcept { return vocab_; }
  std::size_t seq() const noexcept { return seq_; }

  Seq2SeqBatch sample(std::size_t batch, Rng& rng) const;

 private:
  std::size_t vocab_, seq_;
};

}  // namespace tilesparse
