#pragma once
// Blocked, multithreaded dense GEMM — the CPU stand-in for the GPU's
// dense GEMM pipeline (cuBLAS / CUTLASS on tensor cores).
//
// The kernel mirrors the three-level tiling CUTLASS uses (paper Sec. VI):
//   * outer M/N blocking  -> "thread block tile" (one per pool worker/SM)
//   * K blocking          -> "warp tile" panel resident in L1/L2
//   * 6x16 register tile  -> "thread fragment" kept in registers
//     (the shared SIMD core in gemm/micro_kernel.hpp, AVX2/FMA with a
//     portable fallback — the same inner kernel the masked TW/TEW and
//     int8 paths execute)
//
// Output row-blocks are annotated with `#pragma omp parallel for`,
// matching the one-output-tile-per-SM mapping the paper builds its
// sparsity on.  The pragmas are only live when the build enables OpenMP
// (the top-level CMakeLists links OpenMP::OpenMP_CXX when found); in a
// non-OpenMP build the kernel runs the same blocked loop serially.
//
// Callers above the kernel layer should not use this header directly:
// the exec/ subsystem (PackedWeight / ExecContext) wraps it with unified
// alpha/beta + numerics handling shared by all weight formats.

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

struct GemmConfig {
  std::size_t mc = 64;   ///< rows of A packed per panel
  std::size_t kc = 256;  ///< K-extent of a panel
  bool fp16_inputs = false;  ///< round A inputs through binary16 (tensor-core numerics)
};

/// B pre-packed into the micro-kernel's per-(K-block, strip) panel
/// layout.  B is typically a static weight matrix: pack it once at
/// weight-pack time (DenseWeight does) and the repack pass — which at
/// small batch costs as much as the compute — drops out of every
/// matmul call.  Panels are independent of alpha/beta/fp16 (only A is
/// rounded), so one PackedDenseB serves every ExecContext.
struct PackedDenseB {
  std::vector<float> panels;
  std::size_t k = 0;   ///< B rows
  std::size_t n = 0;   ///< B cols
  std::size_t kc = 0;  ///< K-extent each block was packed with
};

/// Packs B(KxN) for dense_gemm with the given K blocking.
PackedDenseB pack_dense_b(const MatrixF& b, const GemmConfig& config = {});

/// C = alpha * A(MxK) * B(KxN) + beta * C.  C must be MxN.
void dense_gemm(const MatrixF& a, const MatrixF& b, MatrixF& c,
                float alpha = 1.0f, float beta = 0.0f,
                const GemmConfig& config = {});

/// Same, with B already packed (config.kc is ignored; the panels' own
/// blocking is used).
void dense_gemm(const MatrixF& a, const PackedDenseB& b, MatrixF& c,
                float alpha = 1.0f, float beta = 0.0f,
                const GemmConfig& config = {});

/// Convenience allocating wrapper: returns A*B.
MatrixF matmul(const MatrixF& a, const MatrixF& b, const GemmConfig& config = {});

/// Floating-point operation count of an MxNxK GEMM (2*M*N*K).
constexpr double gemm_flops(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace tilesparse
