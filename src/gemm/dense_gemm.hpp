#pragma once
// Blocked, multithreaded dense GEMM — the CPU stand-in for the GPU's
// dense GEMM pipeline (cuBLAS / CUTLASS on tensor cores).
//
// The kernel mirrors the three-level tiling CUTLASS uses (paper Sec. VI):
//   * outer M/N blocking  -> "thread block tile" (one per pool worker/SM)
//   * K blocking          -> "warp tile" panel resident in L1/L2
//   * 4x16 register tile  -> "thread fragment" kept in registers
//
// Output row-blocks are annotated with `#pragma omp parallel for`,
// matching the one-output-tile-per-SM mapping the paper builds its
// sparsity on.  The pragmas are only live when the build enables OpenMP
// (the top-level CMakeLists links OpenMP::OpenMP_CXX when found); in a
// non-OpenMP build the kernel runs the same blocked loop serially.
//
// Callers above the kernel layer should not use this header directly:
// the exec/ subsystem (PackedWeight / ExecContext) wraps it with unified
// alpha/beta + numerics handling shared by all weight formats.

#include <cstddef>

#include "tensor/matrix.hpp"

namespace tilesparse {

struct GemmConfig {
  std::size_t mc = 64;   ///< rows of A packed per panel
  std::size_t kc = 256;  ///< K-extent of a panel
  bool fp16_inputs = false;  ///< round A/B through binary16 (tensor-core numerics)
};

/// C = alpha * A(MxK) * B(KxN) + beta * C.  C must be MxN.
void dense_gemm(const MatrixF& a, const MatrixF& b, MatrixF& c,
                float alpha = 1.0f, float beta = 0.0f,
                const GemmConfig& config = {});

/// Convenience allocating wrapper: returns A*B.
MatrixF matmul(const MatrixF& a, const MatrixF& b, const GemmConfig& config = {});

/// Floating-point operation count of an MxNxK GEMM (2*M*N*K).
constexpr double gemm_flops(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace tilesparse
