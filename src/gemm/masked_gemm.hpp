#pragma once
// The TW execution kernel — CPU analogue of Listing 1 in the paper.
//
// A tile-wise-pruned weight tile is stored *compacted*: pruned rows and
// columns are physically removed offline (paper Fig. 7, pre-process).
// Two mask vectors say which original K-rows survived (mask_k, drives
// which columns of A are loaded) and which original N-columns survived
// (out_cols, drives where C columns are stored).
//
// Two variants reproduce the paper's memory-coalescing ablation:
//  * gather variant: reads A with a strided/indexed access per element —
//    the "naive tiling, uncoalesced" path of Fig. 7-1;
//  * packed variant: first gathers the masked A columns into a dense
//    panel, then runs the regular micro-kernel — the "transposed,
//    coalesced" path of Fig. 7-2.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// One compacted weight tile plus its masks.
struct MaskedTile {
  MatrixF weights;                 ///< K_t x W_t compacted tile (rows kept x cols kept)
  std::vector<std::int32_t> kept_rows;  ///< original k indices, size K_t, ascending
  std::vector<std::int32_t> out_cols;   ///< original n indices, size W_t, ascending
};

/// C[:, tile.out_cols] += A[:, tile.kept_rows] * tile.weights,
/// gathering A elements one-by-one (uncoalesced analogue).
void masked_gemm_gather(const MatrixF& a, const MaskedTile& tile, MatrixF& c);

/// Pre-packed B panels for one MaskedTile, in exactly the per-(K-block,
/// strip) layout masked_gemm_packed consumes.  Building this at pack
/// time removes the per-call repacking the old gather fallback paid on
/// every matmul; the layout depends only on the tile shape, so one
/// prepack serves every batch size and numerics mode (fp16 rounds the
/// A panels inside the kernel, weights are pre-rounded by the caller).
struct TilePanels {
  std::vector<float> b;  ///< kt x round_up(wt, kNr) floats
};

/// Packs `tile.weights` into the panel layout above.
TilePanels prepack_tile_panels(const MaskedTile& tile);

/// Same computation, but packs the masked A panel first (coalesced
/// analogue).  `fp16_inputs` rounds the packed A panel through binary16;
/// pre-round the tile weights with round_matrix_to_half for full
/// tensor-core numerics.  `prepacked`, when non-null and non-empty,
/// supplies the tile's B panels and skips the per-call weight packing.
void masked_gemm_packed(const MatrixF& a, const MaskedTile& tile, MatrixF& c,
                        bool fp16_inputs = false,
                        const TilePanels* prepacked = nullptr);

/// Executes a whole set of tiles (one TW-pruned weight matrix) against a
/// shared A, packed variant, parallel across tiles.  C must be M x
/// N_original.  `prepacked`, when non-null, must parallel `tiles` 1:1.
void masked_gemm_all(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                     MatrixF& c, bool fp16_inputs = false,
                     const std::vector<TilePanels>* prepacked = nullptr);

/// Prepacks panels for every tile of a weight matrix.
std::vector<TilePanels> prepack_all_tile_panels(
    const std::vector<MaskedTile>& tiles);

/// Column-slices a tile set to [n0, n1): tiles intersecting the range
/// survive with out_cols rebased to the slice and the matching weight
/// columns copied; kept_rows are untouched.  Because the masked kernel
/// derives its K-blocking from kept_rows alone and every output column
/// accumulates independently (lane position never changes a lane's
/// arithmetic), executing a slice is bit-identical to the same columns
/// of the unsliced tile set — the property wide-N sharding relies on.
std::vector<MaskedTile> slice_masked_tiles(const std::vector<MaskedTile>& tiles,
                                           std::size_t n0, std::size_t n1);

/// Builds the dense K x N matrix a set of tiles represents (zeros where
/// pruned).  For testing: masked GEMM on tiles == dense GEMM on this.
MatrixF tiles_to_dense(const std::vector<MaskedTile>& tiles, std::size_t k,
                       std::size_t n);

}  // namespace tilesparse
