#pragma once
// The TW execution kernel — CPU analogue of Listing 1 in the paper.
//
// A tile-wise-pruned weight tile is stored *compacted*: pruned rows and
// columns are physically removed offline (paper Fig. 7, pre-process).
// Two mask vectors say which original K-rows survived (mask_k, drives
// which columns of A are loaded) and which original N-columns survived
// (out_cols, drives where C columns are stored).
//
// Two variants reproduce the paper's memory-coalescing ablation:
//  * gather variant: reads A with a strided/indexed access per element —
//    the "naive tiling, uncoalesced" path of Fig. 7-1;
//  * packed variant: first gathers the masked A columns into a dense
//    panel, then runs the regular micro-kernel — the "transposed,
//    coalesced" path of Fig. 7-2.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// One compacted weight tile plus its masks.
struct MaskedTile {
  MatrixF weights;                 ///< K_t x W_t compacted tile (rows kept x cols kept)
  std::vector<std::int32_t> kept_rows;  ///< original k indices, size K_t, ascending
  std::vector<std::int32_t> out_cols;   ///< original n indices, size W_t, ascending
};

/// C[:, tile.out_cols] += A[:, tile.kept_rows] * tile.weights,
/// gathering A elements one-by-one (uncoalesced analogue).
void masked_gemm_gather(const MatrixF& a, const MaskedTile& tile, MatrixF& c);

/// Same computation, but packs the masked A panel first (coalesced
/// analogue).  `fp16_inputs` rounds the packed A panel through binary16;
/// pre-round the tile weights with round_matrix_to_half for full
/// tensor-core numerics.
void masked_gemm_packed(const MatrixF& a, const MaskedTile& tile, MatrixF& c,
                        bool fp16_inputs = false);

/// Executes a whole set of tiles (one TW-pruned weight matrix) against a
/// shared A, packed variant, parallel across tiles.  C must be M x N_original.
void masked_gemm_all(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                     MatrixF& c, bool fp16_inputs = false);

/// Builds the dense K x N matrix a set of tiles represents (zeros where
/// pruned).  For testing: masked GEMM on tiles == dense GEMM on this.
MatrixF tiles_to_dense(const std::vector<MaskedTile>& tiles, std::size_t k,
                       std::size_t n);

}  // namespace tilesparse
