#include "gemm/batched_gemm.hpp"

#include <algorithm>
#include <cassert>

namespace tilesparse {

namespace {
constexpr std::size_t kRowBlock = 64;

struct WorkItem {
  std::size_t problem;
  std::size_t row_begin;
  std::size_t row_end;
};
}  // namespace

void batched_gemm(const std::vector<GemmProblem>& problems) {
  std::vector<WorkItem> items;
  for (std::size_t p = 0; p < problems.size(); ++p) {
    const auto& prob = problems[p];
    assert(prob.a && prob.b && prob.c);
    assert(prob.a->cols() == prob.b->rows());
    assert(prob.c->rows() == prob.a->rows() && prob.c->cols() == prob.b->cols());
    for (std::size_t r = 0; r < prob.a->rows(); r += kRowBlock) {
      items.push_back({p, r, std::min(prob.a->rows(), r + kRowBlock)});
    }
  }

#pragma omp parallel for schedule(dynamic)
  for (std::size_t w = 0; w < items.size(); ++w) {
    const auto& item = items[w];
    const auto& prob = problems[item.problem];
    const MatrixF& a = *prob.a;
    const MatrixF& b = *prob.b;
    MatrixF& c = *prob.c;
    const std::size_t n = b.cols(), k = a.cols();
    for (std::size_t i = item.row_begin; i < item.row_end; ++i) {
      float* crow = c.data() + i * n;
      const float* arow = a.data() + i * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b.data() + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace tilesparse
