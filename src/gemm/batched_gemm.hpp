#pragma once
// Batched GEMM: many independent problems executed together.
//
// The paper batches same-width TW tiles into one batched-GEMM launch to
// fix the load imbalance that variable tile widths introduce (Fig. 7-3),
// and overlaps the remaining unequal groups with CUDA streams (Fig. 7-4).
// On the CPU substrate, one batch = one parallel region over all
// (problem, row-block) pairs, which gives the same property: the worker
// pool is saturated even when individual problems are small.

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// One GEMM problem: c += a * b.  Pointers are non-owning; the caller
/// guarantees shapes (a: m x k, b: k x n, c: m x n) and lifetimes.
struct GemmProblem {
  const MatrixF* a = nullptr;
  const MatrixF* b = nullptr;
  MatrixF* c = nullptr;
};

/// Executes all problems with one fork-join over (problem, row-block)
/// work items.  Problems may have different shapes.  Each output matrix
/// must be distinct (no aliasing between problems).
void batched_gemm(const std::vector<GemmProblem>& problems);

}  // namespace tilesparse
