#include "gemm/fused_ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tilesparse {

namespace {
inline float gelu_scalar(float x) noexcept {
  // tanh approximation (as used by BERT implementations).
  const float c = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = c * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline void normalize_row(float* row, std::size_t n, const float* gamma,
                          const float* beta, float eps) {
  float sum = 0.0f;
  for (std::size_t j = 0; j < n; ++j) sum += row[j];
  const float mean = sum / static_cast<float>(n);
  float var = 0.0f;
  for (std::size_t j = 0; j < n; ++j) {
    const float d = row[j] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (std::size_t j = 0; j < n; ++j)
    row[j] = (row[j] - mean) * inv * gamma[j] + beta[j];
}
}  // namespace

void add_bias(MatrixF& x, std::span<const float> bias) {
  assert(bias.size() == x.cols());
  const std::size_t n = x.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void layer_norm(MatrixF& x, std::span<const float> gamma,
                std::span<const float> beta, float eps) {
  assert(gamma.size() == x.cols() && beta.size() == x.cols());
  const std::size_t n = x.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < x.rows(); ++r) {
    normalize_row(x.data() + r * n, n, gamma.data(), beta.data(), eps);
  }
}

void gelu(MatrixF& x) {
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * x.cols();
    for (std::size_t j = 0; j < x.cols(); ++j) row[j] = gelu_scalar(row[j]);
  }
}

void relu(MatrixF& x) {
  for (float& v : x.flat()) v = std::max(0.0f, v);
}

void softmax_rows(MatrixF& x) {
  const std::size_t n = x.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * n;
    float maxv = row[0];
    for (std::size_t j = 1; j < n; ++j) maxv = std::max(maxv, row[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - maxv);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

void fused_bias_layer_norm(MatrixF& x, std::span<const float> bias,
                           std::span<const float> gamma,
                           std::span<const float> beta, float eps) {
  assert(bias.size() == x.cols());
  assert(gamma.size() == x.cols() && beta.size() == x.cols());
  const std::size_t n = x.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
    normalize_row(row, n, gamma.data(), beta.data(), eps);
  }
}

void fused_bias_gelu(MatrixF& x, std::span<const float> bias) {
  assert(bias.size() == x.cols());
  const std::size_t n = x.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) row[j] = gelu_scalar(row[j] + bias[j]);
  }
}

}  // namespace tilesparse
