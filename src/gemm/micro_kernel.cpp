#include "gemm/micro_kernel.hpp"

#include <atomic>

#include "tensor/half.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TILESPARSE_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace tilesparse {
namespace {

// ------------------------------------------------------ scalar kernels

void kernel_f32_scalar(std::size_t kc, const float* a_panel,
                       const float* b_panel, float* c, std::size_t ldc,
                       std::size_t rows, std::size_t cols) {
  float acc[kMr][kNr] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* brow = b_panel + kk * kNr;
    const float* acol = a_panel + kk * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float a = acol[r];
#pragma omp simd
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += a * brow[j];
    }
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < cols; ++j) c[r * ldc + j] += acc[r][j];
}

void kernel_i8_scalar(std::size_t kc, const std::int8_t* a_panel,
                      const std::int8_t* b_panel, float scale, float* c,
                      std::size_t ldc, std::size_t rows, std::size_t cols) {
  std::int32_t acc[kMr][kNr] = {};
  const std::size_t kc_even = round_up_pair(kc);
  for (std::size_t kk = 0; kk < kc_even; kk += kKPair) {
    const std::int8_t* bpair = b_panel + kk * kNr;  // (kk/2) * 2 * kNr
    const std::int8_t* a0 = a_panel + kk * kMr;
    const std::int8_t* a1 = a_panel + (kk + 1) * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const std::int32_t av0 = a0[r];
      const std::int32_t av1 = a1[r];
#pragma omp simd
      for (std::size_t j = 0; j < kNr; ++j) {
        acc[r][j] += av0 * static_cast<std::int32_t>(bpair[j * 2]) +
                     av1 * static_cast<std::int32_t>(bpair[j * 2 + 1]);
      }
    }
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < cols; ++j)
      c[r * ldc + j] += scale * static_cast<float>(acc[r][j]);
}

// -------------------------------------------------------- AVX2 kernels

#ifdef TILESPARSE_X86_DISPATCH

__attribute__((target("avx2,fma"))) void kernel_f32_avx2(
    std::size_t kc, const float* a_panel, const float* b_panel, float* c,
    std::size_t ldc, std::size_t rows, std::size_t cols) {
  // 6x16 C fragment in 12 ymm accumulators; B strip streams through 2
  // more, A broadcasts through 1.
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b_panel + kk * kNr);
    const __m256 b1 = _mm256_loadu_ps(b_panel + kk * kNr + 8);
    const float* acol = a_panel + kk * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(acol + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (cols == kNr) {
    for (std::size_t r = 0; r < rows; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
    }
    return;
  }
  alignas(32) float tmp[kNr];
  for (std::size_t r = 0; r < rows; ++r) {
    _mm256_store_ps(tmp, acc[r][0]);
    _mm256_store_ps(tmp + 8, acc[r][1]);
    float* crow = c + r * ldc;
    for (std::size_t j = 0; j < cols; ++j) crow[j] += tmp[j];
  }
}

__attribute__((target("avx2,fma"))) void kernel_i8_avx2(
    std::size_t kc, const std::int8_t* a_panel, const std::int8_t* b_panel,
    float scale, float* c, std::size_t ldc, std::size_t rows,
    std::size_t cols) {
  // K-pair interleaved B strip: one vpmaddwd consumes two K rows for 8
  // columns, accumulating straight into int32 lanes.
  __m256i acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  const std::size_t kc_even = round_up_pair(kc);
  for (std::size_t kk = 0; kk < kc_even; kk += kKPair) {
    const __m256i raw = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + kk * kNr));
    const __m256i blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(raw));
    const __m256i bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(raw, 1));
    const std::int8_t* a0 = a_panel + kk * kMr;
    const std::int8_t* a1 = a_panel + (kk + 1) * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const std::uint32_t pair =
          (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
               static_cast<std::int16_t>(a0[r])))) |
          (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
               static_cast<std::int16_t>(a1[r])))
           << 16);
      const __m256i av = _mm256_set1_epi32(static_cast<int>(pair));
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(blo, av));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(bhi, av));
    }
  }
  const __m256 vscale = _mm256_set1_ps(scale);
  if (cols == kNr) {
    for (std::size_t r = 0; r < rows; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(
          crow, _mm256_fmadd_ps(vscale, _mm256_cvtepi32_ps(acc[r][0]),
                                _mm256_loadu_ps(crow)));
      _mm256_storeu_ps(
          crow + 8, _mm256_fmadd_ps(vscale, _mm256_cvtepi32_ps(acc[r][1]),
                                    _mm256_loadu_ps(crow + 8)));
    }
    return;
  }
  alignas(32) std::int32_t tmp[kNr];
  for (std::size_t r = 0; r < rows; ++r) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc[r][0]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 8), acc[r][1]);
    float* crow = c + r * ldc;
    for (std::size_t j = 0; j < cols; ++j)
      crow[j] += scale * static_cast<float>(tmp[j]);
  }
}

#endif  // TILESPARSE_X86_DISPATCH

// ------------------------------------------------------- sparse strips

void spmm_strip_scalar(const float* a_panel, const std::int32_t* row_idx,
                       const std::int64_t* row_ptr, std::size_t nrows,
                       const std::int32_t* col, const float* val,
                       float* frag) {
  for (std::size_t i = 0; i < nrows; ++i) {
    const float* av = a_panel + static_cast<std::size_t>(row_idx[i]) * kNr;
    for (auto p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      float* f = frag + static_cast<std::size_t>(col[idx]) * kNr;
      const float v = val[idx];
#pragma omp simd
      for (std::size_t r = 0; r < kNr; ++r) f[r] += v * av[r];
    }
  }
}

#ifdef TILESPARSE_X86_DISPATCH

__attribute__((target("avx2,fma"))) void spmm_strip_avx2(
    const float* a_panel, const std::int32_t* row_idx,
    const std::int64_t* row_ptr, std::size_t nrows, const std::int32_t* col,
    const float* val, float* frag) {
  for (std::size_t i = 0; i < nrows; ++i) {
    const float* av = a_panel + static_cast<std::size_t>(row_idx[i]) * kNr;
    const __m256 a0 = _mm256_loadu_ps(av);
    const __m256 a1 = _mm256_loadu_ps(av + 8);
    for (auto p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      float* f = frag + static_cast<std::size_t>(col[idx]) * kNr;
      const __m256 v = _mm256_broadcast_ss(val + idx);
      _mm256_storeu_ps(f, _mm256_fmadd_ps(v, a0, _mm256_loadu_ps(f)));
      _mm256_storeu_ps(f + 8, _mm256_fmadd_ps(v, a1, _mm256_loadu_ps(f + 8)));
    }
  }
}

#endif  // TILESPARSE_X86_DISPATCH

// ------------------------------------------------------------ dispatch

SimdLevel detect() noexcept {
#ifdef TILESPARSE_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

std::atomic<SimdLevel>& active_level() noexcept {
  static std::atomic<SimdLevel> level{detect()};
  return level;
}

}  // namespace

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel active_simd_level() noexcept {
  return active_level().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) noexcept {
  if (level == SimdLevel::kAvx2 && detected_simd_level() != SimdLevel::kAvx2)
    level = SimdLevel::kScalar;
  active_level().store(level, std::memory_order_relaxed);
  return level;
}

void micro_kernel_f32(std::size_t kc, const float* a_panel,
                      const float* b_panel, float* c, std::size_t ldc,
                      std::size_t rows, std::size_t cols) {
  TS_ASSERT(rows <= kMr && cols <= kNr && cols <= ldc);
#ifdef TILESPARSE_X86_DISPATCH
  if (active_simd_level() == SimdLevel::kAvx2) {
    kernel_f32_avx2(kc, a_panel, b_panel, c, ldc, rows, cols);
    return;
  }
#endif
  kernel_f32_scalar(kc, a_panel, b_panel, c, ldc, rows, cols);
}

void micro_kernel_i8(std::size_t kc, const std::int8_t* a_panel,
                     const std::int8_t* b_panel, float scale, float* c,
                     std::size_t ldc, std::size_t rows, std::size_t cols) {
  TS_ASSERT(rows <= kMr && cols <= kNr && cols <= ldc);
#ifdef TILESPARSE_X86_DISPATCH
  if (active_simd_level() == SimdLevel::kAvx2) {
    kernel_i8_avx2(kc, a_panel, b_panel, scale, c, ldc, rows, cols);
    return;
  }
#endif
  kernel_i8_scalar(kc, a_panel, b_panel, scale, c, ldc, rows, cols);
}

void spmm_strip_f32(const float* a_panel, const std::int32_t* row_idx,
                    const std::int64_t* row_ptr, std::size_t nrows,
                    const std::int32_t* col, const float* val, float* frag) {
#ifdef TILESPARSE_X86_DISPATCH
  if (active_simd_level() == SimdLevel::kAvx2) {
    spmm_strip_avx2(a_panel, row_idx, row_ptr, nrows, col, val, frag);
    return;
  }
#endif
  spmm_strip_scalar(a_panel, row_idx, row_ptr, nrows, col, val, frag);
}

// ------------------------------------------------------- panel packing

void pack_b_panel_f32(const float* b, std::size_t ldb, std::size_t kc,
                      std::size_t cols, float* out) {
  if (cols == kNr) {
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float* brow = b + kk * ldb;
      float* orow = out + kk * kNr;
#pragma omp simd
      for (std::size_t j = 0; j < kNr; ++j) orow[j] = brow[j];
    }
    return;
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* brow = b + kk * ldb;
    float* orow = out + kk * kNr;
    std::size_t j = 0;
    for (; j < cols; ++j) orow[j] = brow[j];
    for (; j < kNr; ++j) orow[j] = 0.0f;
  }
}

void pack_b_panel_i8(const std::int8_t* b, std::size_t ldb, std::size_t kc,
                     std::size_t cols, std::int8_t* out) {
  const std::size_t kc_even = round_up_pair(kc);
  for (std::size_t kk = 0; kk < kc_even; kk += kKPair) {
    std::int8_t* opair = out + kk * kNr;
    const std::int8_t* b0 = b + kk * ldb;
    const std::int8_t* b1 = b0 + ldb;
    const bool has1 = kk + 1 < kc;
    for (std::size_t j = 0; j < kNr; ++j) {
      opair[j * 2] = j < cols ? b0[j] : std::int8_t{0};
      opair[j * 2 + 1] = (has1 && j < cols) ? b1[j] : std::int8_t{0};
    }
  }
}

void pack_a_panel_f32(const float* a, std::size_t lda, std::size_t rows,
                      std::size_t kc, float alpha, bool fp16_inputs,
                      float* out) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    float* ocol = out + kk * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      float v = (r < rows) ? a[r * lda + kk] : 0.0f;
      if (fp16_inputs) v = round_to_half(v);
      ocol[r] = alpha * v;
    }
  }
}

void pack_a_panel_gather_f32(const float* a, std::size_t lda,
                             std::size_t rows, const std::int32_t* col_idx,
                             std::size_t kc, float alpha, bool fp16_inputs,
                             float* out) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const std::size_t src = static_cast<std::size_t>(col_idx[kk]);
    float* ocol = out + kk * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      float v = (r < rows) ? a[r * lda + src] : 0.0f;
      if (fp16_inputs) v = round_to_half(v);
      ocol[r] = alpha * v;
    }
  }
}

void pack_at_panel_f32(const float* a, std::size_t lda, std::size_t rows,
                       std::size_t kc, float* out) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    float* lane = out + kk * kNr;
    std::size_t r = 0;
    for (; r < rows; ++r) lane[r] = a[r * lda + kk];
    for (; r < kNr; ++r) lane[r] = 0.0f;
  }
}

void pack_a_panel_i8(const std::int8_t* a, std::size_t lda, std::size_t rows,
                     std::size_t kc, std::int8_t* out) {
  const std::size_t kc_even = round_up_pair(kc);
  for (std::size_t kk = 0; kk < kc_even; ++kk) {
    std::int8_t* ocol = out + kk * kMr;
    for (std::size_t r = 0; r < kMr; ++r)
      ocol[r] = (kk < kc && r < rows) ? a[r * lda + kk] : std::int8_t{0};
  }
}

void pack_a_panel_gather_i8(const std::int8_t* a, std::size_t lda,
                            std::size_t rows, const std::int32_t* col_idx,
                            std::size_t kc, std::int8_t* out) {
  const std::size_t kc_even = round_up_pair(kc);
  for (std::size_t kk = 0; kk < kc_even; ++kk) {
    std::int8_t* ocol = out + kk * kMr;
    if (kk >= kc) {
      for (std::size_t r = 0; r < kMr; ++r) ocol[r] = 0;
      continue;
    }
    const std::size_t src = static_cast<std::size_t>(col_idx[kk]);
    for (std::size_t r = 0; r < kMr; ++r)
      ocol[r] = (r < rows) ? a[r * lda + src] : std::int8_t{0};
  }
}

GemmScratch& thread_gemm_scratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

}  // namespace tilesparse
