#include "gemm/masked_gemm.hpp"

#include <algorithm>
#include <cassert>

#include "gemm/micro_kernel.hpp"

namespace tilesparse {

void masked_gemm_gather(const MatrixF& a, const MaskedTile& tile, MatrixF& c) {
  const std::size_t m = a.rows();
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  assert(tile.weights.rows() == kt && tile.weights.cols() == wt);

  std::vector<float> acc(wt);
  for (std::size_t i = 0; i < m; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (std::size_t t = 0; t < kt; ++t) {
      // Indexed load: A(i, kept_rows[t]) — the uncoalesced access the
      // paper eliminates via transposition.
      const float av = a(i, static_cast<std::size_t>(tile.kept_rows[t]));
      const float* wrow = tile.weights.data() + t * wt;
      for (std::size_t j = 0; j < wt; ++j) acc[j] += av * wrow[j];
    }
    for (std::size_t j = 0; j < wt; ++j)
      c(i, static_cast<std::size_t>(tile.out_cols[j])) += acc[j];
  }
}

namespace {

/// K blocking shared by packing and the kernel loops.  kcap depends on
/// the tile shape only, so pre-packed panels stay valid for every M.
constexpr std::size_t kKc = 256;  // K panel resident in L1/L2
constexpr std::size_t kMc = 96;   // M chunk: accumulator stays cache
                                  // resident and scratch stays bounded

/// Packs the compacted tile weights: per (K-block, strip) panels,
/// kNr-wide, zero-padded — after packing, the inner loops are the same
/// register-tiled kernel dense GEMM runs (the CPU equivalent of the
/// transpose trick restoring coalesced loads).
void pack_tile_b_panels(const MaskedTile& tile, float* b_panels) {
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  const std::size_t strips = (wt + kNr - 1) / kNr;
  const std::size_t wt_round = strips * kNr;
  const std::size_t kcap = std::min(kKc, kt);
  const std::size_t k_blocks = (kt + kcap - 1) / kcap;
  for (std::size_t kb = 0; kb < k_blocks; ++kb) {
    const std::size_t k0 = kb * kcap;
    const std::size_t klen = std::min(kcap, kt - k0);
    float* block_base = b_panels + k0 * wt_round;
    for (std::size_t s = 0; s < strips; ++s) {
      const std::size_t j0 = s * kNr;
      pack_b_panel_f32(tile.weights.data() + k0 * wt + j0, wt, klen,
                       std::min(kNr, wt - j0), block_base + s * klen * kNr);
    }
  }
}

}  // namespace

TilePanels prepack_tile_panels(const MaskedTile& tile) {
  TilePanels panels;
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  if (kt == 0 || wt == 0) return panels;
  const std::size_t wt_round = ((wt + kNr - 1) / kNr) * kNr;
  panels.b.resize(kt * wt_round);
  pack_tile_b_panels(tile, panels.b.data());
  return panels;
}

std::vector<TilePanels> prepack_all_tile_panels(
    const std::vector<MaskedTile>& tiles) {
  std::vector<TilePanels> panels;
  panels.reserve(tiles.size());
  for (const MaskedTile& tile : tiles) panels.push_back(prepack_tile_panels(tile));
  return panels;
}

void masked_gemm_packed(const MatrixF& a, const MaskedTile& tile, MatrixF& c,
                        bool fp16_inputs, const TilePanels* prepacked) {
  const std::size_t m = a.rows();
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  assert(tile.weights.rows() == kt && tile.weights.cols() == wt);
  if (m == 0 || kt == 0 || wt == 0) return;

  const std::size_t strips = (wt + kNr - 1) / kNr;
  const std::size_t wt_round = strips * kNr;
  const std::size_t kcap = std::min(kKc, kt);
  const std::size_t mcap = std::min(kMc, m);

  // Per-thread scratch: masked_gemm_all runs one tile per worker, and
  // the seed version allocated panels per row block inside that loop.
  GemmScratch& scratch = thread_gemm_scratch();
  scratch.a_f32.resize(kcap * kMr);
  scratch.acc_f32.resize(mcap * wt_round);
  float* a_panel = scratch.a_f32.data();
  float* acc = scratch.acc_f32.data();

  const float* b_panels;
  if (prepacked && !prepacked->b.empty()) {
    assert(prepacked->b.size() == kt * wt_round);
    b_panels = prepacked->b.data();
  } else {
    scratch.b_f32.resize(kt * wt_round);
    pack_tile_b_panels(tile, scratch.b_f32.data());
    b_panels = scratch.b_f32.data();
  }
  const std::size_t k_blocks = (kt + kcap - 1) / kcap;

  for (std::size_t i0 = 0; i0 < m; i0 += mcap) {
    const std::size_t mlen = std::min(mcap, m - i0);
    std::fill_n(acc, mlen * wt_round, 0.0f);
    for (std::size_t kb = 0; kb < k_blocks; ++kb) {
      const std::size_t k0 = kb * kcap;
      const std::size_t klen = std::min(kcap, kt - k0);
      const float* block_base = b_panels + k0 * wt_round;
      for (std::size_t i = 0; i < mlen; i += kMr) {
        const std::size_t rows = std::min(kMr, mlen - i);
        // Gathered A micro-panel: column kk reads A column kept_rows[kk].
        pack_a_panel_gather_f32(a.data() + (i0 + i) * a.cols(), a.cols(),
                                rows, tile.kept_rows.data() + k0, klen,
                                /*alpha=*/1.0f, fp16_inputs, a_panel);
        for (std::size_t s = 0; s < strips; ++s) {
          micro_kernel_f32(klen, a_panel, block_base + s * klen * kNr,
                           acc + i * wt_round + s * kNr, wt_round, rows, kNr);
        }
      }
    }
    // Scatter the chunk's accumulator into the tile's surviving C columns.
    for (std::size_t i = 0; i < mlen; ++i) {
      const float* arow = acc + i * wt_round;
      float* crow = c.data() + (i0 + i) * c.cols();
      for (std::size_t j = 0; j < wt; ++j)
        crow[static_cast<std::size_t>(tile.out_cols[j])] += arow[j];
    }
  }
}

void masked_gemm_all(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                     MatrixF& c, bool fp16_inputs,
                     const std::vector<TilePanels>* prepacked) {
  assert(!prepacked || prepacked->size() == tiles.size());
  // Tiles write disjoint C columns (out_cols never overlap across tiles
  // of one weight matrix), so the loop is safely parallel.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    masked_gemm_packed(a, tiles[t], c, fp16_inputs,
                       prepacked ? &(*prepacked)[t] : nullptr);
  }
}

std::vector<MaskedTile> slice_masked_tiles(const std::vector<MaskedTile>& tiles,
                                           std::size_t n0, std::size_t n1) {
  std::vector<MaskedTile> sliced;
  for (const MaskedTile& tile : tiles) {
    // out_cols ascend, so the intersection with [n0, n1) is contiguous.
    const auto lo = std::lower_bound(tile.out_cols.begin(),
                                     tile.out_cols.end(),
                                     static_cast<std::int32_t>(n0));
    const auto hi = std::lower_bound(lo, tile.out_cols.end(),
                                     static_cast<std::int32_t>(n1));
    if (lo == hi) continue;
    const std::size_t j0 = static_cast<std::size_t>(lo - tile.out_cols.begin());
    const std::size_t width = static_cast<std::size_t>(hi - lo);
    MaskedTile out;
    out.kept_rows = tile.kept_rows;
    out.out_cols.reserve(width);
    for (auto it = lo; it != hi; ++it)
      out.out_cols.push_back(*it - static_cast<std::int32_t>(n0));
    out.weights = MatrixF(tile.kept_rows.size(), width);
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t)
      for (std::size_t j = 0; j < width; ++j)
        out.weights(t, j) = tile.weights(t, j0 + j);
    sliced.push_back(std::move(out));
  }
  return sliced;
}

MatrixF tiles_to_dense(const std::vector<MaskedTile>& tiles, std::size_t k,
                       std::size_t n) {
  MatrixF dense(k, n);
  for (const auto& tile : tiles) {
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t) {
      for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
        dense(static_cast<std::size_t>(tile.kept_rows[t]),
              static_cast<std::size_t>(tile.out_cols[j])) = tile.weights(t, j);
      }
    }
  }
  return dense;
}

}  // namespace tilesparse
