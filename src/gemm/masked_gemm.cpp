#include "gemm/masked_gemm.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "tensor/half.hpp"

namespace tilesparse {

void masked_gemm_gather(const MatrixF& a, const MaskedTile& tile, MatrixF& c) {
  const std::size_t m = a.rows();
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  assert(tile.weights.rows() == kt && tile.weights.cols() == wt);

  std::vector<float> acc(wt);
  for (std::size_t i = 0; i < m; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (std::size_t t = 0; t < kt; ++t) {
      // Indexed load: A(i, kept_rows[t]) — the uncoalesced access the
      // paper eliminates via transposition.
      const float av = a(i, static_cast<std::size_t>(tile.kept_rows[t]));
      const float* wrow = tile.weights.data() + t * wt;
      for (std::size_t j = 0; j < wt; ++j) acc[j] += av * wrow[j];
    }
    for (std::size_t j = 0; j < wt; ++j)
      c(i, static_cast<std::size_t>(tile.out_cols[j])) += acc[j];
  }
}

void masked_gemm_packed(const MatrixF& a, const MaskedTile& tile, MatrixF& c,
                        bool fp16_inputs) {
  const std::size_t m = a.rows();
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  assert(tile.weights.rows() == kt && tile.weights.cols() == wt);
  if (kt == 0 || wt == 0) return;

  constexpr std::size_t kRowBlock = 32;
  std::vector<float> panel(kRowBlock * kt);
  std::vector<float> acc_block(kRowBlock * wt);

  for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const std::size_t rows = std::min(kRowBlock, m - i0);
    // Pack: panel[r * kt + t] = A(i0 + r, kept_rows[t]).  After packing,
    // the inner loops are fully contiguous — this is the CPU equivalent
    // of the transpose trick restoring coalesced loads.
    for (std::size_t r = 0; r < rows; ++r) {
      const float* arow = a.data() + (i0 + r) * a.cols();
      float* prow = panel.data() + r * kt;
      for (std::size_t t = 0; t < kt; ++t) {
        float v = arow[tile.kept_rows[t]];
        prow[t] = fp16_inputs ? round_to_half(v) : v;
      }
    }
    std::fill(acc_block.begin(), acc_block.begin() + rows * wt, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* prow = panel.data() + r * kt;
      float* arow = acc_block.data() + r * wt;
      for (std::size_t t = 0; t < kt; ++t) {
        const float av = prow[t];
        if (av == 0.0f) continue;
        const float* wrow = tile.weights.data() + t * wt;
        for (std::size_t j = 0; j < wt; ++j) arow[j] += av * wrow[j];
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const float* arow = acc_block.data() + r * wt;
      float* crow = c.data() + (i0 + r) * c.cols();
      for (std::size_t j = 0; j < wt; ++j)
        crow[tile.out_cols[j]] += arow[j];
    }
  }
}

void masked_gemm_all(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                     MatrixF& c, bool fp16_inputs) {
  // Tiles write disjoint C columns (out_cols never overlap across tiles
  // of one weight matrix), so the loop is safely parallel.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    masked_gemm_packed(a, tiles[t], c, fp16_inputs);
  }
}

MatrixF tiles_to_dense(const std::vector<MaskedTile>& tiles, std::size_t k,
                       std::size_t n) {
  MatrixF dense(k, n);
  for (const auto& tile : tiles) {
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t) {
      for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
        dense(static_cast<std::size_t>(tile.kept_rows[t]),
              static_cast<std::size_t>(tile.out_cols[j])) = tile.weights(t, j);
      }
    }
  }
  return dense;
}

}  // namespace tilesparse
