#include "gemm/masked_gemm.hpp"

#include <algorithm>
#include <cassert>

#include "gemm/micro_kernel.hpp"

namespace tilesparse {

void masked_gemm_gather(const MatrixF& a, const MaskedTile& tile, MatrixF& c) {
  const std::size_t m = a.rows();
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  assert(tile.weights.rows() == kt && tile.weights.cols() == wt);

  std::vector<float> acc(wt);
  for (std::size_t i = 0; i < m; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (std::size_t t = 0; t < kt; ++t) {
      // Indexed load: A(i, kept_rows[t]) — the uncoalesced access the
      // paper eliminates via transposition.
      const float av = a(i, static_cast<std::size_t>(tile.kept_rows[t]));
      const float* wrow = tile.weights.data() + t * wt;
      for (std::size_t j = 0; j < wt; ++j) acc[j] += av * wrow[j];
    }
    for (std::size_t j = 0; j < wt; ++j)
      c(i, static_cast<std::size_t>(tile.out_cols[j])) += acc[j];
  }
}

void masked_gemm_packed(const MatrixF& a, const MaskedTile& tile, MatrixF& c,
                        bool fp16_inputs) {
  const std::size_t m = a.rows();
  const std::size_t kt = tile.kept_rows.size();
  const std::size_t wt = tile.out_cols.size();
  assert(tile.weights.rows() == kt && tile.weights.cols() == wt);
  if (m == 0 || kt == 0 || wt == 0) return;

  const std::size_t strips = (wt + kNr - 1) / kNr;
  const std::size_t wt_round = strips * kNr;
  constexpr std::size_t kKc = 256;   // K panel resident in L1/L2
  constexpr std::size_t kMc = 96;    // M chunk: accumulator stays cache
                                     // resident and scratch stays bounded
  const std::size_t kcap = std::min(kKc, kt);
  const std::size_t mcap = std::min(kMc, m);

  // Per-thread scratch: masked_gemm_all runs one tile per worker, and
  // the seed version allocated panels per row block inside that loop.
  GemmScratch& scratch = thread_gemm_scratch();
  scratch.a_f32.resize(kcap * kMr);
  scratch.b_f32.resize(kt * wt_round);
  scratch.acc_f32.resize(mcap * wt_round);
  float* a_panel = scratch.a_f32.data();
  float* b_panels = scratch.b_f32.data();
  float* acc = scratch.acc_f32.data();

  // Pack the compacted tile weights once per call: per (K-block, strip)
  // panels, kNr-wide, zero-padded — after packing, the inner loops are
  // the same register-tiled kernel dense GEMM runs (the CPU equivalent
  // of the transpose trick restoring coalesced loads).
  const std::size_t k_blocks = (kt + kcap - 1) / kcap;
  for (std::size_t kb = 0; kb < k_blocks; ++kb) {
    const std::size_t k0 = kb * kcap;
    const std::size_t klen = std::min(kcap, kt - k0);
    float* block_base = b_panels + k0 * wt_round;
    for (std::size_t s = 0; s < strips; ++s) {
      const std::size_t j0 = s * kNr;
      pack_b_panel_f32(tile.weights.data() + k0 * wt + j0, wt, klen,
                       std::min(kNr, wt - j0), block_base + s * klen * kNr);
    }
  }

  for (std::size_t i0 = 0; i0 < m; i0 += mcap) {
    const std::size_t mlen = std::min(mcap, m - i0);
    std::fill_n(acc, mlen * wt_round, 0.0f);
    for (std::size_t kb = 0; kb < k_blocks; ++kb) {
      const std::size_t k0 = kb * kcap;
      const std::size_t klen = std::min(kcap, kt - k0);
      const float* block_base = b_panels + k0 * wt_round;
      for (std::size_t i = 0; i < mlen; i += kMr) {
        const std::size_t rows = std::min(kMr, mlen - i);
        // Gathered A micro-panel: column kk reads A column kept_rows[kk].
        pack_a_panel_gather_f32(a.data() + (i0 + i) * a.cols(), a.cols(),
                                rows, tile.kept_rows.data() + k0, klen,
                                /*alpha=*/1.0f, fp16_inputs, a_panel);
        for (std::size_t s = 0; s < strips; ++s) {
          micro_kernel_f32(klen, a_panel, block_base + s * klen * kNr,
                           acc + i * wt_round + s * kNr, wt_round, rows, kNr);
        }
      }
    }
    // Scatter the chunk's accumulator into the tile's surviving C columns.
    for (std::size_t i = 0; i < mlen; ++i) {
      const float* arow = acc + i * wt_round;
      float* crow = c.data() + (i0 + i) * c.cols();
      for (std::size_t j = 0; j < wt; ++j)
        crow[static_cast<std::size_t>(tile.out_cols[j])] += arow[j];
    }
  }
}

void masked_gemm_all(const MatrixF& a, const std::vector<MaskedTile>& tiles,
                     MatrixF& c, bool fp16_inputs) {
  // Tiles write disjoint C columns (out_cols never overlap across tiles
  // of one weight matrix), so the loop is safely parallel.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    masked_gemm_packed(a, tiles[t], c, fp16_inputs);
  }
}

MatrixF tiles_to_dense(const std::vector<MaskedTile>& tiles, std::size_t k,
                       std::size_t n) {
  MatrixF dense(k, n);
  for (const auto& tile : tiles) {
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t) {
      for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
        dense(static_cast<std::size_t>(tile.kept_rows[t]),
              static_cast<std::size_t>(tile.out_cols[j])) = tile.weights(t, j);
      }
    }
  }
  return dense;
}

}  // namespace tilesparse
