#pragma once
// Shared register-tiled micro-kernel core for every PackedWeight
// execution path.
//
// Before this existed, each backend funnelled into its own innermost
// loop family (a scalar 4x16 kernel in dense_gemm, hand-rolled
// accumulator loops in masked_gemm / quant_tw_gemm).  The paper's
// argument is that tile-wise sparsity wins *because* the dense
// execution substrate stays fast; this header is that substrate: one
// blocked, B-panel-packed, SIMD-vectorized inner kernel that
// dense_gemm, the TW/TEW masked paths and the int8 TW path all share.
//
// Two kernels are exposed:
//  * fp32:       C(rows x cols) += A_panel^T * B_panel (FMA)
//  * int8->int32 with fused dequant: C += scale * (A_panel^T * B_panel)
//    accumulated in int32 (the tensor-core IMMA analogue)
//
// Dispatch is resolved at runtime: an AVX2+FMA implementation via
// intrinsics (compiled with function-level target attributes, so the
// rest of the library keeps its baseline ISA) with a portable
// `#pragma omp simd` scalar fallback.  set_simd_level() lets tests and
// ablations force the fallback on AVX2 hosts.
//
// Panel layouts (packed by the helpers below, zero-padded to full
// micro-tile size so kernels never branch on ragged edges):
//  * fp32 A panel: a_panel[kk * kMr + r], kc x kMr
//  * fp32 B panel: b_panel[kk * kNr + j], kc x kNr
//  * int8 A panel: a_panel[kk * kMr + r], kc rounded up to even
//  * int8 B panel: K-pair interleaved, b_panel[(kk/2)*2*kNr + j*2 + (kk&1)]
//    — pairs of K rows sit adjacent per column so the AVX2 kernel can
//    consume them with a single 16-bit multiply-add (vpmaddwd).

#include <cstddef>
#include <cstdint>

#include "util/guards.hpp"

namespace tilesparse {

/// Register micro-tile: 6 rows x 16 columns of C per innermost
/// iteration (12 of 16 ymm registers hold C fragments on AVX2).
inline constexpr std::size_t kMr = 6;
inline constexpr std::size_t kNr = 16;

/// int8 kernels consume K two rows at a time (16-bit multiply-add).
inline constexpr std::size_t kKPair = 2;

enum class SimdLevel {
  kScalar = 0,  ///< portable `#pragma omp simd` fallback
  kAvx2 = 1,    ///< AVX2 + FMA intrinsics
};

/// Best level this host supports (detected once, cached).
SimdLevel detected_simd_level() noexcept;

/// Level the kernels currently dispatch to (defaults to detected).
SimdLevel active_simd_level() noexcept;

/// Forces dispatch to `level` (clamped to detected_simd_level()); used
/// by tests and the scalar-vs-SIMD ablation.  Returns the level now
/// active.
SimdLevel set_simd_level(SimdLevel level) noexcept;

inline const char* simd_level_name(SimdLevel level) noexcept {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

// ------------------------------------------------------------- kernels

/// fp32 inner kernel: C(rows x cols) += A_panel^T * B_panel.
/// `a_panel` is kc x kMr (layout above, rows beyond `rows` zero),
/// `b_panel` is kc x kNr (cols beyond `cols` zero), `c` is row-major
/// with leading dimension `ldc`; only the rows x cols corner is
/// touched.  rows <= kMr, cols <= kNr.
void micro_kernel_f32(std::size_t kc, const float* a_panel,
                      const float* b_panel, float* c, std::size_t ldc,
                      std::size_t rows, std::size_t cols);

/// int8 inner kernel with int32 accumulation and fused dequant:
/// C(rows x cols) += scale * (A_panel^T * B_panel).  Panels use the
/// int8 layouts above (kc zero-padded to even).  The full K extent is
/// expected in one call (int8 panels are small enough to stay cache
/// resident), so the int32 accumulators live entirely in registers and
/// quantisation scaling happens exactly once per output element.
void micro_kernel_i8(std::size_t kc, const std::int8_t* a_panel,
                     const std::int8_t* b_panel, float scale, float* c,
                     std::size_t ldc, std::size_t rows, std::size_t cols);

// ------------------------------------------------------- panel packing

/// Rounds kc up to the int8 K-pair granularity.
inline constexpr std::size_t round_up_pair(std::size_t kc) noexcept {
  return (kc + (kKPair - 1)) & ~(kKPair - 1);
}

/// Packs one kNr-wide strip of B: out[kk*kNr + j] = b[kk*ldb + j] for
/// j < cols, zero beyond.
void pack_b_panel_f32(const float* b, std::size_t ldb, std::size_t kc,
                      std::size_t cols, float* out);

/// int8 strip, K-pair interleaved (layout above), kc padded to even.
void pack_b_panel_i8(const std::int8_t* b, std::size_t ldb, std::size_t kc,
                     std::size_t cols, std::int8_t* out);

/// Packs an fp32 A micro-panel: out[kk*kMr + r] = alpha * A(row0 + r,
/// k0 + kk) for r < rows, zero-padded to kMr; optionally rounds values
/// through binary16 first (tensor-core input numerics).
void pack_a_panel_f32(const float* a, std::size_t lda, std::size_t rows,
                      std::size_t kc, float alpha, bool fp16_inputs,
                      float* out);

/// Gathering variant for the masked (TW) paths: column kk of the panel
/// reads A column col_idx[kk] — the packing step that restores
/// coalesced access (paper Fig. 7-2).
void pack_a_panel_gather_f32(const float* a, std::size_t lda,
                             std::size_t rows, const std::int32_t* col_idx,
                             std::size_t kc, float alpha, bool fp16_inputs,
                             float* out);

/// Transposed activation pack for the panel SpMM path:
/// out[kk*kNr + r] = A(row0 + r, kk) for r < rows (zero beyond), so the
/// sparse row-broadcast kernel reads one contiguous kNr-lane vector of
/// activations per sparse weight row.
void pack_at_panel_f32(const float* a, std::size_t lda, std::size_t rows,
                       std::size_t kc, float* out);

/// Sparse row-broadcast strip kernel for panel SpMM.  `a_panel` is the
/// transposed activation panel above (one kNr lane vector per weight
/// row); `frag` holds the strip's C fragment transposed, kNr lanes per
/// local output column.  For each listed weight row i (global row
/// row_idx[i]) and each of its nonzeros p in [row_ptr[i], row_ptr[i+1])
/// with strip-local column col[p] and value val[p]:
///   frag[col[p]*kNr + r] += val[p] * a_panel[row_idx[i]*kNr + r]
/// Work is proportional to nnz — no dense K loop — while every FMA is
/// a full-width vector op on the activation lanes.
void spmm_strip_f32(const float* a_panel, const std::int32_t* row_idx,
                    const std::int64_t* row_ptr, std::size_t nrows,
                    const std::int32_t* col, const float* val, float* frag);

/// int8 A micro-panel (dense and gathered), kc padded to even.
void pack_a_panel_i8(const std::int8_t* a, std::size_t lda, std::size_t rows,
                     std::size_t kc, std::int8_t* out);
void pack_a_panel_gather_i8(const std::int8_t* a, std::size_t lda,
                            std::size_t rows, const std::int32_t* col_idx,
                            std::size_t kc, std::int8_t* out);

// ------------------------------------------------------ thread scratch

/// Per-thread packing scratch.  GEMM outer loops run under
/// `omp parallel for`; allocating panels inside the loop body puts a
/// heap allocation on every row block (the seed kernel's a_panel bug).
/// Each worker instead reuses these buffers across blocks and across
/// GEMM calls; resize() is a no-op once the high-water mark is reached.
/// Under TILESPARSE_ENABLE_GUARDS each buffer carries front/back
/// canaries (verified on resize and release) and fresh float growth is
/// NaN-poisoned, so a kernel that reads or writes outside its packed
/// panel fails loudly (util/guards.hpp).
struct GemmScratch {
  GuardedVec<float> a_f32;        ///< packed A micro-panels
  GuardedVec<float> b_f32;        ///< packed B panels
  GuardedVec<float> acc_f32;      ///< dense accumulator before scatter
  GuardedVec<std::int8_t> a_i8;   ///< packed int8 A micro-panels
  GuardedVec<std::int8_t> b_i8;   ///< packed int8 B panels
};

/// The calling thread's scratch (thread_local storage).
GemmScratch& thread_gemm_scratch();

}  // namespace tilesparse
