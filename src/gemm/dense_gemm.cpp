#include "gemm/dense_gemm.hpp"

#include <algorithm>

#include "gemm/micro_kernel.hpp"
#include "util/guards.hpp"

namespace tilesparse {

PackedDenseB pack_dense_b(const MatrixF& b, const GemmConfig& config) {
  PackedDenseB packed;
  packed.k = b.rows();
  packed.n = b.cols();
  packed.kc = std::max<std::size_t>(1, config.kc);
  const std::size_t strips = (packed.n + kNr - 1) / kNr;
  const std::size_t k_blocks = (packed.k + packed.kc - 1) / packed.kc;
  packed.panels.resize(packed.k * strips * kNr);
  for (std::size_t kb = 0; kb < k_blocks; ++kb) {
    const std::size_t k0 = kb * packed.kc;
    const std::size_t klen = std::min(packed.kc, packed.k - k0);
    float* block_base = packed.panels.data() + k0 * strips * kNr;
    for (std::size_t s = 0; s < strips; ++s) {
      const std::size_t j0 = s * kNr;
      pack_b_panel_f32(b.data() + k0 * packed.n + j0, packed.n, klen,
                       std::min(kNr, packed.n - j0),
                       block_base + s * klen * kNr);
    }
  }
  return packed;
}

void dense_gemm(const MatrixF& a, const PackedDenseB& b, MatrixF& c,
                float alpha, float beta, const GemmConfig& config) {
  TS_CHECK(a.cols() == b.k, "dense_gemm: A cols must equal packed K");
  TS_CHECK(c.rows() == a.rows() && c.cols() == b.n,
           "dense_gemm: C shape mismatch");
  const std::size_t m = a.rows(), k = b.k, n = b.n;

  if (beta == 0.0f) {
    c.fill(0.0f);
  } else if (beta != 1.0f) {
    for (float& v : c.flat()) v *= beta;
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  const std::size_t mc = std::max<std::size_t>(kMr, config.mc);
  const std::size_t kcap = b.kc;
  const std::size_t row_blocks = (m + mc - 1) / mc;
  const std::size_t k_blocks = (k + kcap - 1) / kcap;
  const std::size_t strips = (n + kNr - 1) / kNr;

#pragma omp parallel for schedule(dynamic)
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t i0 = rb * mc;
    const std::size_t i1 = std::min(m, i0 + mc);
    // Per-thread scratch: no heap allocation inside the parallel loop.
    GemmScratch& scratch = thread_gemm_scratch();
    scratch.a_f32.resize(kcap * kMr);
    float* a_panel = scratch.a_f32.data();

    for (std::size_t kb = 0; kb < k_blocks; ++kb) {
      const std::size_t k0 = kb * kcap;
      const std::size_t klen = std::min(kcap, k - k0);
      const float* block_base = b.panels.data() + k0 * strips * kNr;
      for (std::size_t i = i0; i < i1; i += kMr) {
        const std::size_t rows = std::min(kMr, i1 - i);
        pack_a_panel_f32(a.data() + i * k + k0, k, rows, klen, alpha,
                         config.fp16_inputs, a_panel);
        for (std::size_t s = 0; s < strips; ++s) {
          const std::size_t j0 = s * kNr;
          micro_kernel_f32(klen, a_panel, block_base + s * klen * kNr,
                           &c(i, j0), n, rows, std::min(kNr, n - j0));
        }
      }
    }
  }
}

void dense_gemm(const MatrixF& a, const MatrixF& b, MatrixF& c, float alpha,
                float beta, const GemmConfig& config) {
  TS_CHECK(a.cols() == b.rows(), "dense_gemm: A cols must equal B rows");
  TS_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
           "dense_gemm: C shape mismatch");
  // One-shot path: pack B here (an O(K*N) pass amortised over the
  // O(M*N*K) compute).  Steady-state callers hold a PackedDenseB.
  dense_gemm(a, pack_dense_b(b, config), c, alpha, beta, config);
}

MatrixF matmul(const MatrixF& a, const MatrixF& b, const GemmConfig& config) {
  MatrixF c(a.rows(), b.cols());
  dense_gemm(a, b, c, 1.0f, 0.0f, config);
  return c;
}

}  // namespace tilesparse
