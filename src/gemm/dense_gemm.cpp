#include "gemm/dense_gemm.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "tensor/half.hpp"

namespace tilesparse {
namespace {

// Register micro-tile: 4 rows x 16 columns of C per innermost iteration.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;

// Computes a (rows x cols) block of C (rows <= kMr, cols <= kNr) from a
// packed A panel (kc x kMr column-major-ish: a_panel[k*kMr + r]) and the
// untransformed B rows.
void micro_kernel(std::size_t kc, const float* a_panel, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t rows,
                  std::size_t cols) {
  float acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const float* brow = b + k * ldb;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float a = a_panel[k * kMr + r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += a * brow[j];
    }
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < cols; ++j) c[r * ldc + j] += acc[r][j];
}

// Edge-safe kernel for ragged N tails (cols < kNr handled by caller copy,
// here we just guard loads/stores).
void micro_kernel_edge(std::size_t kc, const float* a_panel, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc,
                       std::size_t rows, std::size_t cols) {
  float acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const float* brow = b + k * ldb;
    for (std::size_t r = 0; r < rows; ++r) {
      const float a = a_panel[k * kMr + r];
      for (std::size_t j = 0; j < cols; ++j) acc[r][j] += a * brow[j];
    }
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < cols; ++j) c[r * ldc + j] += acc[r][j];
}

}  // namespace

void dense_gemm(const MatrixF& a, const MatrixF& b, MatrixF& c, float alpha,
                float beta, const GemmConfig& config) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();

  if (beta == 0.0f) {
    c.fill(0.0f);
  } else if (beta != 1.0f) {
    for (float& v : c.flat()) v *= beta;
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  const std::size_t mc = std::max<std::size_t>(kMr, config.mc);
  const std::size_t kcap = std::max<std::size_t>(1, config.kc);
  const std::size_t row_blocks = (m + mc - 1) / mc;

#pragma omp parallel for schedule(dynamic)
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t i0 = rb * mc;
    const std::size_t i1 = std::min(m, i0 + mc);
    std::vector<float> a_panel(kcap * kMr);

    for (std::size_t k0 = 0; k0 < k; k0 += kcap) {
      const std::size_t kb = std::min(kcap, k - k0);
      for (std::size_t i = i0; i < i1; i += kMr) {
        const std::size_t rows = std::min(kMr, i1 - i);
        // Pack the A micro-panel: a_panel[kk*kMr + r] = alpha * A(i+r, k0+kk).
        for (std::size_t kk = 0; kk < kb; ++kk) {
          for (std::size_t r = 0; r < kMr; ++r) {
            float v = (r < rows) ? a(i + r, k0 + kk) : 0.0f;
            if (config.fp16_inputs) v = round_to_half(v);
            a_panel[kk * kMr + r] = alpha * v;
          }
        }
        const float* bbase = b.data() + k0 * n;
        std::size_t j = 0;
        for (; j + kNr <= n; j += kNr) {
          micro_kernel(kb, a_panel.data(), bbase + j, n, &c(i, j), n, rows, kNr);
        }
        if (j < n) {
          micro_kernel_edge(kb, a_panel.data(), bbase + j, n, &c(i, j), n, rows,
                            n - j);
        }
      }
    }
  }
}

MatrixF matmul(const MatrixF& a, const MatrixF& b, const GemmConfig& config) {
  MatrixF c(a.rows(), b.cols());
  dense_gemm(a, b, c, 1.0f, 0.0f, config);
  return c;
}

}  // namespace tilesparse
