#pragma once
// Non-GEMM kernels and their fused variants.
//
// The paper (Sec. VI, "Kernel Fusion") fuses consecutive element-wise
// kernels (Add-bias + LayerNormalization, Add-bias + GELU) to cut kernel
// launches and global-memory round trips; that reduces BERT's non-GEMM
// share from 39% to 29%.  We provide both the separate kernels and the
// fused ones so the end-to-end benchmarks can toggle the optimization.

#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// x[r, :] += bias for every row.
void add_bias(MatrixF& x, std::span<const float> bias);

/// Row-wise LayerNorm: y = (x - mean) / sqrt(var + eps) * gamma + beta.
void layer_norm(MatrixF& x, std::span<const float> gamma,
                std::span<const float> beta, float eps = 1e-5f);

/// tanh-approximation GELU, element-wise in place.
void gelu(MatrixF& x);

/// ReLU in place.
void relu(MatrixF& x);

/// Row-wise softmax in place (numerically stable).
void softmax_rows(MatrixF& x);

/// Fused add_bias + layer_norm: single pass over each row.
void fused_bias_layer_norm(MatrixF& x, std::span<const float> bias,
                           std::span<const float> gamma,
                           std::span<const float> beta, float eps = 1e-5f);

/// Fused add_bias + gelu.
void fused_bias_gelu(MatrixF& x, std::span<const float> bias);

}  // namespace tilesparse
