#pragma once
// BertMini — the scaled-down BERT proxy (see DESIGN.md substitutions).
// Pre-LN transformer encoder: per layer MHA + FFN with residuals, then
// mean-pool and a classifier head.  The prunable matrices mirror BERT's
// structure: 6 weight GEMMs per layer (Q, K, V, attention-out, FFN-in,
// FFN-out), which is what paper Fig. 5 counts.

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {

class ExecScheduler;

struct BertMiniConfig {
  std::size_t dim = 64;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ffn_dim = 256;
  std::size_t seq = 16;
  std::size_t classes = 4;
  std::uint64_t seed = 1;
};

class BertMini {
 public:
  BertMini(const BertMiniConfig& config, const MatrixF& embedding_table);

  /// Tokens: batch * seq ids.  Returns batch x classes logits.
  MatrixF forward(const TokenBatch& batch);
  /// Token + positional embedding only: (batch * seq) x dim activation
  /// rows — the batchable form a serving request carries (see
  /// nn/batch_entry.hpp); forward() is embed() + the encoder stack.
  MatrixF embed(const TokenBatch& batch);
  /// dlogits from the loss; propagates through the whole stack.
  void backward(const MatrixF& dlogits);

  std::vector<Param*> params();
  /// The prunable weight matrices (6 per layer + classifier weight).
  std::vector<Param*> prunable_weights();

  /// The Linear layers owning prunable_weights(), aligned 1:1 with it.
  std::vector<Linear*> prunable_layers();

  /// Packs every prunable Linear for inference under a registered
  /// PackedWeight format.  `patterns` (required by the TW-family
  /// formats) must align 1:1 with prunable_weights() — e.g. the
  /// patterns a TW/TEW prune run produced.  Forward passes then execute
  /// those GEMMs through the packed backends; backward still
  /// differentiates against the dense master weights.
  void pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns = nullptr,
                    const ExecContext& ctx = {});
  /// Back to dense master-weight execution.
  void clear_packed_weights();

  /// Builds (or rebuilds) the model-level execution plan: one graph
  /// covering every encoder block — Q/K/V as independent GEMM nodes,
  /// host nodes for layernorm/softmax/residual glue, FFN and classifier
  /// GEMMs — over the *current* execution backends (packed where
  /// pack_weights installed one, plain forward otherwise).
  /// pack_weights/clear_packed_weights invalidate the graph; call this
  /// again after loading a new artifact into the layers directly.
  ExecGraph& build_exec_graph();
  ExecGraph* exec_graph() noexcept { return graph_.get(); }

  /// Appends the whole encoder stack (blocks, pool, classifier) to an
  /// externally owned graph, reading embedded rows from `input` and
  /// returning the logits slot.  This is build_exec_graph()'s body,
  /// reusable by batch entries that keep one graph per batch size; the
  /// appended nodes hold refs to the current packed backends, so the
  /// external graph must be discarded after pack_weights /
  /// clear_packed_weights / artifact loads, exactly like graph_.
  ExecGraph::SlotId append_exec_graph(ExecGraph& graph,
                                      ExecGraph::SlotId input);

  /// Routes forward() through the execution graph dispatched by
  /// `scheduler` (non-owning; null returns to the layer-by-layer
  /// path).  The graph is built lazily on the next forward().
  void set_exec_scheduler(ExecScheduler* scheduler) noexcept {
    scheduler_ = scheduler;
  }

  const BertMiniConfig& config() const noexcept { return config_; }

 private:
  struct Block {
    std::unique_ptr<LayerNorm> ln1;
    std::unique_ptr<MultiHeadAttention> attn;
    std::unique_ptr<LayerNorm> ln2;
    std::unique_ptr<Linear> ffn_in;
    std::unique_ptr<Gelu> gelu;
    std::unique_ptr<Linear> ffn_out;
    MatrixF x_attn_in, x_ffn_in;  // residual caches
  };

  BertMiniConfig config_;
  Embedding embedding_;
  Param pos_embedding_;  ///< seq x dim, learned
  std::vector<Block> blocks_;
  MeanPoolRows pool_;
  std::unique_ptr<Linear> classifier_;
  std::size_t last_batch_ = 0;
  // Model-level execution plan (inference only).
  std::unique_ptr<ExecGraph> graph_;
  ExecGraph::SlotId graph_in_ = 0, graph_out_ = 0;
  ExecScheduler* scheduler_ = nullptr;
  bool graph_forward_ = false;  ///< last forward ran through the graph
  /// packed_version() of every layer in the graph at build time; any
  /// mismatch on forward (including artifact loads that bypass
  /// pack_weights) means the graph holds dangling backend refs and
  /// must be rebuilt.
  std::vector<std::uint64_t> graph_versions_;
  std::vector<std::uint64_t> current_graph_versions();
};

}  // namespace tilesparse
