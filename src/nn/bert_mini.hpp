#pragma once
// BertMini — the scaled-down BERT proxy (see DESIGN.md substitutions).
// Pre-LN transformer encoder: per layer MHA + FFN with residuals, then
// mean-pool and a classifier head.  The prunable matrices mirror BERT's
// structure: 6 weight GEMMs per layer (Q, K, V, attention-out, FFN-in,
// FFN-out), which is what paper Fig. 5 counts.

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {

struct BertMiniConfig {
  std::size_t dim = 64;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ffn_dim = 256;
  std::size_t seq = 16;
  std::size_t classes = 4;
  std::uint64_t seed = 1;
};

class BertMini {
 public:
  BertMini(const BertMiniConfig& config, const MatrixF& embedding_table);

  /// Tokens: batch * seq ids.  Returns batch x classes logits.
  MatrixF forward(const TokenBatch& batch);
  /// dlogits from the loss; propagates through the whole stack.
  void backward(const MatrixF& dlogits);

  std::vector<Param*> params();
  /// The prunable weight matrices (6 per layer + classifier weight).
  std::vector<Param*> prunable_weights();

  /// The Linear layers owning prunable_weights(), aligned 1:1 with it.
  std::vector<Linear*> prunable_layers();

  /// Packs every prunable Linear for inference under a registered
  /// PackedWeight format.  `patterns` (required by the TW-family
  /// formats) must align 1:1 with prunable_weights() — e.g. the
  /// patterns a TW/TEW prune run produced.  Forward passes then execute
  /// those GEMMs through the packed backends; backward still
  /// differentiates against the dense master weights.
  void pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns = nullptr,
                    const ExecContext& ctx = {});
  /// Back to dense master-weight execution.
  void clear_packed_weights();

  const BertMiniConfig& config() const noexcept { return config_; }

 private:
  struct Block {
    std::unique_ptr<LayerNorm> ln1;
    std::unique_ptr<MultiHeadAttention> attn;
    std::unique_ptr<LayerNorm> ln2;
    std::unique_ptr<Linear> ffn_in;
    std::unique_ptr<Gelu> gelu;
    std::unique_ptr<Linear> ffn_out;
    MatrixF x_attn_in, x_ffn_in;  // residual caches
  };

  BertMiniConfig config_;
  Embedding embedding_;
  Param pos_embedding_;  ///< seq x dim, learned
  std::vector<Block> blocks_;
  MeanPoolRows pool_;
  std::unique_ptr<Linear> classifier_;
  std::size_t last_batch_ = 0;
};

}  // namespace tilesparse
