#include "nn/batch_entry.hpp"

#include <utility>
#include <vector>

namespace tilesparse {

std::unique_ptr<GraphBatchEntry> make_bert_entry(std::string name,
                                                 BertMini& model) {
  const BertMiniConfig& config = model.config();
  GraphBatchEntry::Config entry;
  entry.name = std::move(name);
  entry.input_cols = config.dim;
  entry.output_cols = config.classes;
  entry.group_rows_in = config.seq;
  entry.group_rows_out = 1;
  // Cost accounting from the layers the stack actually multiplies
  // through: packed backends where installed, dense masters otherwise.
  double macs_per_row = 0.0;
  std::size_t weight_bytes = 0;
  std::vector<Linear*> layers = model.prunable_layers();
  for (Linear* layer : layers) {
    if (const PackedWeight* packed = layer->packed_weight()) {
      macs_per_row += packed->macs(2) - packed->macs(1);
      weight_bytes += packed->bytes();
    } else {
      const MatrixF& dense = layer->weight().value;
      macs_per_row += static_cast<double>(dense.size());
      weight_bytes += dense.size() * sizeof(float);
    }
  }
  // The classifier GEMM runs on pooled rows (1 per seq input rows):
  // amortize its per-row cost over the sequence.
  const double cls_macs =
      static_cast<double>(config.dim) * static_cast<double>(config.classes);
  macs_per_row += cls_macs / static_cast<double>(config.seq);
  weight_bytes += config.dim * config.classes * sizeof(float);
  entry.macs_per_row = macs_per_row;
  entry.weight_bytes = weight_bytes;
  entry.builder = [&model](ExecGraph& graph, ExecGraph::SlotId input,
                           std::size_t) {
    return model.append_exec_graph(graph, input);
  };
  return std::make_unique<GraphBatchEntry>(std::move(entry));
}

}  // namespace tilesparse
