#pragma once
// Model-level batch entries: the bridge from nn/ models to the serving
// batcher (serve/batch/).
//
// A serving client does NOT hand the runtime a model call — it hands
// an activation (embedded token rows for BERT) plus an entry name, and
// the runtime coalesces activations from many clients into one wide-M
// graph run.  make_bert_entry packages a BertMini as such an entry:
// group_rows_in = seq (one request unit = one embedded sequence),
// group_rows_out = 1 (pooled logits row), graphs built per batch size
// through BertMini::append_exec_graph and kept in the entry's M-keyed
// LRU.
//
// Lifetime: the model must outlive the entry, and the entry must be
// re-created (re-registered) after pack_weights / clear_packed_weights
// or artifact loads into the layers — its cached graphs hold refs to
// the packed backends current at creation, exactly like the model's
// own exec graph.

#include <memory>
#include <string>

#include "exec/batch_entry.hpp"
#include "nn/bert_mini.hpp"

namespace tilesparse {

/// Batch entry over a BertMini encoder stack.  Inputs are embed()
/// activations: (k * seq) x dim rows per request; outputs are k x
/// classes logits.  The model is serialized inside the entry (its
/// layer caches are not concurrency-safe).
std::unique_ptr<GraphBatchEntry> make_bert_entry(std::string name,
                                                 BertMini& model);

}  // namespace tilesparse
