#pragma once
// Shared orchestration for the accuracy experiments (paper Figs. 9a,
// 10a, 12, 14): pre-train a proxy model, prune its weight matrices with
// one of the sparsity patterns, fine-tune under the fixed masks, and
// evaluate.
//
// A PruneTask wraps one (model, dataset, metric) triple; the four
// concrete tasks mirror the paper's benchmarks: BERT sentence
// classification (MNLI proxy), BERT span extraction (SQuAD proxy), VGG
// image classification (ImageNet proxy) and LSTM translation (NMT
// proxy, scored in BLEU).

#include <memory>
#include <string>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/exec_context.hpp"
#include "exec/scheduler.hpp"
#include "nn/layers.hpp"
#include "nn/param.hpp"

namespace tilesparse {

class Linear;

enum class PatternKind { kDense, kEw, kVw, kBw, kTw, kTew };

const char* pattern_name(PatternKind kind);

struct PatternSpec {
  PatternKind kind = PatternKind::kDense;
  double sparsity = 0.0;
  std::size_t g = 32;          ///< TW granularity (scaled to mini models)
  std::size_t block = 8;       ///< BW block edge
  std::size_t vector_len = 8;  ///< VW vector length
  double tew_delta = 0.05;     ///< EW fraction restored on top of TW
  bool apriori = true;         ///< Algorithm 2 for TW/TEW
  bool global_rank = true;     ///< cross-layer tile ranking for TW/TEW
  int stages = 3;              ///< multi-stage schedule for TW/TEW
};

class PruneTask {
 public:
  virtual ~PruneTask() = default;
  virtual std::string name() const = 0;
  /// Weight matrices eligible for pruning.
  virtual std::vector<Param*> prunable() = 0;
  /// Every trainable parameter of the model (prunable weights plus
  /// biases, norms, embeddings) — what snapshot/restore must cover to
  /// return the task to a byte-identical state.
  virtual std::vector<Param*> parameters() = 0;
  /// Runs `steps` optimizer steps (masks bound to params stay enforced).
  virtual void train_steps(int steps) = 0;
  /// Metric on the held-out evaluation set: accuracy in [0,1], or BLEU
  /// in [0,100] for the NMT task.
  virtual double evaluate() = 0;

  /// Packs the model's prunable weights for inference under a
  /// registered PackedWeight format (`patterns` aligned with
  /// prunable(); required by TW-family formats).  Returns false when
  /// the task's model has no packed execution path (e.g. conv nets).
  virtual bool pack_weights(const std::string& format,
                            const std::vector<TilePattern>* patterns,
                            const ExecContext& ctx) {
    (void)format;
    (void)patterns;
    (void)ctx;
    return false;
  }
  /// Undoes pack_weights (dense execution).  Default no-op.
  virtual void clear_packed_weights() {}

  /// Linear layers holding the packed weights pack_weights() installs,
  /// in prunable() order.  Empty when the task has no layer-level
  /// packed path (conv nets, LSTM gate weights) — such tasks cannot
  /// ship deployment artifacts yet.
  virtual std::vector<Linear*> packed_layers() { return {}; }

  /// Attaches `scheduler` (non-owning; null detaches) so evaluate()
  /// runs the model through its execution graph — independent layers
  /// overlapping across streams — instead of layer-by-layer calls.
  /// Returns false when the task's model has no graph path (it then
  /// keeps evaluating synchronously).
  virtual bool set_exec_scheduler(ExecScheduler* scheduler) {
    (void)scheduler;
    return false;
  }

  /// Builds and returns the model's execution graph over the currently
  /// installed backends, for static verification (exec/validate.hpp)
  /// at serving startup.  Null when the task has no graph path.
  virtual ExecGraph* build_exec_graph() { return nullptr; }
};

/// Result of one prune-and-fine-tune run.
struct PruneResult {
  double metric = 0.0;            ///< task metric after fine-tuning
  double achieved_sparsity = 0.0; ///< realised over prunable weights
  std::vector<TilePattern> patterns;  ///< TW/TEW only
  std::vector<MatrixU8> masks;        ///< final element masks per weight
};

/// Applies the pattern to the task's weights, fine-tunes with masks
/// fixed, and evaluates.  The task should be pre-trained.  The task's
/// weights are modified; snapshot/restore around calls to compare
/// patterns from the same starting point.
PruneResult prune_and_evaluate(PruneTask& task, const PatternSpec& spec,
                               int finetune_steps);

/// Packs the task's prunable weights under `format`, evaluates the task
/// end-to-end through PackedWeight execution, and restores dense
/// execution before returning.  `patterns` come from a prior TW/TEW
/// prune run (PruneResult::patterns) for formats that need them.
/// Throws std::logic_error when the task has no packed execution path.
double evaluate_with_format(PruneTask& task, const std::string& format,
                            const std::vector<TilePattern>* patterns = nullptr,
                            const ExecContext& ctx = {});

/// Graph-scheduled variant: packs, attaches an ExecScheduler built
/// from `scheduler_options` so the model evaluates through its
/// execution graph (stream overlap + wide-N sharding), then detaches
/// and restores dense execution.  Tasks without a graph path evaluate
/// synchronously — same metric, no overlap.
double evaluate_with_format(PruneTask& task, const std::string& format,
                            const std::vector<TilePattern>* patterns,
                            const ExecContext& ctx,
                            const SchedulerOptions& scheduler_options);

/// Packs the task's prunable weights under `format` and writes them as
/// ONE deployment artifact (io/serialize model-weights container) at
/// `path`; the task is restored to dense execution before returning.
/// This is the training-side half of the paper's deployment story:
/// prune once, ship compacted (and, for "tw-int8", quantised) tiles.
/// Throws std::logic_error when the task has no layer-level packed path.
void export_packed_weights(PruneTask& task, const std::string& format,
                           const std::vector<TilePattern>* patterns,
                           const std::string& path, const ExecContext& ctx = {});

/// The serving-side half: loads the artifact written by
/// export_packed_weights straight into the task's layers — no
/// re-pruning, re-packing or re-quantising — evaluates end-to-end, and
/// restores dense execution.  `mode` selects stream vs zero-copy mmap
/// loading (nn/layers.hpp ArtifactLoad); results are bit-identical.
double evaluate_from_artifact(PruneTask& task, const std::string& path,
                              const ExecContext& ctx = {},
                              ArtifactLoad mode = ArtifactLoad::kStream);

/// Graph-scheduled variant of evaluate_from_artifact: the loaded
/// backends serve through the model's execution graph.
double evaluate_from_artifact(PruneTask& task, const std::string& path,
                              const ExecContext& ctx,
                              const SchedulerOptions& scheduler_options,
                              ArtifactLoad mode = ArtifactLoad::kStream);

// ----------------------------------------------------------------- tasks

/// Factory functions pre-train each proxy to its reference metric.
/// `pretrain_steps` trades fidelity for runtime (benches use more than
/// the smoke tests).
std::unique_ptr<PruneTask> make_bert_cls_task(int pretrain_steps,
                                              std::uint64_t seed = 11);
std::unique_ptr<PruneTask> make_bert_span_task(int pretrain_steps,
                                               std::uint64_t seed = 12);
std::unique_ptr<PruneTask> make_vgg_task(int pretrain_steps,
                                         std::uint64_t seed = 13);
std::unique_ptr<PruneTask> make_nmt_task(int pretrain_steps,
                                         std::uint64_t seed = 14);

}  // namespace tilesparse
