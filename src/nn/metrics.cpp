#include "nn/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

namespace tilesparse {
namespace {

/// Packs an n-gram of small token ids into one key.
std::uint64_t ngram_key(const int* tokens, std::size_t n) {
  std::uint64_t key = n;  // disambiguate lengths
  for (std::size_t i = 0; i < n; ++i)
    key = key * 1000003ull + static_cast<std::uint64_t>(tokens[i] + 1);
  return key;
}

}  // namespace

double bleu4(const std::vector<int>& candidate,
             const std::vector<int>& reference, std::size_t batch,
             std::size_t seq) {
  double log_precision_sum = 0.0;
  int usable_orders = 0;
  for (std::size_t n = 1; n <= 4 && n <= seq; ++n) {
    std::size_t matched = 0, total = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      const int* cand = candidate.data() + b * seq;
      const int* ref = reference.data() + b * seq;
      std::map<std::uint64_t, int> ref_counts;
      for (std::size_t i = 0; i + n <= seq; ++i)
        ++ref_counts[ngram_key(ref + i, n)];
      for (std::size_t i = 0; i + n <= seq; ++i) {
        ++total;
        auto it = ref_counts.find(ngram_key(cand + i, n));
        if (it != ref_counts.end() && it->second > 0) {
          ++matched;
          --it->second;  // clipping
        }
      }
    }
    if (total == 0) continue;
    ++usable_orders;
    // Laplace-style smoothing so a single missing order does not zero
    // the whole score (standard BLEU+1 smoothing).
    const double precision =
        (static_cast<double>(matched) + (n > 1 ? 1.0 : 0.0)) /
        (static_cast<double>(total) + (n > 1 ? 1.0 : 0.0));
    log_precision_sum += std::log(std::max(precision, 1e-12));
  }
  if (usable_orders == 0) return 0.0;
  // Candidate and reference have equal length, so brevity penalty = 1.
  return 100.0 * std::exp(log_precision_sum / usable_orders);
}

}  // namespace tilesparse
