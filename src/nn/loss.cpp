#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tilesparse {

float softmax_cross_entropy(const MatrixF& logits,
                            const std::vector<int>& labels, MatrixF& dlogits) {
  assert(labels.size() == logits.rows());
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  dlogits = MatrixF(batch, classes);
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    float* drow = dlogits.data() + b * classes;
    float maxv = row[0];
    for (std::size_t c = 1; c < classes; ++c) maxv = std::max(maxv, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      drow[c] = std::exp(row[c] - maxv);
      sum += drow[c];
    }
    const float inv = 1.0f / sum;
    const auto label = static_cast<std::size_t>(labels[b]);
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = drow[c] * inv;
      drow[c] = (p - (c == label ? 1.0f : 0.0f)) * inv_batch;
      if (c == label) loss -= std::log(std::max(p, 1e-12f));
    }
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

double accuracy(const MatrixF& logits, const std::vector<int>& labels) {
  assert(labels.size() == logits.rows());
  if (logits.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < logits.rows(); ++b) {
    const float* row = logits.data() + b * logits.cols();
    const auto pred = std::max_element(row, row + logits.cols()) - row;
    correct += (pred == labels[b]);
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

}  // namespace tilesparse
