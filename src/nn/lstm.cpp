#include "nn/lstm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "gemm/dense_gemm.hpp"
#include "tensor/ops.hpp"

namespace tilesparse {
namespace {
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::string name, std::size_t input, std::size_t hidden, Rng& rng)
    : input_(input),
      hidden_(hidden),
      wx_(name + ".wx", input, 4 * hidden),
      wh_(name + ".wh", hidden, 4 * hidden),
      bias_(name + ".b", 1, 4 * hidden) {
  fill_kaiming(wx_.value, rng);
  fill_kaiming(wh_.value, rng);
  // Forget-gate bias of 1.0: standard trick for gradient flow early on.
  for (std::size_t j = hidden_; j < 2 * hidden_; ++j)
    bias_.value(0, j) = 1.0f;
}

void Lstm::pack_weights(const std::string& format,
                        const std::vector<TilePattern>* patterns,
                        const ExecContext& ctx) {
  if (patterns && patterns->size() != 2) {
    throw std::invalid_argument(
        "Lstm::pack_weights: patterns must hold {Wx, Wh}");
  }
  PackOptions wx_options, wh_options;
  if (patterns) {
    wx_options.pattern = &(*patterns)[0];
    wh_options.pattern = &(*patterns)[1];
  }
  packed_wx_ = make_packed(format, wx_.value, wx_options);
  packed_wh_ = make_packed(format, wh_.value, wh_options);
  ++packed_version_;
  ctx_ = ctx;
  ctx_.alpha = 1.0f;
  ctx_.beta = 0.0f;
}

void Lstm::clear_packed_weights() noexcept {
  packed_wx_.reset();
  packed_wh_.reset();
  ++packed_version_;
}

MatrixF Lstm::input_projection(const MatrixF& x) const {
  // All input projections in one big GEMM: (B*S) x 4H.
  return packed_wx_ ? packed_wx_->matmul(ctx_, x) : matmul(x, wx_.value);
}

ExecGraph::NodeId Lstm::add_input_projection_node(ExecGraph& graph,
                                                  ExecGraph::SlotId in,
                                                  ExecGraph::SlotId out) {
  if (packed_wx_) {
    return graph.add_gemm(wx_.name, packed_wx_.get(), in, out, ctx_);
  }
  return graph.add_host(wx_.name, {in}, {out}, [this, in, out](ExecGraph& g) {
    g.slot(out) = input_projection(g.slot(in));
  });
}

MatrixF Lstm::forward(const MatrixF& x, std::size_t seq, const MatrixF& h0,
                      const MatrixF& c0) {
  return forward_with_projection(x, input_projection(x), seq, h0, c0);
}

MatrixF Lstm::forward_with_projection(const MatrixF& x, const MatrixF& xproj,
                                      std::size_t seq, const MatrixF& h0,
                                      const MatrixF& c0) {
  assert(seq > 0 && x.rows() % seq == 0 && x.cols() == input_);
  assert(xproj.rows() == x.rows() && xproj.cols() == 4 * hidden_);
  batch_ = x.rows() / seq;
  seq_ = seq;
  x_ = x;
  h0_ = h0.empty() ? MatrixF(batch_, hidden_) : h0;
  c0_ = c0.empty() ? MatrixF(batch_, hidden_) : c0;
  gates_.assign(seq, MatrixF{});
  cells_.assign(seq, MatrixF{});
  hiddens_.assign(seq, MatrixF{});

  MatrixF h_prev = h0_;
  MatrixF c_prev = c0_;
  MatrixF out(batch_ * seq, hidden_);
  for (std::size_t t = 0; t < seq; ++t) {
    MatrixF gates(batch_, 4 * hidden_);
    const MatrixF hproj = packed_wh_ ? packed_wh_->matmul(ctx_, h_prev)
                                     : matmul(h_prev, wh_.value);
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* xp = xproj.data() + (b * seq + t) * 4 * hidden_;
      const float* hp = hproj.data() + b * 4 * hidden_;
      const float* bias = bias_.value.data();
      float* g = gates.data() + b * 4 * hidden_;
      for (std::size_t j = 0; j < 4 * hidden_; ++j) g[j] = xp[j] + hp[j] + bias[j];
    }
    MatrixF c_new(batch_, hidden_);
    MatrixF h_new(batch_, hidden_);
    for (std::size_t b = 0; b < batch_; ++b) {
      float* g = gates.data() + b * 4 * hidden_;
      const float* cp = c_prev.data() + b * hidden_;
      float* cn = c_new.data() + b * hidden_;
      float* hn = h_new.data() + b * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float i = sigmoid(g[j]);
        const float f = sigmoid(g[hidden_ + j]);
        const float gg = std::tanh(g[2 * hidden_ + j]);
        const float o = sigmoid(g[3 * hidden_ + j]);
        g[j] = i;
        g[hidden_ + j] = f;
        g[2 * hidden_ + j] = gg;
        g[3 * hidden_ + j] = o;
        cn[j] = f * cp[j] + i * gg;
        hn[j] = o * std::tanh(cn[j]);
      }
      float* orow = out.data() + (b * seq + t) * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) orow[j] = hn[j];
    }
    gates_[t] = std::move(gates);
    cells_[t] = c_new;
    hiddens_[t] = h_new;
    h_prev = std::move(h_new);
    c_prev = std::move(c_new);
  }
  final_h_ = h_prev;
  final_c_ = c_prev;
  return out;
}

MatrixF Lstm::backward(const MatrixF& dh_all, MatrixF* dh0, MatrixF* dc0) {
  assert(dh_all.rows() == batch_ * seq_ && dh_all.cols() == hidden_);
  MatrixF dx(batch_ * seq_, input_);
  MatrixF dh_next(batch_, hidden_);  // gradient flowing from step t+1
  MatrixF dc_next(batch_, hidden_);
  const MatrixF wht = transposed(wh_.value);
  const MatrixF wxt = transposed(wx_.value);

  // Accumulate d(pre-activation gates) for all steps to batch the weight
  // gradient GEMMs afterwards.
  MatrixF dgates_all(batch_ * seq_, 4 * hidden_);

  for (std::size_t t = seq_; t-- > 0;) {
    const MatrixF& gates = gates_[t];
    const MatrixF& c_t = cells_[t];
    const MatrixF& c_prev = (t == 0) ? c0_ : cells_[t - 1];

    MatrixF dgates(batch_, 4 * hidden_);
    MatrixF dc_prev(batch_, hidden_);
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* g = gates.data() + b * 4 * hidden_;
      const float* ct = c_t.data() + b * hidden_;
      const float* cp = c_prev.data() + b * hidden_;
      const float* dh_out = dh_all.data() + (b * seq_ + t) * hidden_;
      const float* dhn = dh_next.data() + b * hidden_;
      const float* dcn = dc_next.data() + b * hidden_;
      float* dg = dgates.data() + b * 4 * hidden_;
      float* dcp = dc_prev.data() + b * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float i = g[j], f = g[hidden_ + j], gg = g[2 * hidden_ + j],
                    o = g[3 * hidden_ + j];
        const float tanh_c = std::tanh(ct[j]);
        const float dh = dh_out[j] + dhn[j];
        const float dc = dcn[j] + dh * o * (1.0f - tanh_c * tanh_c);
        dg[j] = dc * gg * i * (1.0f - i);                     // d pre-i
        dg[hidden_ + j] = dc * cp[j] * f * (1.0f - f);        // d pre-f
        dg[2 * hidden_ + j] = dc * i * (1.0f - gg * gg);      // d pre-g
        dg[3 * hidden_ + j] = dh * tanh_c * o * (1.0f - o);   // d pre-o
        dcp[j] = dc * f;
      }
    }
    // dh_prev = dgates * Wh^T;  dx_t = dgates * Wx^T.
    dh_next = matmul(dgates, wht);
    dc_next = std::move(dc_prev);
    const MatrixF dx_t = matmul(dgates, wxt);
    for (std::size_t b = 0; b < batch_; ++b) {
      float* dst = dx.data() + (b * seq_ + t) * input_;
      const float* src = dx_t.data() + b * input_;
      for (std::size_t j = 0; j < input_; ++j) dst[j] = src[j];
      float* gdst = dgates_all.data() + (b * seq_ + t) * 4 * hidden_;
      const float* gsrc = dgates.data() + b * 4 * hidden_;
      for (std::size_t j = 0; j < 4 * hidden_; ++j) gdst[j] = gsrc[j];
    }
  }

  // Weight gradients, batched over all steps:
  //   dWx += x^T dgates_all;   dWh += h_prev_all^T dgates_all.
  const MatrixF xt = transposed(x_);
  const MatrixF dwx = matmul(xt, dgates_all);
  for (std::size_t i = 0; i < dwx.size(); ++i)
    wx_.grad.data()[i] += dwx.data()[i];

  MatrixF h_prev_all(batch_ * seq_, hidden_);
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq_; ++t) {
      const float* src =
          (t == 0) ? h0_.data() + b * hidden_ : hiddens_[t - 1].data() + b * hidden_;
      float* dst = h_prev_all.data() + (b * seq_ + t) * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) dst[j] = src[j];
    }
  }
  const MatrixF hpt = transposed(h_prev_all);
  const MatrixF dwh = matmul(hpt, dgates_all);
  for (std::size_t i = 0; i < dwh.size(); ++i)
    wh_.grad.data()[i] += dwh.data()[i];

  for (std::size_t r = 0; r < dgates_all.rows(); ++r) {
    const float* row = dgates_all.data() + r * 4 * hidden_;
    for (std::size_t j = 0; j < 4 * hidden_; ++j) bias_.grad.data()[j] += row[j];
  }

  if (dh0) *dh0 = dh_next;
  if (dc0) *dc0 = dc_next;
  return dx;
}

}  // namespace tilesparse
