#include "nn/prune_experiment.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "io/serialize.hpp"
#include "nn/bert_mini.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/nmt_mini.hpp"
#include "nn/optimizer.hpp"
#include "nn/vgg_mini.hpp"
#include "prune/importance.hpp"
#include "prune/patterns.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {

const char* pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::kDense: return "Dense";
    case PatternKind::kEw: return "EW";
    case PatternKind::kVw: return "VW";
    case PatternKind::kBw: return "BW";
    case PatternKind::kTw: return "TW";
    case PatternKind::kTew: return "TEW";
  }
  return "?";
}

namespace {

/// Pads the BW block edge down to a divisor of both dimensions so mini
/// models with non-multiple shapes still get a block pattern.
std::size_t fit_block(std::size_t block, std::size_t rows, std::size_t cols) {
  while (block > 1 && (rows % block != 0 || cols % block != 0)) block /= 2;
  return std::max<std::size_t>(1, block);
}

double realised_sparsity(const std::vector<Param*>& weights) {
  std::size_t zero = 0, total = 0;
  for (const Param* p : weights) {
    total += p->value.size();
    for (float v : p->value.flat()) zero += (v == 0.0f);
  }
  return total ? static_cast<double>(zero) / static_cast<double>(total) : 0.0;
}

}  // namespace

PruneResult prune_and_evaluate(PruneTask& task, const PatternSpec& spec,
                               int finetune_steps) {
  PruneResult result;
  std::vector<Param*> weights = task.prunable();

  if (spec.kind == PatternKind::kDense || spec.sparsity <= 0.0) {
    result.metric = task.evaluate();
    return result;
  }

  // Masks must outlive the fine-tuning; owned here, bound to the params
  // for the duration of this call, unbound before returning (the zeroed
  // weights persist; only the enforcement pointer is cleared).
  std::vector<MatrixU8> mask_storage;

  auto bind_masks = [&](std::vector<MatrixU8> masks) {
    mask_storage = std::move(masks);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i]->mask = &mask_storage[i];
      apply_mask(weights[i]->value, mask_storage[i]);
    }
  };

  switch (spec.kind) {
    case PatternKind::kEw: {
      std::vector<MatrixF> scores;
      std::vector<const MatrixF*> score_ptrs;
      scores.reserve(weights.size());
      for (Param* p : weights) scores.push_back(magnitude_scores(p->value));
      for (const auto& s : scores) score_ptrs.push_back(&s);
      bind_masks(ew_mask_global(score_ptrs, spec.sparsity));
      task.train_steps(finetune_steps);
      break;
    }
    case PatternKind::kVw: {
      std::vector<MatrixU8> masks;
      for (Param* p : weights) {
        masks.push_back(vw_mask(magnitude_scores(p->value), spec.sparsity,
                                spec.vector_len));
      }
      bind_masks(std::move(masks));
      task.train_steps(finetune_steps);
      break;
    }
    case PatternKind::kBw: {
      std::vector<MatrixU8> masks;
      for (Param* p : weights) {
        const std::size_t block =
            fit_block(spec.block, p->value.rows(), p->value.cols());
        masks.push_back(
            bw_mask(magnitude_scores(p->value), spec.sparsity, block));
      }
      bind_masks(std::move(masks));
      task.train_steps(finetune_steps);
      break;
    }
    case PatternKind::kTw:
    case PatternKind::kTew: {
      const bool tew = spec.kind == PatternKind::kTew;
      const double tw_target =
          tew ? std::min(0.99, spec.sparsity + spec.tew_delta) : spec.sparsity;
      // Keep pre-prune values so TEW can restore high-score elements.
      const std::vector<MatrixF> original = snapshot_params(weights);

      TwPruneOptions options;
      options.target_sparsity = tw_target;
      options.g = spec.g;
      options.stages = spec.stages;
      options.apriori = spec.apriori;
      options.global_rank = spec.global_rank;

      std::vector<MatrixF*> raw;
      raw.reserve(weights.size());
      for (Param* p : weights) raw.push_back(&p->value);

      const int per_stage =
          std::max(1, finetune_steps / std::max(1, spec.stages));
      auto patterns = tw_prune(
          raw, options, /*score_fn=*/{},
          [&](const std::vector<MatrixU8>& masks) {
            bind_masks(masks);
            task.train_steps(per_stage);
          });

      if (tew) {
        // Restore the top-delta pruned elements (by original magnitude)
        // into both the weights and the masks, then fine-tune again.
        for (std::size_t wi = 0; wi < weights.size(); ++wi) {
          const MatrixU8 tw_mask = pattern_to_mask(patterns[wi]);
          struct Cand {
            float score;
            std::uint32_t r, c;
          };
          std::vector<Cand> cands;
          for (std::size_t r = 0; r < tw_mask.rows(); ++r)
            for (std::size_t c = 0; c < tw_mask.cols(); ++c)
              if (!tw_mask(r, c))
                cands.push_back({std::fabs(original[wi](r, c)),
                                 static_cast<std::uint32_t>(r),
                                 static_cast<std::uint32_t>(c)});
          const auto restore = std::min(
              cands.size(),
              static_cast<std::size_t>(spec.tew_delta *
                                       static_cast<double>(tw_mask.size())));
          std::partial_sort(cands.begin(), cands.begin() + restore, cands.end(),
                            [](const Cand& a, const Cand& b) {
                              return a.score > b.score;
                            });
          for (std::size_t i = 0; i < restore; ++i) {
            mask_storage[wi](cands[i].r, cands[i].c) = 1;
            weights[wi]->value(cands[i].r, cands[i].c) =
                original[wi](cands[i].r, cands[i].c);
          }
        }
        task.train_steps(per_stage);
      }
      result.patterns = std::move(patterns);
      break;
    }
    case PatternKind::kDense:
      break;
  }

  result.achieved_sparsity = realised_sparsity(weights);
  result.metric = task.evaluate();
  for (Param* p : weights) p->mask = nullptr;
  result.masks = std::move(mask_storage);
  return result;
}

namespace {

/// Detaches the task's scheduler and restores dense execution on every
/// exit path — without this, a throwing evaluate would leave the task
/// serving through a stale packed format or a dangling scheduler.
class PackedEvalScope {
 public:
  explicit PackedEvalScope(PruneTask& task) : task_(task) {}
  ~PackedEvalScope() {
    task_.set_exec_scheduler(nullptr);
    task_.clear_packed_weights();
  }
  PackedEvalScope(const PackedEvalScope&) = delete;
  PackedEvalScope& operator=(const PackedEvalScope&) = delete;

 private:
  PruneTask& task_;
};

}  // namespace

double evaluate_with_format(PruneTask& task, const std::string& format,
                            const std::vector<TilePattern>* patterns,
                            const ExecContext& ctx) {
  if (!task.pack_weights(format, patterns, ctx)) {
    throw std::logic_error("evaluate_with_format: task '" + task.name() +
                           "' has no packed execution path");
  }
  PackedEvalScope scope(task);
  return task.evaluate();
}

double evaluate_with_format(PruneTask& task, const std::string& format,
                            const std::vector<TilePattern>* patterns,
                            const ExecContext& ctx,
                            const SchedulerOptions& scheduler_options) {
  // Declared before the scope so detach (scope dtor) precedes the
  // scheduler's destruction.
  ExecScheduler scheduler(scheduler_options);
  if (!task.pack_weights(format, patterns, ctx)) {
    throw std::logic_error("evaluate_with_format: task '" + task.name() +
                           "' has no packed execution path");
  }
  PackedEvalScope scope(task);
  task.set_exec_scheduler(&scheduler);
  return task.evaluate();
}

void export_packed_weights(PruneTask& task, const std::string& format,
                           const std::vector<TilePattern>* patterns,
                           const std::string& path, const ExecContext& ctx) {
  const std::vector<Linear*> layers = task.packed_layers();
  if (layers.empty() || !task.pack_weights(format, patterns, ctx)) {
    throw std::logic_error("export_packed_weights: task '" + task.name() +
                           "' has no layer-level packed execution path");
  }
  try {
    save_packed_linear_layers(path, layers);
    task.clear_packed_weights();
  } catch (...) {
    task.clear_packed_weights();
    throw;
  }
}

double evaluate_from_artifact(PruneTask& task, const std::string& path,
                              const ExecContext& ctx, ArtifactLoad mode) {
  const std::vector<Linear*> layers = task.packed_layers();
  if (layers.empty()) {
    throw std::logic_error("evaluate_from_artifact: task '" + task.name() +
                           "' has no layer-level packed execution path");
  }
  PackedEvalScope scope(task);
  load_packed_linear_layers(path, layers, ctx, mode);
  return task.evaluate();
}

double evaluate_from_artifact(PruneTask& task, const std::string& path,
                              const ExecContext& ctx,
                              const SchedulerOptions& scheduler_options,
                              ArtifactLoad mode) {
  const std::vector<Linear*> layers = task.packed_layers();
  if (layers.empty()) {
    throw std::logic_error("evaluate_from_artifact: task '" + task.name() +
                           "' has no layer-level packed execution path");
  }
  ExecScheduler scheduler(scheduler_options);
  PackedEvalScope scope(task);
  // Load before attaching: the model builds its graph lazily on the
  // next forward, over the backends the artifact just installed.
  load_packed_linear_layers(path, layers, ctx, mode);
  task.set_exec_scheduler(&scheduler);
  return task.evaluate();
}

// =================================================================== tasks

namespace {

class BertTaskBase : public PruneTask {
 public:
  BertTaskBase(BertMiniConfig config, const MatrixF& embedding,
               std::uint64_t seed)
      : model_(config, embedding), rng_(seed) {}

  std::vector<Param*> prunable() override { return model_.prunable_weights(); }
  std::vector<Param*> parameters() override { return model_.params(); }

  bool pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns,
                    const ExecContext& ctx) override {
    model_.pack_weights(format, patterns, ctx);
    return true;
  }
  void clear_packed_weights() override { model_.clear_packed_weights(); }
  std::vector<Linear*> packed_layers() override {
    return model_.prunable_layers();
  }
  bool set_exec_scheduler(ExecScheduler* scheduler) override {
    model_.set_exec_scheduler(scheduler);
    return true;
  }
  ExecGraph* build_exec_graph() override { return &model_.build_exec_graph(); }

  void train_steps(int steps) override {
    SgdOptimizer opt(model_.params(), lr_, 0.9f);
    for (int s = 0; s < steps; ++s) {
      const TokenBatch batch = sample_train(64);
      const MatrixF logits = model_.forward(batch);
      MatrixF dlogits;
      softmax_cross_entropy(logits, batch.y, dlogits);
      model_.backward(dlogits);
      opt.step();
    }
  }

  double evaluate() override {
    Rng eval_rng(9999);
    const TokenBatch batch = sample_eval(512, eval_rng);
    const MatrixF logits = model_.forward(batch);
    return accuracy(logits, batch.y);
  }

 protected:
  virtual TokenBatch sample_train(std::size_t batch) = 0;
  virtual TokenBatch sample_eval(std::size_t batch, Rng& rng) = 0;

  BertMini model_;
  Rng rng_;
  float lr_ = 0.03f;
};

class BertClsTask final : public BertTaskBase {
 public:
  BertClsTask(int pretrain_steps, std::uint64_t seed)
      : BertTaskBase(BertMiniConfig{}, make_dataset().embedding(), seed),
        dataset_(make_dataset()) {
    train_steps(pretrain_steps);
    lr_ = 0.01f;  // lower rate for fine-tuning
  }
  std::string name() const override { return "BERT-MNLI(proxy)"; }

 protected:
  static TokenTeacherDataset make_dataset() {
    const BertMiniConfig config;
    return TokenTeacherDataset(64, config.seq, config.classes, config.dim, 77);
  }
  TokenBatch sample_train(std::size_t batch) override {
    return dataset_.sample(batch, rng_);
  }
  TokenBatch sample_eval(std::size_t batch, Rng& rng) override {
    return dataset_.sample(batch, rng);
  }

 private:
  TokenTeacherDataset dataset_;
};

class BertSpanTask final : public BertTaskBase {
 public:
  BertSpanTask(int pretrain_steps, std::uint64_t seed)
      : BertTaskBase(span_config(), make_dataset().embedding(), seed),
        dataset_(make_dataset()) {
    train_steps(pretrain_steps);
    lr_ = 0.01f;
  }
  std::string name() const override { return "BERT-SQuAD(proxy)"; }

 protected:
  static BertMiniConfig span_config() {
    BertMiniConfig config;
    config.classes = config.seq;  // predict the answer position
    return config;
  }
  static SpanDataset make_dataset() {
    const BertMiniConfig config;
    return SpanDataset(64, config.seq, config.dim, 78);
  }
  TokenBatch sample_train(std::size_t batch) override {
    return dataset_.sample(batch, rng_);
  }
  TokenBatch sample_eval(std::size_t batch, Rng& rng) override {
    return dataset_.sample(batch, rng);
  }

 private:
  SpanDataset dataset_;
};

class VggTask final : public PruneTask {
 public:
  VggTask(int pretrain_steps, std::uint64_t seed)
      : dataset_(10, 3, 8, 8, 1.0f, 79), model_(VggMiniConfig{}), rng_(seed) {
    train_steps(pretrain_steps);
    lr_ = 0.01f;
  }
  std::string name() const override { return "VGG-ImageNet(proxy)"; }
  std::vector<Param*> prunable() override { return model_.prunable_weights(); }
  std::vector<Param*> parameters() override { return model_.params(); }

  bool pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns,
                    const ExecContext& ctx) override {
    model_.pack_weights(format, patterns, ctx);
    return true;
  }
  void clear_packed_weights() override { model_.clear_packed_weights(); }
  bool set_exec_scheduler(ExecScheduler* scheduler) override {
    model_.set_exec_scheduler(scheduler);
    return true;
  }
  ExecGraph* build_exec_graph() override { return &model_.build_exec_graph(); }

  void train_steps(int steps) override {
    SgdOptimizer opt(model_.params(), lr_, 0.9f);
    for (int s = 0; s < steps; ++s) {
      const ClassificationBatch batch = dataset_.sample(64, rng_);
      const MatrixF logits = model_.forward(batch.x);
      MatrixF dlogits;
      softmax_cross_entropy(logits, batch.y, dlogits);
      model_.backward(dlogits);
      opt.step();
    }
  }

  double evaluate() override {
    Rng eval_rng(9999);
    const ClassificationBatch batch = dataset_.sample(512, eval_rng);
    const MatrixF logits = model_.forward(batch.x);
    return accuracy(logits, batch.y);
  }

 private:
  ClusterImageDataset dataset_;
  VggMini model_;
  Rng rng_;
  float lr_ = 0.03f;
};

class NmtTask final : public PruneTask {
 public:
  NmtTask(int pretrain_steps, std::uint64_t seed)
      : dataset_(NmtMiniConfig{}.vocab, NmtMiniConfig{}.seq, 80),
        model_(NmtMiniConfig{}), rng_(seed) {
    train_steps(pretrain_steps);
    lr_ = 0.01f;
  }
  std::string name() const override { return "NMT-IWSLT(proxy)"; }
  std::vector<Param*> prunable() override { return model_.prunable_weights(); }
  std::vector<Param*> parameters() override { return model_.params(); }

  bool pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns,
                    const ExecContext& ctx) override {
    model_.pack_weights(format, patterns, ctx);
    return true;
  }
  void clear_packed_weights() override { model_.clear_packed_weights(); }
  bool set_exec_scheduler(ExecScheduler* scheduler) override {
    // Attached for the teacher-forced forward(); greedy_decode (the
    // BLEU metric path) stays sequential by construction.
    model_.set_exec_scheduler(scheduler);
    return true;
  }
  ExecGraph* build_exec_graph() override { return &model_.build_exec_graph(); }

  void train_steps(int steps) override {
    AdamOptimizer opt(model_.params(), lr_);
    for (int s = 0; s < steps; ++s) {
      const Seq2SeqBatch batch = dataset_.sample(32, rng_);
      const MatrixF logits = model_.forward(batch);
      MatrixF dlogits;
      softmax_cross_entropy(logits, batch.tgt, dlogits);
      model_.backward(dlogits);
      opt.step();
    }
  }

  double evaluate() override {
    Rng eval_rng(9999);
    const Seq2SeqBatch batch = dataset_.sample(128, eval_rng);
    const std::vector<int> decoded = model_.greedy_decode(batch);
    return bleu4(decoded, batch.tgt, batch.batch, batch.seq);
  }

 private:
  ReverseDataset dataset_;
  NmtMini model_;
  Rng rng_;
  float lr_ = 2e-3f;
};

}  // namespace

std::unique_ptr<PruneTask> make_bert_cls_task(int pretrain_steps,
                                              std::uint64_t seed) {
  return std::make_unique<BertClsTask>(pretrain_steps, seed);
}
std::unique_ptr<PruneTask> make_bert_span_task(int pretrain_steps,
                                               std::uint64_t seed) {
  return std::make_unique<BertSpanTask>(pretrain_steps, seed);
}
std::unique_ptr<PruneTask> make_vgg_task(int pretrain_steps,
                                         std::uint64_t seed) {
  return std::make_unique<VggTask>(pretrain_steps, seed);
}
std::unique_ptr<PruneTask> make_nmt_task(int pretrain_steps,
                                         std::uint64_t seed) {
  return std::make_unique<NmtTask>(pretrain_steps, seed);
}

}  // namespace tilesparse
