#include "nn/conv.hpp"

#include <cassert>
#include <stdexcept>

#include "gemm/dense_gemm.hpp"
#include "tensor/ops.hpp"

namespace tilesparse {

Conv3x3::Conv3x3(std::string name, std::size_t in_channels,
                 std::size_t out_channels, std::size_t height,
                 std::size_t width, Rng& rng)
    : c_in_(in_channels),
      c_out_(out_channels),
      h_(height),
      w_(width),
      weight_(name + ".w", in_channels * 9, out_channels),
      bias_(name + ".b", 1, out_channels) {
  fill_kaiming(weight_.value, rng);
}

MatrixF Conv3x3::im2col(const MatrixF& x) const {
  const std::size_t batch = x.rows();
  const std::size_t patch = c_in_ * 9;
  MatrixF cols(batch * h_ * w_, patch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* img = x.data() + b * x.cols();
    for (std::size_t r = 0; r < h_; ++r) {
      for (std::size_t c = 0; c < w_; ++c) {
        float* out = cols.data() + ((b * h_ + r) * w_ + c) * patch;
        std::size_t idx = 0;
        for (std::size_t ch = 0; ch < c_in_; ++ch) {
          const float* plane = img + ch * h_ * w_;
          for (int dr = -1; dr <= 1; ++dr) {
            for (int dc = -1; dc <= 1; ++dc, ++idx) {
              const auto rr = static_cast<std::ptrdiff_t>(r) + dr;
              const auto cc = static_cast<std::ptrdiff_t>(c) + dc;
              out[idx] = (rr >= 0 && cc >= 0 &&
                          rr < static_cast<std::ptrdiff_t>(h_) &&
                          cc < static_cast<std::ptrdiff_t>(w_))
                             ? plane[static_cast<std::size_t>(rr) * w_ +
                                     static_cast<std::size_t>(cc)]
                             : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

MatrixF Conv3x3::col2im(const MatrixF& cols) const {
  const std::size_t patch = c_in_ * 9;
  const std::size_t batch = cols.rows() / (h_ * w_);
  MatrixF x(batch, c_in_ * h_ * w_);
  for (std::size_t b = 0; b < batch; ++b) {
    float* img = x.data() + b * x.cols();
    for (std::size_t r = 0; r < h_; ++r) {
      for (std::size_t c = 0; c < w_; ++c) {
        const float* in = cols.data() + ((b * h_ + r) * w_ + c) * patch;
        std::size_t idx = 0;
        for (std::size_t ch = 0; ch < c_in_; ++ch) {
          float* plane = img + ch * h_ * w_;
          for (int dr = -1; dr <= 1; ++dr) {
            for (int dc = -1; dc <= 1; ++dc, ++idx) {
              const auto rr = static_cast<std::ptrdiff_t>(r) + dr;
              const auto cc = static_cast<std::ptrdiff_t>(c) + dc;
              if (rr >= 0 && cc >= 0 && rr < static_cast<std::ptrdiff_t>(h_) &&
                  cc < static_cast<std::ptrdiff_t>(w_)) {
                plane[static_cast<std::size_t>(rr) * w_ +
                      static_cast<std::size_t>(cc)] += in[idx];
              }
            }
          }
        }
      }
    }
  }
  return x;
}

void Conv3x3::pack_weight(const std::string& format,
                          const PackOptions& options) {
  auto packed = make_packed(format, weight_.value, options);
  if (packed->k() != weight_.value.rows() ||
      packed->n() != weight_.value.cols()) {
    throw std::invalid_argument("Conv3x3::pack_weight: shape mismatch for " +
                                weight_.name);
  }
  packed_ = std::move(packed);
}

MatrixF Conv3x3::forward(const MatrixF& x) {
  assert(x.cols() == c_in_ * h_ * w_);
  cols_ = im2col(x);
  // (B*H*W) x (C_in*9) times (C_in*9) x C_out.
  MatrixF flat;
  if (packed_) {
    ExecContext ctx = ctx_;
    ctx.alpha = 1.0f;
    ctx.beta = 0.0f;
    flat = packed_->matmul(ctx, cols_);
  } else {
    flat = matmul(cols_, weight_.value);
  }
  const float* bias = bias_.value.data();
  // Repack to channel-major flattened images: out(b, ch*H*W + p).
  const std::size_t batch = x.rows();
  MatrixF y(batch, c_out_ * h_ * w_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t p = 0; p < h_ * w_; ++p) {
      const float* frow = flat.data() + (b * h_ * w_ + p) * c_out_;
      float* img = y.data() + b * y.cols();
      for (std::size_t ch = 0; ch < c_out_; ++ch)
        img[ch * h_ * w_ + p] = frow[ch] + bias[ch];
    }
  }
  return y;
}

MatrixF Conv3x3::backward(const MatrixF& dy) {
  const std::size_t batch = dy.rows();
  // Unpack channel-major dy back to (B*H*W) x C_out.
  MatrixF dflat(batch * h_ * w_, c_out_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* img = dy.data() + b * dy.cols();
    for (std::size_t p = 0; p < h_ * w_; ++p) {
      float* frow = dflat.data() + (b * h_ * w_ + p) * c_out_;
      for (std::size_t ch = 0; ch < c_out_; ++ch)
        frow[ch] = img[ch * h_ * w_ + p];
    }
  }
  // dW += cols^T dflat;  db += colsum;  dcols = dflat W^T.
  const MatrixF colst = transposed(cols_);
  const MatrixF dw = matmul(colst, dflat);
  for (std::size_t i = 0; i < dw.size(); ++i)
    weight_.grad.data()[i] += dw.data()[i];
  for (std::size_t r = 0; r < dflat.rows(); ++r) {
    const float* row = dflat.data() + r * c_out_;
    for (std::size_t c = 0; c < c_out_; ++c) bias_.grad.data()[c] += row[c];
  }
  const MatrixF wt = transposed(weight_.value);
  const MatrixF dcols = matmul(dflat, wt);
  return col2im(dcols);
}

AvgPool2::AvgPool2(std::size_t channels, std::size_t height, std::size_t width)
    : c_(channels), h_(height), w_(width) {
  assert(height % 2 == 0 && width % 2 == 0);
}

MatrixF AvgPool2::forward(const MatrixF& x) {
  assert(x.cols() == c_ * h_ * w_);
  const std::size_t oh = h_ / 2, ow = w_ / 2;
  MatrixF y(x.rows(), c_ * oh * ow);
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const float* img = x.data() + b * x.cols();
    float* out = y.data() + b * y.cols();
    for (std::size_t ch = 0; ch < c_; ++ch) {
      const float* plane = img + ch * h_ * w_;
      float* oplane = out + ch * oh * ow;
      for (std::size_t r = 0; r < oh; ++r)
        for (std::size_t c = 0; c < ow; ++c)
          oplane[r * ow + c] =
              0.25f * (plane[(2 * r) * w_ + 2 * c] +
                       plane[(2 * r) * w_ + 2 * c + 1] +
                       plane[(2 * r + 1) * w_ + 2 * c] +
                       plane[(2 * r + 1) * w_ + 2 * c + 1]);
    }
  }
  return y;
}

MatrixF AvgPool2::backward(const MatrixF& dy) {
  const std::size_t oh = h_ / 2, ow = w_ / 2;
  MatrixF dx(dy.rows(), c_ * h_ * w_);
  for (std::size_t b = 0; b < dy.rows(); ++b) {
    const float* din = dy.data() + b * dy.cols();
    float* dimg = dx.data() + b * dx.cols();
    for (std::size_t ch = 0; ch < c_; ++ch) {
      const float* dplane = din + ch * oh * ow;
      float* dxplane = dimg + ch * h_ * w_;
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          const float g = 0.25f * dplane[r * ow + c];
          dxplane[(2 * r) * w_ + 2 * c] = g;
          dxplane[(2 * r) * w_ + 2 * c + 1] = g;
          dxplane[(2 * r + 1) * w_ + 2 * c] = g;
          dxplane[(2 * r + 1) * w_ + 2 * c + 1] = g;
        }
      }
    }
  }
  return dx;
}

}  // namespace tilesparse
