#pragma once
// 3x3 same-padding convolution lowered to GEMM via im2col — exactly how
// the paper prunes VGG ("we prune its weight matrix after applying the
// im2col method", Sec. VII-A): the prunable weight is the
// (C_in*9) x C_out matrix the lowered GEMM multiplies.

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"

namespace tilesparse {

/// Input layout: each batch row of the activation matrix is a flattened
/// C x H x W image (channel-major).  Output likewise with C_out channels.
///
/// Inference path: like Linear, the layer can hold a PackedWeight over
/// the im2col-lowered weight matrix, so the conv GEMM executes through
/// the unified exec API (any registered format) instead of bypassing
/// it.  The dense Param stays the master copy for backward().
class Conv3x3 : public Layer {
 public:
  Conv3x3(std::string name, std::size_t in_channels, std::size_t out_channels,
          std::size_t height, std::size_t width, Rng& rng);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  Param& weight() noexcept { return weight_; }

  /// Packs the im2col weight matrix under a registered format.
  void pack_weight(const std::string& format, const PackOptions& options = {});
  void clear_packed_weight() noexcept { packed_.reset(); }
  const PackedWeight* packed_weight() const noexcept { return packed_.get(); }

  void set_exec_context(const ExecContext& ctx) noexcept { ctx_ = ctx; }

 private:
  MatrixF im2col(const MatrixF& x) const;      ///< (B*H*W) x (C_in*9)
  MatrixF col2im(const MatrixF& cols) const;   ///< inverse scatter-add

  std::size_t c_in_, c_out_, h_, w_;
  Param weight_;  ///< (C_in*9) x C_out
  Param bias_;    ///< 1 x C_out
  MatrixF cols_;  ///< cached im2col(x)
  std::unique_ptr<PackedWeight> packed_;  ///< optional inference backend
  ExecContext ctx_;
};

/// 2x2 average pooling, stride 2 (channel-major flattened layout).
class AvgPool2 : public Layer {
 public:
  AvgPool2(std::size_t channels, std::size_t height, std::size_t width);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;

 private:
  std::size_t c_, h_, w_;
};

}  // namespace tilesparse
