#include "nn/bert_mini.hpp"

#include <cassert>

#include "exec/scheduler.hpp"
#include "tensor/ops.hpp"

namespace tilesparse {

BertMini::BertMini(const BertMiniConfig& config, const MatrixF& embedding_table)
    : config_(config),
      embedding_("embed", embedding_table, /*trainable=*/false),
      pos_embedding_("pos", config.seq, embedding_table.cols()),
      pool_(config.seq) {
  Rng rng(config.seed);
  assert(embedding_table.cols() == config.dim);
  fill_normal(pos_embedding_.value, rng, 0.0f, 0.02f);
  blocks_.resize(config.layers);
  for (std::size_t l = 0; l < config.layers; ++l) {
    const std::string p = "block" + std::to_string(l);
    Block& blk = blocks_[l];
    blk.ln1 = std::make_unique<LayerNorm>(p + ".ln1", config.dim);
    blk.attn = std::make_unique<MultiHeadAttention>(p + ".attn", config.dim,
                                                    config.heads, config.seq, rng);
    blk.ln2 = std::make_unique<LayerNorm>(p + ".ln2", config.dim);
    blk.ffn_in = std::make_unique<Linear>(p + ".ffn_in", config.dim,
                                          config.ffn_dim, rng);
    blk.gelu = std::make_unique<Gelu>();
    blk.ffn_out = std::make_unique<Linear>(p + ".ffn_out", config.ffn_dim,
                                           config.dim, rng);
  }
  classifier_ = std::make_unique<Linear>("cls", config.dim, config.classes, rng);
}

MatrixF BertMini::embed(const TokenBatch& batch) {
  assert(batch.seq == config_.seq);
  MatrixF x = embedding_.forward(batch.tokens);
  // Add learned positional embeddings.
  for (std::size_t i = 0; i < batch.batch; ++i) {
    for (std::size_t t = 0; t < config_.seq; ++t) {
      float* row = x.data() + (i * config_.seq + t) * config_.dim;
      const float* pos = pos_embedding_.value.data() + t * config_.dim;
      for (std::size_t d = 0; d < config_.dim; ++d) row[d] += pos[d];
    }
  }
  return x;
}

MatrixF BertMini::forward(const TokenBatch& batch) {
  last_batch_ = batch.batch;
  MatrixF x = embed(batch);

  graph_forward_ = scheduler_ != nullptr;
  if (scheduler_) {
    // Rebuild whenever any layer's backend was replaced since the graph
    // was built (pack, clear, or an artifact load straight into the
    // layers) — the nodes hold non-owning refs to those backends.
    if (!graph_ || graph_versions_ != current_graph_versions())
      build_exec_graph();
    graph_->slot(graph_in_) = std::move(x);
    scheduler_->run(*graph_);
    return graph_->slot(graph_out_);
  }

  for (Block& blk : blocks_) {
    blk.x_attn_in = x;
    MatrixF h = blk.ln1->forward(x);
    h = blk.attn->forward(h);
    for (std::size_t i = 0; i < x.size(); ++i) h.data()[i] += x.data()[i];

    blk.x_ffn_in = h;
    MatrixF f = blk.ln2->forward(h);
    f = blk.ffn_in->forward(f);
    f = blk.gelu->forward(f);
    f = blk.ffn_out->forward(f);
    for (std::size_t i = 0; i < h.size(); ++i) f.data()[i] += h.data()[i];
    x = std::move(f);
  }

  const MatrixF pooled = pool_.forward(x);
  return classifier_->forward(pooled);
}

void BertMini::backward(const MatrixF& dlogits) {
  if (graph_forward_) {
    // The graph path keeps activations in graph slots, not the layer
    // caches backward needs; differentiating now would silently no-op.
    throw std::logic_error(
        "BertMini::backward: last forward ran through the exec graph "
        "(inference-only); detach the scheduler before training");
  }
  MatrixF dpooled = classifier_->backward(dlogits);
  MatrixF dx = pool_.backward(dpooled);

  for (std::size_t l = blocks_.size(); l-- > 0;) {
    Block& blk = blocks_[l];
    // FFN residual branch.
    MatrixF df = blk.ffn_out->backward(dx);
    df = blk.gelu->backward(df);
    df = blk.ffn_in->backward(df);
    df = blk.ln2->backward(df);
    for (std::size_t i = 0; i < dx.size(); ++i) df.data()[i] += dx.data()[i];
    // Attention residual branch.
    MatrixF da = blk.attn->backward(df);
    da = blk.ln1->backward(da);
    for (std::size_t i = 0; i < da.size(); ++i) da.data()[i] += df.data()[i];
    dx = std::move(da);
  }

  // Positional embedding gradient (summed over the batch).
  for (std::size_t i = 0; i < last_batch_; ++i) {
    for (std::size_t t = 0; t < config_.seq; ++t) {
      const float* row = dx.data() + (i * config_.seq + t) * config_.dim;
      float* pg = pos_embedding_.grad.data() + t * config_.dim;
      for (std::size_t d = 0; d < config_.dim; ++d) pg[d] += row[d];
    }
  }
  embedding_.backward(dx);
}

std::vector<Param*> BertMini::params() {
  std::vector<Param*> all{&pos_embedding_};
  for (Block& blk : blocks_) {
    for (Param* p : blk.ln1->params()) all.push_back(p);
    for (Param* p : blk.attn->params()) all.push_back(p);
    for (Param* p : blk.ln2->params()) all.push_back(p);
    for (Param* p : blk.ffn_in->params()) all.push_back(p);
    for (Param* p : blk.ffn_out->params()) all.push_back(p);
  }
  for (Param* p : classifier_->params()) all.push_back(p);
  return all;
}

std::vector<Param*> BertMini::prunable_weights() {
  // The encoder's 6 GEMMs per layer, mirroring the 72 matrices the paper
  // prunes in BERT-base.  The classifier head is excluded: it is a tiny
  // task-specific matrix (<1% of parameters) and structured column
  // pruning there removes whole output classes.
  std::vector<Param*> weights;
  for (Block& blk : blocks_) {
    for (Param* p : blk.attn->projection_weights()) weights.push_back(p);
    weights.push_back(&blk.ffn_in->weight());
    weights.push_back(&blk.ffn_out->weight());
  }
  return weights;
}

std::vector<Linear*> BertMini::prunable_layers() {
  std::vector<Linear*> layers;
  for (Block& blk : blocks_) {
    for (Linear* l : blk.attn->projection_layers()) layers.push_back(l);
    layers.push_back(blk.ffn_in.get());
    layers.push_back(blk.ffn_out.get());
  }
  return layers;
}

void BertMini::pack_weights(const std::string& format,
                            const std::vector<TilePattern>* patterns,
                            const ExecContext& ctx) {
  pack_linear_layers(prunable_layers(), format, patterns, ctx);
  graph_.reset();  // nodes hold refs to the replaced backends
}

void BertMini::clear_packed_weights() {
  clear_packed_linear_layers(prunable_layers());
  graph_.reset();
}

std::vector<std::uint64_t> BertMini::current_graph_versions() {
  std::vector<std::uint64_t> versions;
  for (Linear* layer : prunable_layers())
    versions.push_back(layer->packed_version());
  versions.push_back(classifier_->packed_version());
  return versions;
}

ExecGraph& BertMini::build_exec_graph() {
  graph_versions_ = current_graph_versions();
  graph_ = std::make_unique<ExecGraph>();
  ExecGraph& g = *graph_;
  graph_in_ = g.add_slot("x");
  g.mark_input(graph_in_);
  graph_out_ = append_exec_graph(g, graph_in_);
  g.mark_output(graph_out_);
  return g;
}

ExecGraph::SlotId BertMini::append_exec_graph(ExecGraph& g,
                                              ExecGraph::SlotId input) {
  ExecGraph::SlotId x = input;
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    Block* blk = &blocks_[l];
    const std::string p = "block" + std::to_string(l);
    // Attention branch with residual (pre-LN, matching forward()).
    const ExecGraph::SlotId h = g.add_slot(p + ".ln1.out");
    g.add_host(p + ".ln1", {x}, {h}, [blk, x, h](ExecGraph& gg) {
      gg.slot(h) = blk->ln1->forward(gg.slot(x));
    });
    const ExecGraph::SlotId attn_out = g.add_slot(p + ".attn.out");
    blk->attn->add_to_graph(g, h, attn_out);
    const ExecGraph::SlotId x1 = g.add_slot(p + ".res1");
    g.add_host(p + ".res1", {attn_out, x}, {x1},
               [attn_out, x, x1](ExecGraph& gg) {
                 MatrixF sum = gg.slot(attn_out);
                 const MatrixF& res = gg.slot(x);
                 for (std::size_t i = 0; i < sum.size(); ++i)
                   sum.data()[i] += res.data()[i];
                 gg.slot(x1) = std::move(sum);
               });
    // FFN branch with residual.
    const ExecGraph::SlotId f = g.add_slot(p + ".ln2.out");
    g.add_host(p + ".ln2", {x1}, {f}, [blk, x1, f](ExecGraph& gg) {
      gg.slot(f) = blk->ln2->forward(gg.slot(x1));
    });
    const ExecGraph::SlotId f1 = g.add_slot(p + ".ffn_in.out");
    blk->ffn_in->add_to_graph(g, f, f1);
    const ExecGraph::SlotId f2 = g.add_slot(p + ".gelu.out");
    g.add_host(p + ".gelu", {f1}, {f2}, [blk, f1, f2](ExecGraph& gg) {
      gg.slot(f2) = blk->gelu->forward(gg.slot(f1));
    });
    const ExecGraph::SlotId f3 = g.add_slot(p + ".ffn_out.out");
    blk->ffn_out->add_to_graph(g, f2, f3);
    const ExecGraph::SlotId x2 = g.add_slot(p + ".res2");
    g.add_host(p + ".res2", {f3, x1}, {x2}, [f3, x1, x2](ExecGraph& gg) {
      MatrixF sum = gg.slot(f3);
      const MatrixF& res = gg.slot(x1);
      for (std::size_t i = 0; i < sum.size(); ++i)
        sum.data()[i] += res.data()[i];
      gg.slot(x2) = std::move(sum);
    });
    x = x2;
  }
  const ExecGraph::SlotId pooled = g.add_slot("pooled");
  g.add_host("pool", {x}, {pooled}, [this, x, pooled](ExecGraph& gg) {
    gg.slot(pooled) = pool_.forward(gg.slot(x));
  });
  const ExecGraph::SlotId logits = g.add_slot("logits");
  classifier_->add_to_graph(g, pooled, logits);
  return logits;
}

}  // namespace tilesparse
