#include "nn/bert_mini.hpp"

#include <cassert>

#include "tensor/ops.hpp"

namespace tilesparse {

BertMini::BertMini(const BertMiniConfig& config, const MatrixF& embedding_table)
    : config_(config),
      embedding_("embed", embedding_table, /*trainable=*/false),
      pos_embedding_("pos", config.seq, embedding_table.cols()),
      pool_(config.seq) {
  Rng rng(config.seed);
  assert(embedding_table.cols() == config.dim);
  fill_normal(pos_embedding_.value, rng, 0.0f, 0.02f);
  blocks_.resize(config.layers);
  for (std::size_t l = 0; l < config.layers; ++l) {
    const std::string p = "block" + std::to_string(l);
    Block& blk = blocks_[l];
    blk.ln1 = std::make_unique<LayerNorm>(p + ".ln1", config.dim);
    blk.attn = std::make_unique<MultiHeadAttention>(p + ".attn", config.dim,
                                                    config.heads, config.seq, rng);
    blk.ln2 = std::make_unique<LayerNorm>(p + ".ln2", config.dim);
    blk.ffn_in = std::make_unique<Linear>(p + ".ffn_in", config.dim,
                                          config.ffn_dim, rng);
    blk.gelu = std::make_unique<Gelu>();
    blk.ffn_out = std::make_unique<Linear>(p + ".ffn_out", config.ffn_dim,
                                           config.dim, rng);
  }
  classifier_ = std::make_unique<Linear>("cls", config.dim, config.classes, rng);
}

MatrixF BertMini::forward(const TokenBatch& batch) {
  assert(batch.seq == config_.seq);
  last_batch_ = batch.batch;
  MatrixF x = embedding_.forward(batch.tokens);
  // Add learned positional embeddings.
  for (std::size_t i = 0; i < batch.batch; ++i) {
    for (std::size_t t = 0; t < config_.seq; ++t) {
      float* row = x.data() + (i * config_.seq + t) * config_.dim;
      const float* pos = pos_embedding_.value.data() + t * config_.dim;
      for (std::size_t d = 0; d < config_.dim; ++d) row[d] += pos[d];
    }
  }

  for (Block& blk : blocks_) {
    blk.x_attn_in = x;
    MatrixF h = blk.ln1->forward(x);
    h = blk.attn->forward(h);
    for (std::size_t i = 0; i < x.size(); ++i) h.data()[i] += x.data()[i];

    blk.x_ffn_in = h;
    MatrixF f = blk.ln2->forward(h);
    f = blk.ffn_in->forward(f);
    f = blk.gelu->forward(f);
    f = blk.ffn_out->forward(f);
    for (std::size_t i = 0; i < h.size(); ++i) f.data()[i] += h.data()[i];
    x = std::move(f);
  }

  const MatrixF pooled = pool_.forward(x);
  return classifier_->forward(pooled);
}

void BertMini::backward(const MatrixF& dlogits) {
  MatrixF dpooled = classifier_->backward(dlogits);
  MatrixF dx = pool_.backward(dpooled);

  for (std::size_t l = blocks_.size(); l-- > 0;) {
    Block& blk = blocks_[l];
    // FFN residual branch.
    MatrixF df = blk.ffn_out->backward(dx);
    df = blk.gelu->backward(df);
    df = blk.ffn_in->backward(df);
    df = blk.ln2->backward(df);
    for (std::size_t i = 0; i < dx.size(); ++i) df.data()[i] += dx.data()[i];
    // Attention residual branch.
    MatrixF da = blk.attn->backward(df);
    da = blk.ln1->backward(da);
    for (std::size_t i = 0; i < da.size(); ++i) da.data()[i] += df.data()[i];
    dx = std::move(da);
  }

  // Positional embedding gradient (summed over the batch).
  for (std::size_t i = 0; i < last_batch_; ++i) {
    for (std::size_t t = 0; t < config_.seq; ++t) {
      const float* row = dx.data() + (i * config_.seq + t) * config_.dim;
      float* pg = pos_embedding_.grad.data() + t * config_.dim;
      for (std::size_t d = 0; d < config_.dim; ++d) pg[d] += row[d];
    }
  }
  embedding_.backward(dx);
}

std::vector<Param*> BertMini::params() {
  std::vector<Param*> all{&pos_embedding_};
  for (Block& blk : blocks_) {
    for (Param* p : blk.ln1->params()) all.push_back(p);
    for (Param* p : blk.attn->params()) all.push_back(p);
    for (Param* p : blk.ln2->params()) all.push_back(p);
    for (Param* p : blk.ffn_in->params()) all.push_back(p);
    for (Param* p : blk.ffn_out->params()) all.push_back(p);
  }
  for (Param* p : classifier_->params()) all.push_back(p);
  return all;
}

std::vector<Param*> BertMini::prunable_weights() {
  // The encoder's 6 GEMMs per layer, mirroring the 72 matrices the paper
  // prunes in BERT-base.  The classifier head is excluded: it is a tiny
  // task-specific matrix (<1% of parameters) and structured column
  // pruning there removes whole output classes.
  std::vector<Param*> weights;
  for (Block& blk : blocks_) {
    for (Param* p : blk.attn->projection_weights()) weights.push_back(p);
    weights.push_back(&blk.ffn_in->weight());
    weights.push_back(&blk.ffn_out->weight());
  }
  return weights;
}

std::vector<Linear*> BertMini::prunable_layers() {
  std::vector<Linear*> layers;
  for (Block& blk : blocks_) {
    for (Linear* l : blk.attn->projection_layers()) layers.push_back(l);
    layers.push_back(blk.ffn_in.get());
    layers.push_back(blk.ffn_out.get());
  }
  return layers;
}

void BertMini::pack_weights(const std::string& format,
                            const std::vector<TilePattern>* patterns,
                            const ExecContext& ctx) {
  pack_linear_layers(prunable_layers(), format, patterns, ctx);
}

void BertMini::clear_packed_weights() {
  clear_packed_linear_layers(prunable_layers());
}

}  // namespace tilesparse
