#pragma once
// LSTM layer over a full sequence, with backward-through-time.  Weight
// layout matches the paper's LSTM GEMMs: an input GEMM (in x 4H) and a
// recurrent GEMM (H x 4H); both are prunable weight matrices.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/exec_context.hpp"
#include "exec/graph.hpp"
#include "exec/packed_weight.hpp"
#include "nn/param.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace tilesparse {

class Lstm {
 public:
  Lstm(std::string name, std::size_t input, std::size_t hidden, Rng& rng);

  /// x is (batch * seq) x input, sequence-major inside each batch row
  /// block (row b*seq + t is sample b at step t).  Returns hidden states
  /// of the same row layout, (batch * seq) x hidden.  `h0`/`c0` may be
  /// empty (zero initial state) or batch x hidden.
  MatrixF forward(const MatrixF& x, std::size_t seq, const MatrixF& h0 = {},
                  const MatrixF& c0 = {});

  /// The input GEMM on its own: (batch * seq) x 4H pre-activations
  /// from Wx (packed backend when installed).  This is the half of the
  /// LSTM with no sequential dependence, so an execution graph can
  /// overlap it with other models' GEMMs (e.g. the NMT decoder's input
  /// projection runs while the encoder recurrence is still unrolling).
  MatrixF input_projection(const MatrixF& x) const;

  /// The recurrent half: consumes a precomputed input projection and
  /// unrolls the gates.  forward(x, ...) ==
  /// forward_with_projection(x, input_projection(x), ...) exactly.
  MatrixF forward_with_projection(const MatrixF& x, const MatrixF& xproj,
                                  std::size_t seq, const MatrixF& h0 = {},
                                  const MatrixF& c0 = {});

  /// Adds the input projection as a graph node: a GEMM node over the
  /// packed Wx when one is installed, a host node otherwise.
  ExecGraph::NodeId add_input_projection_node(ExecGraph& graph,
                                              ExecGraph::SlotId in,
                                              ExecGraph::SlotId out);

  /// dh is the gradient of every hidden output.  Returns dx and fills
  /// optional gradients of the initial state.
  MatrixF backward(const MatrixF& dh_all, MatrixF* dh0 = nullptr,
                   MatrixF* dc0 = nullptr);

  /// Final-step hidden/cell state of the last forward call (batch x hidden).
  const MatrixF& final_h() const noexcept { return final_h_; }
  const MatrixF& final_c() const noexcept { return final_c_; }

  std::vector<Param*> params() { return {&wx_, &wh_, &bias_}; }
  /// Prunable weight matrices (the two GEMM operands).
  std::vector<Param*> gemm_weights() { return {&wx_, &wh_}; }

  /// Packs the input and recurrent GEMMs for inference under a
  /// registered PackedWeight format.  `patterns` aligns with
  /// gemm_weights() (Wx then Wh); may be null for pattern-free formats.
  /// Backward keeps using the dense master weights.
  void pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns = nullptr,
                    const ExecContext& ctx = {});
  void clear_packed_weights() noexcept;

  /// Bumped whenever the packed backends are replaced; models key
  /// their cached ExecGraph on it (see Linear::packed_version).
  std::uint64_t packed_version() const noexcept { return packed_version_; }

  std::size_t hidden() const noexcept { return hidden_; }

 private:
  std::size_t input_, hidden_;
  Param wx_;    ///< input x 4H (gate order: i, f, g, o)
  Param wh_;    ///< hidden x 4H
  Param bias_;  ///< 1 x 4H
  std::unique_ptr<PackedWeight> packed_wx_;  ///< optional inference backends
  std::unique_ptr<PackedWeight> packed_wh_;
  std::uint64_t packed_version_ = 0;
  ExecContext ctx_;

  // Caches for backward.
  std::size_t batch_ = 0, seq_ = 0;
  MatrixF x_;
  std::vector<MatrixF> gates_;   ///< per step, batch x 4H (post-activation)
  std::vector<MatrixF> cells_;   ///< per step, batch x hidden (c_t)
  std::vector<MatrixF> hiddens_; ///< per step, batch x hidden (h_t)
  MatrixF h0_, c0_;
  MatrixF final_h_, final_c_;
};

}  // namespace tilesparse
