#include "nn/optimizer.hpp"

#include <cmath>

namespace tilesparse {
namespace {

void apply_param_mask(Param& param, MatrixF* state_a = nullptr,
                      MatrixF* state_b = nullptr) {
  if (!param.mask) return;
  const unsigned char* m = param.mask->data();
  float* w = param.value.data();
  for (std::size_t i = 0; i < param.value.size(); ++i) {
    if (!m[i]) {
      w[i] = 0.0f;
      if (state_a) state_a->data()[i] = 0.0f;
      if (state_b) state_b->data()[i] = 0.0f;
    }
  }
}

}  // namespace

SgdOptimizer::SgdOptimizer(std::vector<Param*> params, float lr, float momentum,
                           float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_)
    velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void SgdOptimizer::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    MatrixF& vel = velocity_[pi];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* v = vel.data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      v[i] = momentum_ * v[i] + grad;
      w[i] -= lr_ * v[i];
      g[i] = 0.0f;
    }
    apply_param_mask(p, &vel);
  }
}

AdamOptimizer::AdamOptimizer(std::vector<Param*> params, float lr, float beta1,
                             float beta2, float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mh = m[i] / bias1;
      const float vh = v[i] / bias2;
      w[i] -= lr_ * mh / (std::sqrt(vh) + eps_);
      g[i] = 0.0f;
    }
    apply_param_mask(p, &m_[pi], &v_[pi]);
  }
}

}  // namespace tilesparse
