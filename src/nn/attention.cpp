#include "nn/attention.hpp"

#include <cassert>
#include <cmath>

namespace tilesparse {
namespace {

/// Softmax over each row of a seq x seq score block, in place.
void softmax_inplace(MatrixF& scores) {
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    float* row = scores.data() + r * scores.cols();
    float maxv = row[0];
    for (std::size_t c = 1; c < scores.cols(); ++c)
      maxv = std::max(maxv, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < scores.cols(); ++c) {
      row[c] = std::exp(row[c] - maxv);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < scores.cols(); ++c) row[c] *= inv;
  }
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::string name, std::size_t dim,
                                       std::size_t heads, std::size_t seq,
                                       Rng& rng)
    : dim_(dim),
      heads_(heads),
      seq_(seq),
      head_dim_(dim / heads),
      q_(name + ".q", dim, dim, rng),
      k_(name + ".k", dim, dim, rng),
      v_(name + ".v", dim, dim, rng),
      out_(name + ".out", dim, dim, rng) {
  assert(dim % heads == 0);
}

std::vector<Param*> MultiHeadAttention::params() {
  std::vector<Param*> all;
  for (Layer* l : {static_cast<Layer*>(&q_), static_cast<Layer*>(&k_),
                   static_cast<Layer*>(&v_), static_cast<Layer*>(&out_)}) {
    for (Param* p : l->params()) all.push_back(p);
  }
  return all;
}

std::vector<Param*> MultiHeadAttention::projection_weights() {
  return {&q_.weight(), &k_.weight(), &v_.weight(), &out_.weight()};
}

std::vector<Linear*> MultiHeadAttention::projection_layers() {
  return {&q_, &k_, &v_, &out_};
}

void MultiHeadAttention::attention_core(const MatrixF& q, const MatrixF& k,
                                        const MatrixF& v, MatrixF& context) {
  const std::size_t batch = q.rows() / seq_;
  attn_.assign(batch * heads_, MatrixF{});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t col0 = h * head_dim_;
      // scores(s, t) = scale * <q_s, k_t> over this head's columns.
      MatrixF scores(seq_, seq_);
      for (std::size_t s = 0; s < seq_; ++s) {
        const float* qrow = q.data() + (b * seq_ + s) * dim_ + col0;
        for (std::size_t t = 0; t < seq_; ++t) {
          const float* krow = k.data() + (b * seq_ + t) * dim_ + col0;
          float dot = 0.0f;
          for (std::size_t d = 0; d < head_dim_; ++d) dot += qrow[d] * krow[d];
          scores(s, t) = dot * scale;
        }
      }
      softmax_inplace(scores);
      // context rows = probs * V.
      for (std::size_t s = 0; s < seq_; ++s) {
        float* crow = context.data() + (b * seq_ + s) * dim_ + col0;
        for (std::size_t t = 0; t < seq_; ++t) {
          const float p = scores(s, t);
          const float* vrow = v.data() + (b * seq_ + t) * dim_ + col0;
          for (std::size_t d = 0; d < head_dim_; ++d) crow[d] += p * vrow[d];
        }
      }
      attn_[b * heads_ + h] = std::move(scores);
    }
  }
}

MatrixF MultiHeadAttention::forward(const MatrixF& x) {
  assert(x.cols() == dim_ && x.rows() % seq_ == 0);
  q_act_ = q_.forward(x);
  k_act_ = k_.forward(x);
  v_act_ = v_.forward(x);
  MatrixF context(x.rows(), dim_);
  attention_core(q_act_, k_act_, v_act_, context);
  return out_.forward(context);
}

ExecGraph::NodeId MultiHeadAttention::add_to_graph(ExecGraph& graph,
                                                   ExecGraph::SlotId in,
                                                   ExecGraph::SlotId out) {
  const ExecGraph::SlotId q = graph.add_slot(q_.weight().name + ".act");
  const ExecGraph::SlotId k = graph.add_slot(k_.weight().name + ".act");
  const ExecGraph::SlotId v = graph.add_slot(v_.weight().name + ".act");
  const ExecGraph::SlotId context =
      graph.add_slot(out_.weight().name + ".context");
  q_.add_to_graph(graph, in, q);
  k_.add_to_graph(graph, in, k);
  v_.add_to_graph(graph, in, v);
  graph.add_host(out_.weight().name + ".core", {q, k, v}, {context},
                 [this, q, k, v, context](ExecGraph& g) {
                   const MatrixF& qa = g.slot(q);
                   MatrixF& ctx = g.slot(context);
                   if (ctx.rows() != qa.rows() || ctx.cols() != dim_)
                     ctx = MatrixF(qa.rows(), dim_);
                   else
                     ctx.fill(0.0f);
                   attention_core(qa, g.slot(k), g.slot(v), ctx);
                 });
  return out_.add_to_graph(graph, context, out);
}

MatrixF MultiHeadAttention::backward(const MatrixF& dy) {
  const std::size_t batch = dy.rows() / seq_;
  const MatrixF dcontext = out_.backward(dy);

  MatrixF dq(dy.rows(), dim_), dk(dy.rows(), dim_), dv(dy.rows(), dim_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t col0 = h * head_dim_;
      const MatrixF& probs = attn_[b * heads_ + h];

      // dprobs(s, t) = <dcontext_s, v_t>;  dv_t += sum_s probs(s,t) dcontext_s.
      MatrixF dprobs(seq_, seq_);
      for (std::size_t s = 0; s < seq_; ++s) {
        const float* dcrow = dcontext.data() + (b * seq_ + s) * dim_ + col0;
        for (std::size_t t = 0; t < seq_; ++t) {
          const float* vrow = v_act_.data() + (b * seq_ + t) * dim_ + col0;
          float dot = 0.0f;
          for (std::size_t d = 0; d < head_dim_; ++d) dot += dcrow[d] * vrow[d];
          dprobs(s, t) = dot;
          float* dvrow = dv.data() + (b * seq_ + t) * dim_ + col0;
          const float p = probs(s, t);
          for (std::size_t d = 0; d < head_dim_; ++d) dvrow[d] += p * dcrow[d];
        }
      }
      // Softmax backward: dscore = p .* (dprob - sum_t p*dprob).
      MatrixF dscores(seq_, seq_);
      for (std::size_t s = 0; s < seq_; ++s) {
        float dot = 0.0f;
        for (std::size_t t = 0; t < seq_; ++t)
          dot += probs(s, t) * dprobs(s, t);
        for (std::size_t t = 0; t < seq_; ++t)
          dscores(s, t) = probs(s, t) * (dprobs(s, t) - dot);
      }
      // dq_s += scale * sum_t dscore(s,t) k_t;  dk_t += scale * sum_s dscore(s,t) q_s.
      for (std::size_t s = 0; s < seq_; ++s) {
        float* dqrow = dq.data() + (b * seq_ + s) * dim_ + col0;
        const float* qrow = q_act_.data() + (b * seq_ + s) * dim_ + col0;
        for (std::size_t t = 0; t < seq_; ++t) {
          const float ds = dscores(s, t) * scale;
          const float* krow = k_act_.data() + (b * seq_ + t) * dim_ + col0;
          float* dkrow = dk.data() + (b * seq_ + t) * dim_ + col0;
          for (std::size_t d = 0; d < head_dim_; ++d) {
            dqrow[d] += ds * krow[d];
            dkrow[d] += ds * qrow[d];
          }
        }
      }
    }
  }

  MatrixF dx = q_.backward(dq);
  const MatrixF dxk = k_.backward(dk);
  const MatrixF dxv = v_.backward(dv);
  for (std::size_t i = 0; i < dx.size(); ++i)
    dx.data()[i] += dxk.data()[i] + dxv.data()[i];
  return dx;
}

}  // namespace tilesparse
