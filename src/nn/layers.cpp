#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "gemm/dense_gemm.hpp"
#include "io/serialize.hpp"
#include "tensor/ops.hpp"

namespace tilesparse {

std::vector<MatrixF> snapshot_params(const std::vector<Param*>& params) {
  std::vector<MatrixF> out;
  out.reserve(params.size());
  for (const Param* p : params) out.push_back(p->value);
  return out;
}

void restore_params(const std::vector<Param*>& params,
                    const std::vector<MatrixF>& snapshot) {
  assert(params.size() == snapshot.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i]->value = snapshot[i];
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::string name, std::size_t in, std::size_t out, Rng& rng)
    : weight_(name + ".w", in, out), bias_(name + ".b", 1, out) {
  fill_kaiming(weight_.value, rng);
}

void Linear::pack_weight(const std::string& format,
                         const PackOptions& options) {
  set_packed_weight(make_packed(format, weight_.value, options));
}

void Linear::set_packed_weight(std::unique_ptr<PackedWeight> packed) {
  if (packed &&
      (packed->k() != weight_.value.rows() ||
       packed->n() != weight_.value.cols())) {
    throw std::invalid_argument("Linear::set_packed_weight: packed " +
                                std::string(packed->format()) +
                                " weight shape mismatch for " + weight_.name);
  }
  packed_ = std::move(packed);
  ++packed_version_;
}

MatrixF Linear::forward(const MatrixF& x) {
  x_ = x;
  MatrixF y;
  if (packed_) {
    ExecContext ctx = ctx_;
    ctx.alpha = 1.0f;
    ctx.beta = 0.0f;
    y = packed_->matmul(ctx, x);
  } else {
    y = matmul(x, weight_.value);
  }
  add_row_bias(y, bias_.value);
  return y;
}

ExecGraph::NodeId Linear::add_to_graph(ExecGraph& graph, ExecGraph::SlotId in,
                                       ExecGraph::SlotId out) {
  if (packed_) {
    return graph.add_gemm(weight_.name, packed_.get(), in, out, ctx_,
                          &bias_.value);
  }
  return graph.add_host(weight_.name, {in}, {out},
                        [this, in, out](ExecGraph& g) {
                          g.slot(out) = forward(g.slot(in));
                        });
}

MatrixF Linear::backward(const MatrixF& dy) {
  // dW += x^T dy;  db += colsum(dy);  dx = dy W^T.
  const MatrixF xt = transposed(x_);
  MatrixF dw = matmul(xt, dy);
  for (std::size_t i = 0; i < dw.size(); ++i)
    weight_.grad.data()[i] += dw.data()[i];
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* row = dy.data() + r * dy.cols();
    float* db = bias_.grad.data();
    for (std::size_t c = 0; c < dy.cols(); ++c) db[c] += row[c];
  }
  const MatrixF wt = transposed(weight_.value);
  return matmul(dy, wt);
}

void pack_linear_layers(const std::vector<Linear*>& layers,
                        const std::string& format,
                        const std::vector<TilePattern>* patterns,
                        const ExecContext& ctx) {
  if (patterns && patterns->size() != layers.size()) {
    throw std::invalid_argument(
        "pack_linear_layers: patterns must align 1:1 with layers");
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    PackOptions options;
    if (patterns) options.pattern = &(*patterns)[i];
    layers[i]->pack_weight(format, options);
    layers[i]->set_exec_context(ctx);
  }
}

void clear_packed_linear_layers(const std::vector<Linear*>& layers) {
  for (Linear* layer : layers) layer->clear_packed_weight();
}

void save_packed_linear_layers(const std::string& path,
                               const std::vector<Linear*>& layers) {
  std::vector<std::pair<std::string, const PackedWeight*>> entries;
  entries.reserve(layers.size());
  for (Linear* layer : layers) {
    if (!layer->packed_weight()) {
      throw std::logic_error("save_packed_linear_layers: layer '" +
                             layer->weight().name +
                             "' has no packed weight — pack before saving");
    }
    entries.emplace_back(layer->weight().name, layer->packed_weight());
  }
  save_model_weights(path, entries);
}

void load_packed_linear_layers(const std::string& path,
                               const std::vector<Linear*>& layers,
                               const ExecContext& ctx, ArtifactLoad mode) {
  std::vector<NamedWeight> loaded = mode == ArtifactLoad::kMapped
                                        ? load_model_weights_mapped(path)
                                        : load_model_weights(path);
  std::unordered_map<std::string, NamedWeight*> by_name;
  for (NamedWeight& entry : loaded) by_name[entry.name] = &entry;
  // Resolve and shape-check every layer before installing anything, so
  // a bad artifact throws with the model still in its previous state
  // rather than half-loaded.
  std::vector<NamedWeight*> resolved;
  resolved.reserve(layers.size());
  for (Linear* layer : layers) {
    const auto it = by_name.find(layer->weight().name);
    if (it == by_name.end() || !it->second || !it->second->weight) {
      throw std::runtime_error("load_packed_linear_layers: artifact '" + path +
                               "' has no entry for layer '" +
                               layer->weight().name + "'");
    }
    const PackedWeight& weight = *it->second->weight;
    if (weight.k() != layer->weight().value.rows() ||
        weight.n() != layer->weight().value.cols()) {
      throw std::runtime_error("load_packed_linear_layers: artifact '" + path +
                               "' entry for layer '" + layer->weight().name +
                               "' has mismatched shape");
    }
    resolved.push_back(it->second);
    it->second = nullptr;  // a duplicate weight name must not resolve twice
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    layers[i]->set_packed_weight(std::move(resolved[i]->weight));
    layers[i]->set_exec_context(ctx);
  }
}

// ---------------------------------------------------------------- ReLU

MatrixF ReLU::forward(const MatrixF& x) {
  y_ = x;
  for (float& v : y_.flat()) v = v > 0.0f ? v : 0.0f;
  return y_;
}

MatrixF ReLU::backward(const MatrixF& dy) {
  MatrixF dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i)
    if (y_.data()[i] <= 0.0f) dx.data()[i] = 0.0f;
  return dx;
}

// ---------------------------------------------------------------- Gelu

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;

inline float gelu_forward_scalar(float x) {
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
}

inline float gelu_backward_scalar(float x) {
  const float x3 = x * x * x;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

MatrixF Gelu::forward(const MatrixF& x) {
  x_ = x;
  MatrixF y = x;
  for (float& v : y.flat()) v = gelu_forward_scalar(v);
  return y;
}

MatrixF Gelu::backward(const MatrixF& dy) {
  MatrixF dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i)
    dx.data()[i] *= gelu_backward_scalar(x_.data()[i]);
  return dx;
}

// ---------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(std::string name, std::size_t dim)
    : gamma_(name + ".gamma", 1, dim), beta_(name + ".beta", 1, dim) {
  gamma_.value.fill(1.0f);
}

MatrixF LayerNorm::forward(const MatrixF& x) {
  const std::size_t n = x.cols();
  normalized_ = MatrixF(x.rows(), n);
  inv_std_.assign(x.rows(), 0.0f);
  MatrixF y(x.rows(), n);
  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.data() + r * n;
    float mean = 0.0f;
    for (std::size_t c = 0; c < n; ++c) mean += row[c];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::size_t c = 0; c < n; ++c) {
      const float d = row[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(var + kEps);
    inv_std_[r] = inv;
    float* nrow = normalized_.data() + r * n;
    float* yrow = y.data() + r * n;
    for (std::size_t c = 0; c < n; ++c) {
      nrow[c] = (row[c] - mean) * inv;
      yrow[c] = nrow[c] * gamma[c] + beta[c];
    }
  }
  return y;
}

MatrixF LayerNorm::backward(const MatrixF& dy) {
  const std::size_t n = dy.cols();
  MatrixF dx(dy.rows(), n);
  const float* gamma = gamma_.value.data();
  float* dgamma = gamma_.grad.data();
  float* dbeta = beta_.grad.data();
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* dyrow = dy.data() + r * n;
    const float* nrow = normalized_.data() + r * n;
    float* dxrow = dx.data() + r * n;
    float sum_dn = 0.0f, sum_dn_n = 0.0f;
    for (std::size_t c = 0; c < n; ++c) {
      const float dn = dyrow[c] * gamma[c];
      sum_dn += dn;
      sum_dn_n += dn * nrow[c];
      dgamma[c] += dyrow[c] * nrow[c];
      dbeta[c] += dyrow[c];
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t c = 0; c < n; ++c) {
      const float dn = dyrow[c] * gamma[c];
      dxrow[c] = inv_std_[r] * (dn - inv_n * sum_dn - nrow[c] * inv_n * sum_dn_n);
    }
  }
  return dx;
}

// ---------------------------------------------------------------- Embedding

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     Rng& rng, bool trainable)
    : table_(std::move(name), vocab, dim), trainable_(trainable) {
  fill_normal(table_.value, rng, 0.0f, 1.0f / std::sqrt(static_cast<float>(dim)));
}

Embedding::Embedding(std::string name, const MatrixF& table, bool trainable)
    : table_(std::move(name), table.rows(), table.cols()),
      trainable_(trainable) {
  table_.value = table;
}

MatrixF Embedding::forward(const std::vector<int>& tokens) {
  tokens_ = tokens;
  const std::size_t d = dim();
  MatrixF y(tokens.size(), d);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const float* row =
        table_.value.data() + static_cast<std::size_t>(tokens[i]) * d;
    float* out = y.data() + i * d;
    for (std::size_t c = 0; c < d; ++c) out[c] = row[c];
  }
  return y;
}

void Embedding::backward(const MatrixF& dy) {
  if (!trainable_) return;
  const std::size_t d = dim();
  assert(dy.rows() == tokens_.size() && dy.cols() == d);
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    float* grad =
        table_.grad.data() + static_cast<std::size_t>(tokens_[i]) * d;
    const float* row = dy.data() + i * d;
    for (std::size_t c = 0; c < d; ++c) grad[c] += row[c];
  }
}

// ---------------------------------------------------------------- MeanPool

MatrixF MeanPoolRows::forward(const MatrixF& x) {
  assert(group_ > 0 && x.rows() % group_ == 0);
  in_rows_ = x.rows();
  const std::size_t out_rows = x.rows() / group_;
  MatrixF y(out_rows, x.cols());
  const float scale = 1.0f / static_cast<float>(group_);
  for (std::size_t r = 0; r < out_rows; ++r) {
    float* yrow = y.data() + r * y.cols();
    for (std::size_t g = 0; g < group_; ++g) {
      const float* xrow = x.data() + (r * group_ + g) * x.cols();
      for (std::size_t c = 0; c < x.cols(); ++c) yrow[c] += xrow[c] * scale;
    }
  }
  return y;
}

MatrixF MeanPoolRows::backward(const MatrixF& dy) {
  MatrixF dx(in_rows_, dy.cols());
  const float scale = 1.0f / static_cast<float>(group_);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* dyrow = dy.data() + r * dy.cols();
    for (std::size_t g = 0; g < group_; ++g) {
      float* dxrow = dx.data() + (r * group_ + g) * dx.cols();
      for (std::size_t c = 0; c < dy.cols(); ++c) dxrow[c] = dyrow[c] * scale;
    }
  }
  return dx;
}

}  // namespace tilesparse
