#pragma once
// NmtMini — the scaled-down NMT/IWSLT proxy: LSTM encoder, LSTM decoder
// with teacher forcing, output projection.  Translation task is sequence
// reversal; quality is measured with BLEU on greedy decodes (metrics.hpp),
// mirroring the paper's BLEU reporting for NMT.

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/lstm.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {

class ExecScheduler;

struct NmtMiniConfig {
  std::size_t vocab = 24;
  std::size_t embed_dim = 32;
  std::size_t hidden = 64;
  std::size_t seq = 8;
  std::uint64_t seed = 3;
};

class NmtMini {
 public:
  explicit NmtMini(const NmtMiniConfig& config);

  /// Teacher-forced forward: returns (batch * seq) x vocab logits; row
  /// b*seq + t predicts target token t of sample b.
  MatrixF forward(const Seq2SeqBatch& batch);
  void backward(const MatrixF& dlogits);

  /// Greedy decode (feeds back its own predictions).
  std::vector<int> greedy_decode(const Seq2SeqBatch& batch);

  std::vector<Param*> params();
  std::vector<Param*> prunable_weights();  ///< enc/dec Wx, Wh + out proj

  /// Packs the five prunable GEMMs (enc Wx/Wh, dec Wx/Wh, output
  /// projection) for inference under a registered PackedWeight format.
  /// `patterns` aligns 1:1 with prunable_weights(); may be null for
  /// pattern-free formats.
  void pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns = nullptr,
                    const ExecContext& ctx = {});
  void clear_packed_weights();

  /// Builds (or rebuilds) the teacher-forced execution plan.  The
  /// encoder and decoder *input* projections are independent GEMM
  /// nodes (the decoder consumes teacher-forced target embeddings, not
  /// encoder output), so a scheduler overlaps the two model halves;
  /// the recurrences are host nodes ordered by an explicit edge
  /// (decoder state starts from the encoder's final state).
  /// pack_weights/clear_packed_weights invalidate the graph.
  ExecGraph& build_exec_graph();
  ExecGraph* exec_graph() noexcept { return graph_.get(); }

  /// Routes forward() through the graph dispatched by `scheduler`
  /// (non-owning; null restores the layer-by-layer path).
  /// greedy_decode() always runs the sequential path — its decoder
  /// feeds back its own predictions, one token at a time.
  void set_exec_scheduler(ExecScheduler* scheduler) noexcept {
    scheduler_ = scheduler;
  }

  const NmtMiniConfig& config() const noexcept { return config_; }

 private:
  MatrixF decoder_inputs(const std::vector<int>& tgt, std::size_t batch);

  NmtMiniConfig config_;
  std::unique_ptr<Embedding> src_embed_;
  std::unique_ptr<Embedding> tgt_embed_;
  std::unique_ptr<Lstm> encoder_;
  std::unique_ptr<Lstm> decoder_;
  std::unique_ptr<Linear> out_proj_;
  std::size_t last_batch_ = 0;
  // Teacher-forced execution plan (inference only).
  std::unique_ptr<ExecGraph> graph_;
  ExecGraph::SlotId graph_src_ = 0, graph_dec_in_ = 0, graph_out_ = 0;
  ExecScheduler* scheduler_ = nullptr;
  bool graph_forward_ = false;  ///< last forward ran through the graph
  /// Backend versions at graph build time; a mismatch on forward means
  /// the graph holds dangling refs and must be rebuilt (see BertMini).
  std::vector<std::uint64_t> graph_versions_;
  std::vector<std::uint64_t> current_graph_versions();
};

}  // namespace tilesparse
