#include "nn/nmt_mini.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "exec/scheduler.hpp"

namespace tilesparse {

NmtMini::NmtMini(const NmtMiniConfig& config) : config_(config) {
  Rng rng(config.seed);
  src_embed_ = std::make_unique<Embedding>("src_embed", config.vocab,
                                           config.embed_dim, rng);
  tgt_embed_ = std::make_unique<Embedding>("tgt_embed", config.vocab,
                                           config.embed_dim, rng);
  encoder_ = std::make_unique<Lstm>("enc", config.embed_dim, config.hidden, rng);
  decoder_ = std::make_unique<Lstm>("dec", config.embed_dim, config.hidden, rng);
  out_proj_ = std::make_unique<Linear>("out", config.hidden, config.vocab, rng);
}

MatrixF NmtMini::decoder_inputs(const std::vector<int>& tgt,
                                std::size_t batch) {
  // Teacher forcing with an implicit BOS: step 0 sees a zero vector,
  // step t sees embed(tgt[t-1]).
  std::vector<int> shifted(batch * config_.seq, 0);
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t t = 1; t < config_.seq; ++t)
      shifted[b * config_.seq + t] = tgt[b * config_.seq + t - 1];
  MatrixF inputs = tgt_embed_->forward(shifted);
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = inputs.data() + (b * config_.seq) * config_.embed_dim;
    for (std::size_t d = 0; d < config_.embed_dim; ++d) row[d] = 0.0f;
  }
  return inputs;
}

MatrixF NmtMini::forward(const Seq2SeqBatch& batch) {
  assert(batch.seq == config_.seq);
  last_batch_ = batch.batch;
  graph_forward_ = scheduler_ != nullptr;
  if (scheduler_) {
    if (!graph_ || graph_versions_ != current_graph_versions())
      build_exec_graph();
    graph_->slot(graph_src_) = src_embed_->forward(batch.src);
    graph_->slot(graph_dec_in_) = decoder_inputs(batch.tgt, batch.batch);
    scheduler_->run(*graph_);
    return graph_->slot(graph_out_);
  }
  const MatrixF src = src_embed_->forward(batch.src);
  encoder_->forward(src, config_.seq);

  const MatrixF dec_in = decoder_inputs(batch.tgt, batch.batch);
  const MatrixF dec_h = decoder_->forward(dec_in, config_.seq,
                                          encoder_->final_h(),
                                          encoder_->final_c());
  return out_proj_->forward(dec_h);
}

std::vector<std::uint64_t> NmtMini::current_graph_versions() {
  return {encoder_->packed_version(), decoder_->packed_version(),
          out_proj_->packed_version()};
}

ExecGraph& NmtMini::build_exec_graph() {
  graph_versions_ = current_graph_versions();
  graph_ = std::make_unique<ExecGraph>();
  ExecGraph& g = *graph_;
  graph_src_ = g.add_slot("src.embed");
  graph_dec_in_ = g.add_slot("dec.in");
  g.mark_input(graph_src_);
  g.mark_input(graph_dec_in_);
  const ExecGraph::SlotId enc_xproj = g.add_slot("enc.xproj");
  const ExecGraph::SlotId dec_xproj = g.add_slot("dec.xproj");
  const ExecGraph::SlotId dec_h = g.add_slot("dec.h");

  // The two input projections have no dependency on each other: the
  // encoder and decoder halves overlap across streams.
  encoder_->add_input_projection_node(g, graph_src_, enc_xproj);
  decoder_->add_input_projection_node(g, graph_dec_in_, dec_xproj);

  const ExecGraph::NodeId enc_run = g.add_host(
      "enc.recurrence", {graph_src_, enc_xproj}, {},
      [this, enc_xproj](ExecGraph& gg) {
        encoder_->forward_with_projection(gg.slot(graph_src_),
                                          gg.slot(enc_xproj), config_.seq);
      });
  const ExecGraph::NodeId dec_run = g.add_host(
      "dec.recurrence", {graph_dec_in_, dec_xproj}, {dec_h},
      [this, dec_xproj, dec_h](ExecGraph& gg) {
        gg.slot(dec_h) = decoder_->forward_with_projection(
            gg.slot(graph_dec_in_), gg.slot(dec_xproj), config_.seq,
            encoder_->final_h(), encoder_->final_c());
      });
  // The decoder reads encoder state that lives outside the slots.
  g.add_dep(dec_run, enc_run);

  graph_out_ = g.add_slot("logits");
  out_proj_->add_to_graph(g, dec_h, graph_out_);
  g.mark_output(graph_out_);
  return g;
}

void NmtMini::backward(const MatrixF& dlogits) {
  if (graph_forward_) {
    // Graph-mode activations live in graph slots, not the layer caches
    // backward differentiates; failing loudly beats silent no-op grads.
    throw std::logic_error(
        "NmtMini::backward: last forward ran through the exec graph "
        "(inference-only); detach the scheduler before training");
  }
  const MatrixF ddec_h = out_proj_->backward(dlogits);
  MatrixF dh0, dc0;
  MatrixF ddec_in = decoder_->backward(ddec_h, &dh0, &dc0);
  // The zeroed BOS rows must not backprop into the embedding table.
  for (std::size_t b = 0; b < last_batch_; ++b) {
    float* row = ddec_in.data() + (b * config_.seq) * config_.embed_dim;
    for (std::size_t d = 0; d < config_.embed_dim; ++d) row[d] = 0.0f;
  }
  tgt_embed_->backward(ddec_in);

  // Initial-state gradients flow into the encoder's final step only; we
  // fold them in by re-running encoder backward with a dh that is zero
  // everywhere except the last step.
  MatrixF denc_h(last_batch_ * config_.seq, config_.hidden);
  for (std::size_t b = 0; b < last_batch_; ++b) {
    float* row =
        denc_h.data() + (b * config_.seq + config_.seq - 1) * config_.hidden;
    const float* src = dh0.data() + b * config_.hidden;
    for (std::size_t d = 0; d < config_.hidden; ++d) row[d] = src[d];
  }
  // Note: dc0 (cell-state gradient) is dropped — a second-order detail
  // that does not affect training quality on the proxy task.
  const MatrixF dsrc = encoder_->backward(denc_h);
  src_embed_->backward(dsrc);
}

std::vector<int> NmtMini::greedy_decode(const Seq2SeqBatch& batch) {
  const MatrixF src = src_embed_->forward(batch.src);
  encoder_->forward(src, config_.seq);
  MatrixF h = encoder_->final_h();
  MatrixF c = encoder_->final_c();

  std::vector<int> output(batch.batch * config_.seq, 0);
  MatrixF step_in(batch.batch, config_.embed_dim);  // BOS = zeros
  for (std::size_t t = 0; t < config_.seq; ++t) {
    const MatrixF step_h = decoder_->forward(step_in, 1, h, c);
    h = decoder_->final_h();
    c = decoder_->final_c();
    const MatrixF logits = out_proj_->forward(step_h);
    std::vector<int> tokens(batch.batch);
    for (std::size_t b = 0; b < batch.batch; ++b) {
      const float* row = logits.data() + b * config_.vocab;
      tokens[b] = static_cast<int>(
          std::max_element(row, row + config_.vocab) - row);
      output[b * config_.seq + t] = tokens[b];
    }
    step_in = tgt_embed_->forward(tokens);
  }
  return output;
}

std::vector<Param*> NmtMini::params() {
  std::vector<Param*> all;
  for (Param* p : src_embed_->params()) all.push_back(p);
  for (Param* p : tgt_embed_->params()) all.push_back(p);
  for (Param* p : encoder_->params()) all.push_back(p);
  for (Param* p : decoder_->params()) all.push_back(p);
  for (Param* p : out_proj_->params()) all.push_back(p);
  return all;
}

std::vector<Param*> NmtMini::prunable_weights() {
  std::vector<Param*> weights;
  for (Param* p : encoder_->gemm_weights()) weights.push_back(p);
  for (Param* p : decoder_->gemm_weights()) weights.push_back(p);
  weights.push_back(&out_proj_->weight());
  return weights;
}

void NmtMini::pack_weights(const std::string& format,
                           const std::vector<TilePattern>* patterns,
                           const ExecContext& ctx) {
  if (patterns && patterns->size() != 5) {
    throw std::invalid_argument(
        "NmtMini::pack_weights: patterns must align with prunable_weights()");
  }
  // Slice the flat pattern list along prunable_weights() order:
  // {enc Wx, enc Wh, dec Wx, dec Wh, out projection}.
  std::vector<TilePattern> enc_patterns, dec_patterns;
  if (patterns) {
    enc_patterns = {(*patterns)[0], (*patterns)[1]};
    dec_patterns = {(*patterns)[2], (*patterns)[3]};
  }
  encoder_->pack_weights(format, patterns ? &enc_patterns : nullptr, ctx);
  decoder_->pack_weights(format, patterns ? &dec_patterns : nullptr, ctx);
  PackOptions proj_options;
  if (patterns) proj_options.pattern = &(*patterns)[4];
  out_proj_->pack_weight(format, proj_options);
  out_proj_->set_exec_context(ctx);
  graph_.reset();  // nodes hold refs to the replaced backends
}

void NmtMini::clear_packed_weights() {
  encoder_->clear_packed_weights();
  decoder_->clear_packed_weights();
  out_proj_->clear_packed_weight();
  graph_.reset();
}

}  // namespace tilesparse
