#pragma once
// VggMini — the scaled-down VGG/ImageNet proxy: two conv blocks (conv +
// ReLU + avg-pool) followed by two FC layers.  The conv weights are the
// im2col-lowered (C_in*9) x C_out matrices, pruned exactly like the
// paper prunes VGG.

#include <memory>
#include <vector>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {

struct VggMiniConfig {
  std::size_t channels = 3;
  std::size_t height = 8;
  std::size_t width = 8;
  std::size_t conv1_channels = 16;
  std::size_t conv2_channels = 32;
  std::size_t fc_dim = 128;
  std::size_t classes = 10;
  std::uint64_t seed = 2;
};

class VggMini {
 public:
  explicit VggMini(const VggMiniConfig& config);

  MatrixF forward(const MatrixF& images);  ///< batch x (C*H*W) -> logits
  void backward(const MatrixF& dlogits);

  std::vector<Param*> params();
  std::vector<Param*> prunable_weights();  ///< conv im2col mats + FC weights

  /// Packs the prunable GEMMs — the two conv im2col matrices and fc1 —
  /// for inference under a registered PackedWeight format, so the CNN
  /// task serves through the unified exec API like the other models.
  /// `patterns` aligns 1:1 with prunable_weights(); may be null for
  /// pattern-free formats.
  void pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns = nullptr,
                    const ExecContext& ctx = {});
  void clear_packed_weights();

  const VggMiniConfig& config() const noexcept { return config_; }

 private:
  VggMiniConfig config_;
  std::unique_ptr<Conv3x3> conv1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<AvgPool2> pool1_;
  std::unique_ptr<Conv3x3> conv2_;
  std::unique_ptr<ReLU> relu2_;
  std::unique_ptr<AvgPool2> pool2_;
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<ReLU> relu3_;
  std::unique_ptr<Linear> fc2_;
};

}  // namespace tilesparse
