#pragma once
// VggMini — the scaled-down VGG/ImageNet proxy: two conv blocks (conv +
// ReLU + avg-pool) followed by two FC layers.  The conv weights are the
// im2col-lowered (C_in*9) x C_out matrices, pruned exactly like the
// paper prunes VGG.

#include <memory>
#include <vector>

#include "exec/graph.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {

class ExecScheduler;

struct VggMiniConfig {
  std::size_t channels = 3;
  std::size_t height = 8;
  std::size_t width = 8;
  std::size_t conv1_channels = 16;
  std::size_t conv2_channels = 32;
  std::size_t fc_dim = 128;
  std::size_t classes = 10;
  std::uint64_t seed = 2;
};

class VggMini {
 public:
  explicit VggMini(const VggMiniConfig& config);

  MatrixF forward(const MatrixF& images);  ///< batch x (C*H*W) -> logits
  void backward(const MatrixF& dlogits);

  std::vector<Param*> params();
  std::vector<Param*> prunable_weights();  ///< conv im2col mats + FC weights

  /// Packs the prunable GEMMs — the two conv im2col matrices and fc1 —
  /// for inference under a registered PackedWeight format, so the CNN
  /// task serves through the unified exec API like the other models.
  /// `patterns` aligns 1:1 with prunable_weights(); may be null for
  /// pattern-free formats.
  void pack_weights(const std::string& format,
                    const std::vector<TilePattern>* patterns = nullptr,
                    const ExecContext& ctx = {});
  void clear_packed_weights();

  /// Builds (or rebuilds) the model-level execution plan: the conv trunk
  /// as one host node (its GEMMs run through each conv layer's own
  /// packed backend), then fc1 -> ReLU -> fc2 as graph nodes, so the FC
  /// GEMMs schedule/shard through the unified exec API.
  ExecGraph& build_exec_graph();
  ExecGraph* exec_graph() noexcept { return graph_.get(); }

  /// Routes forward() through the execution graph dispatched by
  /// `scheduler` (non-owning; null returns to the layer-by-layer path).
  /// The graph is built lazily on the next forward().
  void set_exec_scheduler(ExecScheduler* scheduler) noexcept {
    scheduler_ = scheduler;
  }

  const VggMiniConfig& config() const noexcept { return config_; }

 private:
  VggMiniConfig config_;
  std::unique_ptr<Conv3x3> conv1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<AvgPool2> pool1_;
  std::unique_ptr<Conv3x3> conv2_;
  std::unique_ptr<ReLU> relu2_;
  std::unique_ptr<AvgPool2> pool2_;
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<ReLU> relu3_;
  std::unique_ptr<Linear> fc2_;

  std::unique_ptr<ExecGraph> graph_;
  ExecGraph::SlotId graph_in_ = 0, graph_out_ = 0;
  ExecScheduler* scheduler_ = nullptr;
  bool graph_forward_ = false;  ///< last forward ran through the graph
  /// packed_version() of the FC layers whose backends the graph refs;
  /// a mismatch means a backend was replaced and the graph must be
  /// rebuilt (the conv trunk runs through forward() and cannot dangle).
  std::vector<std::uint64_t> graph_versions_;
  std::vector<std::uint64_t> current_graph_versions();
};

}  // namespace tilesparse
