#pragma once
// Basic NN layers with explicit forward/backward.
//
// Conventions:
//  * activations are MatrixF with batch (or batch*seq) rows;
//  * weight matrices are stored K x N (input-dim x output-dim), the same
//    orientation the TW pruner and the GEMM substrate use;
//  * forward() caches whatever backward() needs; backward(dy) returns dx
//    and accumulates parameter gradients (call zero_grad between steps).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/exec_context.hpp"
#include "exec/graph.hpp"
#include "exec/packed_weight.hpp"
#include "nn/param.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace tilesparse {

class Layer {
 public:
  virtual ~Layer() = default;
  virtual MatrixF forward(const MatrixF& x) = 0;
  virtual MatrixF backward(const MatrixF& dy) = 0;
  virtual std::vector<Param*> params() { return {}; }
};

/// y = x W + b.
///
/// Inference path: the layer can hold a PackedWeight — any registered
/// execution format (dense, tw, tew, csr, tw-int8) packed from the
/// dense master weight — in which case forward() executes through
/// PackedWeight::matmul under the layer's ExecContext.  The dense Param
/// remains the master copy: backward() always differentiates against
/// it, so packing is purely an inference-serving decision and training
/// code is unaffected.
class Linear : public Layer {
 public:
  Linear(std::string name, std::size_t in, std::size_t out, Rng& rng);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }

  /// Packs the current master weight under a registered format.
  void pack_weight(const std::string& format, const PackOptions& options = {});
  /// Adopts an externally built packed weight (shape must match).
  void set_packed_weight(std::unique_ptr<PackedWeight> packed);
  /// Returns to dense master-weight execution.
  void clear_packed_weight() noexcept {
    packed_.reset();
    ++packed_version_;
  }
  const PackedWeight* packed_weight() const noexcept { return packed_.get(); }

  /// Bumped whenever the execution backend is replaced (pack, clear,
  /// artifact load).  Models key their cached ExecGraph on the versions
  /// of every layer in it: a graph built against replaced backends
  /// would hold dangling weight refs, so it must be rebuilt — no
  /// matter which call path swapped the backend.
  std::uint64_t packed_version() const noexcept { return packed_version_; }

  /// Numerics/threads for packed execution (alpha/beta are fixed by the
  /// layer semantics y = x W + b).
  void set_exec_context(const ExecContext& ctx) noexcept { ctx_ = ctx; }
  const ExecContext& exec_context() const noexcept { return ctx_; }

  /// Adds this layer's y = x W + b to an execution graph: a GEMM node
  /// over the packed weight when one is installed (independent layers
  /// then overlap across scheduler streams), a host node running the
  /// plain forward() otherwise.  Both produce exactly what forward()
  /// produces.  The layer must outlive the graph.
  ExecGraph::NodeId add_to_graph(ExecGraph& graph, ExecGraph::SlotId in,
                                 ExecGraph::SlotId out);

 private:
  Param weight_;  ///< in x out
  Param bias_;    ///< 1 x out
  MatrixF x_;     ///< cached input
  std::unique_ptr<PackedWeight> packed_;  ///< optional inference backend
  std::uint64_t packed_version_ = 0;
  ExecContext ctx_;
};

/// Packs each layer's master weight under `format`.  `patterns`, when
/// given, must align 1:1 with `layers` (TW-family formats need one);
/// `ctx` is installed as every layer's execution context.
void pack_linear_layers(const std::vector<Linear*>& layers,
                        const std::string& format,
                        const std::vector<TilePattern>* patterns = nullptr,
                        const ExecContext& ctx = {});

/// Clears packed weights on every layer (back to dense execution).
void clear_packed_linear_layers(const std::vector<Linear*>& layers);

/// Writes every layer's *packed* weight into one model artifact
/// (io/serialize save_model_weights), keyed by the weight Param's name.
/// Throws std::logic_error when a layer has not been packed — the
/// artifact is the packed representation, there is nothing dense to
/// ship.
void save_packed_linear_layers(const std::string& path,
                               const std::vector<Linear*>& layers);

/// How a model artifact's bytes reach the execution backends.
enum class ArtifactLoad {
  kStream,  ///< read every payload into owned storage (v1 and v2 files)
  kMapped,  ///< mmap the file; backends borrow bulk payloads in place
            ///< (v2 files only; the mapping lives as long as the weights)
};

/// Loads a model artifact into `layers`: each layer adopts the entry
/// matching its weight name (throws std::runtime_error when one is
/// missing) and installs `ctx`.  Serving starts straight from the
/// artifact — no re-packing or re-quantising.  With
/// ArtifactLoad::kMapped the weights share the page cache with every
/// other process mapping the same file.
void load_packed_linear_layers(const std::string& path,
                               const std::vector<Linear*>& layers,
                               const ExecContext& ctx = {},
                               ArtifactLoad mode = ArtifactLoad::kStream);

class ReLU : public Layer {
 public:
  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;

 private:
  MatrixF y_;
};

class Gelu : public Layer {
 public:
  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;

 private:
  MatrixF x_;
};

/// Row-wise LayerNorm with trainable gamma/beta.
class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, std::size_t dim);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }

 private:
  Param gamma_, beta_;
  MatrixF normalized_;
  std::vector<float> inv_std_;
  static constexpr float kEps = 1e-5f;
};

/// Token embedding lookup.  Rows of the output are embeddings of the
/// flattened token stream.  Optionally trainable.
class Embedding {
 public:
  Embedding(std::string name, std::size_t vocab, std::size_t dim, Rng& rng,
            bool trainable = true);
  /// Initialise from an external table (e.g. the dataset's fixed table).
  Embedding(std::string name, const MatrixF& table, bool trainable);

  MatrixF forward(const std::vector<int>& tokens);
  void backward(const MatrixF& dy);
  std::vector<Param*> params() {
    return trainable_ ? std::vector<Param*>{&table_} : std::vector<Param*>{};
  }
  std::size_t dim() const noexcept { return table_.value.cols(); }

 private:
  Param table_;
  std::vector<int> tokens_;
  bool trainable_;
};

/// Mean over groups of `group` consecutive rows (sequence mean-pooling:
/// batch*seq rows -> batch rows).
class MeanPoolRows : public Layer {
 public:
  explicit MeanPoolRows(std::size_t group) : group_(group) {}
  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;

 private:
  std::size_t group_;
  std::size_t in_rows_ = 0;
};

}  // namespace tilesparse
