#pragma once
// Evaluation metrics: classification accuracy lives in loss.hpp; this
// header adds BLEU for the NMT proxy (the paper reports BLEU for NMT).

#include <cstddef>
#include <vector>

namespace tilesparse {

/// Corpus-level BLEU-4 with brevity penalty over equal-length candidate
/// and reference token streams partitioned into `batch` sentences of
/// `seq` tokens.  Returns a score in [0, 100].
double bleu4(const std::vector<int>& candidate, const std::vector<int>& reference,
             std::size_t batch, std::size_t seq);

}  // namespace tilesparse
