#pragma once
// Losses and the optimizer-facing training-step contract.

#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// Softmax cross-entropy over logits (batch x classes).  Returns the
/// mean loss and writes dlogits (same shape) for backward.
float softmax_cross_entropy(const MatrixF& logits, const std::vector<int>& labels,
                            MatrixF& dlogits);

/// Argmax accuracy of logits against labels.
double accuracy(const MatrixF& logits, const std::vector<int>& labels);

}  // namespace tilesparse
