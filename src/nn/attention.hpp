#pragma once
// Multi-head self-attention (the MHA block of paper Fig. 1) with full
// backward.  Input/output are (batch * seq) x dim row blocks.

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"

namespace tilesparse {

class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(std::string name, std::size_t dim, std::size_t heads,
                     std::size_t seq, Rng& rng);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::vector<Param*> params() override;

  /// The four prunable projection weights (Q, K, V, output).
  std::vector<Param*> projection_weights();

  /// The owning Linear layers, aligned 1:1 with projection_weights();
  /// exposed so the packed-weight inference path can rebind them.
  std::vector<Linear*> projection_layers();

  /// Adds this block to an execution graph: the Q/K/V projections as
  /// three *independent* GEMM nodes (the scheduler overlaps them on
  /// separate streams — the paper's Fig. 7-4 assignment), a host node
  /// for the softmax(QK^T)V core, and the output projection.  Produces
  /// exactly what forward() produces; the block must outlive the graph.
  ExecGraph::NodeId add_to_graph(ExecGraph& graph, ExecGraph::SlotId in,
                                 ExecGraph::SlotId out);

 private:
  /// softmax(scale * Q K^T) V per (batch, head), writing `context`
  /// (pre-sized to q.rows() x dim) and caching the probabilities in
  /// attn_.  Shared by forward() and the graph host node so both paths
  /// are the same arithmetic.
  void attention_core(const MatrixF& q, const MatrixF& k, const MatrixF& v,
                      MatrixF& context);

  std::size_t dim_, heads_, seq_, head_dim_;
  Linear q_, k_, v_, out_;
  // Cached activations for backward.
  MatrixF q_act_, k_act_, v_act_;
  std::vector<MatrixF> attn_;  ///< softmax probabilities per (batch, head)
};

}  // namespace tilesparse
