#pragma once
// Multi-head self-attention (the MHA block of paper Fig. 1) with full
// backward.  Input/output are (batch * seq) x dim row blocks.

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"

namespace tilesparse {

class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(std::string name, std::size_t dim, std::size_t heads,
                     std::size_t seq, Rng& rng);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::vector<Param*> params() override;

  /// The four prunable projection weights (Q, K, V, output).
  std::vector<Param*> projection_weights();

  /// The owning Linear layers, aligned 1:1 with projection_weights();
  /// exposed so the packed-weight inference path can rebind them.
  std::vector<Linear*> projection_layers();

 private:
  std::size_t dim_, heads_, seq_, head_dim_;
  Linear q_, k_, v_, out_;
  // Cached activations for backward.
  MatrixF q_act_, k_act_, v_act_;
  std::vector<MatrixF> attn_;  ///< softmax probabilities per (batch, head)
};

}  // namespace tilesparse
