#include "nn/vgg_mini.hpp"

#include <stdexcept>

#include "exec/scheduler.hpp"

namespace tilesparse {

VggMini::VggMini(const VggMiniConfig& config) : config_(config) {
  Rng rng(config.seed);
  const std::size_t h = config.height, w = config.width;
  conv1_ = std::make_unique<Conv3x3>("conv1", config.channels,
                                     config.conv1_channels, h, w, rng);
  relu1_ = std::make_unique<ReLU>();
  pool1_ = std::make_unique<AvgPool2>(config.conv1_channels, h, w);
  conv2_ = std::make_unique<Conv3x3>("conv2", config.conv1_channels,
                                     config.conv2_channels, h / 2, w / 2, rng);
  relu2_ = std::make_unique<ReLU>();
  pool2_ = std::make_unique<AvgPool2>(config.conv2_channels, h / 2, w / 2);
  const std::size_t flat = config.conv2_channels * (h / 4) * (w / 4);
  fc1_ = std::make_unique<Linear>("fc1", flat, config.fc_dim, rng);
  relu3_ = std::make_unique<ReLU>();
  fc2_ = std::make_unique<Linear>("fc2", config.fc_dim, config.classes, rng);
}

MatrixF VggMini::forward(const MatrixF& images) {
  graph_forward_ = scheduler_ != nullptr;
  if (scheduler_) {
    if (!graph_ || graph_versions_ != current_graph_versions())
      build_exec_graph();
    graph_->slot(graph_in_) = images;
    scheduler_->run(*graph_);
    return graph_->slot(graph_out_);
  }

  MatrixF x = conv1_->forward(images);
  x = relu1_->forward(x);
  x = pool1_->forward(x);
  x = conv2_->forward(x);
  x = relu2_->forward(x);
  x = pool2_->forward(x);
  x = fc1_->forward(x);
  x = relu3_->forward(x);
  return fc2_->forward(x);
}

void VggMini::backward(const MatrixF& dlogits) {
  if (graph_forward_) {
    // Graph forward keeps activations in graph slots, not the layer
    // caches backward needs; differentiating now would silently no-op.
    throw std::logic_error(
        "VggMini::backward: last forward ran through the exec graph "
        "(inference-only); detach the scheduler before training");
  }
  MatrixF d = fc2_->backward(dlogits);
  d = relu3_->backward(d);
  d = fc1_->backward(d);
  d = pool2_->backward(d);
  d = relu2_->backward(d);
  d = conv2_->backward(d);
  d = pool1_->backward(d);
  d = relu1_->backward(d);
  conv1_->backward(d);
}

std::vector<Param*> VggMini::params() {
  std::vector<Param*> all;
  for (Layer* layer : {static_cast<Layer*>(conv1_.get()),
                       static_cast<Layer*>(conv2_.get()),
                       static_cast<Layer*>(fc1_.get()),
                       static_cast<Layer*>(fc2_.get())}) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<Param*> VggMini::prunable_weights() {
  // Conv (im2col) and hidden FC weights; the 10-class output head is
  // excluded for the same reason as BertMini's classifier.
  return {&conv1_->weight(), &conv2_->weight(), &fc1_->weight()};
}

void VggMini::pack_weights(const std::string& format,
                           const std::vector<TilePattern>* patterns,
                           const ExecContext& ctx) {
  if (patterns && patterns->size() != 3) {
    throw std::invalid_argument(
        "VggMini::pack_weights: patterns must align with prunable_weights()");
  }
  auto options_for = [&](std::size_t i) {
    PackOptions options;
    if (patterns) options.pattern = &(*patterns)[i];
    return options;
  };
  conv1_->pack_weight(format, options_for(0));
  conv1_->set_exec_context(ctx);
  conv2_->pack_weight(format, options_for(1));
  conv2_->set_exec_context(ctx);
  fc1_->pack_weight(format, options_for(2));
  fc1_->set_exec_context(ctx);
  graph_.reset();  // fc1's graph node holds a ref to the replaced backend
}

void VggMini::clear_packed_weights() {
  conv1_->clear_packed_weight();
  conv2_->clear_packed_weight();
  fc1_->clear_packed_weight();
  graph_.reset();
}

std::vector<std::uint64_t> VggMini::current_graph_versions() {
  return {fc1_->packed_version(), fc2_->packed_version()};
}

ExecGraph& VggMini::build_exec_graph() {
  graph_versions_ = current_graph_versions();
  graph_ = std::make_unique<ExecGraph>();
  ExecGraph& g = *graph_;
  graph_in_ = g.add_slot("images");
  g.mark_input(graph_in_);
  // The conv trunk is one host node: each Conv3x3::forward already runs
  // its im2col GEMM through the layer's packed backend when one is
  // installed, so graph-level sharding is reserved for the FC GEMMs.
  const ExecGraph::SlotId features = g.add_slot("features");
  g.add_host("conv_trunk", {graph_in_}, {features},
             [this, features](ExecGraph& gg) {
               MatrixF x = conv1_->forward(gg.slot(graph_in_));
               x = relu1_->forward(x);
               x = pool1_->forward(x);
               x = conv2_->forward(x);
               x = relu2_->forward(x);
               gg.slot(features) = pool2_->forward(x);
             });
  const ExecGraph::SlotId fc1_out = g.add_slot("fc1.out");
  fc1_->add_to_graph(g, features, fc1_out);
  const ExecGraph::SlotId fc1_act = g.add_slot("relu3.out");
  g.add_host("relu3", {fc1_out}, {fc1_act}, [this, fc1_out, fc1_act](ExecGraph& gg) {
    gg.slot(fc1_act) = relu3_->forward(gg.slot(fc1_out));
  });
  graph_out_ = g.add_slot("logits");
  fc2_->add_to_graph(g, fc1_act, graph_out_);
  g.mark_output(graph_out_);
  return g;
}

}  // namespace tilesparse
