#pragma once
// Trainable parameter with gradient and an optional pruning mask.
//
// The fine-tuning step of the multi-stage pruner (Algorithm 1, line 21)
// trains with masks held fixed: the optimizer zeroes masked weights
// after every update so pruned positions stay pruned.

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

struct Param {
  std::string name;
  MatrixF value;
  MatrixF grad;
  /// Non-owning; when set, value is element-wise multiplied by the mask
  /// after every optimizer step.  Shape must match value.
  const MatrixU8* mask = nullptr;

  Param() = default;
  Param(std::string param_name, std::size_t rows, std::size_t cols)
      : name(std::move(param_name)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Copies all parameter values (for model snapshot / restore around
/// pruning experiments that compare patterns from one pretrained state).
std::vector<MatrixF> snapshot_params(const std::vector<Param*>& params);
void restore_params(const std::vector<Param*>& params,
                    const std::vector<MatrixF>& snapshot);

}  // namespace tilesparse
