#pragma once
// SGD-with-momentum and Adam.  Both honour pruning masks: when a Param
// carries a mask, masked weights (and their momentum) are zeroed after
// every step, implementing the prune-and-fine-tune loop of Algorithm 1.

#include <cstddef>
#include <vector>

#include "nn/param.hpp"

namespace tilesparse {

class SgdOptimizer {
 public:
  explicit SgdOptimizer(std::vector<Param*> params, float lr = 0.05f,
                        float momentum = 0.9f, float weight_decay = 0.0f);

  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }

  /// Applies one update from the accumulated gradients, re-applies the
  /// masks, and zeroes the gradients.
  void step();

 private:
  std::vector<Param*> params_;
  std::vector<MatrixF> velocity_;
  float lr_, momentum_, weight_decay_;
};

class AdamOptimizer {
 public:
  explicit AdamOptimizer(std::vector<Param*> params, float lr = 1e-3f,
                         float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f);

  void set_lr(float lr) noexcept { lr_ = lr; }
  void step();

 private:
  std::vector<Param*> params_;
  std::vector<MatrixF> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
};

}  // namespace tilesparse
