#include "prune/analysis.hpp"

#include <algorithm>
#include <string>

namespace tilesparse {

std::vector<double> mask_sparsities(const std::vector<MatrixU8>& masks) {
  std::vector<double> out;
  out.reserve(masks.size());
  for (const auto& mask : masks) {
    std::size_t kept = 0;
    for (auto v : mask.flat()) kept += v != 0;
    out.push_back(mask.size() ? 1.0 - static_cast<double>(kept) /
                                          static_cast<double>(mask.size())
                              : 0.0);
  }
  return out;
}

std::vector<float> column_sparsities(const MatrixU8& mask) {
  std::vector<float> out(mask.cols(), 0.0f);
  for (std::size_t c = 0; c < mask.cols(); ++c) {
    std::size_t kept = 0;
    for (std::size_t r = 0; r < mask.rows(); ++r) kept += mask(r, c) != 0;
    out[c] = 1.0f - static_cast<float>(kept) / static_cast<float>(mask.rows());
  }
  return out;
}

std::vector<float> unit_zero_fractions(const MatrixU8& mask,
                                       std::size_t unit_rows,
                                       std::size_t unit_cols) {
  std::vector<float> out;
  if (unit_rows == 0 || unit_cols == 0) return out;
  const std::size_t unit_size = unit_rows * unit_cols;
  for (std::size_t r0 = 0; r0 + unit_rows <= mask.rows(); r0 += unit_rows) {
    for (std::size_t c0 = 0; c0 + unit_cols <= mask.cols(); c0 += unit_cols) {
      std::size_t zeros = 0;
      for (std::size_t r = 0; r < unit_rows; ++r)
        for (std::size_t c = 0; c < unit_cols; ++c)
          zeros += mask(r0 + r, c0 + c) == 0;
      out.push_back(static_cast<float>(zeros) / static_cast<float>(unit_size));
    }
  }
  return out;
}

MatrixF density_map(const MatrixU8& mask, std::size_t grid) {
  MatrixF map(grid, grid);
  if (mask.empty() || grid == 0) return map;
  for (std::size_t gr = 0; gr < grid; ++gr) {
    const std::size_t r0 = gr * mask.rows() / grid;
    const std::size_t r1 = std::max(r0 + 1, (gr + 1) * mask.rows() / grid);
    for (std::size_t gc = 0; gc < grid; ++gc) {
      const std::size_t c0 = gc * mask.cols() / grid;
      const std::size_t c1 = std::max(c0 + 1, (gc + 1) * mask.cols() / grid);
      std::size_t kept = 0;
      for (std::size_t r = r0; r < r1 && r < mask.rows(); ++r)
        for (std::size_t c = c0; c < c1 && c < mask.cols(); ++c)
          kept += mask(r, c) != 0;
      const std::size_t total = (r1 - r0) * (c1 - c0);
      map(gr, gc) = total ? static_cast<float>(kept) / static_cast<float>(total)
                          : 0.0f;
    }
  }
  return map;
}

std::string render_density_map(const MatrixF& map) {
  static constexpr char kShades[] = " .:-=+*#%@";  // 10 levels
  std::string out;
  out.reserve((map.cols() + 1) * map.rows());
  for (std::size_t r = 0; r < map.rows(); ++r) {
    for (std::size_t c = 0; c < map.cols(); ++c) {
      const float d = std::clamp(map(r, c), 0.0f, 1.0f);
      out += kShades[static_cast<std::size_t>(d * 9.0f + 0.5f)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace tilesparse
