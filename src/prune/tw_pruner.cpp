#include "prune/tw_pruner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "prune/importance.hpp"
#include "prune/patterns.hpp"

namespace tilesparse {
namespace {

/// Column adjustment from apriori tuning: prune-first / normal / protected.
enum class ColClass : std::uint8_t { kNormal, kForcePrune, kProtect };

/// Polynomial (cubic) sparsity schedule: slow start, fast middle, gentle
/// landing — the standard gradual-pruning ramp.
double stage_target(double final_sparsity, int stage, int stages) {
  const double t = static_cast<double>(stage) / static_cast<double>(stages);
  return final_sparsity * (1.0 - std::pow(1.0 - t, 3.0));
}

/// One full column+row pruning pass over all matrices at fixed column /
/// row prune fractions.  Scores are the *current* importance matrices.
std::vector<TilePattern> build_patterns(
    const std::vector<MatrixF*>& weights, const std::vector<MatrixF>& scores,
    double col_fraction, double row_fraction, std::size_t g, bool global_rank,
    const std::vector<std::vector<ColClass>>& col_classes) {
  const std::size_t num = weights.size();
  constexpr float kInf = std::numeric_limits<float>::max();

  // ---- Column pruning (tiles of shape K x 1, Algorithm 1 lines 4-12).
  // Scores are height-normalised (mean per element) so matrices with
  // different K compare fairly in the global ranking, and pruning runs
  // on an *element* budget because a pruned column of a tall matrix
  // removes more weights than one of a short matrix.
  std::vector<std::vector<float>> col_scores(num);
  for (std::size_t mi = 0; mi < num; ++mi) {
    const MatrixF& s = scores[mi];
    auto& cs = col_scores[mi];
    cs.assign(s.cols(), 0.0f);
    for (std::size_t r = 0; r < s.rows(); ++r) {
      const float* row = s.data() + r * s.cols();
      for (std::size_t c = 0; c < s.cols(); ++c) cs[c] += row[c];
    }
    const float inv_k = 1.0f / static_cast<float>(s.rows() ? s.rows() : 1);
    for (float& v : cs) v *= inv_k;
    if (!col_classes.empty()) {
      for (std::size_t c = 0; c < cs.size(); ++c) {
        if (col_classes[mi][c] == ColClass::kForcePrune) cs[c] = -1.0f;
        if (col_classes[mi][c] == ColClass::kProtect) cs[c] = kInf;
      }
    }
  }

  std::vector<std::vector<std::uint8_t>> col_keep(num);
  auto prune_column_group = [&](const std::vector<std::size_t>& members) {
    struct ColTile {
      float score;
      std::uint32_t matrix;
      std::uint32_t index;
      std::uint32_t elements;
    };
    std::vector<ColTile> tiles;
    double total_elements = 0.0;
    for (std::size_t mi : members) {
      const auto height = static_cast<std::uint32_t>(weights[mi]->rows());
      for (std::size_t c = 0; c < col_scores[mi].size(); ++c) {
        tiles.push_back({col_scores[mi][c], static_cast<std::uint32_t>(mi),
                         static_cast<std::uint32_t>(c), height});
        total_elements += static_cast<double>(height);
      }
    }
    std::sort(tiles.begin(), tiles.end(),
              [](const ColTile& a, const ColTile& b) { return a.score < b.score; });
    double budget = col_fraction * total_elements;
    for (std::size_t mi : members) {
      if (col_keep[mi].empty()) col_keep[mi].assign(col_scores[mi].size(), 1);
    }
    for (const auto& tile : tiles) {
      if (budget < static_cast<double>(tile.elements) * 0.5) break;
      budget -= static_cast<double>(tile.elements);
      col_keep[tile.matrix][tile.index] = 0;
    }
  };
  if (global_rank) {
    std::vector<std::size_t> all(num);
    std::iota(all.begin(), all.end(), std::size_t{0});
    prune_column_group(all);
  } else {
    for (std::size_t mi = 0; mi < num; ++mi) prune_column_group({mi});
  }
  // Guard: a matrix must keep at least one column.
  for (std::size_t mi = 0; mi < num; ++mi) {
    auto& keep = col_keep[mi];
    if (keep.empty()) keep.assign(col_scores[mi].size(), 1);
    if (std::find(keep.begin(), keep.end(), std::uint8_t{1}) == keep.end()) {
      const auto best = static_cast<std::size_t>(
          std::max_element(col_scores[mi].begin(), col_scores[mi].end()) -
          col_scores[mi].begin());
      keep[best] = 1;
    }
  }

  // ---- Re-organization (line 13).
  std::vector<TilePattern> patterns;
  patterns.reserve(num);
  for (std::size_t mi = 0; mi < num; ++mi) {
    patterns.push_back(reorganize_columns(weights[mi]->rows(),
                                          weights[mi]->cols(), g, col_keep[mi]));
  }

  // ---- Row pruning (tiles of shape 1 x G, lines 14-20).
  struct RowRef {
    std::uint32_t tile;
    std::uint32_t row;
  };
  std::vector<std::vector<RowRef>> row_refs(num);
  std::vector<std::vector<float>> row_scores(num);   // width-normalised mean
  std::vector<std::vector<std::size_t>> row_sizes(num);  // elements per tile
  for (std::size_t mi = 0; mi < num; ++mi) {
    const MatrixF& s = scores[mi];
    for (std::size_t ti = 0; ti < patterns[mi].tiles.size(); ++ti) {
      const auto& tile = patterns[mi].tiles[ti];
      for (std::size_t r = 0; r < patterns[mi].k; ++r) {
        float sum = 0.0f;
        for (auto c : tile.out_cols) sum += s(r, static_cast<std::size_t>(c));
        row_refs[mi].push_back(
            {static_cast<std::uint32_t>(ti), static_cast<std::uint32_t>(r)});
        // Mean (not sum) so the narrower final tile competes fairly with
        // full-width tiles in the global ranking.
        row_scores[mi].push_back(sum / static_cast<float>(tile.width()));
        row_sizes[mi].push_back(tile.width());
      }
    }
  }

  auto prune_row_group = [&](const std::vector<std::size_t>& members) {
    struct RowTile {
      float score;
      std::uint32_t matrix;
      std::uint32_t index;
      std::uint32_t elements;
    };
    std::vector<RowTile> tiles;
    double total_elements = 0.0;
    for (std::size_t mi : members) {
      for (std::size_t i = 0; i < row_scores[mi].size(); ++i) {
        tiles.push_back({row_scores[mi][i], static_cast<std::uint32_t>(mi),
                         static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(row_sizes[mi][i])});
        total_elements += static_cast<double>(row_sizes[mi][i]);
      }
    }
    // Prune lowest-scoring row tiles until the removed *elements* meet
    // the budget (tiles have unequal widths, so a count quota would
    // land off-target).
    std::sort(tiles.begin(), tiles.end(),
              [](const RowTile& a, const RowTile& b) { return a.score < b.score; });
    double budget = row_fraction * total_elements;
    for (const auto& tile : tiles) {
      if (budget < static_cast<double>(tile.elements) * 0.5) break;
      budget -= static_cast<double>(tile.elements);
      const auto& ref = row_refs[tile.matrix][tile.index];
      patterns[tile.matrix].tiles[ref.tile].row_keep[ref.row] = 0;
    }
  };
  if (global_rank) {
    std::vector<std::size_t> all(num);
    std::iota(all.begin(), all.end(), std::size_t{0});
    prune_row_group(all);
  } else {
    for (std::size_t mi = 0; mi < num; ++mi) prune_row_group({mi});
  }
  return patterns;
}

/// Algorithm 2: classify columns by their sparsity in the EW solution at
/// the final target.  The most-EW-sparse columns are forced to prune
/// first; the least-sparse are protected.
std::vector<std::vector<ColClass>> apriori_classes(
    const std::vector<MatrixF>& scores, double target_sparsity,
    double top_frac, double last_frac) {
  std::vector<const MatrixF*> ptrs;
  ptrs.reserve(scores.size());
  for (const auto& s : scores) ptrs.push_back(&s);
  const auto ew = ew_mask_global(ptrs, target_sparsity);

  struct ColRef {
    double sparsity;
    std::size_t matrix, col;
  };
  std::vector<ColRef> refs;
  for (std::size_t mi = 0; mi < ew.size(); ++mi) {
    const MatrixU8& mask = ew[mi];
    for (std::size_t c = 0; c < mask.cols(); ++c) {
      std::size_t kept = 0;
      for (std::size_t r = 0; r < mask.rows(); ++r) kept += mask(r, c) != 0;
      refs.push_back({1.0 - static_cast<double>(kept) /
                                static_cast<double>(mask.rows()),
                      mi, c});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const ColRef& a, const ColRef& b) {
    return a.sparsity > b.sparsity;
  });

  std::vector<std::vector<ColClass>> classes(scores.size());
  for (std::size_t mi = 0; mi < scores.size(); ++mi)
    classes[mi].assign(scores[mi].cols(), ColClass::kNormal);
  const auto top_n =
      static_cast<std::size_t>(top_frac * static_cast<double>(refs.size()));
  const auto last_n =
      static_cast<std::size_t>(last_frac * static_cast<double>(refs.size()));
  for (std::size_t i = 0; i < top_n && i < refs.size(); ++i)
    classes[refs[i].matrix][refs[i].col] = ColClass::kForcePrune;
  for (std::size_t i = 0; i < last_n && i < refs.size(); ++i) {
    const auto& ref = refs[refs.size() - 1 - i];
    classes[ref.matrix][ref.col] = ColClass::kProtect;
  }
  return classes;
}

MatrixF default_scores(const MatrixF& weights) {
  return magnitude_scores(weights);
}

}  // namespace

std::vector<TilePattern> tw_prune(std::vector<MatrixF*> weights,
                                  const TwPruneOptions& options,
                                  const ScoreFn& score_fn,
                                  const FineTuneFn& fine_tune) {
  assert(!weights.empty());
  const int stages = std::max(1, options.stages);
  std::vector<TilePattern> patterns;

  for (int stage = 1; stage <= stages; ++stage) {
    const double st = stage_target(options.target_sparsity, stage, stages);
    // Split the combined stage target between the column and row pass so
    // that (1 - qc) * (1 - qr) = 1 - st.
    const double keep = 1.0 - st;
    const double qc = 1.0 - std::pow(keep, options.column_split);
    const double qr = 1.0 - std::pow(keep, 1.0 - options.column_split);

    std::vector<MatrixF> scores;
    scores.reserve(weights.size());
    for (std::size_t mi = 0; mi < weights.size(); ++mi) {
      scores.push_back(score_fn ? score_fn(*weights[mi], mi)
                                : default_scores(*weights[mi]));
    }

    std::vector<std::vector<ColClass>> classes;
    if (options.apriori) {
      classes = apriori_classes(scores, options.target_sparsity,
                                options.apriori_top_frac,
                                options.apriori_last_frac);
    }

    patterns = build_patterns(weights, scores, qc, qr, options.g,
                              options.global_rank, classes);

    std::vector<MatrixU8> masks;
    masks.reserve(weights.size());
    for (std::size_t mi = 0; mi < weights.size(); ++mi) {
      apply_pattern(patterns[mi], *weights[mi]);
      masks.push_back(pattern_to_mask(patterns[mi]));
    }
    if (fine_tune) fine_tune(masks);
  }
  return patterns;
}

TilePattern tw_prune_single(MatrixF& weights, const TwPruneOptions& options,
                            const ScoreFn& score_fn,
                            const FineTuneFn& fine_tune) {
  auto patterns = tw_prune({&weights}, options, score_fn, fine_tune);
  return std::move(patterns[0]);
}

TilePattern tw_pattern_from_scores(const MatrixF& scores, double sparsity,
                                   std::size_t g, double column_split) {
  const double keep = 1.0 - std::clamp(sparsity, 0.0, 1.0);
  const double qc = 1.0 - std::pow(keep, column_split);
  const double qr = 1.0 - std::pow(keep, 1.0 - column_split);
  MatrixF weights_shape(scores.rows(), scores.cols());
  std::vector<MatrixF*> fake{&weights_shape};
  std::vector<MatrixF> score_vec;
  score_vec.push_back(scores);  // copy; build_patterns reads only
  auto patterns = build_patterns(fake, score_vec, qc, qr, g,
                                 /*global_rank=*/true, {});
  return std::move(patterns[0]);
}

}  // namespace tilesparse
