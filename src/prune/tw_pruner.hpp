#pragma once
// The multi-stage TW pruning algorithm — paper Algorithm 1, plus the
// apriori tuning of Algorithm 2.
//
// Per stage (a pruning-tuning iteration):
//  1. the stage target s_t is gradually increased toward S;
//  2. column pruning: every column is a (K x 1) tile; scores are summed
//     per column, ranked *globally across all weight matrices* (line 7 —
//     this is what captures the uneven cross-layer sparsity of Fig. 5),
//     optionally adjusted by the EW-prior apriori tuning, and the lowest
//     columns are pruned;
//  3. the surviving columns are re-organized into G-wide tiles;
//  4. row pruning: every (1 x G) row segment of a tile is a tile; summed
//     scores are ranked globally and the lowest segments pruned;
//  5. pruned weights are zeroed and the fine-tune callback runs.
//
// Deviation from the paper's pseudocode, documented here: Algorithm 1
// applies Percentile(tileScore, s_t) to both the column and the row
// pass, which would overshoot the combined sparsity (1-(1-s)^2 > s).
// We split the stage target so the *combined* sparsity equals s_t:
// with split x, columns get 1-(1-s_t)^x and rows 1-(1-s_t)^(1-x).

#include <cstddef>
#include <functional>
#include <vector>

#include "core/tile_pattern.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

struct TwPruneOptions {
  double target_sparsity = 0.75;  ///< final S
  std::size_t g = 128;            ///< tile granularity G
  int stages = 5;                 ///< pruning-tuning iterations to reach S
  /// Fraction of each stage's (log-space) sparsity assigned to column
  /// pruning; 0.5 splits evenly, 0 disables column pruning, 1 disables
  /// row pruning.
  double column_split = 0.5;
  /// One global tile ranking across matrices (Algorithm 1) versus an
  /// independent per-matrix budget (the ablation in bench/ablation_opts).
  bool global_rank = true;
  /// Enable Algorithm 2: EW results at target sparsity pre-force the
  /// top-n most-EW-sparse columns to prune and protect the last-n.
  bool apriori = false;
  double apriori_top_frac = 0.10;
  double apriori_last_frac = 0.05;
};

/// Recomputes importance scores for the current weights of matrix `i`.
/// Defaults to magnitude when not provided.  A trainer can supply Taylor
/// scores (|w * grad|) from a calibration batch.
using ScoreFn = std::function<MatrixF(const MatrixF& weights, std::size_t index)>;

/// Runs after each stage's masks are applied; typical implementation
/// fine-tunes the model for a few epochs with the masks held fixed and
/// updates the weight matrices in place.
using FineTuneFn = std::function<void(const std::vector<MatrixU8>& masks)>;

/// Prunes `weights` (modified in place: pruned entries zeroed) to the
/// target TW sparsity.  Returns one TilePattern per matrix.
std::vector<TilePattern> tw_prune(std::vector<MatrixF*> weights,
                                  const TwPruneOptions& options,
                                  const ScoreFn& score_fn = {},
                                  const FineTuneFn& fine_tune = {});

/// Single-matrix convenience wrapper.
TilePattern tw_prune_single(MatrixF& weights, const TwPruneOptions& options,
                            const ScoreFn& score_fn = {},
                            const FineTuneFn& fine_tune = {});

/// Builds a TW pattern directly from a fixed score matrix without
/// multi-stage refinement or fine-tuning (used by latency-only
/// experiments where weights are synthetic).
TilePattern tw_pattern_from_scores(const MatrixF& scores, double sparsity,
                                   std::size_t g, double column_split = 0.5);

}  // namespace tilesparse
