#pragma once
// Baseline sparsity patterns (paper Sec. III-A, Fig. 2):
//  * EW — element-wise / unstructured: global score ranking;
//  * VW — vector-wise: fixed prune count inside every v-element column
//    vector (Zhu et al., vector size 16 in the paper's evaluation);
//  * BW — block-wise: b x b blocks pruned whole (Narang et al.,
//    32 x 32 in the paper's evaluation).
//
// All functions produce {0,1} element masks; 1 = keep.

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// EW over a single matrix: keeps the top (1 - sparsity) fraction by score.
MatrixU8 ew_mask(const MatrixF& scores, double sparsity);

/// EW with one global ranking across several matrices — this is what
/// exposes the uneven per-layer sparsity distribution of paper Fig. 5.
std::vector<MatrixU8> ew_mask_global(const std::vector<const MatrixF*>& scores,
                                     double sparsity);

/// VW: within every vector of `v` consecutive elements of a column,
/// prunes round(v * sparsity) elements with the lowest scores.  Every
/// vector ends up with the same sparsity — the rigidity the paper
/// criticises.  Rows not divisible by v form a shorter final vector.
MatrixU8 vw_mask(const MatrixF& scores, double sparsity, std::size_t v = 16);

/// BW over a single matrix: ranks b x b blocks by summed score, prunes
/// the lowest `sparsity` fraction.  Shape must divide by b.
MatrixU8 bw_mask(const MatrixF& scores, double sparsity, std::size_t block = 32);

/// BW with a global block ranking across matrices.
std::vector<MatrixU8> bw_mask_global(const std::vector<const MatrixF*>& scores,
                                     double sparsity, std::size_t block = 32);

}  // namespace tilesparse
