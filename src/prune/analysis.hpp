#pragma once
// Sparsity-structure analysis used by the motivation/characterisation
// figures (paper Figs. 5, 6, 13).

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// Overall sparsity of each mask (fraction of zeros) — Fig. 5's y-axis.
std::vector<double> mask_sparsities(const std::vector<MatrixU8>& masks);

/// Per-column sparsity of one mask.
std::vector<float> column_sparsities(const MatrixU8& mask);

/// Fraction of zeros inside every (unit_rows x unit_cols) unit of the
/// mask, row-major over units, partial edge units skipped.  Feeding these
/// into an empirical CDF reproduces Fig. 6 (units: 8x8 and 32x32 blocks
/// for BW, 1x64 row vectors for TW with G=64).
std::vector<float> unit_zero_fractions(const MatrixU8& mask,
                                       std::size_t unit_rows,
                                       std::size_t unit_cols);

/// Down-samples a mask into a (grid x grid) density map: each cell is the
/// kept-fraction of its region.  Printable heatmap for Fig. 13.
MatrixF density_map(const MatrixU8& mask, std::size_t grid);

/// Renders a density map as ASCII art (darker = denser), for bench output.
std::string render_density_map(const MatrixF& map);

}  // namespace tilesparse
