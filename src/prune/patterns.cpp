#include "prune/patterns.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace tilesparse {

namespace {

/// Keeps the `keep_count` highest-scoring indices of `scores`; all masks
/// start at 1 and pruned entries are zeroed.  Rank-based (exact count)
/// rather than threshold-based so achieved sparsity is deterministic.
std::vector<std::size_t> lowest_indices(const std::vector<float>& scores,
                                        std::size_t prune_count) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  prune_count = std::min(prune_count, order.size());
  std::nth_element(order.begin(), order.begin() + prune_count, order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] < scores[b];
                   });
  order.resize(prune_count);
  return order;
}

}  // namespace

MatrixU8 ew_mask(const MatrixF& scores, double sparsity) {
  const MatrixF* p = &scores;
  return std::move(ew_mask_global({p}, sparsity)[0]);
}

std::vector<MatrixU8> ew_mask_global(const std::vector<const MatrixF*>& scores,
                                     double sparsity) {
  sparsity = std::clamp(sparsity, 0.0, 1.0);
  std::size_t total = 0;
  for (const auto* m : scores) total += m->size();

  std::vector<float> all;
  all.reserve(total);
  for (const auto* m : scores)
    all.insert(all.end(), m->flat().begin(), m->flat().end());

  const auto prune_count =
      static_cast<std::size_t>(sparsity * static_cast<double>(total) + 0.5);
  // Find the global threshold as the prune_count-th smallest score.
  std::vector<float> sorted = all;
  float threshold = -1.0f;
  if (prune_count > 0) {
    std::nth_element(sorted.begin(), sorted.begin() + (prune_count - 1),
                     sorted.end());
    threshold = sorted[prune_count - 1];
  }

  // Mask with strict-below threshold, then fix up ties to hit the exact
  // count (ties are pruned in matrix order).
  std::vector<MatrixU8> masks;
  masks.reserve(scores.size());
  std::size_t pruned = 0;
  for (const auto* m : scores) {
    MatrixU8 mask(m->rows(), m->cols());
    mask.fill(1);
    const float* s = m->data();
    for (std::size_t i = 0; i < m->size(); ++i) {
      if (s[i] < threshold) {
        mask.data()[i] = 0;
        ++pruned;
      }
    }
    masks.push_back(std::move(mask));
  }
  for (std::size_t mi = 0; mi < scores.size() && pruned < prune_count; ++mi) {
    const float* s = scores[mi]->data();
    unsigned char* k = masks[mi].data();
    for (std::size_t i = 0; i < scores[mi]->size() && pruned < prune_count; ++i) {
      if (k[i] && s[i] == threshold) {
        k[i] = 0;
        ++pruned;
      }
    }
  }
  return masks;
}

MatrixU8 vw_mask(const MatrixF& scores, double sparsity, std::size_t v) {
  if (v == 0) throw std::invalid_argument("vw_mask: v must be > 0");
  sparsity = std::clamp(sparsity, 0.0, 1.0);
  const std::size_t rows = scores.rows(), cols = scores.cols();
  MatrixU8 mask(rows, cols);
  mask.fill(1);

  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r0 = 0; r0 < rows; r0 += v) {
      const std::size_t len = std::min(v, rows - r0);
      const auto prune_count = static_cast<std::size_t>(
          sparsity * static_cast<double>(len) + 0.5);
      order.resize(len);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::nth_element(order.begin(), order.begin() + prune_count, order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return scores(r0 + a, c) < scores(r0 + b, c);
                       });
      for (std::size_t i = 0; i < prune_count; ++i) mask(r0 + order[i], c) = 0;
    }
  }
  return mask;
}

MatrixU8 bw_mask(const MatrixF& scores, double sparsity, std::size_t block) {
  const MatrixF* p = &scores;
  return std::move(bw_mask_global({p}, sparsity, block)[0]);
}

std::vector<MatrixU8> bw_mask_global(const std::vector<const MatrixF*>& scores,
                                     double sparsity, std::size_t block) {
  if (block == 0) throw std::invalid_argument("bw_mask: block must be > 0");
  sparsity = std::clamp(sparsity, 0.0, 1.0);

  struct BlockRef {
    std::size_t matrix, br, bc;
  };
  std::vector<BlockRef> refs;
  std::vector<float> block_scores;
  for (std::size_t mi = 0; mi < scores.size(); ++mi) {
    const MatrixF& s = *scores[mi];
    if (s.rows() % block != 0 || s.cols() % block != 0)
      throw std::invalid_argument("bw_mask: shape not divisible by block");
    for (std::size_t br = 0; br < s.rows() / block; ++br) {
      for (std::size_t bc = 0; bc < s.cols() / block; ++bc) {
        float sum = 0.0f;
        for (std::size_t r = 0; r < block; ++r)
          for (std::size_t c = 0; c < block; ++c)
            sum += s(br * block + r, bc * block + c);
        refs.push_back({mi, br, bc});
        block_scores.push_back(sum);
      }
    }
  }

  const auto prune_count = static_cast<std::size_t>(
      sparsity * static_cast<double>(refs.size()) + 0.5);
  const auto pruned = lowest_indices(block_scores, prune_count);

  std::vector<MatrixU8> masks;
  masks.reserve(scores.size());
  for (const auto* m : scores) {
    MatrixU8 mask(m->rows(), m->cols());
    mask.fill(1);
    masks.push_back(std::move(mask));
  }
  for (std::size_t idx : pruned) {
    const auto& ref = refs[idx];
    MatrixU8& mask = masks[ref.matrix];
    for (std::size_t r = 0; r < block; ++r)
      for (std::size_t c = 0; c < block; ++c)
        mask(ref.br * block + r, ref.bc * block + c) = 0;
  }
  return masks;
}

}  // namespace tilesparse
