#include "prune/importance.hpp"

#include <cassert>
#include <cmath>

namespace tilesparse {

MatrixF magnitude_scores(const MatrixF& weights) {
  MatrixF scores(weights.rows(), weights.cols());
  const float* w = weights.data();
  float* s = scores.data();
  for (std::size_t i = 0; i < weights.size(); ++i) s[i] = std::fabs(w[i]);
  return scores;
}

MatrixF taylor_scores(const MatrixF& weights, const MatrixF& gradients) {
  assert(weights.rows() == gradients.rows() &&
         weights.cols() == gradients.cols());
  MatrixF scores(weights.rows(), weights.cols());
  const float* w = weights.data();
  const float* g = gradients.data();
  float* s = scores.data();
  for (std::size_t i = 0; i < weights.size(); ++i) s[i] = std::fabs(w[i] * g[i]);
  return scores;
}

}  // namespace tilesparse
