#pragma once
// Importance scores for pruning (paper Sec. V, Eq. 1-3).
//
// Two estimators:
//  * magnitude:       score = |w|            (Han et al.)
//  * first-order Taylor: score = |w * dL/dw| (Molchanov et al., the one
//    the paper uses).  Requires the gradient from a training step.

#include "tensor/matrix.hpp"

namespace tilesparse {

/// score(i,j) = |w(i,j)|.
MatrixF magnitude_scores(const MatrixF& weights);

/// score(i,j) = |w(i,j) * grad(i,j)| — the incurred-loss approximation of
/// Eq. (3).  Shapes must match.
MatrixF taylor_scores(const MatrixF& weights, const MatrixF& gradients);

}  // namespace tilesparse
