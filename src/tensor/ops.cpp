#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/half.hpp"

namespace tilesparse {

void fill_normal(MatrixF& m, Rng& rng, float mean, float stddev) {
  for (float& v : m.flat()) v = rng.normal(mean, stddev);
}

void fill_uniform(MatrixF& m, Rng& rng, float lo, float hi) {
  for (float& v : m.flat()) v = rng.uniform(lo, hi);
}

void fill_kaiming(MatrixF& m, Rng& rng) {
  const float fan_in = static_cast<float>(m.rows() > 0 ? m.rows() : 1);
  fill_normal(m, rng, 0.0f, std::sqrt(2.0f / fan_in));
}

MatrixF transposed(const MatrixF& m) {
  MatrixF out(m.cols(), m.rows());
  transpose_into(m, out);
  return out;
}

void transpose_into(const MatrixF& m, MatrixF& out) {
  assert(out.rows() == m.cols() && out.cols() == m.rows());
  constexpr std::size_t kBlock = 32;  // fits two 32x32 float panels in L1
  const std::size_t rows = m.rows(), cols = m.cols();
  for (std::size_t rb = 0; rb < rows; rb += kBlock) {
    const std::size_t rend = std::min(rows, rb + kBlock);
    for (std::size_t cb = 0; cb < cols; cb += kBlock) {
      const std::size_t cend = std::min(cols, cb + kBlock);
      for (std::size_t r = rb; r < rend; ++r)
        for (std::size_t c = cb; c < cend; ++c) out(c, r) = m(r, c);
    }
  }
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  return worst;
}

double frobenius_norm(const MatrixF& m) {
  double acc = 0.0;
  for (float v : m.flat()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double sparsity(const MatrixF& m, float tol) {
  if (m.empty()) return 0.0;
  return 1.0 - static_cast<double>(count_nonzero(m, tol)) /
                   static_cast<double>(m.size());
}

std::size_t count_nonzero(const MatrixF& m, float tol) {
  std::size_t count = 0;
  for (float v : m.flat())
    if (std::fabs(v) > tol) ++count;
  return count;
}

void apply_mask(MatrixF& m, const MatrixU8& mask) {
  assert(m.rows() == mask.rows() && m.cols() == mask.cols());
  float* pm = m.data();
  const unsigned char* pk = mask.data();
  for (std::size_t i = 0; i < m.size(); ++i)
    if (!pk[i]) pm[i] = 0.0f;
}

void round_matrix_to_half(MatrixF& m) {
  for (float& v : m.flat()) v = round_to_half(v);
}

MatrixF matmul_reference(const MatrixF& a, const MatrixF& b) {
  assert(a.cols() == b.rows());
  MatrixF c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.data() + k * b.cols();
      float* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

}  // namespace tilesparse
