#pragma once
// Software IEEE-754 binary16 ("half") emulation.
//
// The paper runs all tensor-core inference in FP16 with FP32
// accumulation (Sec. VII-A).  We have no tensor cores, so the masked
// GEMM kernel in src/gemm can optionally round its inputs through this
// type to reproduce tensor-core numerics: inputs quantised to half,
// products accumulated in float.

#include <cstdint>

namespace tilesparse {

/// Round-to-nearest-even float -> binary16 bit pattern.
std::uint16_t float_to_half_bits(float value) noexcept;

/// binary16 bit pattern -> float (exact).
float half_bits_to_float(std::uint16_t bits) noexcept;

/// Value type wrapper.  Storage-only: arithmetic goes through float.
class half {
 public:
  half() = default;
  explicit half(float value) noexcept : bits_(float_to_half_bits(value)) {}

  explicit operator float() const noexcept { return half_bits_to_float(bits_); }

  std::uint16_t bits() const noexcept { return bits_; }
  static half from_bits(std::uint16_t bits) noexcept {
    half h;
    h.bits_ = bits;
    return h;
  }

  friend bool operator==(half a, half b) noexcept { return a.bits_ == b.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

/// Rounds a float through binary16 and back (the tensor-core input path).
inline float round_to_half(float value) noexcept {
  return half_bits_to_float(float_to_half_bits(value));
}

}  // namespace tilesparse
