#pragma once
// Row-major dense matrix with 64-byte-aligned storage.
//
// This is the single dense container shared by the GEMM substrate, the
// pruning algorithms and the NN layers.  It intentionally stays small:
// owning storage + shape + a few element accessors.  Algorithms live in
// free functions (tensor/ops.hpp) per Core Guidelines C.4.
//
// A Matrix either owns its storage (the default: 64-byte aligned heap
// allocation, freed on destruction) or borrows immutable storage that
// outlives it — the zero-copy path for weights resolved out of an
// mmap'd artifact (io/mmap_file.hpp).  A borrowed matrix never frees;
// copying one always deep-copies into an owning matrix, so value
// semantics are unchanged for every existing caller.  Mutating a
// borrowed matrix through the non-const accessors is undefined (the
// pages are mapped read-only); callers that need to write take a copy.

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <utility>

namespace tilesparse {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(allocate(rows * cols)) {
    for (std::size_t i = 0; i < rows_ * cols_; ++i) data_[i] = T{};
  }

  /// Non-owning view of immutable external storage (rows * cols
  /// row-major elements at `data`, which must outlive the matrix — the
  /// borrower holds a keepalive on the mapping, see exec backends).
  static Matrix borrowed(const T* data, std::size_t rows,
                         std::size_t cols) noexcept {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = const_cast<T*>(data);
    m.owns_ = false;
    return m;
  }

  Matrix(const Matrix& other) : Matrix(other.rows_, other.cols_) {
    for (std::size_t i = 0; i < rows_ * cols_; ++i) data_[i] = other.data_[i];
  }

  Matrix(Matrix&& other) noexcept
      : rows_(std::exchange(other.rows_, 0)),
        cols_(std::exchange(other.cols_, 0)),
        data_(std::exchange(other.data_, nullptr)),
        owns_(std::exchange(other.owns_, true)) {}

  Matrix& operator=(Matrix other) noexcept {
    swap(other);
    return *this;
  }

  ~Matrix() {
    if (owns_) std::free(data_);
  }

  void swap(Matrix& other) noexcept {
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    std::swap(data_, other.data_);
    std::swap(owns_, other.owns_);
  }

  /// True when this matrix views storage it does not own.
  bool borrows() const noexcept { return !owns_; }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  std::span<T> flat() noexcept { return {data_, size()}; }
  std::span<const T> flat() const noexcept { return {data_, size()}; }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Row r as a contiguous span.
  std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_ + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_ + r * cols_, cols_};
  }

  void fill(T value) noexcept {
    for (std::size_t i = 0; i < size(); ++i) data_[i] = value;
  }

 private:
  static T* allocate(std::size_t count) {
    if (count == 0) return nullptr;
    // A count whose byte size wraps std::size_t would allocate a tiny
    // block and overflow the heap on first fill.
    if (count > (std::numeric_limits<std::size_t>::max() - 63) / sizeof(T))
      throw std::bad_alloc{};
    // 64-byte alignment: cache-line aligned rows help the packed GEMM
    // micro-kernel vectorise without peel loops.
    const std::size_t bytes = ((count * sizeof(T) + 63) / 64) * 64;
    void* p = std::aligned_alloc(64, bytes);
    if (!p) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  T* data_ = nullptr;
  bool owns_ = true;
};

using MatrixF = Matrix<float>;
using MatrixU8 = Matrix<unsigned char>;

}  // namespace tilesparse
