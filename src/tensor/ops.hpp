#pragma once
// Free-function algorithms over Matrix<float>: init, transpose,
// comparisons, sparsity accounting, FP16 round-trips.

#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace tilesparse {

/// Fills with N(mean, stddev) samples.
void fill_normal(MatrixF& m, Rng& rng, float mean = 0.0f, float stddev = 1.0f);

/// Fills with U[lo, hi) samples.
void fill_uniform(MatrixF& m, Rng& rng, float lo = 0.0f, float hi = 1.0f);

/// Kaiming/He-style init: N(0, sqrt(2 / fan_in)).  fan_in = m.rows()
/// (weight matrices here are stored K x N: input dim x output dim).
void fill_kaiming(MatrixF& m, Rng& rng);

/// Out-of-place transpose (returns a cols x rows matrix).
MatrixF transposed(const MatrixF& m);

/// Cache-blocked in-place-style transpose into a preallocated output.
/// `out` must be m.cols() x m.rows().
void transpose_into(const MatrixF& m, MatrixF& out);

/// Max |a - b| over all elements; matrices must have equal shape.
float max_abs_diff(const MatrixF& a, const MatrixF& b);

/// Frobenius norm.
double frobenius_norm(const MatrixF& m);

/// Fraction of elements with |x| <= tol (the "sparsity" of the matrix).
double sparsity(const MatrixF& m, float tol = 0.0f);

/// Number of elements with |x| > tol.
std::size_t count_nonzero(const MatrixF& m, float tol = 0.0f);

/// Element-wise multiply by a {0,1} mask of identical shape.
void apply_mask(MatrixF& m, const MatrixU8& mask);

/// Adds a 1 x N bias row to every row of `m` (the y = x W + b epilogue).
/// ONE definition shared by the layer forward, the graph GEMM node and
/// the scheduler's shard join: the scheduler's bit-identity guarantee
/// requires all three to apply the bias with the same arithmetic.
inline void add_row_bias(MatrixF& m, const MatrixF& bias) {
  const float* b = bias.data();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) row[j] += b[j];
  }
}

/// Quantise every element through IEEE binary16 (tensor-core input path).
void round_matrix_to_half(MatrixF& m);

/// C = A * B reference (naive triple loop, no blocking).  For testing the
/// optimised kernels only; O(M*N*K) with no parallelism.
MatrixF matmul_reference(const MatrixF& a, const MatrixF& b);

}  // namespace tilesparse
