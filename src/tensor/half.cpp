#include "tensor/half.hpp"

#include <bit>
#include <cstring>

namespace tilesparse {

std::uint16_t float_to_half_bits(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exponent = static_cast<std::int32_t>((f >> 23) & 0xffu) - 127 + 15;
  std::uint32_t mantissa = f & 0x007fffffu;

  if (((f >> 23) & 0xffu) == 0xffu) {
    // Inf / NaN: preserve NaN-ness with a quiet bit.
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mantissa ? 0x0200u : 0u));
  }
  if (exponent >= 0x1f) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x00800000u;  // implicit leading 1
    const int shift = 14 - exponent;
    // Round to nearest even.
    const std::uint32_t rounded =
        (mantissa >> shift) +
        (((mantissa >> (shift - 1)) & 1u) &
         (((mantissa & ((1u << (shift - 1)) - 1u)) != 0u) | ((mantissa >> shift) & 1u)));
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normalised: round mantissa from 23 to 10 bits, nearest even.
  std::uint32_t half_mantissa = mantissa >> 13;
  const std::uint32_t round_bit = (mantissa >> 12) & 1u;
  const std::uint32_t sticky = (mantissa & 0x0fffu) != 0u;
  half_mantissa += round_bit & (sticky | (half_mantissa & 1u));
  std::uint32_t result =
      sign | (static_cast<std::uint32_t>(exponent) << 10) | (half_mantissa & 0x03ffu);
  if (half_mantissa == 0x0400u) result = sign | ((static_cast<std::uint32_t>(exponent) + 1) << 10);
  if (((result >> 10) & 0x1fu) >= 0x1fu) return static_cast<std::uint16_t>(sign | 0x7c00u);
  return static_cast<std::uint16_t>(result);
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1fu;
  std::uint32_t mantissa = bits & 0x03ffu;

  std::uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x03ffu) << 13);
    }
  } else if (exponent == 0x1f) {
    f = sign | 0x7f800000u | (mantissa << 13);  // Inf / NaN
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

}  // namespace tilesparse
