#include "tensor/matrix.hpp"

namespace tilesparse {
// Explicit instantiations keep template bloat out of every TU that only
// needs the common element types.
template class Matrix<float>;
template class Matrix<double>;
template class Matrix<unsigned char>;
template class Matrix<int>;
}  // namespace tilesparse
