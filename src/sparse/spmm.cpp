#include "sparse/spmm.hpp"

#include <algorithm>

#include "gemm/micro_kernel.hpp"
#include "util/guards.hpp"

namespace tilesparse {

namespace {
/// Default strip width: a kNr x 256 fp32 fragment is 16 KiB, half of a
/// typical 32 KiB L1D, leaving room for the activation lanes streaming
/// through.
constexpr std::size_t kDefaultStripCols = 256;
}  // namespace

MatrixF csr_spmm(const Csr& a, const MatrixF& b) {
  TS_CHECK(a.cols == b.rows(), "csr_spmm: A cols must equal B rows");
  MatrixF c(a.rows, b.cols());
  const std::size_t n = b.cols();
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t r = 0; r < a.rows; ++r) {
    float* crow = c.data() + r * n;
    for (auto i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto k = static_cast<std::size_t>(a.col_idx[idx]);
      const float v = a.values[idx];
      const float* brow = b.data() + k * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

MatrixF dense_times_csr(const MatrixF& a, const Csr& b) {
  MatrixF c(a.rows(), b.cols);
  dense_times_csr_accumulate(a, b, c);
  return c;
}

void dense_times_csr_accumulate(const MatrixF& a, const Csr& b, MatrixF& c) {
  TS_CHECK(a.cols() == b.rows, "dense_times_csr: A cols must equal B rows");
  TS_CHECK(c.rows() == a.rows() && c.cols() == b.cols,
           "dense_times_csr: C shape mismatch");
  const std::size_t m = a.rows();
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * a.cols();
    float* crow = c.data() + i * c.cols();
    for (std::size_t k = 0; k < b.rows; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      for (auto p = b.row_ptr[k]; p < b.row_ptr[k + 1]; ++p) {
        const auto idx = static_cast<std::size_t>(p);
        crow[b.col_idx[idx]] += av * b.values[idx];
      }
    }
  }
}

std::size_t CsrPanels::nnz() const noexcept {
  std::size_t total = 0;
  for (const Strip& s : strips) total += s.val.size();
  return total;
}

CsrPanels build_csr_panels(const CsrRef& csr, std::size_t strip_cols) {
  if (strip_cols == 0) strip_cols = kDefaultStripCols;
  CsrPanels panels;
  panels.rows = csr.rows;
  panels.cols = csr.cols;
  panels.strip_cols = strip_cols;
  const std::size_t nstrips =
      csr.cols == 0 ? 0 : (csr.cols + strip_cols - 1) / strip_cols;
  panels.strips.resize(nstrips);
  for (std::size_t s = 0; s < nstrips; ++s) {
    panels.strips[s].n0 = s * strip_cols;
    panels.strips[s].n1 = std::min(csr.cols, (s + 1) * strip_cols);
  }
  // Column indices ascend within a row, so a single pass distributes
  // every nonzero and keeps each strip's row list ascending.
  for (std::size_t r = 0; r < csr.rows; ++r) {
    for (auto p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      const auto col = static_cast<std::size_t>(csr.col_idx[idx]);
      CsrPanels::Strip& strip = panels.strips[col / strip_cols];
      if (strip.row_idx.empty() ||
          strip.row_idx.back() != static_cast<std::int32_t>(r)) {
        strip.row_idx.push_back(static_cast<std::int32_t>(r));
        strip.row_ptr.push_back(static_cast<std::int64_t>(strip.val.size()));
      }
      strip.col.push_back(static_cast<std::int32_t>(col - strip.n0));
      strip.val.push_back(csr.values[idx]);
    }
  }
  for (CsrPanels::Strip& strip : panels.strips)
    strip.row_ptr.push_back(static_cast<std::int64_t>(strip.val.size()));
  return panels;
}

void csr_panels_spmm_accumulate(const MatrixF& a, const CsrPanels& b,
                                MatrixF& c) {
  TS_CHECK(a.cols() == b.rows, "csr_panels_spmm: A cols must equal B rows");
  TS_CHECK(c.rows() == a.rows() && c.cols() == b.cols,
           "csr_panels_spmm: C shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t depth = b.rows;
  if (m == 0 || b.cols == 0) return;
  const std::size_t mblocks = (m + kNr - 1) / kNr;
#pragma omp parallel for schedule(dynamic)
  for (std::size_t mb = 0; mb < mblocks; ++mb) {
    GemmScratch& scratch = thread_gemm_scratch();
    const std::size_t i0 = mb * kNr;
    const std::size_t rows = std::min(kNr, m - i0);
    scratch.b_f32.resize(depth * kNr);
    float* a_panel = scratch.b_f32.data();
    pack_at_panel_f32(a.data() + i0 * a.cols(), a.cols(), rows, depth,
                      a_panel);
    scratch.acc_f32.resize(b.strip_cols * kNr);
    float* frag = scratch.acc_f32.data();
    for (const CsrPanels::Strip& strip : b.strips) {
      if (strip.row_idx.empty()) continue;
      const std::size_t width = strip.n1 - strip.n0;
      TS_ASSERT(width <= b.strip_cols && strip.n1 <= b.cols);
      std::fill(frag, frag + width * kNr, 0.0f);
      spmm_strip_f32(a_panel, strip.row_idx.data(), strip.row_ptr.data(),
                     strip.row_idx.size(), strip.col.data(), strip.val.data(),
                     frag);
      for (std::size_t r = 0; r < rows; ++r) {
        float* crow = c.data() + (i0 + r) * c.cols() + strip.n0;
        const float* f = frag + r;
        for (std::size_t j = 0; j < width; ++j) crow[j] += f[j * kNr];
      }
    }
  }
}

}  // namespace tilesparse
