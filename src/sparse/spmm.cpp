#include "sparse/spmm.hpp"

#include <cassert>

namespace tilesparse {

MatrixF csr_spmm(const Csr& a, const MatrixF& b) {
  assert(a.cols == b.rows());
  MatrixF c(a.rows, b.cols());
  const std::size_t n = b.cols();
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t r = 0; r < a.rows; ++r) {
    float* crow = c.data() + r * n;
    for (auto i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto k = static_cast<std::size_t>(a.col_idx[idx]);
      const float v = a.values[idx];
      const float* brow = b.data() + k * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

MatrixF dense_times_csr(const MatrixF& a, const Csr& b) {
  MatrixF c(a.rows(), b.cols);
  dense_times_csr_accumulate(a, b, c);
  return c;
}

void dense_times_csr_accumulate(const MatrixF& a, const Csr& b, MatrixF& c) {
  assert(a.cols() == b.rows);
  assert(c.rows() == a.rows() && c.cols() == b.cols);
  const std::size_t m = a.rows();
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * a.cols();
    float* crow = c.data() + i * c.cols();
    for (std::size_t k = 0; k < b.rows; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      for (auto p = b.row_ptr[k]; p < b.row_ptr[k + 1]; ++p) {
        const auto idx = static_cast<std::size_t>(p);
        crow[b.col_idx[idx]] += av * b.values[idx];
      }
    }
  }
}

}  // namespace tilesparse
