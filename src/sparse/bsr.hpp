#pragma once
// Block Sparse Row storage — the format behind the BW baseline
// (BlockSparse / torch-blocksparse in the paper).  Non-zero blocks are
// dense b x b panels, so the BW GEMM runs dense block GEMMs and is
// tensor-core friendly; its weakness (paper Fig. 9) is the coarse
// pruning granularity.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

struct Bsr {
  std::size_t rows = 0;          ///< element rows
  std::size_t cols = 0;          ///< element cols
  std::size_t block = 0;         ///< block edge length b
  std::vector<std::int64_t> block_row_ptr;  ///< size rows/b + 1
  std::vector<std::int32_t> block_col_idx;  ///< per stored block
  std::vector<float> values;     ///< blocks back-to-back, row-major inside

  std::size_t block_rows() const noexcept { return block ? rows / block : 0; }
  std::size_t block_cols() const noexcept { return block ? cols / block : 0; }
  std::size_t stored_blocks() const noexcept { return block_col_idx.size(); }
  /// Fraction of blocks that are stored (1 - block sparsity).
  double block_density() const noexcept {
    const double total =
        static_cast<double>(block_rows()) * static_cast<double>(block_cols());
    return total > 0 ? static_cast<double>(stored_blocks()) / total : 0.0;
  }
};

/// Builds BSR from dense; a block is stored iff it contains any
/// |x| > tol.  rows and cols must be multiples of `block`.
Bsr bsr_from_dense(const MatrixF& dense, std::size_t block, float tol = 0.0f);

/// Expands back to dense.
MatrixF bsr_to_dense(const Bsr& m);

/// C += A(M x K dense) * B(K x N, this BSR).  Each stored block runs
/// as a register-tiled micro-GEMM on pre-packed panels; parallel over
/// 6-row output slabs (deterministic — each C row has one owner).
void bsr_gemm_accumulate(const MatrixF& a, const Bsr& b, MatrixF& c);

}  // namespace tilesparse
