#pragma once
// Compressed Sparse Row storage — the format cuSparse consumes for the
// EW/VW baselines in the paper's efficiency analysis (Sec. III-B).

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// Non-owning view of a CSR matrix — the shape every CSR kernel
/// actually consumes.  The arrays may live in an owning Csr or be
/// borrowed straight out of an mmap'd artifact (exec/weight_storage);
/// the viewer guarantees their lifetime.
struct CsrRef {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::span<const std::int64_t> row_ptr;  ///< size rows + 1
  std::span<const std::int32_t> col_idx;  ///< size nnz, ascending in a row
  std::span<const float> values;          ///< size nnz

  std::size_t nnz() const noexcept { return values.size(); }
};

struct Csr {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int64_t> row_ptr;   ///< size rows + 1
  std::vector<std::int32_t> col_idx;   ///< size nnz, ascending within a row
  std::vector<float> values;           ///< size nnz

  std::size_t nnz() const noexcept { return values.size(); }
  double density() const noexcept {
    const double total = static_cast<double>(rows) * static_cast<double>(cols);
    return total > 0 ? static_cast<double>(nnz()) / total : 0.0;
  }
  CsrRef ref() const noexcept { return {rows, cols, row_ptr, col_idx, values}; }
};

/// Builds CSR from a dense matrix, dropping |x| <= tol.
Csr csr_from_dense(const MatrixF& dense, float tol = 0.0f);

/// Expands back to dense (exact inverse of csr_from_dense up to dropped zeros).
MatrixF csr_to_dense(const CsrRef& m);
inline MatrixF csr_to_dense(const Csr& m) { return csr_to_dense(m.ref()); }

/// Storage footprint in bytes (values + indices + pointers).
std::size_t csr_bytes(const CsrRef& m) noexcept;
inline std::size_t csr_bytes(const Csr& m) noexcept {
  return csr_bytes(m.ref());
}

}  // namespace tilesparse
