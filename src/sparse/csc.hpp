#pragma once
// Compressed Sparse Column storage — used by the hybrid TEW pattern:
// the paper stores the restored element-wise remainder of each tile in
// CSC format (Sec. IV-A, Fig. 4-4) and executes it with a separate
// sparse GEMM on the CUDA cores.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

struct Csc {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int64_t> col_ptr;  ///< size cols + 1
  std::vector<std::int32_t> row_idx;  ///< size nnz, ascending within a column
  std::vector<float> values;          ///< size nnz

  std::size_t nnz() const noexcept { return values.size(); }
};

/// Builds CSC from a dense matrix, dropping |x| <= tol.
Csc csc_from_dense(const MatrixF& dense, float tol = 0.0f);

/// Expands back to dense.
MatrixF csc_to_dense(const Csc& m);

/// C += A(MxK dense) * B(KxN, this CSC).  Column-parallel.
void csc_gemm_accumulate(const MatrixF& a, const Csc& b, MatrixF& c);

/// Column slice [n0, n1) as its own CSC.  Columns are independent in
/// the kernel above, so executing the slice is bit-identical to the
/// same columns of the whole matrix (wide-N sharding support).
Csc slice_csc_cols(const Csc& m, std::size_t n0, std::size_t n1);

}  // namespace tilesparse
