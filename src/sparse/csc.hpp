#pragma once
// Compressed Sparse Column storage — used by the hybrid TEW pattern:
// the paper stores the restored element-wise remainder of each tile in
// CSC format (Sec. IV-A, Fig. 4-4) and executes it with a separate
// sparse GEMM on the CUDA cores.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

/// Non-owning view of a CSC matrix — what the kernels consume.  The
/// arrays may be owned (Csc) or borrowed from an mmap'd artifact; the
/// viewer guarantees their lifetime.
struct CscRef {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::span<const std::int64_t> col_ptr;  ///< size cols + 1
  std::span<const std::int32_t> row_idx;  ///< size nnz, ascending in a column
  std::span<const float> values;          ///< size nnz

  std::size_t nnz() const noexcept { return values.size(); }
};

struct Csc {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int64_t> col_ptr;  ///< size cols + 1
  std::vector<std::int32_t> row_idx;  ///< size nnz, ascending within a column
  std::vector<float> values;          ///< size nnz

  std::size_t nnz() const noexcept { return values.size(); }
  CscRef ref() const noexcept { return {rows, cols, col_ptr, row_idx, values}; }
};

/// Builds CSC from a dense matrix, dropping |x| <= tol.
Csc csc_from_dense(const MatrixF& dense, float tol = 0.0f);

/// Expands back to dense.
MatrixF csc_to_dense(const CscRef& m);
inline MatrixF csc_to_dense(const Csc& m) { return csc_to_dense(m.ref()); }

/// C += A(MxK dense) * B(KxN, this CSC).  Column-parallel.
void csc_gemm_accumulate(const MatrixF& a, const CscRef& b, MatrixF& c);
inline void csc_gemm_accumulate(const MatrixF& a, const Csc& b, MatrixF& c) {
  csc_gemm_accumulate(a, b.ref(), c);
}

/// Column slice [n0, n1) as its own (owning) CSC.  Columns are
/// independent in the kernel above, so executing the slice is
/// bit-identical to the same columns of the whole matrix (wide-N
/// sharding support).
Csc slice_csc_cols(const CscRef& m, std::size_t n0, std::size_t n1);
inline Csc slice_csc_cols(const Csc& m, std::size_t n0, std::size_t n1) {
  return slice_csc_cols(m.ref(), n0, n1);
}

}  // namespace tilesparse
