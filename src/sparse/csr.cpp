#include "sparse/csr.hpp"

#include <cmath>

namespace tilesparse {

Csr csr_from_dense(const MatrixF& dense, float tol) {
  Csr out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.row_ptr.reserve(out.rows + 1);
  out.row_ptr.push_back(0);
  for (std::size_t r = 0; r < out.rows; ++r) {
    for (std::size_t c = 0; c < out.cols; ++c) {
      const float v = dense(r, c);
      if (std::fabs(v) > tol) {
        out.col_idx.push_back(static_cast<std::int32_t>(c));
        out.values.push_back(v);
      }
    }
    out.row_ptr.push_back(static_cast<std::int64_t>(out.values.size()));
  }
  return out;
}

MatrixF csr_to_dense(const CsrRef& m) {
  MatrixF dense(m.rows, m.cols);
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (auto i = m.row_ptr[r]; i < m.row_ptr[r + 1]; ++i) {
      dense(r, static_cast<std::size_t>(m.col_idx[static_cast<std::size_t>(i)])) =
          m.values[static_cast<std::size_t>(i)];
    }
  }
  return dense;
}

std::size_t csr_bytes(const CsrRef& m) noexcept {
  return m.values.size() * sizeof(float) +
         m.col_idx.size() * sizeof(std::int32_t) +
         m.row_ptr.size() * sizeof(std::int64_t);
}

}  // namespace tilesparse
