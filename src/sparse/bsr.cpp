#include "sparse/bsr.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "gemm/micro_kernel.hpp"

namespace tilesparse {

Bsr bsr_from_dense(const MatrixF& dense, std::size_t block, float tol) {
  if (block == 0 || dense.rows() % block != 0 || dense.cols() % block != 0) {
    throw std::invalid_argument("bsr_from_dense: shape not divisible by block");
  }
  Bsr out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.block = block;
  const std::size_t brows = out.block_rows(), bcols = out.block_cols();
  out.block_row_ptr.reserve(brows + 1);
  out.block_row_ptr.push_back(0);
  for (std::size_t br = 0; br < brows; ++br) {
    for (std::size_t bc = 0; bc < bcols; ++bc) {
      bool any = false;
      for (std::size_t r = 0; r < block && !any; ++r)
        for (std::size_t c = 0; c < block; ++c)
          if (std::fabs(dense(br * block + r, bc * block + c)) > tol) {
            any = true;
            break;
          }
      if (!any) continue;
      out.block_col_idx.push_back(static_cast<std::int32_t>(bc));
      for (std::size_t r = 0; r < block; ++r)
        for (std::size_t c = 0; c < block; ++c)
          out.values.push_back(dense(br * block + r, bc * block + c));
    }
    out.block_row_ptr.push_back(static_cast<std::int64_t>(out.block_col_idx.size()));
  }
  return out;
}

MatrixF bsr_to_dense(const Bsr& m) {
  MatrixF dense(m.rows, m.cols);
  const std::size_t b = m.block;
  for (std::size_t br = 0; br < m.block_rows(); ++br) {
    for (auto i = m.block_row_ptr[br]; i < m.block_row_ptr[br + 1]; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto bc = static_cast<std::size_t>(m.block_col_idx[idx]);
      const float* blk = m.values.data() + idx * b * b;
      for (std::size_t r = 0; r < b; ++r)
        for (std::size_t c = 0; c < b; ++c)
          dense(br * b + r, bc * b + c) = blk[r * b + c];
    }
  }
  return dense;
}

void bsr_gemm_accumulate(const MatrixF& a, const Bsr& b, MatrixF& c) {
  assert(a.cols() == b.rows);
  assert(c.rows() == a.rows() && c.cols() == b.cols);
  const std::size_t blk = b.block;
  const std::size_t m = a.rows();
  if (m == 0 || b.stored_blocks() == 0) return;
  // Every stored block runs as a dense register-tiled micro-GEMM: B
  // blocks are packed once into zero-padded kNr-wide panels, then each
  // 6-row A slab streams through the block row's panels accumulating
  // straight into C (block columns are contiguous, so no scatter).
  const std::size_t strips = (blk + kNr - 1) / kNr;
  const std::size_t panel_floats = strips * blk * kNr;
  std::vector<float> panels(b.stored_blocks() * panel_floats);
  for (std::size_t idx = 0; idx < b.stored_blocks(); ++idx) {
    const float* blkvals = b.values.data() + idx * blk * blk;
    float* base = panels.data() + idx * panel_floats;
    for (std::size_t s = 0; s < strips; ++s)
      pack_b_panel_f32(blkvals + s * kNr, blk, blk,
                       std::min(kNr, blk - s * kNr), base + s * blk * kNr);
  }
  // Threads own disjoint 6-row slabs of A/C, so accumulation into C
  // needs no synchronisation and stays deterministic.
  const std::size_t mblocks = (m + kMr - 1) / kMr;
#pragma omp parallel for schedule(dynamic)
  for (std::size_t mb = 0; mb < mblocks; ++mb) {
    GemmScratch& scratch = thread_gemm_scratch();
    const std::size_t i0 = mb * kMr;
    const std::size_t rows = std::min(kMr, m - i0);
    scratch.a_f32.resize(blk * kMr);
    float* a_panel = scratch.a_f32.data();
    for (std::size_t br = 0; br < b.block_rows(); ++br) {
      if (b.block_row_ptr[br] == b.block_row_ptr[br + 1]) continue;
      pack_a_panel_f32(a.data() + i0 * a.cols() + br * blk, a.cols(), rows,
                       blk, 1.0f, false, a_panel);
      for (auto bi = b.block_row_ptr[br]; bi < b.block_row_ptr[br + 1]; ++bi) {
        const auto idx = static_cast<std::size_t>(bi);
        const auto bc = static_cast<std::size_t>(b.block_col_idx[idx]);
        const float* base = panels.data() + idx * panel_floats;
        float* cbase = c.data() + i0 * c.cols() + bc * blk;
        for (std::size_t s = 0; s < strips; ++s)
          micro_kernel_f32(blk, a_panel, base + s * blk * kNr,
                           cbase + s * kNr, c.cols(), rows,
                           std::min(kNr, blk - s * kNr));
      }
    }
  }
}

}  // namespace tilesparse
