#include "sparse/bsr.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tilesparse {

Bsr bsr_from_dense(const MatrixF& dense, std::size_t block, float tol) {
  if (block == 0 || dense.rows() % block != 0 || dense.cols() % block != 0) {
    throw std::invalid_argument("bsr_from_dense: shape not divisible by block");
  }
  Bsr out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.block = block;
  const std::size_t brows = out.block_rows(), bcols = out.block_cols();
  out.block_row_ptr.reserve(brows + 1);
  out.block_row_ptr.push_back(0);
  for (std::size_t br = 0; br < brows; ++br) {
    for (std::size_t bc = 0; bc < bcols; ++bc) {
      bool any = false;
      for (std::size_t r = 0; r < block && !any; ++r)
        for (std::size_t c = 0; c < block; ++c)
          if (std::fabs(dense(br * block + r, bc * block + c)) > tol) {
            any = true;
            break;
          }
      if (!any) continue;
      out.block_col_idx.push_back(static_cast<std::int32_t>(bc));
      for (std::size_t r = 0; r < block; ++r)
        for (std::size_t c = 0; c < block; ++c)
          out.values.push_back(dense(br * block + r, bc * block + c));
    }
    out.block_row_ptr.push_back(static_cast<std::int64_t>(out.block_col_idx.size()));
  }
  return out;
}

MatrixF bsr_to_dense(const Bsr& m) {
  MatrixF dense(m.rows, m.cols);
  const std::size_t b = m.block;
  for (std::size_t br = 0; br < m.block_rows(); ++br) {
    for (auto i = m.block_row_ptr[br]; i < m.block_row_ptr[br + 1]; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto bc = static_cast<std::size_t>(m.block_col_idx[idx]);
      const float* blk = m.values.data() + idx * b * b;
      for (std::size_t r = 0; r < b; ++r)
        for (std::size_t c = 0; c < b; ++c)
          dense(br * b + r, bc * b + c) = blk[r * b + c];
    }
  }
  return dense;
}

void bsr_gemm_accumulate(const MatrixF& a, const Bsr& b, MatrixF& c) {
  assert(a.cols() == b.rows);
  assert(c.rows() == a.rows() && c.cols() == b.cols);
  const std::size_t blk = b.block;
  const std::size_t m = a.rows();
  // Parallelise over block rows of B (i.e. K-strips).  Different K-strips
  // accumulate into the same C columns, so each thread works on a private
  // row range of A/C instead: parallel over output row blocks.
  constexpr std::size_t kRowBlock = 32;
  const std::size_t row_blocks = (m + kRowBlock - 1) / kRowBlock;
#pragma omp parallel for schedule(dynamic)
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t i0 = rb * kRowBlock;
    const std::size_t i1 = std::min(m, i0 + kRowBlock);
    for (std::size_t br = 0; br < b.block_rows(); ++br) {
      for (auto bi = b.block_row_ptr[br]; bi < b.block_row_ptr[br + 1]; ++bi) {
        const auto idx = static_cast<std::size_t>(bi);
        const auto bc = static_cast<std::size_t>(b.block_col_idx[idx]);
        const float* blkvals = b.values.data() + idx * blk * blk;
        for (std::size_t i = i0; i < i1; ++i) {
          const float* arow = a.data() + i * a.cols() + br * blk;
          float* crow = c.data() + i * c.cols() + bc * blk;
          for (std::size_t r = 0; r < blk; ++r) {
            const float av = arow[r];
            if (av == 0.0f) continue;
            const float* brow = blkvals + r * blk;
            for (std::size_t j = 0; j < blk; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace tilesparse
