#pragma once
// Sparse x dense matrix multiplication (SpMM), the cuSparse analogue the
// EW and VW baselines execute on CUDA cores (paper Sec. III-B).
//
// Note the operand order: in DNN inference the *weight* matrix is
// sparse.  With C = A * B and sparse B, the natural kernel iterates the
// CSR of B^T or the CSC of B; we provide both orientations.

#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

/// C = A(M x K, sparse CSR) * B(K x N, dense).  Row-parallel.
MatrixF csr_spmm(const Csr& a, const MatrixF& b);

/// C = A(M x K, dense) * B(K x N, sparse given as CSR of B itself).
/// Iterates rows of B, scattering into C; this is the gather/scatter
/// heavy pattern that makes unstructured sparse weights slow.
MatrixF dense_times_csr(const MatrixF& a, const Csr& b);

/// Accumulating variant: C += A * B.  C must be M x N.  Naive scalar
/// scatter loop, kept as the reference implementation the panel path
/// below is tested against; CsrWeight executes through CsrPanels.
void dense_times_csr_accumulate(const MatrixF& a, const Csr& b, MatrixF& c);

// ------------------------------------------------------- panel SpMM
//
// The seed CsrWeight kernel above issues one scalar FMA per nonzero
// and walks C with data-dependent scatter — ~3 GFLOP/s against ~45 for
// the micro-kernel paths.  The panel path restores vector width by
// transposing the roles: activations are packed once per 16-row block
// of A into contiguous kNr-lane vectors (one per weight row), the
// weight is re-laid out into L1-resident column strips, and each
// nonzero then performs a full-width vector FMA into a dense strip
// fragment.  Work stays proportional to nnz; only the fragment
// zero/flush is dense, and it is amortised over the strip's nonzeros.

/// Strip-partitioned CSR layout built once at pack time.  Each strip
/// covers output columns [n0, n1) and stores a compacted row list
/// (rows with no nonzero in the strip are skipped entirely, so empty
/// rows and ragged tails cost nothing).
struct CsrPanels {
  std::size_t rows = 0;        ///< K
  std::size_t cols = 0;        ///< N
  std::size_t strip_cols = 0;  ///< strip width the layout was built with

  struct Strip {
    std::size_t n0 = 0;
    std::size_t n1 = 0;
    std::vector<std::int32_t> row_idx;  ///< weight rows present, ascending
    std::vector<std::int64_t> row_ptr;  ///< size row_idx.size() + 1
    std::vector<std::int32_t> col;      ///< strip-local column, size nnz
    std::vector<float> val;             ///< size nnz
  };
  std::vector<Strip> strips;

  std::size_t nnz() const noexcept;
};

/// Builds the strip layout.  strip_cols == 0 picks the default width
/// (sized so one strip fragment of kNr rows stays L1-resident).  The
/// CsrRef overload builds the same (owning) panels from borrowed
/// arrays — mmap-loaded CsrWeights pack their execution layout without
/// ever copying the CSR itself.
CsrPanels build_csr_panels(const CsrRef& csr, std::size_t strip_cols = 0);
inline CsrPanels build_csr_panels(const Csr& csr, std::size_t strip_cols = 0) {
  return build_csr_panels(csr.ref(), strip_cols);
}

/// C += A * B over the panel layout.  Bit-identical across column
/// shards: every output column accumulates its terms in ascending K
/// order into a zeroed fragment added to C exactly once, independent
/// of which strip (or shard) the column lands in.
void csr_panels_spmm_accumulate(const MatrixF& a, const CsrPanels& b,
                                MatrixF& c);

}  // namespace tilesparse
