#pragma once
// Sparse x dense matrix multiplication (SpMM), the cuSparse analogue the
// EW and VW baselines execute on CUDA cores (paper Sec. III-B).
//
// Note the operand order: in DNN inference the *weight* matrix is
// sparse.  With C = A * B and sparse B, the natural kernel iterates the
// CSR of B^T or the CSC of B; we provide both orientations.

#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

/// C = A(M x K, sparse CSR) * B(K x N, dense).  Row-parallel.
MatrixF csr_spmm(const Csr& a, const MatrixF& b);

/// C = A(M x K, dense) * B(K x N, sparse given as CSR of B itself).
/// Iterates rows of B, scattering into C; this is the gather/scatter
/// heavy pattern that makes unstructured sparse weights slow.
MatrixF dense_times_csr(const MatrixF& a, const Csr& b);

/// Accumulating variant: C += A * B.  C must be M x N.  This is the
/// entry point the CsrWeight execution backend uses; the allocating
/// wrapper above is implemented on top of it.
void dense_times_csr_accumulate(const MatrixF& a, const Csr& b, MatrixF& c);

}  // namespace tilesparse
