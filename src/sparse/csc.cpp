#include "sparse/csc.hpp"

#include <cassert>
#include <cmath>

namespace tilesparse {

Csc csc_from_dense(const MatrixF& dense, float tol) {
  Csc out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.col_ptr.reserve(out.cols + 1);
  out.col_ptr.push_back(0);
  for (std::size_t c = 0; c < out.cols; ++c) {
    for (std::size_t r = 0; r < out.rows; ++r) {
      const float v = dense(r, c);
      if (std::fabs(v) > tol) {
        out.row_idx.push_back(static_cast<std::int32_t>(r));
        out.values.push_back(v);
      }
    }
    out.col_ptr.push_back(static_cast<std::int64_t>(out.values.size()));
  }
  return out;
}

MatrixF csc_to_dense(const CscRef& m) {
  MatrixF dense(m.rows, m.cols);
  for (std::size_t c = 0; c < m.cols; ++c) {
    for (auto i = m.col_ptr[c]; i < m.col_ptr[c + 1]; ++i) {
      dense(static_cast<std::size_t>(m.row_idx[static_cast<std::size_t>(i)]), c) =
          m.values[static_cast<std::size_t>(i)];
    }
  }
  return dense;
}

void csc_gemm_accumulate(const MatrixF& a, const CscRef& b, MatrixF& c) {
  assert(a.cols() == b.rows);
  assert(c.rows() == a.rows() && c.cols() == b.cols);
  const std::size_t m = a.rows();
  // Parallel over output columns: every (i, col) is written by exactly
  // one iteration, so no atomics are needed.
#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t col = 0; col < b.cols; ++col) {
    for (auto i = b.col_ptr[col]; i < b.col_ptr[col + 1]; ++i) {
      const auto k = static_cast<std::size_t>(b.row_idx[static_cast<std::size_t>(i)]);
      const float v = b.values[static_cast<std::size_t>(i)];
      for (std::size_t r = 0; r < m; ++r) c(r, col) += a(r, k) * v;
    }
  }
}

Csc slice_csc_cols(const CscRef& m, std::size_t n0, std::size_t n1) {
  assert(n0 < n1 && n1 <= m.cols);
  Csc out;
  out.rows = m.rows;
  out.cols = n1 - n0;
  const auto p0 = static_cast<std::size_t>(m.col_ptr[n0]);
  const auto p1 = static_cast<std::size_t>(m.col_ptr[n1]);
  out.col_ptr.reserve(out.cols + 1);
  for (std::size_t c = n0; c <= n1; ++c)
    out.col_ptr.push_back(m.col_ptr[c] - m.col_ptr[n0]);
  out.row_idx.assign(m.row_idx.begin() + static_cast<std::ptrdiff_t>(p0),
                     m.row_idx.begin() + static_cast<std::ptrdiff_t>(p1));
  out.values.assign(m.values.begin() + static_cast<std::ptrdiff_t>(p0),
                    m.values.begin() + static_cast<std::ptrdiff_t>(p1));
  return out;
}

}  // namespace tilesparse
