#include "exec/dense_weight.hpp"

#include <stdexcept>

#include "io/mmap_file.hpp"
#include "io/wire.hpp"
#include "quant/quant_gemm.hpp"

namespace tilesparse {

DenseWeight::DenseWeight(MatrixF weights, GemmConfig config)
    : PackedWeight(weights.rows(), weights.cols()),
      weights_(std::move(weights)),
      config_(config) {}

void DenseWeight::save(std::ostream& out, wire::Layout layout) const {
  wire::write_matrix_payload(out, weights_, layout);
}

std::unique_ptr<DenseWeight> DenseWeight::load(std::istream& in, std::size_t k,
                                               std::size_t n,
                                               wire::Layout layout) {
  MatrixF weights = wire::read_matrix_payload<float>(in, layout);
  if (weights.rows() != k || weights.cols() != n)
    throw std::runtime_error(
        "DenseWeight::load: payload shape disagrees with artifact header");
  return std::make_unique<DenseWeight>(std::move(weights));
}

std::unique_ptr<DenseWeight> DenseWeight::load_view(MappedArtifact& in,
                                                    std::size_t k,
                                                    std::size_t n) {
  const auto rows = in.pod<std::uint64_t>();
  const auto cols = in.pod<std::uint64_t>();
  if (rows != k || cols != n)
    throw std::runtime_error(
        "DenseWeight::load: payload shape disagrees with artifact header");
  // k/n are pre-validated against int32 by the container parser, so
  // rows * cols cannot overflow u64 here.
  const ConstSpan<float> panel = in.span<float>(rows * cols);
  auto weight = std::make_unique<DenseWeight>(
      MatrixF::borrowed(panel.data(), static_cast<std::size_t>(rows),
                        static_cast<std::size_t>(cols)));
  weight->set_storage_keepalive(in.keepalive());
  return weight;
}

std::size_t DenseWeight::bytes() const noexcept {
  return weights_.size() * sizeof(float);
}

double DenseWeight::macs(std::size_t m) const noexcept {
  return static_cast<double>(m) * static_cast<double>(k()) *
         static_cast<double>(n());
}

bool DenseWeight::supports(Numerics) const noexcept { return true; }

std::unique_ptr<PackedWeight> DenseWeight::shard_cols(std::size_t n0,
                                                      std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("DenseWeight::shard_cols: bad column range");
  MatrixF slice(k(), n1 - n0);
  for (std::size_t r = 0; r < k(); ++r) {
    const float* src = weights_.data() + r * n() + n0;
    float* dst = slice.data() + r * slice.cols();
    for (std::size_t j = 0; j < slice.cols(); ++j) dst[j] = src[j];
  }
  return std::make_unique<DenseWeight>(std::move(slice), config_);
}

void DenseWeight::accumulate(const ExecContext& ctx, const MatrixF& a,
                             MatrixF& c) const {
  if (ctx.int8()) {
    // Dynamic activation quantisation; the weight copy quantises once.
    std::call_once(quantized_once_, [this] { quantized_ = quantize(weights_); });
    const MatrixF q = quant_matmul(quantize(a), quantized_);
    for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] += q.data()[i];
    return;
  }
  std::call_once(packed_b_once_,
                 [this] { packed_b_ = pack_dense_b(weights_, config_); });
  GemmConfig config = config_;
  config.fp16_inputs = ctx.fp16();
  dense_gemm(a, packed_b_, c, /*alpha=*/1.0f, /*beta=*/1.0f, config);
}

}  // namespace tilesparse
