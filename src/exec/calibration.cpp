#include "exec/calibration.hpp"

namespace tilesparse {
namespace {

PlannerCalibration& global_calibration() {
  static PlannerCalibration calibration;
  return calibration;
}

}  // namespace

const PlannerCalibration& planner_calibration() noexcept {
  return global_calibration();
}

void set_planner_calibration(const PlannerCalibration& calibration) {
  global_calibration() = calibration;
}

}  // namespace tilesparse
