#include "exec/calibration.hpp"

#include <cstdlib>
#include <fstream>

#include "io/serialize.hpp"

namespace tilesparse {
namespace {

/// First-use auto-load: a host that ran calibrate_planner drops its
/// JSON at the default path (or points TS_PLANNER_CALIBRATION at it)
/// and every process on that host plans with measured constants — no
/// explicit load_planner_calibration call.  Any failure (missing file,
/// corrupt JSON) silently falls back to the paper-derived built-ins:
/// auto-calibration must never turn a working process into a crashing
/// one.
PlannerCalibration initial_calibration() noexcept {
  const char* env = std::getenv("TS_PLANNER_CALIBRATION");
  const std::string path =
      (env && *env) ? env : std::string("planner_calibration.json");
  try {
    std::ifstream in(path);
    if (in) return read_calibration_json(in);
  } catch (...) {
  }
  return PlannerCalibration{};
}

PlannerCalibration& global_calibration() {
  static PlannerCalibration calibration = initial_calibration();
  return calibration;
}

}  // namespace

double PlannerCalibration::mac_penalty(std::string_view format) const noexcept {
  if (format == "csr") return csr_mac_penalty;
  if (format == "bsr") return bsr_mac_penalty;
  if (format == "tw" || format == "tew") return tw_mac_penalty;
  if (format == "tw-int8") return int8_mac_discount;
  return 1.0;  // dense and unknown custom formats
}

const PlannerCalibration& planner_calibration() noexcept {
  return global_calibration();
}

void set_planner_calibration(const PlannerCalibration& calibration) {
  global_calibration() = calibration;
}

}  // namespace tilesparse
