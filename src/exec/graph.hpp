#pragma once
// ExecGraph — a model-level execution plan.
//
// The exec API used to stop at the single-matmul level: every layer
// call site invoked PackedWeight::matmul synchronously, so a model's
// independent GEMMs (the four attention projections, an NMT model's
// encoder/decoder input projections) could never overlap.  ExecGraph
// lifts the plan one level up, following the paper's Fig. 7-4
// stream-assignment idea: a model builds a DAG of nodes once — each
// node either a weight GEMM (a PackedWeight ref plus input/output
// buffer slots) or a host op (the non-GEMM glue: layernorm, softmax,
// residual adds) — and an ExecScheduler dispatches ready nodes onto
// worker streams (see exec/scheduler.hpp).
//
// Dataflow dependencies are derived from slot access: a node that
// reads a slot depends on the slot's last writer (RAW), a writer
// depends on the previous writer (WAW) and on every reader since
// (WAR).  add_dep() adds explicit control edges for ordering the slots
// cannot express (e.g. a host op that mutates captured layer state).
// Builders that want full manual control call set_auto_deps(false) and
// wire every edge themselves; either way, validate_graph()
// (exec/validate.hpp) audits the result — every slot-implied hazard
// must be covered by some dependency path, the graph must be acyclic,
// and shapes must be consistent — and the scheduler runs that audit
// once per graph before the first dispatch.
//
// Slots are plain MatrixF buffers owned by the graph.  Their shapes
// are set by whoever writes them (gemm nodes size their output from
// the input rows and the weight's N), so one graph serves any batch
// size.  Slots fed by the caller before run() are declared with
// mark_input(); slots the caller reads afterwards with mark_output()
// — the verifier uses both to tell external I/O from dangling reads
// and dead stores.  A graph may be run repeatedly; it is cheap to
// build and holds non-owning weight refs, so rebuilding after
// re-packing is the expected pattern.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/exec_context.hpp"
#include "exec/packed_weight.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

class ExecGraph {
 public:
  using SlotId = std::size_t;
  using NodeId = std::size_t;

  ExecGraph();

  /// Process-unique id of this graph instance.  Models rebuild their
  /// graph whenever weights are re-packed; schedulers key cached shard
  /// plans on this id so a rebuilt graph (even at a recycled address)
  /// never reuses slices of freed weights.
  std::uint64_t build_id() const noexcept { return build_id_; }

  enum class NodeKind { kGemm, kHost };

  struct Node {
    std::string name;
    NodeKind kind = NodeKind::kHost;
    // Gemm payload: out = in * weight (+ bias row per output row),
    // under `ctx` numerics/threads (alpha/beta forced to 1/0 — graph
    // slots are single-assignment between writers).
    const PackedWeight* weight = nullptr;
    SlotId in = 0;
    SlotId out = 0;
    ExecContext ctx;
    const MatrixF* bias = nullptr;  ///< optional 1 x n row bias
    // Host payload.
    std::function<void(ExecGraph&)> fn;
    // Declared slot accesses (gemm: reads = {in}, writes = {out}).
    // This is the dataflow record validate_graph() audits against.
    std::vector<SlotId> reads;
    std::vector<SlotId> writes;
    // Dependency edges (indices into nodes()).
    std::vector<NodeId> deps;
    std::vector<NodeId> dependents;
  };

  /// Adds a named buffer slot.  Shape is set by the first writer.
  SlotId add_slot(std::string name);

  MatrixF& slot(SlotId id) { return slots_.at(id).buffer; }
  const MatrixF& slot(SlotId id) const { return slots_.at(id).buffer; }
  const std::string& slot_name(SlotId id) const { return slots_.at(id).name; }
  std::size_t slot_count() const noexcept { return slots_.size(); }

  /// Declares that the caller fills `id` before every run.  Reads of an
  /// input slot with no in-graph writer are external feeds, not
  /// read-before-write findings.
  void mark_input(SlotId id);
  /// Declares that the caller consumes `id` after every run, so its
  /// final write is live even though no node reads it.
  void mark_output(SlotId id);
  bool slot_is_input(SlotId id) const { return slots_.at(id).is_input; }
  bool slot_is_output(SlotId id) const { return slots_.at(id).is_output; }

  /// Whether add_gemm/add_host derive RAW/WAW/WAR edges from slot
  /// access (the default).  Off, nodes record their reads/writes but
  /// the builder wires every edge via add_dep(); validate_graph()
  /// reports any slot-implied hazard left uncovered.
  void set_auto_deps(bool enabled) noexcept { auto_deps_ = enabled; }
  bool auto_deps() const noexcept { return auto_deps_; }

  /// Adds a GEMM node: slot(out) = slot(in) * weight (+ bias row).
  /// `weight` and `bias` must outlive the graph.  Throws
  /// std::invalid_argument on a null weight or out-of-range slots.
  NodeId add_gemm(std::string name, const PackedWeight* weight, SlotId in,
                  SlotId out, const ExecContext& ctx = {},
                  const MatrixF* bias = nullptr);

  /// Adds a host node running `fn(graph)`.  `reads`/`writes` declare
  /// the slots the body touches, from which dependencies are derived;
  /// state the body mutates outside the graph (captured layer caches)
  /// must be ordered with add_dep().
  NodeId add_host(std::string name, std::vector<SlotId> reads,
                  std::vector<SlotId> writes, std::function<void(ExecGraph&)> fn);

  /// Explicit control edge: `node` runs only after `before`.  Edges in
  /// either direction are accepted (a later-added node may order an
  /// earlier one after it); validate_graph() proves the result is
  /// still acyclic.  Throws std::invalid_argument on out-of-range ids
  /// or a self-edge.
  void add_dep(NodeId node, NodeId before);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Count of GEMM nodes with no dependency on one another — an upper
  /// bound on useful stream overlap (diagnostic for benches/tests).
  std::size_t max_gemm_width() const;

  /// A valid topological order of all nodes (Kahn's algorithm, lowest
  /// node id first among ready nodes, so auto-built graphs keep their
  /// insertion order).  Throws std::logic_error if the explicit edges
  /// formed a cycle — run validate_graph() for the offending path.
  std::vector<NodeId> topo_order() const;

  /// Executes one node on the calling thread (the scheduler's unit of
  /// work; also usable directly for serial reference runs).
  void execute_node(NodeId id);

  /// Guards builds only: fills every non-input slot buffer with quiet
  /// NaNs so a node that runs before its producer (a missed dependency
  /// slipping past the static audit) poisons its output instead of
  /// consuming stale-but-plausible values.  No-op without
  /// TILESPARSE_ENABLE_GUARDS.
  void poison_slots();

 private:
  struct Slot {
    std::string name;
    MatrixF buffer;
    bool is_input = false;
    bool is_output = false;
    // Dataflow bookkeeping at build time.
    bool written = false;
    NodeId last_writer = 0;
    std::vector<NodeId> readers_since_write;
  };

  void link(NodeId node);
  void check_slot(SlotId id, const char* what) const;

  std::uint64_t build_id_ = 0;
  bool auto_deps_ = true;
  std::vector<Slot> slots_;
  std::vector<Node> nodes_;
};

}  // namespace tilesparse
