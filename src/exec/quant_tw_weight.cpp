#include "exec/quant_tw_weight.hpp"

#include "core/tile_exec.hpp"
#include "exec/tw_weight.hpp"

namespace tilesparse {

QuantTwWeight::QuantTwWeight(const MatrixF& weights, const TilePattern& pattern)
    : QuantTwWeight(compact_tiles(weights, pattern), pattern.k, pattern.n) {}

QuantTwWeight::QuantTwWeight(const std::vector<MaskedTile>& tiles,
                             std::size_t k, std::size_t n)
    : QuantTwWeight(quantize_tiles(tiles), k, n) {}

QuantTwWeight::QuantTwWeight(std::vector<QuantMaskedTile> tiles, std::size_t k,
                             std::size_t n)
    : PackedWeight(k, n), tiles_(std::move(tiles)) {}

MatrixF QuantTwWeight::to_dense() const {
  return quant_tiles_to_dense(tiles_, k(), n());
}

std::size_t QuantTwWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile.kept_rows.size() * tile.out_cols.size() * sizeof(std::int8_t) +
             tile.kept_rows.size() * sizeof(std::int32_t) +
             tile.out_cols.size() * sizeof(std::int32_t) + sizeof(float);
  }
  return total;
}

double QuantTwWeight::macs(std::size_t m) const noexcept {
  double total = 0.0;
  for (const auto& tile : tiles_) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

bool QuantTwWeight::supports(Numerics) const noexcept { return true; }

void QuantTwWeight::accumulate(const ExecContext&, const MatrixF& a,
                               MatrixF& c) const {
  quant_tw_gemm(a, tiles_, c);
}

}  // namespace tilesparse
