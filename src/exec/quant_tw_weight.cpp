#include "exec/quant_tw_weight.hpp"

#include <stdexcept>

#include "core/tile_exec.hpp"
#include "exec/tw_weight.hpp"
#include "io/wire.hpp"

namespace tilesparse {

QuantTwWeight::QuantTwWeight(const MatrixF& weights, const TilePattern& pattern)
    : QuantTwWeight(compact_tiles(weights, pattern), pattern.k, pattern.n) {}

QuantTwWeight::QuantTwWeight(const std::vector<MaskedTile>& tiles,
                             std::size_t k, std::size_t n)
    : QuantTwWeight(quantize_tiles(tiles), k, n) {}

QuantTwWeight::QuantTwWeight(std::vector<QuantMaskedTile> tiles, std::size_t k,
                             std::size_t n)
    : PackedWeight(k, n), tiles_(std::move(tiles)) {}

void QuantTwWeight::save(std::ostream& out) const {
  wire::write_pod<std::uint64_t>(out, tiles_.size());
  for (const QuantMaskedTile& tile : tiles_) {
    wire::write_pod<float>(out, tile.scale);
    wire::write_vector(out, tile.kept_rows);
    wire::write_vector(out, tile.out_cols);
    wire::write_matrix_payload(out, tile.weights);
  }
}

std::unique_ptr<QuantTwWeight> QuantTwWeight::load(std::istream& in,
                                                   std::size_t k,
                                                   std::size_t n) {
  const auto count = wire::read_pod<std::uint64_t>(in);
  wire::check_size_prefix(in, count, 3 * sizeof(std::uint64_t));
  std::vector<QuantMaskedTile> tiles(static_cast<std::size_t>(count));
  for (QuantMaskedTile& tile : tiles) {
    tile.scale = wire::read_pod<float>(in);
    tile.kept_rows = wire::read_vector<std::int32_t>(in);
    tile.out_cols = wire::read_vector<std::int32_t>(in);
    tile.weights = wire::read_matrix_payload<std::int8_t>(in);
    if (tile.weights.rows() != tile.kept_rows.size() ||
        tile.weights.cols() != tile.out_cols.size())
      throw std::runtime_error(
          "QuantTwWeight::load: inconsistent quantised tile");
    wire::check_index_vector(tile.kept_rows, k, "tile row");
    wire::check_index_vector(tile.out_cols, n, "tile column");
  }
  return std::make_unique<QuantTwWeight>(std::move(tiles), k, n);
}

MatrixF QuantTwWeight::to_dense() const {
  return quant_tiles_to_dense(tiles_, k(), n());
}

std::size_t QuantTwWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile.kept_rows.size() * tile.out_cols.size() * sizeof(std::int8_t) +
             tile.kept_rows.size() * sizeof(std::int32_t) +
             tile.out_cols.size() * sizeof(std::int32_t) + sizeof(float);
  }
  return total;
}

double QuantTwWeight::macs(std::size_t m) const noexcept {
  double total = 0.0;
  for (const auto& tile : tiles_) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

bool QuantTwWeight::supports(Numerics) const noexcept { return true; }

std::unique_ptr<PackedWeight> QuantTwWeight::shard_cols(std::size_t n0,
                                                        std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("QuantTwWeight::shard_cols: bad column range");
  // Mirrors slice_masked_tiles, but keeps each surviving tile's scale:
  // re-quantising the slice would shift results vs the serial path.
  std::vector<QuantMaskedTile> sliced;
  for (const QuantMaskedTile& tile : tiles_) {
    std::size_t j0 = tile.out_cols.size(), j1 = 0;
    for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
      const auto col = static_cast<std::size_t>(tile.out_cols[j]);
      if (col < n0 || col >= n1) continue;
      j0 = std::min(j0, j);
      j1 = j + 1;  // out_cols ascend, so the overlap is contiguous
    }
    if (j0 >= j1) continue;
    QuantMaskedTile out;
    out.scale = tile.scale;
    out.kept_rows = tile.kept_rows;
    const std::size_t width = j1 - j0;
    out.out_cols.reserve(width);
    for (std::size_t j = j0; j < j1; ++j)
      out.out_cols.push_back(tile.out_cols[j] - static_cast<std::int32_t>(n0));
    out.weights = MatrixI8(tile.kept_rows.size(), width);
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t)
      for (std::size_t j = 0; j < width; ++j)
        out.weights(t, j) = tile.weights(t, j0 + j);
    sliced.push_back(std::move(out));
  }
  return std::make_unique<QuantTwWeight>(std::move(sliced), k(), n1 - n0);
}

void QuantTwWeight::accumulate(const ExecContext&, const MatrixF& a,
                               MatrixF& c) const {
  quant_tw_gemm(a, tiles_, c);
}

}  // namespace tilesparse
