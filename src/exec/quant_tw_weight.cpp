#include "exec/quant_tw_weight.hpp"

#include <stdexcept>

#include "core/tile_exec.hpp"
#include "exec/tw_weight.hpp"
#include "io/mmap_file.hpp"
#include "io/wire.hpp"

namespace tilesparse {

namespace {

void check_quant_tile(const QuantMaskedTile& tile, std::size_t k,
                      std::size_t n) {
  if (tile.weights.rows() != tile.kept_rows.size() ||
      tile.weights.cols() != tile.out_cols.size())
    throw std::runtime_error("QuantTwWeight::load: inconsistent quantised tile");
  wire::check_index_vector(tile.kept_rows, k, "tile row");
  wire::check_index_vector(tile.out_cols, n, "tile column");
}

}  // namespace

QuantTwWeight::QuantTwWeight(const MatrixF& weights, const TilePattern& pattern)
    : QuantTwWeight(compact_tiles(weights, pattern), pattern.k, pattern.n) {}

QuantTwWeight::QuantTwWeight(const std::vector<MaskedTile>& tiles,
                             std::size_t k, std::size_t n)
    : QuantTwWeight(quantize_tiles(tiles), k, n) {}

QuantTwWeight::QuantTwWeight(std::vector<QuantMaskedTile> tiles, std::size_t k,
                             std::size_t n)
    : PackedWeight(k, n), tiles_(std::move(tiles)) {}

void QuantTwWeight::save(std::ostream& out, wire::Layout layout) const {
  wire::write_pod<std::uint64_t>(out, tiles_.size());
  for (const QuantMaskedTile& tile : tiles_) {
    wire::write_pod<float>(out, tile.scale);
    wire::write_vector(out, tile.kept_rows, layout);
    wire::write_vector(out, tile.out_cols, layout);
    wire::write_matrix_payload(out, tile.weights, layout);
  }
}

std::unique_ptr<QuantTwWeight> QuantTwWeight::load(std::istream& in,
                                                   std::size_t k,
                                                   std::size_t n,
                                                   wire::Layout layout) {
  const auto count = wire::read_pod<std::uint64_t>(in);
  wire::check_size_prefix(in, count, 3 * sizeof(std::uint64_t));
  std::vector<QuantMaskedTile> tiles(static_cast<std::size_t>(count));
  for (QuantMaskedTile& tile : tiles) {
    tile.scale = wire::read_pod<float>(in);
    tile.kept_rows = wire::read_vector<std::int32_t>(in, layout);
    tile.out_cols = wire::read_vector<std::int32_t>(in, layout);
    tile.weights = wire::read_matrix_payload<std::int8_t>(in, layout);
    check_quant_tile(tile, k, n);
  }
  return std::make_unique<QuantTwWeight>(std::move(tiles), k, n);
}

std::unique_ptr<QuantTwWeight> QuantTwWeight::load_view(MappedArtifact& in,
                                                        std::size_t k,
                                                        std::size_t n) {
  const auto count = in.pod<std::uint64_t>();
  if (count > in.remaining() / (3 * sizeof(std::uint64_t)))
    in.fail("quantised tile count exceeds remaining payload");
  std::vector<QuantMaskedTile> tiles(static_cast<std::size_t>(count));
  for (QuantMaskedTile& tile : tiles) {
    tile.scale = in.pod<float>();
    const ConstSpan<std::int32_t> kept_rows = in.array<std::int32_t>();
    const ConstSpan<std::int32_t> out_cols = in.array<std::int32_t>();
    // Index vectors are a few percent of the payload; copy them so
    // grouping/slicing code keeps plain vectors.
    tile.kept_rows.assign(kept_rows.begin(), kept_rows.end());
    tile.out_cols.assign(out_cols.begin(), out_cols.end());
    const auto rows = in.pod<std::uint64_t>();
    const auto cols = in.pod<std::uint64_t>();
    if (rows != tile.kept_rows.size() || cols != tile.out_cols.size())
      throw std::runtime_error(
          "QuantTwWeight::load: inconsistent quantised tile");
    if (cols != 0 && rows > in.remaining() / cols)
      in.fail("quantised tile payload exceeds remaining payload");
    const ConstSpan<std::int8_t> panel = in.span<std::int8_t>(rows * cols);
    tile.weights = MatrixI8::borrowed(panel.data(),
                                      static_cast<std::size_t>(rows),
                                      static_cast<std::size_t>(cols));
    check_quant_tile(tile, k, n);
  }
  auto weight = std::make_unique<QuantTwWeight>(std::move(tiles), k, n);
  weight->set_storage_keepalive(in.keepalive());
  return weight;
}

MatrixF QuantTwWeight::to_dense() const {
  return quant_tiles_to_dense(tiles_, k(), n());
}

std::size_t QuantTwWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile.kept_rows.size() * tile.out_cols.size() * sizeof(std::int8_t) +
             tile.kept_rows.size() * sizeof(std::int32_t) +
             tile.out_cols.size() * sizeof(std::int32_t) + sizeof(float);
  }
  return total;
}

double QuantTwWeight::macs(std::size_t m) const noexcept {
  double total = 0.0;
  for (const auto& tile : tiles_) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

bool QuantTwWeight::supports(Numerics) const noexcept { return true; }

std::unique_ptr<PackedWeight> QuantTwWeight::shard_cols(std::size_t n0,
                                                        std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("QuantTwWeight::shard_cols: bad column range");
  // Mirrors slice_masked_tiles, but keeps each surviving tile's scale:
  // re-quantising the slice would shift results vs the serial path.
  std::vector<QuantMaskedTile> sliced;
  for (const QuantMaskedTile& tile : tiles_) {
    std::size_t j0 = tile.out_cols.size(), j1 = 0;
    for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
      const auto col = static_cast<std::size_t>(tile.out_cols[j]);
      if (col < n0 || col >= n1) continue;
      j0 = std::min(j0, j);
      j1 = j + 1;  // out_cols ascend, so the overlap is contiguous
    }
    if (j0 >= j1) continue;
    QuantMaskedTile out;
    out.scale = tile.scale;
    out.kept_rows = tile.kept_rows;
    const std::size_t width = j1 - j0;
    out.out_cols.reserve(width);
    for (std::size_t j = j0; j < j1; ++j)
      out.out_cols.push_back(tile.out_cols[j] - static_cast<std::int32_t>(n0));
    out.weights = MatrixI8(tile.kept_rows.size(), width);
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t)
      for (std::size_t j = 0; j < width; ++j)
        out.weights(t, j) = tile.weights(t, j0 + j);
    sliced.push_back(std::move(out));
  }
  return std::make_unique<QuantTwWeight>(std::move(sliced), k(), n1 - n0);
}

void QuantTwWeight::accumulate(const ExecContext&, const MatrixF& a,
                               MatrixF& c) const {
  quant_tw_gemm(a, tiles_, c);
}

}  // namespace tilesparse
