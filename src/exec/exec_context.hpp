#pragma once
// ExecContext — the one knob bundle every weight-execution backend
// understands.  Before this existed, numerics were threaded through the
// kernel layer as loose `fp16_inputs` bools and alpha/beta were honored
// only by dense_gemm; ExecContext unifies both so `C = alpha * A * W +
// beta * C` means the same thing under every PackedWeight format.

#include <cstddef>

namespace tilesparse {

/// Requested activation numerics.  Weight numerics are a property of the
/// *format* (e.g. "tw-int8" stores int8 weights), chosen at pack time;
/// the context only controls how activations are treated on the way in.
enum class Numerics {
  kFp32,  ///< full-precision activations
  kFp16,  ///< activations rounded through binary16 (tensor-core numerics)
  kInt8,  ///< activations dynamically quantised (int8-native formats only)
};

struct ExecContext {
  /// Worker threads for the kernel launch; 0 = library default.  Only
  /// meaningful when the build enables OpenMP (serial otherwise).
  int threads = 0;
  Numerics numerics = Numerics::kFp32;
  float alpha = 1.0f;  ///< scale on A*W
  float beta = 0.0f;   ///< scale on the existing C (0 overwrites)

  bool fp16() const noexcept { return numerics == Numerics::kFp16; }
  bool int8() const noexcept { return numerics == Numerics::kInt8; }
};

inline const char* numerics_name(Numerics n) noexcept {
  switch (n) {
    case Numerics::kFp32: return "fp32";
    case Numerics::kFp16: return "fp16";
    case Numerics::kInt8: return "int8";
  }
  return "?";
}

}  // namespace tilesparse
