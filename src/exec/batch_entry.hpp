#pragma once
// BatchEntry — a named, batch-capable way into a model's graph.
//
// The serving batcher (serve/batch/) coalesces requests into one
// wide-M activation, but it cannot know how any particular model turns
// an M x K input into an M' x N output.  A BatchEntry is that
// contract: "feed me any row-count that is a multiple of
// group_rows_in(), I run the model's ExecGraph once through your
// scheduler, and every group of group_rows_in() input rows yields
// group_rows_out() output rows in order".  The group size carries
// sequence structure through batching — a BERT entry has
// group_rows_in = seq (one sequence = seq embedded token rows) and
// group_rows_out = 1 (pooled logits), so attention and pooling stay
// per-sequence exact while GEMMs run at batch width.
//
// GraphBatchEntry is the generic implementation: a builder callback
// appends the model's nodes to a fresh ExecGraph for a given M, and a
// small M-keyed LRU keeps the graphs for the batch sizes the policy
// actually produces (slots are sized by their first writer, so one
// graph per M reuses every buffer run to run; distinct Ms get distinct
// graphs so no run ever resizes another's slots).  run() serializes
// callers — model graphs and the layer caches their host nodes touch
// are not concurrency-safe — which is exactly the batcher's execution
// model: one leader runs per entry at a time.
//
// cost(rows) is the byte·MAC figure the tenant scheduler charges per
// member (see serve/batch/tenant_scheduler.hpp).

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "exec/graph.hpp"
#include "exec/scheduler.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

class BatchEntry {
 public:
  virtual ~BatchEntry() = default;

  virtual const std::string& name() const noexcept = 0;
  /// Columns every submitted activation must have.
  virtual std::size_t input_cols() const noexcept = 0;
  /// Columns of the produced output.
  virtual std::size_t output_cols() const noexcept = 0;
  /// Input rows per request unit (e.g. sequence length); submitted
  /// activations must be a multiple of this.
  virtual std::size_t group_rows_in() const noexcept { return 1; }
  /// Output rows produced per input group.
  virtual std::size_t group_rows_out() const noexcept { return 1; }

  /// Runs the entry on `input` (rows % group_rows_in() == 0) through
  /// `scheduler`, returning the (rows / g_in * g_out) x output_cols
  /// result.  Row groups are independent: group i of a wide run is
  /// bit-identical to a solo run of group i.  Safe to call from
  /// multiple workers (implementations serialize internally).
  virtual MatrixF run(ExecScheduler& scheduler, const MatrixF& input) = 0;

  /// MACs one run at `rows` input rows costs (the DRR charge numerator).
  virtual double macs(std::size_t rows) const noexcept = 0;
  /// Bytes of weights the entry touches per run.
  virtual std::size_t weight_bytes() const noexcept = 0;

  /// byte·MAC service cost of `rows` input rows — what the tenant
  /// scheduler charges a tenant per served member.  Geometric blend so
  /// neither huge-weight/low-MAC nor tiny-weight/high-MAC entries
  /// dominate; monotone in rows.
  double cost(std::size_t rows) const noexcept;
};

/// Generic graph-backed entry with an M-keyed graph LRU.
class GraphBatchEntry : public BatchEntry {
 public:
  /// Appends the model's nodes to `graph` for `rows` input rows: reads
  /// the returned-by-reference input slot (marked input by the entry),
  /// returns the output slot (marked output by the entry).
  using Builder = std::function<ExecGraph::SlotId(
      ExecGraph& graph, ExecGraph::SlotId input, std::size_t rows)>;

  struct Config {
    std::string name;
    std::size_t input_cols = 0;
    std::size_t output_cols = 0;
    std::size_t group_rows_in = 1;
    std::size_t group_rows_out = 1;
    double macs_per_row = 0;     ///< macs(rows) = macs_per_row * rows
    std::size_t weight_bytes = 0;
    std::size_t graph_cache_capacity = 4;  ///< distinct Ms kept alive
    Builder builder;
  };

  explicit GraphBatchEntry(Config config);

  const std::string& name() const noexcept override { return config_.name; }
  std::size_t input_cols() const noexcept override {
    return config_.input_cols;
  }
  std::size_t output_cols() const noexcept override {
    return config_.output_cols;
  }
  std::size_t group_rows_in() const noexcept override {
    return config_.group_rows_in;
  }
  std::size_t group_rows_out() const noexcept override {
    return config_.group_rows_out;
  }
  MatrixF run(ExecScheduler& scheduler, const MatrixF& input) override;
  double macs(std::size_t rows) const noexcept override {
    return config_.macs_per_row * static_cast<double>(rows);
  }
  std::size_t weight_bytes() const noexcept override {
    return config_.weight_bytes;
  }

  /// Distinct-M graphs currently cached (diagnostics).
  std::size_t cached_graphs() const;

 private:
  struct CachedGraph {
    std::size_t rows = 0;
    std::unique_ptr<ExecGraph> graph;
    ExecGraph::SlotId input = 0;
    ExecGraph::SlotId output = 0;
  };
  CachedGraph& graph_for(std::size_t rows);

  Config config_;
  mutable std::mutex mutex_;  ///< one run at a time; guards the cache
  std::list<CachedGraph> graphs_;  ///< front = most recently used
};

/// A single-GEMM entry over one packed weight (out = in * weight
/// [+ bias]) — the per-format unit the batch tests and benches use.
/// `weight` and `bias` must outlive the entry.
std::unique_ptr<GraphBatchEntry> make_gemm_entry(std::string name,
                                                 const PackedWeight* weight,
                                                 const MatrixF* bias = nullptr);

}  // namespace tilesparse
