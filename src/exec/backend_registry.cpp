#include "exec/backend_registry.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <map>
#include <stdexcept>

#include "exec/csr_weight.hpp"
#include "exec/dense_weight.hpp"
#include "exec/quant_tw_weight.hpp"
#include "exec/tew_weight.hpp"
#include "exec/tw_weight.hpp"
#include "io/mmap_file.hpp"
#include "io/wire.hpp"
#include "prune/importance.hpp"

namespace tilesparse {
namespace {

const TilePattern& require_pattern(const char* format,
                                   const PackOptions& options) {
  if (!options.pattern) {
    throw std::invalid_argument(std::string(format) +
                                " packing requires PackOptions.pattern");
  }
  return *options.pattern;
}

std::map<std::string, BackendFactory>& registry() {
  static std::map<std::string, BackendFactory> backends = {
      {"dense",
       [](const MatrixF& w, const PackOptions&) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<DenseWeight>(w);
       }},
      {"tw",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<TwWeight>(w, require_pattern("tw", o));
       }},
      {"tew",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         const TilePattern& pattern = require_pattern("tew", o);
         if (o.scores) {
           return std::make_unique<TewWeight>(w, pattern, *o.scores,
                                              o.tew_delta);
         }
         const MatrixF scores = magnitude_scores(w);
         return std::make_unique<TewWeight>(w, pattern, scores, o.tew_delta);
       }},
      {"csr",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<CsrWeight>(w, o.csr_tol);
       }},
      {"tw-int8",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<QuantTwWeight>(w, require_pattern("tw-int8", o));
       }},
  };
  return backends;
}

std::map<std::string, BackendLoader>& loader_registry() {
  // tw/tew/csr payloads are self-describing (nested TSTL/TSTP/TSCR/TSCC
  // headers carry the wire version), so their loaders ignore `layout`;
  // the headerless dense and tw-int8 payloads need it threaded through.
  static std::map<std::string, BackendLoader> loaders = {
      {"dense",
       [](std::istream& in, std::size_t k, std::size_t n, wire::Layout layout) {
         return std::unique_ptr<PackedWeight>(
             DenseWeight::load(in, k, n, layout));
       }},
      {"tw",
       [](std::istream& in, std::size_t k, std::size_t n, wire::Layout) {
         return std::unique_ptr<PackedWeight>(TwWeight::load(in, k, n));
       }},
      {"tew",
       [](std::istream& in, std::size_t k, std::size_t n, wire::Layout) {
         return std::unique_ptr<PackedWeight>(TewWeight::load(in, k, n));
       }},
      {"csr",
       [](std::istream& in, std::size_t k, std::size_t n, wire::Layout) {
         return std::unique_ptr<PackedWeight>(CsrWeight::load(in, k, n));
       }},
      {"tw-int8",
       [](std::istream& in, std::size_t k, std::size_t n, wire::Layout layout) {
         return std::unique_ptr<PackedWeight>(
             QuantTwWeight::load(in, k, n, layout));
       }},
  };
  return loaders;
}

std::map<std::string, BackendViewLoader>& view_loader_registry() {
  static std::map<std::string, BackendViewLoader> loaders = {
      {"dense",
       [](MappedArtifact& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(DenseWeight::load_view(in, k, n));
       }},
      {"tw",
       [](MappedArtifact& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(TwWeight::load_view(in, k, n));
       }},
      {"tew",
       [](MappedArtifact& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(TewWeight::load_view(in, k, n));
       }},
      {"csr",
       [](MappedArtifact& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(CsrWeight::load_view(in, k, n));
       }},
      {"tw-int8",
       [](MappedArtifact& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(
             QuantTwWeight::load_view(in, k, n));
       }},
  };
  return loaders;
}

}  // namespace

void register_backend(const std::string& format, BackendFactory factory) {
  registry()[format] = std::move(factory);
}

std::vector<std::string> registered_formats() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool backend_registered(const std::string& format) {
  return registry().count(format) != 0;
}

std::unique_ptr<PackedWeight> make_packed(const std::string& format,
                                          const MatrixF& weights,
                                          const PackOptions& options) {
  const auto it = registry().find(format);
  if (it == registry().end()) {
    std::string known;
    for (const auto& name : registered_formats())
      known += (known.empty() ? "" : ", ") + name;
    throw std::out_of_range("make_packed: unknown weight format '" + format +
                            "' (registered: " + known + ")");
  }
  return it->second(weights, options);
}

void register_backend_loader(const std::string& format, BackendLoader loader) {
  loader_registry()[format] = std::move(loader);
}

bool backend_loader_registered(const std::string& format) {
  return loader_registry().count(format) != 0;
}

namespace {

/// Shared post-load validation for both load paths.
void check_loaded_weight(const PackedWeight* weight, const std::string& format,
                         std::uint64_t k, std::uint64_t n) {
  if (!weight || weight->k() != k || weight->n() != n ||
      weight->format() != format)
    throw std::runtime_error("load_packed_weight: loader for '" + format +
                             "' produced an object disagreeing with the "
                             "artifact header");
}

// Every on-wire index is int32, so no legitimate artifact can name a
// larger dimension — reject before any k- or n-sized allocation.
constexpr std::uint64_t kMaxDim = std::numeric_limits<std::int32_t>::max();

}  // namespace

std::unique_ptr<PackedWeight> load_packed_weight(std::istream& in) {
  if (wire::read_pod<std::uint32_t>(in) != wire::kMagicPackedWeight)
    throw std::runtime_error(
        "load_packed_weight: not a packed-weight artifact (bad magic)");
  const auto version = wire::read_pod<std::uint32_t>(in);
  if (version != wire::kContainerVersionV1 &&
      version != wire::kContainerVersionV2)
    throw std::runtime_error(
        "load_packed_weight: unsupported artifact version");
  const wire::Layout layout{version};
  const std::string format = wire::read_string(in);
  const auto k = wire::read_pod<std::uint64_t>(in);
  const auto n = wire::read_pod<std::uint64_t>(in);
  if (k > kMaxDim || n > kMaxDim)
    throw std::runtime_error(
        "load_packed_weight: corrupt artifact dimensions");

  const auto& loaders = loader_registry();
  const auto it = loaders.find(format);
  if (it == loaders.end()) {
    std::string known;
    for (const auto& [name, loader] : loaders)
      known += (known.empty() ? "" : ", ") + name;
    throw std::runtime_error("load_packed_weight: unknown weight format '" +
                             format + "' in artifact (loadable: " + known +
                             ")");
  }
  std::unique_ptr<PackedWeight> weight = it->second(
      in, static_cast<std::size_t>(k), static_cast<std::size_t>(n), layout);
  check_loaded_weight(weight.get(), format, k, n);
  return weight;
}

void register_backend_view_loader(const std::string& format,
                                  BackendViewLoader loader) {
  view_loader_registry()[format] = std::move(loader);
}

bool backend_view_loader_registered(const std::string& format) {
  return view_loader_registry().count(format) != 0;
}

std::unique_ptr<PackedWeight> load_packed_weight_mapped(MappedArtifact& in) {
  if (in.pod<std::uint32_t>() != wire::kMagicPackedWeight)
    throw std::runtime_error(
        "load_packed_weight: not a packed-weight artifact (bad magic)");
  const auto version = in.pod<std::uint32_t>();
  if (version == wire::kContainerVersionV1)
    throw std::runtime_error(
        "load_packed_weight: v1 artifacts are not alignment-padded and "
        "cannot be mapped zero-copy — use the stream loader "
        "(load_packed_weight), or re-save to upgrade to v2");
  if (version != wire::kContainerVersionV2)
    throw std::runtime_error(
        "load_packed_weight: unsupported artifact version");
  const std::string format = in.string();
  const auto k = in.pod<std::uint64_t>();
  const auto n = in.pod<std::uint64_t>();
  if (k > kMaxDim || n > kMaxDim)
    throw std::runtime_error(
        "load_packed_weight: corrupt artifact dimensions");

  const auto& loaders = view_loader_registry();
  const auto it = loaders.find(format);
  if (it == loaders.end()) {
    std::string known;
    for (const auto& [name, loader] : loaders)
      known += (known.empty() ? "" : ", ") + name;
    throw std::runtime_error("load_packed_weight: no view-loader for format '" +
                             format + "' (mappable: " + known +
                             "); use the stream loader");
  }
  std::unique_ptr<PackedWeight> weight =
      it->second(in, static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  check_loaded_weight(weight.get(), format, k, n);
  return weight;
}

}  // namespace tilesparse
