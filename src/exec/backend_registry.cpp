#include "exec/backend_registry.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "exec/csr_weight.hpp"
#include "exec/dense_weight.hpp"
#include "exec/quant_tw_weight.hpp"
#include "exec/tew_weight.hpp"
#include "exec/tw_weight.hpp"
#include "prune/importance.hpp"

namespace tilesparse {
namespace {

const TilePattern& require_pattern(const char* format,
                                   const PackOptions& options) {
  if (!options.pattern) {
    throw std::invalid_argument(std::string(format) +
                                " packing requires PackOptions.pattern");
  }
  return *options.pattern;
}

std::map<std::string, BackendFactory>& registry() {
  static std::map<std::string, BackendFactory> backends = {
      {"dense",
       [](const MatrixF& w, const PackOptions&) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<DenseWeight>(w);
       }},
      {"tw",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<TwWeight>(w, require_pattern("tw", o));
       }},
      {"tew",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         const TilePattern& pattern = require_pattern("tew", o);
         if (o.scores) {
           return std::make_unique<TewWeight>(w, pattern, *o.scores,
                                              o.tew_delta);
         }
         const MatrixF scores = magnitude_scores(w);
         return std::make_unique<TewWeight>(w, pattern, scores, o.tew_delta);
       }},
      {"csr",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<CsrWeight>(w, o.csr_tol);
       }},
      {"tw-int8",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<QuantTwWeight>(w, require_pattern("tw-int8", o));
       }},
  };
  return backends;
}

}  // namespace

void register_backend(const std::string& format, BackendFactory factory) {
  registry()[format] = std::move(factory);
}

std::vector<std::string> registered_formats() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool backend_registered(const std::string& format) {
  return registry().count(format) != 0;
}

std::unique_ptr<PackedWeight> make_packed(const std::string& format,
                                          const MatrixF& weights,
                                          const PackOptions& options) {
  const auto it = registry().find(format);
  if (it == registry().end()) {
    std::string known;
    for (const auto& name : registered_formats())
      known += (known.empty() ? "" : ", ") + name;
    throw std::out_of_range("make_packed: unknown weight format '" + format +
                            "' (registered: " + known + ")");
  }
  return it->second(weights, options);
}

}  // namespace tilesparse
