#include "exec/backend_registry.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <map>
#include <stdexcept>

#include "exec/csr_weight.hpp"
#include "exec/dense_weight.hpp"
#include "exec/quant_tw_weight.hpp"
#include "exec/tew_weight.hpp"
#include "exec/tw_weight.hpp"
#include "io/wire.hpp"
#include "prune/importance.hpp"

namespace tilesparse {
namespace {

const TilePattern& require_pattern(const char* format,
                                   const PackOptions& options) {
  if (!options.pattern) {
    throw std::invalid_argument(std::string(format) +
                                " packing requires PackOptions.pattern");
  }
  return *options.pattern;
}

std::map<std::string, BackendFactory>& registry() {
  static std::map<std::string, BackendFactory> backends = {
      {"dense",
       [](const MatrixF& w, const PackOptions&) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<DenseWeight>(w);
       }},
      {"tw",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<TwWeight>(w, require_pattern("tw", o));
       }},
      {"tew",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         const TilePattern& pattern = require_pattern("tew", o);
         if (o.scores) {
           return std::make_unique<TewWeight>(w, pattern, *o.scores,
                                              o.tew_delta);
         }
         const MatrixF scores = magnitude_scores(w);
         return std::make_unique<TewWeight>(w, pattern, scores, o.tew_delta);
       }},
      {"csr",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<CsrWeight>(w, o.csr_tol);
       }},
      {"tw-int8",
       [](const MatrixF& w,
          const PackOptions& o) -> std::unique_ptr<PackedWeight> {
         return std::make_unique<QuantTwWeight>(w, require_pattern("tw-int8", o));
       }},
  };
  return backends;
}

std::map<std::string, BackendLoader>& loader_registry() {
  static std::map<std::string, BackendLoader> loaders = {
      {"dense",
       [](std::istream& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(DenseWeight::load(in, k, n));
       }},
      {"tw",
       [](std::istream& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(TwWeight::load(in, k, n));
       }},
      {"tew",
       [](std::istream& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(TewWeight::load(in, k, n));
       }},
      {"csr",
       [](std::istream& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(CsrWeight::load(in, k, n));
       }},
      {"tw-int8",
       [](std::istream& in, std::size_t k, std::size_t n) {
         return std::unique_ptr<PackedWeight>(QuantTwWeight::load(in, k, n));
       }},
  };
  return loaders;
}

}  // namespace

void register_backend(const std::string& format, BackendFactory factory) {
  registry()[format] = std::move(factory);
}

std::vector<std::string> registered_formats() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool backend_registered(const std::string& format) {
  return registry().count(format) != 0;
}

std::unique_ptr<PackedWeight> make_packed(const std::string& format,
                                          const MatrixF& weights,
                                          const PackOptions& options) {
  const auto it = registry().find(format);
  if (it == registry().end()) {
    std::string known;
    for (const auto& name : registered_formats())
      known += (known.empty() ? "" : ", ") + name;
    throw std::out_of_range("make_packed: unknown weight format '" + format +
                            "' (registered: " + known + ")");
  }
  return it->second(weights, options);
}

void register_backend_loader(const std::string& format, BackendLoader loader) {
  loader_registry()[format] = std::move(loader);
}

bool backend_loader_registered(const std::string& format) {
  return loader_registry().count(format) != 0;
}

std::unique_ptr<PackedWeight> load_packed_weight(std::istream& in) {
  if (wire::read_pod<std::uint32_t>(in) != wire::kMagicPackedWeight)
    throw std::runtime_error(
        "load_packed_weight: not a packed-weight artifact (bad magic)");
  if (wire::read_pod<std::uint32_t>(in) != wire::kContainerVersion)
    throw std::runtime_error(
        "load_packed_weight: unsupported artifact version");
  const std::string format = wire::read_string(in);
  const auto k = wire::read_pod<std::uint64_t>(in);
  const auto n = wire::read_pod<std::uint64_t>(in);
  // Every on-wire index is int32, so no legitimate artifact can name a
  // larger dimension — reject before any k- or n-sized allocation.
  constexpr std::uint64_t kMaxDim = std::numeric_limits<std::int32_t>::max();
  if (k > kMaxDim || n > kMaxDim)
    throw std::runtime_error(
        "load_packed_weight: corrupt artifact dimensions");

  const auto& loaders = loader_registry();
  const auto it = loaders.find(format);
  if (it == loaders.end()) {
    std::string known;
    for (const auto& [name, loader] : loaders)
      known += (known.empty() ? "" : ", ") + name;
    throw std::runtime_error("load_packed_weight: unknown weight format '" +
                             format + "' in artifact (loadable: " + known +
                             ")");
  }
  std::unique_ptr<PackedWeight> weight =
      it->second(in, static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  if (!weight || weight->k() != k || weight->n() != n ||
      weight->format() != format)
    throw std::runtime_error("load_packed_weight: loader for '" + format +
                             "' produced an object disagreeing with the "
                             "artifact header");
  return weight;
}

}  // namespace tilesparse
