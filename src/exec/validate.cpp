#include "exec/validate.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "util/guards.hpp"

namespace tilesparse {
namespace {

using NodeId = ExecGraph::NodeId;
using SlotId = ExecGraph::SlotId;

constexpr std::size_t kUnknownWidth = static_cast<std::size_t>(-1);

std::string node_label(const ExecGraph& graph, NodeId id) {
  return "node #" + std::to_string(id) + " '" + graph.nodes()[id].name + "'";
}

std::string slot_label(const ExecGraph& graph, SlotId id) {
  return "slot '" + graph.slot_name(id) + "'";
}

/// Per-node ancestor sets as packed bitsets (graphs are tens of nodes;
/// N^2 bits is nothing, and it makes every hazard query O(1)).
class AncestorSets {
 public:
  AncestorSets(const ExecGraph& graph, const std::vector<NodeId>& topo)
      : words_((graph.node_count() + 63) / 64),
        bits_(graph.node_count() * words_, 0) {
    for (NodeId id : topo) {
      std::uint64_t* mine = row(id);
      for (NodeId dep : graph.nodes()[id].deps) {
        const std::uint64_t* theirs = row(dep);
        for (std::size_t w = 0; w < words_; ++w) mine[w] |= theirs[w];
        mine[dep / 64] |= std::uint64_t{1} << (dep % 64);
      }
    }
  }

  bool reaches(NodeId ancestor, NodeId descendant) const {
    return (row(descendant)[ancestor / 64] >>
            (ancestor % 64)) & 1u;
  }

 private:
  std::uint64_t* row(NodeId id) { return bits_.data() + id * words_; }
  const std::uint64_t* row(NodeId id) const {
    return bits_.data() + id * words_;
  }

  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// DFS cycle search over dependency edges; returns the cycle as a
/// node path (first == last) or empty when acyclic.
std::vector<NodeId> find_cycle(const ExecGraph& graph) {
  enum : unsigned char { kWhite, kGray, kBlack };
  const auto& nodes = graph.nodes();
  std::vector<unsigned char> color(nodes.size(), kWhite);
  // Explicit stack of (node, next dep index); gray_path mirrors the
  // stack so a back edge can be reported as a name path.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  std::vector<NodeId> gray_path;
  for (NodeId root = 0; root < nodes.size(); ++root) {
    if (color[root] != kWhite) continue;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    gray_path.push_back(root);
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      if (next < nodes[id].deps.size()) {
        const NodeId dep = nodes[id].deps[next++];
        if (color[dep] == kGray) {
          // Back edge: the cycle is dep ... id -> dep.
          std::vector<NodeId> cycle;
          const auto start =
              std::find(gray_path.begin(), gray_path.end(), dep);
          cycle.assign(start, gray_path.end());
          cycle.push_back(dep);
          return cycle;
        }
        if (color[dep] == kWhite) {
          color[dep] = kGray;
          stack.emplace_back(dep, 0);
          gray_path.push_back(dep);
        }
        continue;
      }
      color[id] = kBlack;
      gray_path.pop_back();
      stack.pop_back();
    }
  }
  return {};
}

/// Fallback execution order when the graph is cyclic (the cycle
/// finding dominates, but the def-use walk still wants *some* order).
std::vector<NodeId> insertion_order(const ExecGraph& graph) {
  std::vector<NodeId> order(graph.node_count());
  for (NodeId id = 0; id < order.size(); ++id) order[id] = id;
  return order;
}

void add_finding(std::vector<GraphFinding>& findings, FindingSeverity severity,
                 std::string code, std::string message) {
  findings.push_back(
      GraphFinding{severity, std::move(code), std::move(message)});
}

}  // namespace

std::string to_string(const GraphFinding& finding) {
  return std::string(finding.severity == FindingSeverity::kError ? "error["
                                                                 : "warning[") +
         finding.code + "]: " + finding.message;
}

GraphValidationError::GraphValidationError(std::vector<GraphFinding> findings)
    : std::runtime_error([&findings] {
        std::size_t errors = 0;
        for (const GraphFinding& f : findings)
          if (f.severity == FindingSeverity::kError) ++errors;
        std::string what = "ExecGraph validation failed with " +
                           std::to_string(errors) + " error(s):";
        for (const GraphFinding& f : findings)
          what += "\n  " + to_string(f);
        return what;
      }()),
      findings_(std::move(findings)) {}

std::vector<GraphFinding> audit_shard_slices(
    const PackedWeight& weight,
    const std::vector<std::pair<std::size_t, std::size_t>>& slices,
    bool deep_check) {
  std::vector<GraphFinding> findings;
  const std::string who = "format '" + std::string(weight.format()) + "' (" +
                          std::to_string(weight.k()) + " x " +
                          std::to_string(weight.n()) + ")";
  if (slices.empty()) {
    add_finding(findings, FindingSeverity::kError, "shard-plan",
                "empty shard plan for " + who);
    return findings;
  }
  // Structural tiling of [0, N): ascending, gap-free, overlap-free.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const auto [n0, n1] = slices[i];
    std::string range = "[";
    range += std::to_string(n0);
    range += ", ";
    range += std::to_string(n1);
    range += ")";
    if (n1 <= n0) {
      add_finding(findings, FindingSeverity::kError, "shard-plan",
                  "empty shard slice " + range + " of " + who);
      continue;
    }
    if (n0 < expected) {
      add_finding(findings, FindingSeverity::kError, "shard-plan",
                  "shard slice " + range + " overlaps the previous slice " +
                      "(columns [" + std::to_string(n0) + ", " +
                      std::to_string(expected) + ") are computed twice) in " +
                      who);
    } else if (n0 > expected) {
      add_finding(findings, FindingSeverity::kError, "shard-plan",
                  "shard plan of " + who + " skips columns [" +
                      std::to_string(expected) + ", " + std::to_string(n0) +
                      ") before slice " + range);
    }
    expected = std::max(expected, n1);
  }
  if (expected != weight.n()) {
    add_finding(findings, FindingSeverity::kError, "shard-plan",
                "shard plan of " + who + " covers columns [0, " +
                    std::to_string(expected) + ") but the weight has N = " +
                    std::to_string(weight.n()));
  }

  // Materialise each slice and verify the shard's declared shape.
  MatrixF whole;
  if (deep_check) whole = weight.to_dense();
  for (const auto& [n0, n1] : slices) {
    if (n1 <= n0 || n1 > weight.n()) continue;  // reported above
    std::unique_ptr<PackedWeight> shard;
    try {
      shard = weight.shard_cols(n0, n1);
    } catch (const std::exception& e) {
      add_finding(findings, FindingSeverity::kError, "shard-plan",
                  "shard_cols(" + std::to_string(n0) + ", " +
                      std::to_string(n1) + ") of " + who +
                      " threw: " + e.what());
      continue;
    }
    if (!shard) {
      add_finding(findings, FindingSeverity::kError, "shard-plan",
                  "shard_cols returned null for " + who);
      continue;
    }
    if (shard->k() != weight.k() || shard->n() != n1 - n0) {
      add_finding(
          findings, FindingSeverity::kError, "shard-plan",
          "shard_cols(" + std::to_string(n0) + ", " + std::to_string(n1) +
              ") of " + who + " returned a " + std::to_string(shard->k()) +
              " x " + std::to_string(shard->n()) + " shard (want " +
              std::to_string(weight.k()) + " x " + std::to_string(n1 - n0) +
              ")");
      continue;
    }
    if (deep_check) {
      const MatrixF part = shard->to_dense();
      bool diverged = false;
      for (std::size_t r = 0; r < whole.rows() && !diverged; ++r)
        for (std::size_t j = n0; j < n1; ++j)
          if (part(r, j - n0) != whole(r, j)) {
            add_finding(findings, FindingSeverity::kError, "shard-plan",
                        "shard columns [" + std::to_string(n0) + ", " +
                            std::to_string(n1) + ") of " + who +
                            " diverge from the whole weight (first at row " +
                            std::to_string(r) + ", col " + std::to_string(j) +
                            ")");
            diverged = true;
            break;
          }
    }
  }
  return findings;
}

std::vector<GraphFinding> validate_graph(const ExecGraph& graph,
                                         const ValidateOptions& options) {
  std::vector<GraphFinding> findings;
  const auto& nodes = graph.nodes();
  if (nodes.empty()) return findings;

  // ----------------------------------------------------------- cycles
  const std::vector<NodeId> cycle = find_cycle(graph);
  const bool cyclic = !cycle.empty();
  if (cyclic) {
    std::string path;
    for (NodeId id : cycle) {
      if (!path.empty()) path += " -> ";
      path += "#";
      path += std::to_string(id);
      path += " '";
      path += nodes[id].name;
      path += "'";
    }
    add_finding(findings, FindingSeverity::kError, "cycle",
                "dependency cycle: " + path);
  }

  // Execution order + ancestor sets (hazard queries) need acyclicity;
  // on a cyclic graph fall back to insertion order and skip the
  // dependency-completeness audit (the cycle error dominates).
  const std::vector<NodeId> order =
      cyclic ? insertion_order(graph) : graph.topo_order();
  const AncestorSets ancestors(graph, order);

  // Whether the builder declared external I/O at all; legacy graphs
  // (none declared) get implicit-input/-output leniency so validation
  // can be switched on over existing builders without churn.
  bool declared_io = false;
  for (SlotId s = 0; s < graph.slot_count(); ++s)
    declared_io = declared_io || graph.slot_is_input(s) ||
                  graph.slot_is_output(s);

  // Per-slot dataflow state for the walk.
  struct SlotState {
    bool written = false;
    NodeId last_writer = 0;
    std::vector<NodeId> readers_since_write;
    bool has_any_writer = false;
    std::size_t width = kUnknownWidth;  ///< propagated column count
    NodeId width_setter = 0;
    bool width_known_from_node = false;
  };
  std::vector<SlotState> slots(graph.slot_count());
  for (SlotId s = 0; s < slots.size(); ++s) {
    // Input slots the caller already filled carry a usable width.
    const MatrixF& buffer = graph.slot(s);
    if (graph.slot_is_input(s) && buffer.cols() > 0)
      slots[s].width = buffer.cols();
  }
  for (const auto& node : nodes)
    for (SlotId s : node.writes) slots[s].has_any_writer = true;

  // GEMM nodes whose output some later node (or the caller) consumes.
  std::vector<bool> gemm_consumed(nodes.size(), false);

  // ----------------------------------------- def-use + hazard coverage
  for (NodeId id : order) {
    const ExecGraph::Node& node = nodes[id];
    for (SlotId s : node.reads) {
      SlotState& slot = slots[s];
      if (!slot.written) {
        if (!graph.slot_is_input(s)) {
          if (slot.has_any_writer) {
            add_finding(findings, FindingSeverity::kError,
                        "read-before-write",
                        node_label(graph, id) + " reads " +
                            slot_label(graph, s) +
                            " before any writer of that slot has run");
          } else {
            add_finding(
                findings,
                declared_io ? FindingSeverity::kError
                            : FindingSeverity::kWarning,
                "read-before-write",
                node_label(graph, id) + " reads " + slot_label(graph, s) +
                    ", which no node writes and which is not marked as a "
                    "graph input (mark_input)");
          }
        }
      } else {
        if (slot.last_writer != id &&
            !ancestors.reaches(slot.last_writer, id) && !cyclic) {
          add_finding(findings, FindingSeverity::kError, "missing-dep",
                      "RAW hazard on " + slot_label(graph, s) + ": " +
                          node_label(graph, id) + " reads it but has no "
                          "dependency path to its writer " +
                          node_label(graph, slot.last_writer) +
                          " (add_dep or declare the dataflow)");
        }
        gemm_consumed[slot.last_writer] = true;
      }
      slot.readers_since_write.push_back(id);
    }
    for (SlotId s : node.writes) {
      SlotState& slot = slots[s];
      if (slot.written && !cyclic) {
        if (slot.last_writer != id &&
            !ancestors.reaches(slot.last_writer, id)) {
          add_finding(findings, FindingSeverity::kError, "missing-dep",
                      "WAW hazard on " + slot_label(graph, s) + ": " +
                          node_label(graph, id) +
                          " overwrites it with no dependency path to the "
                          "previous writer " +
                          node_label(graph, slot.last_writer));
        }
        for (NodeId reader : slot.readers_since_write) {
          if (reader != id && !ancestors.reaches(reader, id)) {
            add_finding(findings, FindingSeverity::kError, "missing-dep",
                        "WAR hazard on " + slot_label(graph, s) + ": " +
                            node_label(graph, id) +
                            " overwrites it with no dependency path to its "
                            "reader " +
                            node_label(graph, reader));
          }
        }
      }
      if (slot.written && slot.readers_since_write.empty() &&
          nodes[slot.last_writer].kind != ExecGraph::NodeKind::kGemm) {
        add_finding(findings, FindingSeverity::kWarning, "dead-write",
                    node_label(graph, slot.last_writer) + " wrote " +
                        slot_label(graph, s) + " but " +
                        node_label(graph, id) +
                        " overwrites it before any reader");
      }
      slot.written = true;
      slot.last_writer = id;
      slot.readers_since_write.clear();
    }

    // ------------------------------------------- shapes and numerics
    if (node.kind == ExecGraph::NodeKind::kGemm) {
      SlotState& in = slots[node.in];
      if (in.width != kUnknownWidth && in.width != node.weight->k()) {
        std::string msg = "gemm " + node_label(graph, id) + " expects K = " +
                          std::to_string(node.weight->k()) + " but " +
                          slot_label(graph, node.in) + " carries " +
                          std::to_string(in.width) + " columns";
        if (in.width_known_from_node)
          msg += " (written by " + node_label(graph, in.width_setter) + ")";
        add_finding(findings, FindingSeverity::kError, "shape-mismatch", msg);
      }
      SlotState& out = slots[node.out];
      out.width = node.weight->n();
      out.width_setter = id;
      out.width_known_from_node = true;
      if (node.bias &&
          (node.bias->rows() != 1 || node.bias->cols() != node.weight->n())) {
        add_finding(findings, FindingSeverity::kError, "shape-mismatch",
                    "gemm " + node_label(graph, id) + " bias is " +
                        std::to_string(node.bias->rows()) + " x " +
                        std::to_string(node.bias->cols()) + ", want 1 x " +
                        std::to_string(node.weight->n()));
      }
      if (!node.weight->supports(node.ctx.numerics)) {
        add_finding(findings, FindingSeverity::kError, "unsupported-numerics",
                    "gemm " + node_label(graph, id) + " requests " +
                        numerics_name(node.ctx.numerics) +
                        " activations, which format '" +
                        std::string(node.weight->format()) +
                        "' cannot execute");
      }
    } else {
      // A host body sizes its outputs itself; downstream width checks
      // restart from unknown.
      for (SlotId s : node.writes) {
        slots[s].width = kUnknownWidth;
        slots[s].width_known_from_node = false;
      }
    }
  }

  // --------------------------------------- dead stores and dead nodes
  for (SlotId s = 0; s < slots.size(); ++s) {
    const SlotState& slot = slots[s];
    if (!slot.written || graph.slot_is_output(s) || !declared_io) continue;
    if (!slot.readers_since_write.empty()) continue;
    if (nodes[slot.last_writer].kind == ExecGraph::NodeKind::kGemm)
      continue;  // reported as dead-node below
    add_finding(findings, FindingSeverity::kWarning, "dead-write",
                node_label(graph, slot.last_writer) + " wrote " +
                    slot_label(graph, s) +
                    ", which nothing reads and which is not marked as a "
                    "graph output (mark_output)");
  }
  if (declared_io) {
    for (NodeId id = 0; id < nodes.size(); ++id) {
      if (nodes[id].kind != ExecGraph::NodeKind::kGemm) continue;
      if (gemm_consumed[id] || graph.slot_is_output(nodes[id].out)) continue;
      if (slots[nodes[id].out].last_writer != id) continue;  // overwritten
      add_finding(findings, FindingSeverity::kWarning, "dead-node",
                  "gemm " + node_label(graph, id) + " computes " +
                      slot_label(graph, nodes[id].out) +
                      " but nothing consumes it");
    }
  }

  // -------------------------------------------------- shard-plan audit
  if (options.check_shard_plan && options.probe_shards >= 2) {
    std::unordered_set<const PackedWeight*> audited;
    for (const auto& node : nodes) {
      if (node.kind != ExecGraph::NodeKind::kGemm) continue;
      const PackedWeight* weight = node.weight;
      if (!weight->col_shardable() || weight->n() < 2) continue;
      if (!audited.insert(weight).second) continue;
      const std::size_t count = std::min(options.probe_shards, weight->n());
      const std::size_t base = weight->n() / count;
      const std::size_t rem = weight->n() % count;
      std::vector<std::pair<std::size_t, std::size_t>> slices;
      std::size_t n0 = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t n1 = n0 + base + (i < rem ? 1 : 0);
        slices.emplace_back(n0, n1);
        n0 = n1;
      }
      const bool deep =
          weight->k() * weight->n() <= options.deep_shard_check_max_elems;
      auto shard_findings = audit_shard_slices(*weight, slices, deep);
      findings.insert(findings.end(),
                      std::make_move_iterator(shard_findings.begin()),
                      std::make_move_iterator(shard_findings.end()));
    }
  }

  return findings;
}

void validate_graph_or_throw(const ExecGraph& graph,
                             const ValidateOptions& options) {
  std::vector<GraphFinding> findings = validate_graph(graph, options);
  const bool any_error =
      std::any_of(findings.begin(), findings.end(), [](const GraphFinding& f) {
        return f.severity == FindingSeverity::kError;
      });
  if (any_error) throw GraphValidationError(std::move(findings));
}

}  // namespace tilesparse
