#pragma once
// PackedWeight — the unified weight-execution interface.
//
// The paper's single logical op is C = A * W over interchangeable weight
// representations: dense, tile-wise (TW), tile-element-wise hybrid
// (TEW), element-wise sparse (CSR) and int8 TW.  Historically each
// representation had its own free-function family with its own
// signature; PackedWeight puts them behind one virtual interface so a
// layer holds "an executable weight" without caring how it is stored,
// and new formats plug in through the BackendRegistry.
//
// Semantics of matmul: C = alpha * A * W_packed + beta * C, with
// alpha/beta and activation numerics taken from the ExecContext.  The
// packed representation is the ground truth: to_dense() reconstructs
// exactly the matrix the backend multiplies by (pruned entries zero,
// int8 weights dequantised), so for every format
//   matmul(ctx, A, C)  ==  dense_gemm(A, to_dense(), C)
// up to the format's arithmetic (exact for fp32 formats).

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <utility>

#include "exec/exec_context.hpp"
#include "exec/weight_storage.hpp"
#include "io/wire.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

class PackedWeight {
 public:
  virtual ~PackedWeight() = default;

  /// C = alpha * A(M x K) * W(K x N) + beta * C.  C must be M x N.
  /// Throws std::invalid_argument on shape mismatch or when the context
  /// requests numerics the format cannot execute (see supports()).
  void matmul(const ExecContext& ctx, const MatrixF& a, MatrixF& c) const;

  /// Allocating convenience: returns alpha * A * W (beta ignored).
  MatrixF matmul(const ExecContext& ctx, const MatrixF& a) const;

  /// Dense K x N reconstruction of exactly what this backend executes.
  virtual MatrixF to_dense() const = 0;

  /// Storage footprint of the packed representation (weights + indices).
  virtual std::size_t bytes() const noexcept = 0;

  /// Multiply-accumulate count for an M-row activation batch.
  virtual double macs(std::size_t m) const noexcept = 0;

  /// Registry name of the format ("dense", "tw", "tew", "csr", "tw-int8").
  virtual std::string_view format() const noexcept = 0;

  /// Writes the backend-owned payload — everything needed to
  /// reconstruct this object without the original dense weights (e.g.
  /// the int8 format writes quantised tiles *with their scales*).  The
  /// enclosing container framing (magic, version, format name, k/n) is
  /// written by write_packed_weight (io/serialize); `layout` is the
  /// container's wire layout and must govern the payload too (v2 pads
  /// bulk payloads to 64-byte file offsets so they mmap in place).
  /// The matching load factory is registered with
  /// register_backend_loader.  The default throws std::logic_error so
  /// execution-only custom backends keep working until they opt into
  /// serialization.
  virtual void save(std::ostream& out, wire::Layout layout = {}) const;

  /// True when this weight's payload borrows an mmap'd artifact
  /// (loaded through load_packed_weight_mapped) instead of owning a
  /// private copy.
  bool borrows_storage() const noexcept { return keepalive_ != nullptr; }

  /// Whether matmul can honor the requested activation numerics.
  /// Every format handles fp32 and fp16 (non-native formats round a
  /// copy of A through binary16); int8 requires an int8-native format
  /// or a format that quantises dynamically.
  virtual bool supports(Numerics numerics) const noexcept;

  /// True when shard_cols() can slice this format exactly.  A format
  /// may claim shardability only when, for every output element, the
  /// slice accumulates the same terms in the same order as the whole
  /// weight — so a shard-and-join matmul is bit-identical to the
  /// unsharded one.  All five built-in formats qualify: dense and csr
  /// are column-independent, the tile formats slice tiles at column
  /// boundaries with kept_rows (and per-tile int8 scales) carried
  /// unchanged.  Custom backends stay unshardable until they opt in.
  virtual bool col_shardable() const noexcept { return false; }

  /// Returns a packed weight executing only columns [n0, n1) of this
  /// one (K x (n1 - n0)); used by the ExecScheduler to split very
  /// wide-N GEMM nodes across streams.  Throws std::logic_error when
  /// the format is not col_shardable(), std::invalid_argument on an
  /// empty or out-of-range column range.
  virtual std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                                   std::size_t n1) const;

  std::size_t k() const noexcept { return k_; }
  std::size_t n() const noexcept { return n_; }

 protected:
  PackedWeight(std::size_t k, std::size_t n) : k_(k), n_(n) {}

  /// C += A * W under `ctx` numerics (alpha/beta already handled by the
  /// public wrapper; implementations must only accumulate).
  virtual void accumulate(const ExecContext& ctx, const MatrixF& a,
                          MatrixF& c) const = 0;

  /// True when the backend's kernels apply fp16 rounding themselves, so
  /// the wrapper must not pre-round A.
  virtual bool native_fp16() const noexcept { return false; }

  /// Installed by the load_view factories: keeps the mapped artifact
  /// alive for as long as this weight borrows storage from it.  Owning
  /// weights (packed, stream-loaded, or sharded) leave it null.
  void set_storage_keepalive(StorageKeepalive keepalive) noexcept {
    keepalive_ = std::move(keepalive);
  }

 private:
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  StorageKeepalive keepalive_;
};

}  // namespace tilesparse
