#include "exec/tw_weight.hpp"

#include <stdexcept>

#include "io/mmap_file.hpp"
#include "io/serialize.hpp"
#include "io/wire.hpp"

namespace tilesparse {

namespace {

std::vector<BatchGroup> groups_from_tiles(const std::vector<MaskedTile>& tiles) {
  // build_batch_groups works off a TilePattern; reconstruct the width /
  // kept-row statistics directly so tile-only construction (deployment
  // load path) gets the same grouping.
  TilePattern pattern;
  for (const auto& tile : tiles) {
    TwTile spec;
    spec.out_cols = tile.out_cols;
    pattern.tiles.push_back(std::move(spec));
  }
  std::vector<BatchGroup> groups = build_batch_groups(pattern);
  for (auto& group : groups) {
    for (std::size_t i = 0; i < group.tile_ids.size(); ++i)
      group.kept_rows[i] = tiles[group.tile_ids[i]].kept_rows.size();
  }
  return groups;
}

}  // namespace

std::size_t masked_tile_bytes(const MaskedTile& tile,
                              std::size_t weight_bytes_per_element) noexcept {
  return tile.kept_rows.size() * tile.out_cols.size() *
             weight_bytes_per_element +
         tile.kept_rows.size() * sizeof(std::int32_t) +
         tile.out_cols.size() * sizeof(std::int32_t);
}

TwWeight::TwWeight(const MatrixF& weights, const TilePattern& pattern)
    : TwWeight(compact_tiles(weights, pattern), pattern.k, pattern.n) {}

TwWeight::TwWeight(std::vector<MaskedTile> tiles, std::size_t k, std::size_t n)
    : PackedWeight(k, n),
      tiles_(std::move(tiles)),
      groups_(groups_from_tiles(tiles_)),
      panels_(prepack_all_tile_panels(tiles_)) {}

void TwWeight::save(std::ostream& out, wire::Layout layout) const {
  write_tiles(out, tiles_, layout);
}

std::unique_ptr<TwWeight> TwWeight::load(std::istream& in, std::size_t k,
                                         std::size_t n) {
  std::vector<MaskedTile> tiles = read_tiles(in);
  for (const MaskedTile& tile : tiles) {
    wire::check_index_vector(tile.kept_rows, k, "tile row");
    wire::check_index_vector(tile.out_cols, n, "tile column");
  }
  return std::make_unique<TwWeight>(std::move(tiles), k, n);
}

std::unique_ptr<TwWeight> TwWeight::load_view(MappedArtifact& in,
                                              std::size_t k, std::size_t n) {
  std::vector<MaskedTile> tiles = read_tiles(in);
  for (const MaskedTile& tile : tiles) {
    wire::check_index_vector(tile.kept_rows, k, "tile row");
    wire::check_index_vector(tile.out_cols, n, "tile column");
  }
  auto weight = std::make_unique<TwWeight>(std::move(tiles), k, n);
  weight->set_storage_keepalive(in.keepalive());
  return weight;
}

MatrixF TwWeight::to_dense() const { return tiles_to_dense(tiles_, k(), n()); }

std::size_t TwWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tiles_) total += masked_tile_bytes(tile, sizeof(float));
  return total;
}

double TwWeight::macs(std::size_t m) const noexcept {
  double total = 0.0;
  for (const auto& tile : tiles_) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

std::unique_ptr<PackedWeight> TwWeight::shard_cols(std::size_t n0,
                                                   std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("TwWeight::shard_cols: bad column range");
  return std::make_unique<TwWeight>(slice_masked_tiles(tiles_, n0, n1), k(),
                                    n1 - n0);
}

void TwWeight::accumulate(const ExecContext& ctx, const MatrixF& a,
                          MatrixF& c) const {
  masked_gemm_all(a, tiles_, c, ctx.fp16(), &panels_);
}

}  // namespace tilesparse
