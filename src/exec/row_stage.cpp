#include "exec/row_stage.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace tilesparse {

const MatrixF& RowStage::gather(const std::vector<const MatrixF*>& parts) {
  if (parts.empty()) {
    throw std::invalid_argument("RowStage::gather: no parts");
  }
  const std::size_t cols = parts.front()->cols();
  std::size_t total_rows = 0;
  for (const MatrixF* part : parts) {
    if (part == nullptr || part->cols() != cols || part->rows() == 0) {
      throw std::invalid_argument(
          "RowStage::gather: parts must be non-empty row blocks sharing one "
          "column count");
    }
    total_rows += part->rows();
  }
  if (total_rows > capacity_rows_ || buffer_.cols() != cols) {
    // Grow-only: the staged buffer is reused across flushes, so steady
    // traffic stops allocating once the widest batch has been seen.
    capacity_rows_ = std::max(capacity_rows_, total_rows);
    buffer_ = MatrixF(capacity_rows_, cols);
  }
  slices_.clear();
  slices_.reserve(parts.size());
  std::size_t row = 0;
  for (const MatrixF* part : parts) {
    std::memcpy(buffer_.row(row).data(), part->data(),
                part->rows() * cols * sizeof(float));
    slices_.push_back(Slice{row, part->rows()});
    row += part->rows();
  }
  // Hand the caller a matrix whose rows() is exactly the batch: borrow
  // the staging storage rather than copying it.
  view_ = MatrixF::borrowed(buffer_.data(), total_rows, cols);
  return view_;
}

MatrixF RowStage::scatter(const MatrixF& batched, const Slice& slice) {
  if (slice.rows == 0 || slice.row0 + slice.rows > batched.rows()) {
    throw std::invalid_argument("RowStage::scatter: slice out of range (" +
                                std::to_string(slice.row0) + "+" +
                                std::to_string(slice.rows) + " of " +
                                std::to_string(batched.rows()) + " rows)");
  }
  MatrixF out(slice.rows, batched.cols());
  std::memcpy(out.data(), batched.row(slice.row0).data(),
              slice.rows * batched.cols() * sizeof(float));
  return out;
}

RowStage::Slice RowStage::map_groups(const Slice& in, std::size_t group_in,
                                     std::size_t group_out) {
  if (group_in == 0 || group_out == 0 || in.row0 % group_in != 0 ||
      in.rows % group_in != 0) {
    throw std::invalid_argument(
        "RowStage::map_groups: slice is not group-aligned");
  }
  return Slice{in.row0 / group_in * group_out, in.rows / group_in * group_out};
}

}  // namespace tilesparse
