#pragma once
// Owning-or-borrowing storage for PackedWeight payloads.
//
// Every exec backend historically owned its arrays outright (vectors,
// Matrix allocations) — so N serving processes loading the same
// artifact paid N copies of RSS.  The zero-copy load path
// (load_packed_weight_mapped) instead resolves payloads to spans into
// a read-only mmap (io/mmap_file.hpp); this header provides the small
// storage types that hold either form behind one interface:
//
//  * Matrix<T> itself grows a borrowed mode (tensor/matrix.hpp) for
//    the dense / tile / int8-tile payloads;
//  * ArrayStore<T> is the same idea for flat arrays (CSR/CSC index and
//    value sections);
//  * CsrStore / CscStore bundle the arrays of one sparse matrix and
//    hand kernels a CsrRef / CscRef view either way.
//
// Lifetime: borrowed storage aliases the mapping, so every borrowing
// weight holds a StorageKeepalive (shared_ptr to the MmapFile) — the
// mapping lives as long as any weight loaded from it.  Shards and
// copies always materialise owning storage; only the load_view path
// borrows.

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace tilesparse {

/// Shared ownership of whatever backs borrowed storage (in practice
/// the MmapFile).  Type-erased: storage code never needs the mapping's
/// interface, only its lifetime.
using StorageKeepalive = std::shared_ptr<const void>;

/// A flat array that either owns a vector or borrows a span of someone
/// else's immutable storage.  Copy/move keep working: the span member
/// points into external storage (never into the owned vector), so the
/// default member-wise copy stays valid.
template <typename T>
class ArrayStore {
 public:
  ArrayStore() = default;
  ArrayStore(std::vector<T> owned)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(owned)) {}

  static ArrayStore borrowed(std::span<const T> view) noexcept {
    ArrayStore s;
    s.view_ = view;
    s.borrows_ = true;
    return s;
  }

  std::span<const T> span() const noexcept {
    return borrows_ ? view_ : std::span<const T>(owned_);
  }
  const T* data() const noexcept { return span().data(); }
  std::size_t size() const noexcept {
    return borrows_ ? view_.size() : owned_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  bool borrows() const noexcept { return borrows_; }

  const T& operator[](std::size_t i) const noexcept { return span()[i]; }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  bool borrows_ = false;
};

/// CSR arrays in owning-or-borrowing form; kernels consume ref().
struct CsrStore {
  std::size_t rows = 0;
  std::size_t cols = 0;
  ArrayStore<std::int64_t> row_ptr;
  ArrayStore<std::int32_t> col_idx;
  ArrayStore<float> values;

  CsrStore() = default;
  explicit CsrStore(Csr own)
      : rows(own.rows),
        cols(own.cols),
        row_ptr(std::move(own.row_ptr)),
        col_idx(std::move(own.col_idx)),
        values(std::move(own.values)) {}

  std::size_t nnz() const noexcept { return values.size(); }
  bool borrows() const noexcept { return values.borrows(); }
  CsrRef ref() const noexcept {
    return {rows, cols, row_ptr.span(), col_idx.span(), values.span()};
  }
};

/// CSC arrays in owning-or-borrowing form; kernels consume ref().
struct CscStore {
  std::size_t rows = 0;
  std::size_t cols = 0;
  ArrayStore<std::int64_t> col_ptr;
  ArrayStore<std::int32_t> row_idx;
  ArrayStore<float> values;

  CscStore() = default;
  explicit CscStore(Csc own)
      : rows(own.rows),
        cols(own.cols),
        col_ptr(std::move(own.col_ptr)),
        row_idx(std::move(own.row_idx)),
        values(std::move(own.values)) {}

  std::size_t nnz() const noexcept { return values.size(); }
  bool borrows() const noexcept { return values.borrows(); }
  CscRef ref() const noexcept {
    return {rows, cols, col_ptr.span(), row_idx.span(), values.span()};
  }
};

}  // namespace tilesparse
