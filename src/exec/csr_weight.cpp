#include "exec/csr_weight.hpp"

#include <stdexcept>

#include "io/mmap_file.hpp"
#include "io/serialize.hpp"
#include "sparse/spmm.hpp"

namespace tilesparse {

CsrWeight::CsrWeight(const MatrixF& weights, float tol)
    : CsrWeight(csr_from_dense(weights, tol)) {}

CsrWeight::CsrWeight(Csr csr) : CsrWeight(CsrStore(std::move(csr))) {}

CsrWeight::CsrWeight(CsrStore csr)
    : PackedWeight(csr.rows, csr.cols),
      csr_(std::move(csr)),
      panels_(build_csr_panels(csr_.ref())) {}

void CsrWeight::save(std::ostream& out, wire::Layout layout) const {
  write_csr(out, csr_.ref(), layout);
}

std::unique_ptr<CsrWeight> CsrWeight::load(std::istream& in, std::size_t k,
                                           std::size_t n) {
  Csr csr = read_csr(in);
  if (csr.rows != k || csr.cols != n)
    throw std::runtime_error(
        "CsrWeight::load: payload shape disagrees with artifact header");
  return std::make_unique<CsrWeight>(std::move(csr));
}

std::unique_ptr<CsrWeight> CsrWeight::load_view(MappedArtifact& in,
                                                std::size_t k, std::size_t n) {
  CsrStore csr = read_csr(in);
  if (csr.rows != k || csr.cols != n)
    throw std::runtime_error(
        "CsrWeight::load: payload shape disagrees with artifact header");
  auto weight = std::unique_ptr<CsrWeight>(new CsrWeight(std::move(csr)));
  weight->set_storage_keepalive(in.keepalive());
  return weight;
}

MatrixF CsrWeight::to_dense() const { return csr_to_dense(csr_.ref()); }

std::size_t CsrWeight::bytes() const noexcept { return csr_bytes(csr_.ref()); }

double CsrWeight::macs(std::size_t m) const noexcept {
  return static_cast<double>(m) * static_cast<double>(csr_.nnz());
}

std::unique_ptr<PackedWeight> CsrWeight::shard_cols(std::size_t n0,
                                                    std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("CsrWeight::shard_cols: bad column range");
  const CsrRef src = csr_.ref();
  Csr slice;
  slice.rows = src.rows;
  slice.cols = n1 - n0;
  slice.row_ptr.reserve(src.rows + 1);
  slice.row_ptr.push_back(0);
  for (std::size_t r = 0; r < src.rows; ++r) {
    for (auto p = src.row_ptr[r]; p < src.row_ptr[r + 1]; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      const auto col = static_cast<std::size_t>(src.col_idx[idx]);
      if (col < n0 || col >= n1) continue;
      slice.col_idx.push_back(static_cast<std::int32_t>(col - n0));
      slice.values.push_back(src.values[idx]);
    }
    slice.row_ptr.push_back(static_cast<std::int64_t>(slice.values.size()));
  }
  return std::make_unique<CsrWeight>(std::move(slice));
}

void CsrWeight::accumulate(const ExecContext&, const MatrixF& a,
                           MatrixF& c) const {
  // fp16 activation rounding is applied by the base wrapper (this
  // kernel has no native half path).
  csr_panels_spmm_accumulate(a, panels_, c);
}

}  // namespace tilesparse
