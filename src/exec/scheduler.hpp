#pragma once
// ExecScheduler — runs an ExecGraph on the shared ThreadPool.
//
// The scheduler is the paper's Fig. 7-4 stream assignment on CPU
// workers: each "stream" is one pool worker looping over a shared
// ready queue, so independent nodes (the four attention projections,
// an NMT model's encoder/decoder input GEMMs) execute concurrently
// while dependency edges hold everything else in dataflow order.
// Every node's arithmetic is unchanged — scheduling only reorders
// *which* node runs when — so a scheduled run is bit-identical to the
// single-stream reference (streams = 1), which executes the graph
// serially on the calling thread with no queueing at all.
//
// Wide-N sharding: a GEMM whose output is very wide can be split into
// column shards with a final join (the second axis of the paper's
// scheme).  Shards are exact column slices of the packed weight —
// PackedWeight::shard_cols(), implemented by the formats whose column
// arithmetic is independent (dense, csr) — each computing its columns
// into private scratch; the join copies them into the output slot and
// applies the bias.  Per output element the accumulation sequence is
// the one the whole weight would have used, so sharded results stay
// bit-identical too.  Shard granularity comes from the
// PlannerCalibration cost model: a shard must carry enough MACs to
// amortise one dispatch, measured against the host's dense rate.
//
// Thread budget: a node's ExecContext.threads still bounds the OpenMP
// parallelism *inside* its kernel, so "S streams x T threads each"
// composes with an overall budget of S*T.  GemmScratch is
// thread_local, so every stream (pool worker) packs panels into its
// own buffers — no scratch is shared across streams.

#include <cstddef>
#include <memory>
#include <vector>

#include "exec/calibration.hpp"
#include "exec/graph.hpp"
#include "util/cancellation.hpp"
#include "util/threadpool.hpp"

namespace tilesparse {

struct SchedulerOptions {
  /// Concurrent worker streams.  1 = single-stream reference (serial,
  /// no queue, no shards); 0 = the pool's worker count.
  std::size_t streams = 0;
  /// Statically verify the graph (exec/validate.hpp) once per graph
  /// build id before the first dispatch — def-use, hazard-edge
  /// completeness, acyclicity, shapes, shard plans.  run() throws
  /// GraphValidationError listing every finding on a malformed graph.
  bool validate = true;
  /// Split very wide GEMM outputs into column shards.  All five
  /// built-in formats slice exactly (tile formats carry kept_rows and
  /// per-tile scales through the slice); int8 *activation* nodes are
  /// still never sharded — the dense backend's dynamic per-tensor
  /// weight scale is a whole-matrix property.
  bool shard_wide_n = true;
  /// Never split below this many output columns per shard.
  std::size_t min_shard_cols = 32;
  /// Activation rows assumed when sizing shards (the plan is built
  /// before inputs exist; serving batches near this keep shards
  /// balanced).
  std::size_t reference_m = 64;
  /// Estimated cost of dispatching one task; the calibration's
  /// per-format rate converts it into a minimum per-shard MAC count.
  /// Negative = use the calibration's measured shard_overhead_us
  /// ("tile-shard" entry); 0 disables the floor entirely.
  double dispatch_overhead_us = -1.0;
  /// Cost-model constants; null uses the process-wide
  /// planner_calibration().
  const PlannerCalibration* calibration = nullptr;
};

class ExecScheduler {
 public:
  /// `pool` must outlive the scheduler; null uses ThreadPool::global().
  explicit ExecScheduler(SchedulerOptions options = {},
                         ThreadPool* pool = nullptr);

  /// Executes every node of `graph` in dependency order, overlapping
  /// independent nodes across streams.  Blocks until the graph is
  /// complete.  The first exception a node throws is rethrown here
  /// (remaining nodes are abandoned, already-running ones finish).
  /// Not reentrant: one run at a time per scheduler.
  void run(ExecGraph& graph);

  const SchedulerOptions& options() const noexcept { return options_; }

  /// Installs a cooperative cancellation token (non-owning; null
  /// detaches).  run() checks it at every node boundary — between
  /// kernels, where no state is half-written — and abandons the rest of
  /// the graph by throwing CancelledError once the token is cancelled
  /// or past its deadline.  A cancelled run leaves the graph reusable:
  /// the next run() re-executes every node.  The serving runtime arms
  /// one token per worker with the active request's deadline.
  void set_cancel_token(const CancelToken* token) noexcept { cancel_ = token; }
  const CancelToken* cancel_token() const noexcept { return cancel_; }

  /// Streams the next run will use (options resolved against the pool).
  std::size_t streams() const noexcept;

  /// Diagnostics of the most recent run().
  struct RunStats {
    std::size_t nodes = 0;          ///< graph nodes executed
    std::size_t tasks = 0;          ///< dispatch units (shards + joins included)
    std::size_t sharded_nodes = 0;  ///< GEMM nodes split into column shards
    std::size_t shards = 0;         ///< total shard tasks
  };
  const RunStats& last_stats() const noexcept { return stats_; }

 private:
  struct Shard {
    std::unique_ptr<PackedWeight> weight;  ///< columns [n0, n1) of the node's weight
    std::size_t n0 = 0, n1 = 0;
    MatrixF scratch;  ///< m x (n1 - n0), reused across runs
  };
  struct NodePlan {
    std::vector<Shard> shards;  ///< empty = execute the node whole
  };
  /// One dispatch unit of the expanded task DAG (static across runs;
  /// only the pending counters are per-run state).
  struct Task {
    ExecGraph::NodeId node = 0;
    std::ptrdiff_t shard = -1;  ///< >= 0: shard index; -1: whole node; -2: join
    std::size_t initial_pending = 0;
    std::vector<std::size_t> successors;
  };

  /// One cached expansion: shard plans + task DAG for a specific
  /// (graph build id, node count, stream count).
  struct Plan {
    std::uint64_t build_id = 0;
    std::size_t node_count = 0;
    std::size_t streams = 0;
    std::uint64_t last_used = 0;  ///< LRU stamp
    std::vector<NodePlan> node_plans;
    std::vector<Task> tasks;
    std::vector<std::size_t> initially_ready;
    std::size_t sharded_nodes = 0;
    std::size_t shards = 0;
  };

  Plan& prepare(ExecGraph& graph);
  std::size_t shard_count(const ExecGraph::Node& node) const;
  void execute_task(ExecGraph& graph, Plan& plan, const Task& task);
  void run_serial(ExecGraph& graph);
  void run_concurrent(ExecGraph& graph);

  SchedulerOptions options_;
  ThreadPool* pool_;
  const CancelToken* cancel_ = nullptr;
  // Plan cache: shard slices repack weight columns and the task DAG
  // expansion allocates, so both are built once per (graph build id,
  // node count, stream count) — the serving hot path re-runs the same
  // graph per request.  A small LRU (not a single entry) because the
  // batching front end rotates a handful of M-keyed graphs through one
  // worker's scheduler; one slot would replan on every alternation.
  // Models allocate a fresh ExecGraph (fresh build id) whenever weights
  // are re-packed; the node count catches a graph that grew new nodes
  // in place.
  static constexpr std::size_t kPlanCacheCapacity = 8;
  std::vector<std::unique_ptr<Plan>> plan_cache_;
  std::uint64_t plan_stamp_ = 0;
  /// Build ids already validated by this scheduler (bounded ring).
  std::vector<std::uint64_t> validated_build_ids_;
  RunStats stats_;
};

}  // namespace tilesparse
