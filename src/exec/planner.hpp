#pragma once
// Format planner — picks the cheapest execution format for one weight
// matrix from pattern statistics, without packing every candidate.
//
// The cost model is deliberately simple (this is a packing-time
// heuristic, not the device simulator in src/sim): estimated cost =
// effective MACs for a reference batch + a weight-traffic term, with
// per-format MAC efficiency factors taken from a PlannerCalibration.
// Out of the box the calibration holds defaults mirroring the paper's
// measured gaps (CSR gather 8x slower than tiled-panel MACs — the
// cuSparse-vs-tensor-core efficiency gap, device model
// csr_spmm_efficiency = 0.045 vs dense tensor-core ~0.4; int8 at half
// the per-MAC cost).  On a real host, run the `calibrate_planner` bench
// tool: it times the actual kernels, derives the ratios, and writes a
// JSON artifact that io/serialize loads back so rank_formats() reflects
// what this machine measures rather than what we guessed.

#include <memory>
#include <string>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/backend_registry.hpp"
#include "exec/calibration.hpp"
#include "exec/packed_weight.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

struct PlannerOptions {
  /// Reference activation row count the cost is evaluated at.
  std::size_t m = 64;
  /// Admit "tw-int8" as a candidate (an accuracy trade the caller must
  /// opt into).
  bool allow_int8 = false;
  /// Cost-model constants; null uses the process-wide
  /// planner_calibration() (measured when the host ran
  /// calibrate_planner, paper-derived defaults otherwise).
  const PlannerCalibration* calibration = nullptr;
};

struct FormatChoice {
  std::string format;
  double cost = 0.0;       ///< model cost (lower is better)
  double macs = 0.0;       ///< raw multiply-accumulates at options.m
  std::size_t bytes = 0;   ///< packed storage footprint estimate
};

/// Ranks candidate formats for `weights` (already pruned in place when a
/// pattern exists), cheapest first.  Candidates: "dense", "csr", and —
/// when `pattern` is non-null — "tw" (+ "tw-int8" if allowed).
std::vector<FormatChoice> rank_formats(const MatrixF& weights,
                                       const TilePattern* pattern,
                                       const PlannerOptions& options = {});

/// Packs `weights` under the cheapest format per rank_formats().
/// `pack.pattern` doubles as the planner's pattern input.
std::unique_ptr<PackedWeight> pack_weight(const MatrixF& weights,
                                          const PackOptions& pack = {},
                                          const PlannerOptions& options = {});

}  // namespace tilesparse
