#pragma once
// validate_graph — static analysis over an ExecGraph before anything
// dispatches it.
//
// The two worst bugs this repo has shipped (a ThreadPool
// use-after-return, unhardened wire parsing) were both failures no
// test could see until runtime.  Graphs and shard plans have the same
// character: a missing dependency edge or a shard slicing that drops a
// column produces *plausible numbers*, silently.  This verifier proves
// the structural properties once, before the first dispatch:
//
//  * Slot def-use: a read must be preceded (in execution order) by a
//    write or by an external feed declared with mark_input(); a final
//    write must be consumed by a reader or declared with
//    mark_output() (else it is a dead store); a pure GEMM node whose
//    output nobody consumes is a dead node.
//  * Dependency completeness: every RAW/WAW/WAR hazard implied by slot
//    dataflow must be covered by a dependency *path* (derived or
//    explicit).  A missing edge is reported by name — the verifier
//    never silently serializes the pair.
//  * Acyclicity: explicit add_dep edges may point either way, so the
//    verifier runs real cycle detection and prints the cycle as a
//    node-name path.
//  * Shape/numerics consistency: slot widths are propagated through
//    GEMM nodes (out = weight->n()); a consumer whose weight K
//    disagrees with the producer's N is reported, as are bias-shape
//    mismatches and ExecContext numerics the weight cannot execute.
//  * Shard-plan audit: for every col_shardable() GEMM weight the
//    verifier re-derives an even column slicing, materialises the
//    shards via shard_cols(), and verifies they tile [0, N) exactly
//    with no overlap (plus a value-level to_dense comparison for small
//    weights).  audit_shard_slices() is the same check exposed for the
//    scheduler's *actual* cached plans.
//
// Findings carry a severity: errors make validate_graph_or_throw (and
// the scheduler, which validates once per graph build id) throw
// GraphValidationError listing everything found; warnings ride along
// in the list but never throw.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/graph.hpp"

namespace tilesparse {

enum class FindingSeverity { kWarning, kError };

struct GraphFinding {
  FindingSeverity severity = FindingSeverity::kError;
  /// Stable machine-readable class: "cycle", "read-before-write",
  /// "missing-dep", "dead-write", "dead-node", "shape-mismatch",
  /// "unsupported-numerics", "shard-plan".
  std::string code;
  /// Human-readable diagnostic naming the nodes/slots involved.
  std::string message;
};

/// Thrown when validation finds errors.  what() summarises; findings()
/// carries every finding (warnings included) for programmatic use.
class GraphValidationError : public std::runtime_error {
 public:
  explicit GraphValidationError(std::vector<GraphFinding> findings);
  const std::vector<GraphFinding>& findings() const noexcept {
    return findings_;
  }

 private:
  std::vector<GraphFinding> findings_;
};

struct ValidateOptions {
  /// Audit shard slicings of every col_shardable() GEMM weight.
  bool check_shard_plan = true;
  /// Shard count probed per weight (clamped to its N); 0 disables the
  /// re-derivation (audit_shard_slices can still be called directly).
  std::size_t probe_shards = 4;
  /// Weights up to this many elements also get the value-level check
  /// (concatenated shard to_dense() == whole to_dense()).
  std::size_t deep_shard_check_max_elems = 1u << 16;
};

/// Runs every check; returns all findings (empty = clean).
std::vector<GraphFinding> validate_graph(const ExecGraph& graph,
                                         const ValidateOptions& options = {});

/// validate_graph, throwing GraphValidationError if any finding is an
/// error.
void validate_graph_or_throw(const ExecGraph& graph,
                             const ValidateOptions& options = {});

/// Audits an explicit shard plan for `weight`: `slices` must be
/// ascending, non-empty, non-overlapping [n0, n1) ranges tiling
/// [0, weight.n()) exactly, and shard_cols() must return a shard of
/// the requested shape for each.  Used by validate_graph on derived
/// plans and by the ExecScheduler on its cached ones.
std::vector<GraphFinding> audit_shard_slices(
    const PackedWeight& weight,
    const std::vector<std::pair<std::size_t, std::size_t>>& slices,
    bool deep_check = false);

/// One-line rendering ("error[missing-dep]: ...") used by what() and
/// the CLI surfaces.
std::string to_string(const GraphFinding& finding);

}  // namespace tilesparse
