#pragma once
// CsrWeight — element-wise sparse execution, the cuSparse-style EW/VW
// baseline: the weight matrix stored as CSR of itself, executed with
// the gather/scatter dense x CSR kernel.  This is the format the paper
// argues against at moderate sparsity (poor locality), kept as a
// backend both as the comparison baseline and because it wins at
// extreme unstructured sparsity.

#include <iosfwd>
#include <memory>

#include "exec/packed_weight.hpp"
#include "exec/weight_storage.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"

namespace tilesparse {

class MappedArtifact;

class CsrWeight final : public PackedWeight {
 public:
  /// Packs `weights` (K x N), dropping |x| <= tol.
  explicit CsrWeight(const MatrixF& weights, float tol = 0.0f);

  /// Wraps an existing CSR (of the weight matrix itself).
  explicit CsrWeight(Csr csr);

  /// Deserializes a payload written by save(): the CSR arrays,
  /// validated against the artifact's `k`/`n`.
  static std::unique_ptr<CsrWeight> load(std::istream& in, std::size_t k,
                                         std::size_t n);

  /// Zero-copy load: the CSR index/value arrays borrow the mapping in
  /// place; execution still runs on privately built strip panels,
  /// identical to the stream path.
  static std::unique_ptr<CsrWeight> load_view(MappedArtifact& in,
                                              std::size_t k, std::size_t n);

  void save(std::ostream& out, wire::Layout layout = {}) const override;
  MatrixF to_dense() const override;
  std::size_t bytes() const noexcept override;
  double macs(std::size_t m) const noexcept override;
  std::string_view format() const noexcept override { return "csr"; }

  /// The SpMM kernel scatters each output column's terms in ascending
  /// K order independent of the other columns, so a CSR column slice
  /// executes bit-identically.
  bool col_shardable() const noexcept override { return true; }
  std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                           std::size_t n1) const override;

  const CsrStore& csr() const noexcept { return csr_; }
  const CsrPanels& panels() const noexcept { return panels_; }

 protected:
  void accumulate(const ExecContext& ctx, const MatrixF& a,
                  MatrixF& c) const override;

 private:
  explicit CsrWeight(CsrStore csr);

  CsrStore csr_;
  /// Strip-partitioned execution layout, built once at pack time (the
  /// CSR itself stays authoritative for serialization / to_dense).
  /// Shards rebuild their own panels from the sliced CSR in the ctor.
  CsrPanels panels_;
};

}  // namespace tilesparse
