#pragma once
// PlannerCalibration — measured cost-model constants for the format
// planner.
//
// The planner charges each candidate format a MAC count scaled by a
// per-format efficiency factor plus a weight-traffic term.  The seed
// shipped those factors as hard-coded guesses (CSR gather 8x, int8
// 0.5x); this struct makes them data, populated on a given host by the
// `calibrate_planner` bench tool (which times the real kernels and
// writes the result as JSON via io/serialize).  A process-wide default
// is installed with set_planner_calibration(); rank_formats() consults
// it unless the caller passes an explicit override.

#include <string>
#include <string_view>

namespace tilesparse {

struct PlannerCalibration {
  /// Cost of one CSR MAC relative to one dense-panel fp32 MAC.  The
  /// seed's scalar gather/scatter kernel ran ~14x off dense; the panel
  /// SpMM (strip fragments + vector row broadcast) brings the default
  /// down to ~2.5 (measured ratio on the reference host).
  double csr_mac_penalty = 2.5;
  /// Cost of one TW masked-panel MAC relative to dense.  ~1 by design
  /// (TW keeps the dense substrate), but measured on this host it also
  /// absorbs pack/scatter overhead.
  double tw_mac_penalty = 1.0;
  /// Cost of one BSR MAC relative to dense (stored-block micro-GEMMs;
  /// > 1 because blocks bound the K-reuse per panel pack).
  double bsr_mac_penalty = 1.5;
  /// Cost of one int8 MAC relative to one fp32 MAC (narrower
  /// arithmetic; < 1 when the int8 kernel outruns fp32).
  double int8_mac_discount = 0.5;
  /// Weight-traffic term: MAC-equivalents charged per packed byte, so
  /// the memory footprint breaks ties when the batch is small.
  double macs_per_byte = 4.0;
  /// Fixed cost (microseconds) of dispatching and joining one extra
  /// wide-N shard: slice lookup, stream handoff, C-column join.  The
  /// scheduler's shard sizing charges this against the per-shard
  /// speedup ("tile-shard" entry of the calibration artifact).
  double shard_overhead_us = 20.0;
  /// Measured dense fp32 rate (GFLOP/s) the ratios were derived from;
  /// 0 means the constants are the uncalibrated defaults.
  double dense_gflops = 0.0;
  /// Free-form provenance tag ("hostname, date, shape") written by the
  /// calibration tool.
  std::string source;

  bool measured() const noexcept { return dense_gflops > 0.0; }

  /// Relative cost of one MAC in `format` ("dense", "tw", "tew", "csr",
  /// "bsr", "tw-int8") vs a dense fp32 MAC; unknown formats price as
  /// dense.  Used by the planner's ranking and the scheduler's shard
  /// sizing.
  double mac_penalty(std::string_view format) const noexcept;
};

/// Process-wide calibration the planner uses by default.  On first use
/// it auto-loads a host artifact: the file named by the
/// TS_PLANNER_CALIBRATION environment variable, else
/// "planner_calibration.json" in the working directory (where
/// calibrate_planner writes it); any failure silently falls back to
/// the uncalibrated constants above.
const PlannerCalibration& planner_calibration() noexcept;

/// Installs `calibration` as the process-wide default.  Thread-
/// compatible: expected at startup, before concurrent planning begins.
void set_planner_calibration(const PlannerCalibration& calibration);

}  // namespace tilesparse
