#pragma once
// TwWeight — tile-wise sparse execution (the paper's primary format):
// compacted MaskedTiles run through the packed masked GEMM, batched by
// equal tile width.  fp16 rounds the packed A panels natively inside
// the kernel; int8 weight storage is a separate format ("tw-int8").

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/tile_exec.hpp"
#include "core/tile_pattern.hpp"
#include "exec/packed_weight.hpp"
#include "gemm/masked_gemm.hpp"

namespace tilesparse {

class MappedArtifact;

class TwWeight final : public PackedWeight {
 public:
  /// Packs `weights` (K x N, already pruned in place) under `pattern`.
  TwWeight(const MatrixF& weights, const TilePattern& pattern);

  /// Wraps pre-compacted tiles (e.g. loaded from a deployment artifact).
  TwWeight(std::vector<MaskedTile> tiles, std::size_t k, std::size_t n);

  /// Deserializes a payload written by save(): the compacted tiles,
  /// bounds-checked against the artifact's `k`/`n`.  (The tile blob is
  /// self-describing — its TSTL header carries the wire version.)
  static std::unique_ptr<TwWeight> load(std::istream& in, std::size_t k,
                                        std::size_t n);

  /// Zero-copy load: each tile's weight matrix borrows the mapping in
  /// place (index vectors, a few percent of the payload, are copied);
  /// execution still runs on privately pre-packed panels, identical to
  /// the stream path.
  static std::unique_ptr<TwWeight> load_view(MappedArtifact& in,
                                             std::size_t k, std::size_t n);

  void save(std::ostream& out, wire::Layout layout = {}) const override;
  MatrixF to_dense() const override;
  std::size_t bytes() const noexcept override;
  double macs(std::size_t m) const noexcept override;
  std::string_view format() const noexcept override { return "tw"; }

  /// Slicing out_cols at tile boundaries leaves every tile's kept_rows
  /// (and hence the kernel's K-blocking and per-lane accumulation
  /// order) untouched, so shard-joins are bit-identical to the serial
  /// path.
  bool col_shardable() const noexcept override { return true; }
  std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                           std::size_t n1) const override;

  const std::vector<MaskedTile>& tiles() const noexcept { return tiles_; }
  /// Equal-width batch groups (paper Fig. 7-3), for schedulers/models.
  const std::vector<BatchGroup>& batch_groups() const noexcept {
    return groups_;
  }

 protected:
  void accumulate(const ExecContext& ctx, const MatrixF& a,
                  MatrixF& c) const override;
  bool native_fp16() const noexcept override { return true; }

 private:
  std::vector<MaskedTile> tiles_;
  std::vector<BatchGroup> groups_;
  /// B panels pre-packed at construction (shards rebuild their own in
  /// the ctor); replaces the per-call packing of the gather fallback.
  std::vector<TilePanels> panels_;
};

/// Storage accounting shared by the TW-family backends: tile payload
/// bytes plus the row/column index vectors.
std::size_t masked_tile_bytes(const MaskedTile& tile,
                              std::size_t weight_bytes_per_element) noexcept;

}  // namespace tilesparse
