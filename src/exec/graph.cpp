#include "exec/graph.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace tilesparse {

ExecGraph::ExecGraph() {
  static std::atomic<std::uint64_t> next_id{1};
  build_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

ExecGraph::SlotId ExecGraph::add_slot(std::string name) {
  Slot slot;
  slot.name = std::move(name);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void ExecGraph::check_slot(SlotId id, const char* what) const {
  if (id >= slots_.size()) {
    throw std::invalid_argument(std::string("ExecGraph: ") + what +
                                " slot out of range");
  }
}

void ExecGraph::link(NodeId node, const std::vector<SlotId>& reads,
                     const std::vector<SlotId>& writes) {
  auto depend_on = [&](NodeId before) {
    if (before == node) return;
    auto& deps = nodes_[node].deps;
    if (std::find(deps.begin(), deps.end(), before) == deps.end()) {
      deps.push_back(before);
      nodes_[before].dependents.push_back(node);
    }
  };
  for (SlotId id : reads) {
    Slot& slot = slots_[id];
    if (slot.written) depend_on(slot.last_writer);  // RAW
    slot.readers_since_write.push_back(node);
  }
  for (SlotId id : writes) {
    Slot& slot = slots_[id];
    if (slot.written) depend_on(slot.last_writer);  // WAW
    for (NodeId reader : slot.readers_since_write) depend_on(reader);  // WAR
    slot.written = true;
    slot.last_writer = node;
    slot.readers_since_write.clear();
  }
}

ExecGraph::NodeId ExecGraph::add_gemm(std::string name,
                                      const PackedWeight* weight, SlotId in,
                                      SlotId out, const ExecContext& ctx,
                                      const MatrixF* bias) {
  if (!weight) throw std::invalid_argument("ExecGraph::add_gemm: null weight");
  check_slot(in, "gemm input");
  check_slot(out, "gemm output");
  if (in == out) {
    throw std::invalid_argument(
        "ExecGraph::add_gemm: in-place GEMM is not supported");
  }
  Node node;
  node.name = std::move(name);
  node.kind = NodeKind::kGemm;
  node.weight = weight;
  node.in = in;
  node.out = out;
  node.ctx = ctx;
  node.ctx.alpha = 1.0f;
  node.ctx.beta = 0.0f;
  node.bias = bias;
  nodes_.push_back(std::move(node));
  const NodeId id = nodes_.size() - 1;
  link(id, {in}, {out});
  return id;
}

ExecGraph::NodeId ExecGraph::add_host(std::string name,
                                      std::vector<SlotId> reads,
                                      std::vector<SlotId> writes,
                                      std::function<void(ExecGraph&)> fn) {
  if (!fn) throw std::invalid_argument("ExecGraph::add_host: null body");
  for (SlotId id : reads) check_slot(id, "host read");
  for (SlotId id : writes) check_slot(id, "host write");
  Node node;
  node.name = std::move(name);
  node.kind = NodeKind::kHost;
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  const NodeId id = nodes_.size() - 1;
  link(id, reads, writes);
  return id;
}

void ExecGraph::add_dep(NodeId node, NodeId before) {
  if (node >= nodes_.size() || before >= nodes_.size()) {
    throw std::invalid_argument("ExecGraph::add_dep: node out of range");
  }
  if (before >= node) {
    // Edges may only point at earlier nodes: the build order is the
    // proof the graph stays acyclic.
    throw std::invalid_argument(
        "ExecGraph::add_dep: dependency must precede the node");
  }
  auto& deps = nodes_[node].deps;
  if (std::find(deps.begin(), deps.end(), before) == deps.end()) {
    deps.push_back(before);
    nodes_[before].dependents.push_back(node);
  }
}

std::size_t ExecGraph::max_gemm_width() const {
  // Width = the largest set of GEMM nodes pairwise unreachable from one
  // another.  Exact antichain width is overkill for a diagnostic; we
  // count GEMMs per dependency depth level and take the maximum, which
  // is exact for the layered graphs the models build.
  std::vector<std::size_t> depth(nodes_.size(), 0);
  std::size_t max_depth = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId dep : nodes_[id].deps)
      depth[id] = std::max(depth[id], depth[dep] + 1);
    max_depth = std::max(max_depth, depth[id]);
  }
  std::vector<std::size_t> gemms_at(max_depth + 1, 0);
  std::size_t width = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::kGemm)
      width = std::max(width, ++gemms_at[depth[id]]);
  }
  return width;
}

std::vector<ExecGraph::NodeId> ExecGraph::topo_order() const {
  // Edges always point at earlier nodes (enforced in add_dep and
  // implied by the dataflow linking), so insertion order is topological.
  std::vector<NodeId> order(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) order[id] = id;
  return order;
}

void ExecGraph::execute_node(NodeId id) {
  Node& node = nodes_.at(id);
  if (node.kind == NodeKind::kHost) {
    node.fn(*this);
    return;
  }
  const MatrixF& a = slot(node.in);
  MatrixF& c = slot(node.out);
  if (c.rows() != a.rows() || c.cols() != node.weight->n()) {
    c = MatrixF(a.rows(), node.weight->n());
  }
  node.weight->matmul(node.ctx, a, c);
  if (node.bias) add_row_bias(c, *node.bias);
}

}  // namespace tilesparse
