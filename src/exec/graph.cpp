#include "exec/graph.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/guards.hpp"

namespace tilesparse {

ExecGraph::ExecGraph() {
  static std::atomic<std::uint64_t> next_id{1};
  build_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

ExecGraph::SlotId ExecGraph::add_slot(std::string name) {
  Slot slot;
  slot.name = std::move(name);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void ExecGraph::check_slot(SlotId id, const char* what) const {
  if (id >= slots_.size()) {
    throw std::invalid_argument(std::string("ExecGraph: ") + what +
                                " slot out of range");
  }
}

void ExecGraph::mark_input(SlotId id) {
  check_slot(id, "mark_input");
  slots_[id].is_input = true;
}

void ExecGraph::mark_output(SlotId id) {
  check_slot(id, "mark_output");
  slots_[id].is_output = true;
}

void ExecGraph::link(NodeId node) {
  TS_CHECK(node < nodes_.size(), "link of unknown node");
  auto depend_on = [&](NodeId before) {
    if (before == node) return;
    auto& deps = nodes_[node].deps;
    if (std::find(deps.begin(), deps.end(), before) == deps.end()) {
      deps.push_back(before);
      nodes_[before].dependents.push_back(node);
    }
  };
  for (SlotId id : nodes_[node].reads) {
    Slot& slot = slots_[id];
    if (auto_deps_ && slot.written) depend_on(slot.last_writer);  // RAW
    slot.readers_since_write.push_back(node);
  }
  for (SlotId id : nodes_[node].writes) {
    Slot& slot = slots_[id];
    if (auto_deps_) {
      if (slot.written) depend_on(slot.last_writer);  // WAW
      for (NodeId reader : slot.readers_since_write) depend_on(reader);  // WAR
    }
    slot.written = true;
    slot.last_writer = node;
    slot.readers_since_write.clear();
  }
}

ExecGraph::NodeId ExecGraph::add_gemm(std::string name,
                                      const PackedWeight* weight, SlotId in,
                                      SlotId out, const ExecContext& ctx,
                                      const MatrixF* bias) {
  if (!weight) throw std::invalid_argument("ExecGraph::add_gemm: null weight");
  check_slot(in, "gemm input");
  check_slot(out, "gemm output");
  if (in == out) {
    throw std::invalid_argument(
        "ExecGraph::add_gemm: in-place GEMM is not supported");
  }
  Node node;
  node.name = std::move(name);
  node.kind = NodeKind::kGemm;
  node.weight = weight;
  node.in = in;
  node.out = out;
  node.ctx = ctx;
  node.ctx.alpha = 1.0f;
  node.ctx.beta = 0.0f;
  node.bias = bias;
  node.reads = {in};
  node.writes = {out};
  nodes_.push_back(std::move(node));
  const NodeId id = nodes_.size() - 1;
  link(id);
  return id;
}

ExecGraph::NodeId ExecGraph::add_host(std::string name,
                                      std::vector<SlotId> reads,
                                      std::vector<SlotId> writes,
                                      std::function<void(ExecGraph&)> fn) {
  if (!fn) throw std::invalid_argument("ExecGraph::add_host: null body");
  for (SlotId id : reads) check_slot(id, "host read");
  for (SlotId id : writes) check_slot(id, "host write");
  Node node;
  node.name = std::move(name);
  node.kind = NodeKind::kHost;
  node.fn = std::move(fn);
  node.reads = std::move(reads);
  node.writes = std::move(writes);
  nodes_.push_back(std::move(node));
  const NodeId id = nodes_.size() - 1;
  link(id);
  return id;
}

void ExecGraph::add_dep(NodeId node, NodeId before) {
  if (node >= nodes_.size() || before >= nodes_.size()) {
    throw std::invalid_argument("ExecGraph::add_dep: node out of range");
  }
  if (before == node) {
    throw std::invalid_argument("ExecGraph::add_dep: self-dependency");
  }
  auto& deps = nodes_[node].deps;
  if (std::find(deps.begin(), deps.end(), before) == deps.end()) {
    deps.push_back(before);
    nodes_[before].dependents.push_back(node);
  }
}

std::size_t ExecGraph::max_gemm_width() const {
  // Width = the largest set of GEMM nodes pairwise unreachable from one
  // another.  Exact antichain width is overkill for a diagnostic; we
  // count GEMMs per dependency depth level and take the maximum, which
  // is exact for the layered graphs the models build.
  const std::vector<NodeId> order = topo_order();
  std::vector<std::size_t> depth(nodes_.size(), 0);
  std::size_t max_depth = 0;
  for (NodeId id : order) {
    for (NodeId dep : nodes_[id].deps)
      depth[id] = std::max(depth[id], depth[dep] + 1);
    max_depth = std::max(max_depth, depth[id]);
  }
  std::vector<std::size_t> gemms_at(max_depth + 1, 0);
  std::size_t width = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::kGemm)
      width = std::max(width, ++gemms_at[depth[id]]);
  }
  return width;
}

std::vector<ExecGraph::NodeId> ExecGraph::topo_order() const {
  // Kahn's algorithm with a lowest-id-first ready heap: auto-built
  // graphs (whose derived edges all point backwards) come out in
  // insertion order, and explicit forward edges from add_dep are
  // honored too.
  std::vector<std::size_t> pending(nodes_.size());
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    pending[id] = nodes_[id].deps.size();
    if (pending[id] == 0) ready.push_back(id);
  }
  std::make_heap(ready.begin(), ready.end(), std::greater<>{});
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId dependent : nodes_[id].dependents) {
      if (--pending[dependent] == 0) {
        ready.push_back(dependent);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error(
        "ExecGraph::topo_order: dependency edges contain a cycle (run "
        "validate_graph() for the offending path)");
  }
  return order;
}

void ExecGraph::execute_node(NodeId id) {
  Node& node = nodes_.at(id);
  if (node.kind == NodeKind::kHost) {
    node.fn(*this);
    return;
  }
  const MatrixF& a = slot(node.in);
  MatrixF& c = slot(node.out);
  if (c.rows() != a.rows() || c.cols() != node.weight->n()) {
    c = MatrixF(a.rows(), node.weight->n());
  }
  node.weight->matmul(node.ctx, a, c);
  if (node.bias) add_row_bias(c, *node.bias);
}

void ExecGraph::poison_slots() {
#if defined(TILESPARSE_ENABLE_GUARDS)
  // Only graphs that declare their inputs can be poisoned safely: on a
  // legacy graph (nothing marked) every slot would be a candidate,
  // including the ones the caller just fed.
  bool any_input = false;
  for (const Slot& slot : slots_) any_input = any_input || slot.is_input;
  if (!any_input) return;
  for (Slot& slot : slots_) {
    if (slot.is_input) continue;
    poison_nan(slot.buffer.data(), slot.buffer.size());
  }
#endif
}

}  // namespace tilesparse
