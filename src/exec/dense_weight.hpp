#pragma once
// DenseWeight — the unpruned baseline backend: a plain K x N matrix
// executed with the blocked dense GEMM (the CPU stand-in for
// cuBLAS/CUTLASS on tensor cores).  Supports every numerics mode: fp16
// rounds A inside the kernel; int8 quantises both operands dynamically
// (per-tensor scales) and accumulates in int32.

#include <iosfwd>
#include <memory>
#include <mutex>

#include "exec/packed_weight.hpp"
#include "gemm/dense_gemm.hpp"
#include "quant/quantize.hpp"

namespace tilesparse {

class MappedArtifact;

class DenseWeight final : public PackedWeight {
 public:
  explicit DenseWeight(MatrixF weights, GemmConfig config = {});

  /// Deserializes a payload written by save(); `k`/`n` come from the
  /// artifact container header and must match the stored panel;
  /// `layout` is the container's wire layout (v2 payloads are aligned).
  static std::unique_ptr<DenseWeight> load(std::istream& in, std::size_t k,
                                           std::size_t n, wire::Layout layout);

  /// Zero-copy load: the K x N panel borrows the mapping in place (the
  /// micro-kernel packs its own B panels lazily, exactly as after a
  /// stream load).
  static std::unique_ptr<DenseWeight> load_view(MappedArtifact& in,
                                                std::size_t k, std::size_t n);

  void save(std::ostream& out, wire::Layout layout = {}) const override;
  MatrixF to_dense() const override { return weights_; }
  std::size_t bytes() const noexcept override;
  double macs(std::size_t m) const noexcept override;
  std::string_view format() const noexcept override { return "dense"; }
  bool supports(Numerics numerics) const noexcept override;

  /// Dense columns are independent (the micro-kernel accumulates each
  /// output column over K in a fixed order regardless of which columns
  /// share the panel), so a column slice executes bit-identically.
  bool col_shardable() const noexcept override { return true; }
  std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                           std::size_t n1) const override;

 protected:
  void accumulate(const ExecContext& ctx, const MatrixF& a,
                  MatrixF& c) const override;
  bool native_fp16() const noexcept override { return true; }

 private:
  MatrixF weights_;  ///< K x N
  GemmConfig config_;
  // Micro-kernel B panels, built once on first fp32/fp16 execution
  // (weights are immutable after packing; cached so serving does not
  // repack K x N every call — at small batch the repack pass costs as
  // much as the compute).
  mutable PackedDenseB packed_b_;
  mutable std::once_flag packed_b_once_;
  // int8 weight copy, built once on first int8 execution (weights are
  // immutable after packing; cached so serving does not re-quantise
  // K x N every call).
  mutable QuantMatrix quantized_;
  mutable std::once_flag quantized_once_;
};

}  // namespace tilesparse
