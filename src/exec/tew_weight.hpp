#pragma once
// TewWeight — the hybrid tile-element-wise format: a TW part executed
// as batched masked GEMM plus an element-wise CSC remainder accumulated
// separately; linearity of GEMM makes A*W = A*W_tw + A*W_ew exact.
// Matches the existing TewMatrix decomposition, behind the unified
// PackedWeight interface.

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/tew.hpp"
#include "exec/packed_weight.hpp"
#include "exec/weight_storage.hpp"
#include "gemm/masked_gemm.hpp"

namespace tilesparse {

class MappedArtifact;

class TewWeight final : public PackedWeight {
 public:
  /// Builds the TEW decomposition: `pattern` is TW-pruned to
  /// alpha + delta; the top `delta` fraction of pruned elements (by
  /// `scores`) is restored into the CSC remainder.
  TewWeight(const MatrixF& weights, const TilePattern& pattern,
            const MatrixF& scores, double delta);

  /// Wraps an existing decomposition.
  explicit TewWeight(TewMatrix tew);

  /// Deserializes a payload written by save(): TW pattern, compacted
  /// tiles and the CSC remainder, validated against `k`/`n`.
  static std::unique_ptr<TewWeight> load(std::istream& in, std::size_t k,
                                         std::size_t n);

  /// Zero-copy load: tile weight matrices and the CSC remainder's
  /// index/value arrays borrow the mapping in place.  The remainder is
  /// genuinely zero-copy at execution too — csc_gemm_accumulate runs
  /// directly on the borrowed arrays.
  static std::unique_ptr<TewWeight> load_view(MappedArtifact& in,
                                              std::size_t k, std::size_t n);

  void save(std::ostream& out, wire::Layout layout = {}) const override;
  MatrixF to_dense() const override;
  std::size_t bytes() const noexcept override;
  double macs(std::size_t m) const noexcept override;
  std::string_view format() const noexcept override { return "tew"; }

  /// Both halves slice exactly: the TW tiles keep their kept_rows (so
  /// the masked kernel's accumulation order is unchanged) and the CSC
  /// remainder's columns are independent, so shard-joins stay
  /// bit-identical to the serial path.
  bool col_shardable() const noexcept override { return true; }
  std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                           std::size_t n1) const override;

  const TilePattern& pattern() const noexcept { return pattern_; }
  const std::vector<MaskedTile>& tiles() const noexcept { return tiles_; }
  const CscStore& remainder() const noexcept { return remainder_; }

 protected:
  void accumulate(const ExecContext& ctx, const MatrixF& a,
                  MatrixF& c) const override;
  bool native_fp16() const noexcept override { return true; }

 private:
  TewWeight(std::size_t k, std::size_t n, TilePattern pattern,
            std::vector<MaskedTile> tiles, CscStore remainder);

  // The decomposition in owning-or-borrowing form (the TewMatrix ctor
  // moves its parts in): pattern + compacted TW tiles + the
  // element-wise CSC remainder.
  TilePattern pattern_;
  std::vector<MaskedTile> tiles_;
  CscStore remainder_;
  /// B panels for the TW part, pre-packed at construction.
  std::vector<TilePanels> panels_;
};

}  // namespace tilesparse
