#pragma once
// TewWeight — the hybrid tile-element-wise format: a TW part executed
// as batched masked GEMM plus an element-wise CSC remainder accumulated
// separately; linearity of GEMM makes A*W = A*W_tw + A*W_ew exact.
// Matches the existing TewMatrix decomposition, behind the unified
// PackedWeight interface.

#include <iosfwd>
#include <memory>

#include "core/tew.hpp"
#include "exec/packed_weight.hpp"

namespace tilesparse {

class TewWeight final : public PackedWeight {
 public:
  /// Builds the TEW decomposition: `pattern` is TW-pruned to
  /// alpha + delta; the top `delta` fraction of pruned elements (by
  /// `scores`) is restored into the CSC remainder.
  TewWeight(const MatrixF& weights, const TilePattern& pattern,
            const MatrixF& scores, double delta);

  /// Wraps an existing decomposition.
  explicit TewWeight(TewMatrix tew);

  /// Deserializes a payload written by save(): TW pattern, compacted
  /// tiles and the CSC remainder, validated against `k`/`n`.
  static std::unique_ptr<TewWeight> load(std::istream& in, std::size_t k,
                                         std::size_t n);

  void save(std::ostream& out) const override;
  MatrixF to_dense() const override { return tew_to_dense(tew_); }
  std::size_t bytes() const noexcept override;
  double macs(std::size_t m) const noexcept override;
  std::string_view format() const noexcept override { return "tew"; }

  /// Both halves slice exactly: the TW tiles keep their kept_rows (so
  /// the masked kernel's accumulation order is unchanged) and the CSC
  /// remainder's columns are independent, so shard-joins stay
  /// bit-identical to the serial path.
  bool col_shardable() const noexcept override { return true; }
  std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                           std::size_t n1) const override;

  const TewMatrix& decomposition() const noexcept { return tew_; }

 protected:
  void accumulate(const ExecContext& ctx, const MatrixF& a,
                  MatrixF& c) const override;
  bool native_fp16() const noexcept override { return true; }

 private:
  TewMatrix tew_;
  /// B panels for the TW part, pre-packed at construction.
  std::vector<TilePanels> panels_;
};

}  // namespace tilesparse
