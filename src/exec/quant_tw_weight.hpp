#pragma once
// QuantTwWeight — int8 execution of TW-pruned weights: per-tile weight
// scales, dynamic per-tensor activation scale, int32 accumulation,
// float output.  Weight precision is inherent to the format (chosen at
// pack time), so this backend executes the int8 kernel under every
// requested activation numerics; to_dense() returns the *dequantised*
// weights, making the reconstruction the arithmetic ground truth.

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/packed_weight.hpp"
#include "gemm/masked_gemm.hpp"
#include "quant/quant_gemm.hpp"

namespace tilesparse {

class MappedArtifact;

class QuantTwWeight final : public PackedWeight {
 public:
  /// Packs and quantises `weights` (K x N, already pruned) under
  /// `pattern`: compaction then per-tile symmetric int8.
  QuantTwWeight(const MatrixF& weights, const TilePattern& pattern);

  /// Quantises pre-compacted float tiles (deployment load path).
  QuantTwWeight(const std::vector<MaskedTile>& tiles, std::size_t k,
                std::size_t n);

  /// Wraps already-quantised tiles.
  QuantTwWeight(std::vector<QuantMaskedTile> tiles, std::size_t k,
                std::size_t n);

  /// Deserializes a payload written by save(): the int8 tiles *with
  /// their per-tile scales* — loading never re-quantises (which would
  /// shift results between the train and serve sides).  The payload is
  /// headerless, so the container's wire layout must be threaded in.
  static std::unique_ptr<QuantTwWeight> load(std::istream& in, std::size_t k,
                                             std::size_t n,
                                             wire::Layout layout);

  /// Zero-copy load: each tile's int8 weight matrix borrows the
  /// mapping in place, and quant_tw_gemm executes directly on the
  /// borrowed tiles — the only backend that is zero-copy at execution
  /// for its entire weight payload (no private repack).
  static std::unique_ptr<QuantTwWeight> load_view(MappedArtifact& in,
                                                  std::size_t k,
                                                  std::size_t n);

  void save(std::ostream& out, wire::Layout layout = {}) const override;
  MatrixF to_dense() const override;
  std::size_t bytes() const noexcept override;
  double macs(std::size_t m) const noexcept override;
  std::string_view format() const noexcept override { return "tw-int8"; }
  bool supports(Numerics numerics) const noexcept override;

  /// Slices carry each tile's quantisation scale, the activation scale
  /// is per-tensor from the (unsliced) A, and the int32 accumulation
  /// is exact, so shard-joins are bit-identical to the serial path.
  bool col_shardable() const noexcept override { return true; }
  std::unique_ptr<PackedWeight> shard_cols(std::size_t n0,
                                           std::size_t n1) const override;

  const std::vector<QuantMaskedTile>& tiles() const noexcept { return tiles_; }

 protected:
  void accumulate(const ExecContext& ctx, const MatrixF& a,
                  MatrixF& c) const override;
  bool native_fp16() const noexcept override { return true; }

 private:
  std::vector<QuantMaskedTile> tiles_;
};

}  // namespace tilesparse
