#include "exec/tew_weight.hpp"

#include <stdexcept>

#include "exec/tw_weight.hpp"
#include "gemm/masked_gemm.hpp"
#include "io/serialize.hpp"
#include "io/wire.hpp"

namespace tilesparse {

TewWeight::TewWeight(const MatrixF& weights, const TilePattern& pattern,
                     const MatrixF& scores, double delta)
    : TewWeight(build_tew(weights, pattern, scores, delta)) {}

TewWeight::TewWeight(TewMatrix tew)
    : PackedWeight(tew.k, tew.n), tew_(std::move(tew)) {}

void TewWeight::save(std::ostream& out) const {
  write_pattern(out, tew_.pattern);
  write_tiles(out, tew_.tiles);
  write_csc(out, tew_.remainder);
}

std::unique_ptr<TewWeight> TewWeight::load(std::istream& in, std::size_t k,
                                           std::size_t n) {
  TewMatrix tew;
  tew.k = k;
  tew.n = n;
  tew.pattern = read_pattern(in);
  tew.tiles = read_tiles(in);
  tew.remainder = read_csc(in);
  if (tew.pattern.k != k || tew.pattern.n != n ||
      tew.remainder.rows != k || tew.remainder.cols != n ||
      tew.tiles.size() != tew.pattern.tiles.size())
    throw std::runtime_error(
        "TewWeight::load: payload shape disagrees with artifact header");
  for (const MaskedTile& tile : tew.tiles) {
    wire::check_index_vector(tile.kept_rows, k, "tile row");
    wire::check_index_vector(tile.out_cols, n, "tile column");
  }
  return std::make_unique<TewWeight>(std::move(tew));
}

std::size_t TewWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tew_.tiles)
    total += masked_tile_bytes(tile, sizeof(float));
  total += tew_.remainder.values.size() * sizeof(float) +
           tew_.remainder.row_idx.size() * sizeof(std::int32_t) +
           tew_.remainder.col_ptr.size() * sizeof(std::int64_t);
  return total;
}

double TewWeight::macs(std::size_t m) const noexcept {
  double total = static_cast<double>(m) *
                 static_cast<double>(tew_.remainder.nnz());
  for (const auto& tile : tew_.tiles) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

void TewWeight::accumulate(const ExecContext& ctx, const MatrixF& a,
                           MatrixF& c) const {
  // fp16 applies to the TW part only (same semantics as tew_matmul): on
  // the GPU the EW remainder runs on CUDA cores in fp32.
  masked_gemm_all(a, tew_.tiles, c, ctx.fp16());
  csc_gemm_accumulate(a, tew_.remainder, c);
}

}  // namespace tilesparse
