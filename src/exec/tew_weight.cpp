#include "exec/tew_weight.hpp"

#include <stdexcept>

#include "exec/tw_weight.hpp"
#include "gemm/masked_gemm.hpp"
#include "io/serialize.hpp"
#include "io/wire.hpp"

namespace tilesparse {

TewWeight::TewWeight(const MatrixF& weights, const TilePattern& pattern,
                     const MatrixF& scores, double delta)
    : TewWeight(build_tew(weights, pattern, scores, delta)) {}

TewWeight::TewWeight(TewMatrix tew)
    : PackedWeight(tew.k, tew.n),
      tew_(std::move(tew)),
      panels_(prepack_all_tile_panels(tew_.tiles)) {}

namespace {

/// Column-slices a TilePattern to [n0, n1), mirroring
/// slice_masked_tiles so the shard's pattern metadata stays consistent
/// with its tiles (every kept column in exactly one tile).
TilePattern slice_pattern_cols(const TilePattern& pattern, std::size_t n0,
                               std::size_t n1) {
  TilePattern out;
  out.k = pattern.k;
  out.n = n1 - n0;
  out.g = pattern.g;
  if (pattern.col_keep.size() >= n1)
    out.col_keep.assign(pattern.col_keep.begin() + static_cast<std::ptrdiff_t>(n0),
                        pattern.col_keep.begin() + static_cast<std::ptrdiff_t>(n1));
  for (const TwTile& tile : pattern.tiles) {
    TwTile sliced;
    for (std::int32_t col : tile.out_cols) {
      const auto c = static_cast<std::size_t>(col);
      if (c >= n0 && c < n1)
        sliced.out_cols.push_back(col - static_cast<std::int32_t>(n0));
    }
    if (sliced.out_cols.empty()) continue;
    sliced.row_keep = tile.row_keep;
    out.tiles.push_back(std::move(sliced));
  }
  return out;
}

}  // namespace

void TewWeight::save(std::ostream& out) const {
  write_pattern(out, tew_.pattern);
  write_tiles(out, tew_.tiles);
  write_csc(out, tew_.remainder);
}

std::unique_ptr<TewWeight> TewWeight::load(std::istream& in, std::size_t k,
                                           std::size_t n) {
  TewMatrix tew;
  tew.k = k;
  tew.n = n;
  tew.pattern = read_pattern(in);
  tew.tiles = read_tiles(in);
  tew.remainder = read_csc(in);
  if (tew.pattern.k != k || tew.pattern.n != n ||
      tew.remainder.rows != k || tew.remainder.cols != n ||
      tew.tiles.size() != tew.pattern.tiles.size())
    throw std::runtime_error(
        "TewWeight::load: payload shape disagrees with artifact header");
  for (const MaskedTile& tile : tew.tiles) {
    wire::check_index_vector(tile.kept_rows, k, "tile row");
    wire::check_index_vector(tile.out_cols, n, "tile column");
  }
  return std::make_unique<TewWeight>(std::move(tew));
}

std::size_t TewWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tew_.tiles)
    total += masked_tile_bytes(tile, sizeof(float));
  total += tew_.remainder.values.size() * sizeof(float) +
           tew_.remainder.row_idx.size() * sizeof(std::int32_t) +
           tew_.remainder.col_ptr.size() * sizeof(std::int64_t);
  return total;
}

double TewWeight::macs(std::size_t m) const noexcept {
  double total = static_cast<double>(m) *
                 static_cast<double>(tew_.remainder.nnz());
  for (const auto& tile : tew_.tiles) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

std::unique_ptr<PackedWeight> TewWeight::shard_cols(std::size_t n0,
                                                    std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("TewWeight::shard_cols: bad column range");
  TewMatrix slice;
  slice.k = tew_.k;
  slice.n = n1 - n0;
  slice.pattern = slice_pattern_cols(tew_.pattern, n0, n1);
  slice.tiles = slice_masked_tiles(tew_.tiles, n0, n1);
  slice.remainder = slice_csc_cols(tew_.remainder, n0, n1);
  return std::make_unique<TewWeight>(std::move(slice));
}

void TewWeight::accumulate(const ExecContext& ctx, const MatrixF& a,
                           MatrixF& c) const {
  // fp16 applies to the TW part only (same semantics as tew_matmul): on
  // the GPU the EW remainder runs on CUDA cores in fp32.
  masked_gemm_all(a, tew_.tiles, c, ctx.fp16(), &panels_);
  csc_gemm_accumulate(a, tew_.remainder, c);
}

}  // namespace tilesparse
