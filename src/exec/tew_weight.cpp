#include "exec/tew_weight.hpp"

#include "exec/tw_weight.hpp"
#include "gemm/masked_gemm.hpp"

namespace tilesparse {

TewWeight::TewWeight(const MatrixF& weights, const TilePattern& pattern,
                     const MatrixF& scores, double delta)
    : TewWeight(build_tew(weights, pattern, scores, delta)) {}

TewWeight::TewWeight(TewMatrix tew)
    : PackedWeight(tew.k, tew.n), tew_(std::move(tew)) {}

std::size_t TewWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tew_.tiles)
    total += masked_tile_bytes(tile, sizeof(float));
  total += tew_.remainder.values.size() * sizeof(float) +
           tew_.remainder.row_idx.size() * sizeof(std::int32_t) +
           tew_.remainder.col_ptr.size() * sizeof(std::int64_t);
  return total;
}

double TewWeight::macs(std::size_t m) const noexcept {
  double total = static_cast<double>(m) *
                 static_cast<double>(tew_.remainder.nnz());
  for (const auto& tile : tew_.tiles) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

void TewWeight::accumulate(const ExecContext& ctx, const MatrixF& a,
                           MatrixF& c) const {
  // fp16 applies to the TW part only (same semantics as tew_matmul): on
  // the GPU the EW remainder runs on CUDA cores in fp32.
  masked_gemm_all(a, tew_.tiles, c, ctx.fp16());
  csc_gemm_accumulate(a, tew_.remainder, c);
}

}  // namespace tilesparse
