#include "exec/tew_weight.hpp"

#include <stdexcept>

#include "exec/tw_weight.hpp"
#include "gemm/masked_gemm.hpp"
#include "io/mmap_file.hpp"
#include "io/serialize.hpp"
#include "io/wire.hpp"

namespace tilesparse {

TewWeight::TewWeight(const MatrixF& weights, const TilePattern& pattern,
                     const MatrixF& scores, double delta)
    : TewWeight(build_tew(weights, pattern, scores, delta)) {}

TewWeight::TewWeight(TewMatrix tew)
    : TewWeight(tew.k, tew.n, std::move(tew.pattern), std::move(tew.tiles),
                CscStore(std::move(tew.remainder))) {}

TewWeight::TewWeight(std::size_t k, std::size_t n, TilePattern pattern,
                     std::vector<MaskedTile> tiles, CscStore remainder)
    : PackedWeight(k, n),
      pattern_(std::move(pattern)),
      tiles_(std::move(tiles)),
      remainder_(std::move(remainder)),
      panels_(prepack_all_tile_panels(tiles_)) {}

namespace {

/// Column-slices a TilePattern to [n0, n1), mirroring
/// slice_masked_tiles so the shard's pattern metadata stays consistent
/// with its tiles (every kept column in exactly one tile).
TilePattern slice_pattern_cols(const TilePattern& pattern, std::size_t n0,
                               std::size_t n1) {
  TilePattern out;
  out.k = pattern.k;
  out.n = n1 - n0;
  out.g = pattern.g;
  if (pattern.col_keep.size() >= n1)
    out.col_keep.assign(pattern.col_keep.begin() + static_cast<std::ptrdiff_t>(n0),
                        pattern.col_keep.begin() + static_cast<std::ptrdiff_t>(n1));
  for (const TwTile& tile : pattern.tiles) {
    TwTile sliced;
    for (std::int32_t col : tile.out_cols) {
      const auto c = static_cast<std::size_t>(col);
      if (c >= n0 && c < n1)
        sliced.out_cols.push_back(col - static_cast<std::int32_t>(n0));
    }
    if (sliced.out_cols.empty()) continue;
    sliced.row_keep = tile.row_keep;
    out.tiles.push_back(std::move(sliced));
  }
  return out;
}

/// Shared shape/index validation for both load paths.
void check_tew_payload(const TilePattern& pattern,
                       const std::vector<MaskedTile>& tiles,
                       std::size_t remainder_rows, std::size_t remainder_cols,
                       std::size_t k, std::size_t n) {
  if (pattern.k != k || pattern.n != n || remainder_rows != k ||
      remainder_cols != n || tiles.size() != pattern.tiles.size())
    throw std::runtime_error(
        "TewWeight::load: payload shape disagrees with artifact header");
  for (const MaskedTile& tile : tiles) {
    wire::check_index_vector(tile.kept_rows, k, "tile row");
    wire::check_index_vector(tile.out_cols, n, "tile column");
  }
}

}  // namespace

void TewWeight::save(std::ostream& out, wire::Layout layout) const {
  write_pattern(out, pattern_, layout);
  write_tiles(out, tiles_, layout);
  write_csc(out, remainder_.ref(), layout);
}

std::unique_ptr<TewWeight> TewWeight::load(std::istream& in, std::size_t k,
                                           std::size_t n) {
  TewMatrix tew;
  tew.k = k;
  tew.n = n;
  tew.pattern = read_pattern(in);
  tew.tiles = read_tiles(in);
  tew.remainder = read_csc(in);
  check_tew_payload(tew.pattern, tew.tiles, tew.remainder.rows,
                    tew.remainder.cols, k, n);
  return std::make_unique<TewWeight>(std::move(tew));
}

std::unique_ptr<TewWeight> TewWeight::load_view(MappedArtifact& in,
                                                std::size_t k, std::size_t n) {
  TilePattern pattern = read_pattern(in);
  std::vector<MaskedTile> tiles = read_tiles(in);
  CscStore remainder = read_csc(in);
  check_tew_payload(pattern, tiles, remainder.rows, remainder.cols, k, n);
  auto weight = std::unique_ptr<TewWeight>(
      new TewWeight(k, n, std::move(pattern), std::move(tiles),
                    std::move(remainder)));
  weight->set_storage_keepalive(in.keepalive());
  return weight;
}

MatrixF TewWeight::to_dense() const {
  MatrixF dense = tiles_to_dense(tiles_, k(), n());
  const CscRef rem = remainder_.ref();
  for (std::size_t c = 0; c < rem.cols; ++c) {
    for (auto i = rem.col_ptr[c]; i < rem.col_ptr[c + 1]; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      dense(static_cast<std::size_t>(rem.row_idx[idx]), c) += rem.values[idx];
    }
  }
  return dense;
}

std::size_t TewWeight::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tile : tiles_)
    total += masked_tile_bytes(tile, sizeof(float));
  total += remainder_.values.size() * sizeof(float) +
           remainder_.row_idx.size() * sizeof(std::int32_t) +
           remainder_.col_ptr.size() * sizeof(std::int64_t);
  return total;
}

double TewWeight::macs(std::size_t m) const noexcept {
  double total = static_cast<double>(m) *
                 static_cast<double>(remainder_.nnz());
  for (const auto& tile : tiles_) {
    total += static_cast<double>(m) *
             static_cast<double>(tile.kept_rows.size()) *
             static_cast<double>(tile.out_cols.size());
  }
  return total;
}

std::unique_ptr<PackedWeight> TewWeight::shard_cols(std::size_t n0,
                                                    std::size_t n1) const {
  if (n0 >= n1 || n1 > n())
    throw std::invalid_argument("TewWeight::shard_cols: bad column range");
  TewMatrix slice;
  slice.k = k();
  slice.n = n1 - n0;
  slice.pattern = slice_pattern_cols(pattern_, n0, n1);
  slice.tiles = slice_masked_tiles(tiles_, n0, n1);
  slice.remainder = slice_csc_cols(remainder_.ref(), n0, n1);
  return std::make_unique<TewWeight>(std::move(slice));
}

void TewWeight::accumulate(const ExecContext& ctx, const MatrixF& a,
                           MatrixF& c) const {
  // fp16 applies to the TW part only (same semantics as tew_matmul): on
  // the GPU the EW remainder runs on CUDA cores in fp32.
  masked_gemm_all(a, tiles_, c, ctx.fp16(), &panels_);
  csc_gemm_accumulate(a, remainder_.ref(), c);
}

}  // namespace tilesparse
