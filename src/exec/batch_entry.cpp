#include "exec/batch_entry.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace tilesparse {

double BatchEntry::cost(std::size_t rows) const noexcept {
  const double m = macs(rows);
  const double b = static_cast<double>(weight_bytes());
  // Geometric blend of compute and weight traffic, floored at 1 so a
  // degenerate entry still charges something per member.
  return std::max(1.0, std::sqrt(std::max(1.0, m) * std::max(1.0, b)));
}

GraphBatchEntry::GraphBatchEntry(Config config) : config_(std::move(config)) {
  if (!config_.builder) {
    throw std::invalid_argument("GraphBatchEntry: null builder");
  }
  if (config_.input_cols == 0 || config_.group_rows_in == 0 ||
      config_.group_rows_out == 0) {
    throw std::invalid_argument("GraphBatchEntry: bad config shape");
  }
  if (config_.graph_cache_capacity == 0) config_.graph_cache_capacity = 1;
}

GraphBatchEntry::CachedGraph& GraphBatchEntry::graph_for(std::size_t rows) {
  for (auto it = graphs_.begin(); it != graphs_.end(); ++it) {
    if (it->rows == rows) {
      graphs_.splice(graphs_.begin(), graphs_, it);  // move to MRU front
      return graphs_.front();
    }
  }
  CachedGraph entry;
  entry.rows = rows;
  entry.graph = std::make_unique<ExecGraph>();
  entry.input = entry.graph->add_slot(config_.name + ".in");
  entry.graph->mark_input(entry.input);
  entry.output = config_.builder(*entry.graph, entry.input, rows);
  entry.graph->mark_output(entry.output);
  if (graphs_.size() >= config_.graph_cache_capacity) graphs_.pop_back();
  graphs_.push_front(std::move(entry));
  return graphs_.front();
}

MatrixF GraphBatchEntry::run(ExecScheduler& scheduler, const MatrixF& input) {
  if (input.rows() == 0 || input.rows() % config_.group_rows_in != 0 ||
      input.cols() != config_.input_cols) {
    throw std::invalid_argument("BatchEntry '" + config_.name +
                                "': input must be a non-empty multiple of " +
                                std::to_string(config_.group_rows_in) +
                                " rows x " +
                                std::to_string(config_.input_cols) + " cols");
  }
  // One run at a time: graphs and the layer state their host nodes
  // touch are not concurrency-safe, and the lock also protects the LRU.
  std::lock_guard lock(mutex_);
  CachedGraph& cached = graph_for(input.rows());
  MatrixF& in_slot = cached.graph->slot(cached.input);
  if (in_slot.rows() != input.rows() || in_slot.cols() != input.cols()) {
    in_slot = MatrixF(input.rows(), input.cols());
  }
  std::memcpy(in_slot.data(), input.data(),
              input.rows() * input.cols() * sizeof(float));
  scheduler.run(*cached.graph);
  return cached.graph->slot(cached.output);  // deep copy (owning matrix)
}

std::size_t GraphBatchEntry::cached_graphs() const {
  std::lock_guard lock(mutex_);
  return graphs_.size();
}

std::unique_ptr<GraphBatchEntry> make_gemm_entry(std::string name,
                                                 const PackedWeight* weight,
                                                 const MatrixF* bias) {
  if (weight == nullptr) {
    throw std::invalid_argument("make_gemm_entry: null weight");
  }
  GraphBatchEntry::Config config;
  config.name = std::move(name);
  config.input_cols = weight->k();
  config.output_cols = weight->n();
  config.macs_per_row =
      weight->macs(2) - weight->macs(1);  // per-row marginal MACs
  config.weight_bytes = weight->bytes();
  config.builder = [weight, bias](ExecGraph& graph, ExecGraph::SlotId input,
                                  std::size_t) {
    ExecGraph::SlotId out = graph.add_slot("out");
    graph.add_gemm("gemm", weight, input, out, ExecContext{}, bias);
    return out;
  };
  return std::make_unique<GraphBatchEntry>(std::move(config));
}

}  // namespace tilesparse
