#include "exec/packed_weight.hpp"

#include <stdexcept>
#include <string>

#include "tensor/ops.hpp"
#include "util/fault_injection.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace tilesparse {
namespace {

/// Applies ctx.threads for the duration of one kernel launch (OpenMP
/// builds only; a no-op otherwise).
class ThreadScope {
 public:
  explicit ThreadScope(int threads) {
#ifdef _OPENMP
    if (threads > 0) {
      saved_ = omp_get_max_threads();
      omp_set_num_threads(threads);
    }
#else
    (void)threads;
#endif
  }
  ~ThreadScope() {
#ifdef _OPENMP
    if (saved_ > 0) omp_set_num_threads(saved_);
#endif
  }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_ = 0;
};

}  // namespace

bool PackedWeight::supports(Numerics numerics) const noexcept {
  return numerics != Numerics::kInt8;
}

std::unique_ptr<PackedWeight> PackedWeight::shard_cols(std::size_t,
                                                       std::size_t) const {
  throw std::logic_error(std::string("PackedWeight::shard_cols: format '") +
                         std::string(format()) +
                         "' does not support exact column slicing");
}

void PackedWeight::save(std::ostream&, wire::Layout) const {
  throw std::logic_error(std::string("PackedWeight::save: format '") +
                         std::string(format()) +
                         "' has no serializer (override save() and register "
                         "a loader with register_backend_loader)");
}

void PackedWeight::matmul(const ExecContext& ctx, const MatrixF& a,
                          MatrixF& c) const {
  // Kernel-entry fault site: the one gate every GEMM kernel family runs
  // behind, and still outside the OpenMP regions so an injected
  // exception unwinds safely (see util/fault_injection.hpp).
  fault_point(FaultSite::kKernelEntry);
  if (a.cols() != k_) {
    throw std::invalid_argument("PackedWeight::matmul: A has " +
                                std::to_string(a.cols()) +
                                " cols, weight K = " + std::to_string(k_));
  }
  if (c.rows() != a.rows() || c.cols() != n_) {
    throw std::invalid_argument("PackedWeight::matmul: C must be " +
                                std::to_string(a.rows()) + " x " +
                                std::to_string(n_));
  }
  if (!supports(ctx.numerics)) {
    throw std::invalid_argument(std::string("PackedWeight::matmul: format '") +
                                std::string(format()) + "' cannot execute " +
                                numerics_name(ctx.numerics) + " activations");
  }

  // Unified beta handling: the backends only accumulate.
  if (ctx.beta == 0.0f) {
    c.fill(0.0f);
  } else if (ctx.beta != 1.0f) {
    for (float& v : c.flat()) v *= ctx.beta;
  }
  if (ctx.alpha == 0.0f || a.rows() == 0 || k_ == 0 || n_ == 0) return;

  // Non-native fp16: round a copy of A through binary16 so every format
  // sees identical tensor-core activation numerics.
  const MatrixF* input = &a;
  MatrixF rounded;
  if (ctx.fp16() && !native_fp16()) {
    rounded = a;
    round_matrix_to_half(rounded);
    input = &rounded;
  }

  ThreadScope scope(ctx.threads);
  if (ctx.alpha == 1.0f) {
    accumulate(ctx, *input, c);
    return;
  }
  if (ctx.beta == 0.0f) {
    // C was just zeroed: accumulate then scale in place.
    accumulate(ctx, *input, c);
    for (float& v : c.flat()) v *= ctx.alpha;
    return;
  }
  // General case: accumulate into scratch, then C += alpha * scratch.
  MatrixF scratch(a.rows(), n_);
  accumulate(ctx, *input, scratch);
  for (std::size_t i = 0; i < c.size(); ++i)
    c.data()[i] += ctx.alpha * scratch.data()[i];
}

MatrixF PackedWeight::matmul(const ExecContext& ctx, const MatrixF& a) const {
  MatrixF c(a.rows(), n_);
  ExecContext overwrite = ctx;
  overwrite.beta = 0.0f;
  matmul(overwrite, a, c);
  return c;
}

}  // namespace tilesparse
