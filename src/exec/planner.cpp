#include "exec/planner.hpp"

#include <algorithm>
#include <cstdint>

#include "tensor/ops.hpp"

namespace tilesparse {
namespace {

double traffic_cost(const PlannerCalibration& calib, double macs,
                    std::size_t bytes) {
  return macs + calib.macs_per_byte * static_cast<double>(bytes);
}

void pattern_storage(const TilePattern& pattern, std::size_t weight_bytes,
                     std::size_t& bytes_out) {
  std::size_t bytes = 0;
  for (const auto& tile : pattern.tiles) {
    const std::size_t kt = tile.kept_rows();
    const std::size_t wt = tile.width();
    bytes += kt * wt * weight_bytes + kt * sizeof(std::int32_t) +
             wt * sizeof(std::int32_t);
  }
  bytes_out = bytes;
}

}  // namespace

std::vector<FormatChoice> rank_formats(const MatrixF& weights,
                                       const TilePattern* pattern,
                                       const PlannerOptions& options) {
  const PlannerCalibration& calib =
      options.calibration ? *options.calibration : planner_calibration();
  const double m = static_cast<double>(options.m);
  const double k = static_cast<double>(weights.rows());
  const double n = static_cast<double>(weights.cols());
  std::vector<FormatChoice> choices;

  FormatChoice dense;
  dense.format = "dense";
  dense.macs = m * k * n;
  dense.bytes = weights.size() * sizeof(float);
  dense.cost = traffic_cost(calib, dense.macs, dense.bytes);
  choices.push_back(dense);

  FormatChoice csr;
  csr.format = "csr";
  const std::size_t nnz = count_nonzero(weights);
  csr.macs = m * static_cast<double>(nnz);
  csr.bytes = nnz * (sizeof(float) + sizeof(std::int32_t)) +
              (weights.rows() + 1) * sizeof(std::int64_t);
  csr.cost = traffic_cost(calib, calib.csr_mac_penalty * csr.macs, csr.bytes);
  choices.push_back(csr);

  if (pattern) {
    FormatChoice tw;
    tw.format = "tw";
    tw.macs = pattern->macs(options.m);
    pattern_storage(*pattern, sizeof(float), tw.bytes);
    tw.cost = traffic_cost(calib, calib.tw_mac_penalty * tw.macs, tw.bytes);
    choices.push_back(tw);

    if (options.allow_int8) {
      FormatChoice q;
      q.format = "tw-int8";
      q.macs = tw.macs;
      pattern_storage(*pattern, sizeof(std::int8_t), q.bytes);
      q.cost = traffic_cost(calib, calib.int8_mac_discount * q.macs, q.bytes);
      choices.push_back(q);
    }
  }

  std::stable_sort(choices.begin(), choices.end(),
                   [](const FormatChoice& a, const FormatChoice& b) {
                     return a.cost < b.cost;
                   });
  return choices;
}

std::unique_ptr<PackedWeight> pack_weight(const MatrixF& weights,
                                          const PackOptions& pack,
                                          const PlannerOptions& options) {
  const auto ranked = rank_formats(weights, pack.pattern, options);
  return make_packed(ranked.front().format, weights, pack);
}

}  // namespace tilesparse
