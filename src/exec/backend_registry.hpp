#pragma once
// BackendRegistry — name -> factory for PackedWeight formats, following
// the one-interface-many-backends idiom: a weight matrix plus (where the
// format needs one) a TilePattern produces an executable object by
// format string.  The five built-in formats self-register; downstream
// code (new kernels, device-specific packings) extends the registry at
// runtime with register_backend().

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/packed_weight.hpp"
#include "io/wire.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

class MappedArtifact;

/// Everything a factory may need beyond the raw weights.  Formats
/// ignore fields they do not use; formats missing a required field
/// (e.g. "tw" without a pattern) throw std::invalid_argument.
struct PackOptions {
  /// TW pattern of the weights; required by "tw", "tew", "tw-int8".
  const TilePattern* pattern = nullptr;
  /// Importance of pruned elements for the TEW remainder; defaults to
  /// the magnitude of the *packed* weights when null.  Note the "tew"
  /// factory restores remainder values from the weights it is given:
  /// pack from the unpruned weights (with a pattern pruned to
  /// alpha + delta), or supply pre-pruning scores — packing weights
  /// already zeroed by apply_pattern leaves nothing to restore and
  /// degenerates to plain "tw".
  const MatrixF* scores = nullptr;
  /// Fraction of the matrix restored element-wise by "tew".
  double tew_delta = 0.05;
  /// Magnitude threshold below which "csr" drops elements.
  float csr_tol = 0.0f;
};

using BackendFactory = std::function<std::unique_ptr<PackedWeight>(
    const MatrixF& weights, const PackOptions& options)>;

/// Registers (or replaces) a backend.  Thread-compatible: registration
/// is expected at startup, before concurrent packing begins.
void register_backend(const std::string& format, BackendFactory factory);

/// Names of all registered formats, sorted.  Built-ins are always
/// present: "dense", "tw", "tew", "csr", "tw-int8".
std::vector<std::string> registered_formats();

/// True when `format` resolves to a registered backend.
bool backend_registered(const std::string& format);

/// Packs `weights` under the named format.  Throws std::out_of_range
/// for unknown formats and std::invalid_argument when the format needs
/// options that were not supplied.
std::unique_ptr<PackedWeight> make_packed(const std::string& format,
                                          const MatrixF& weights,
                                          const PackOptions& options = {});

// ------------------------------------------------------- artifact loading
//
// The deserialization side of the registry: a format-tagged artifact
// (written by write_packed_weight in io/serialize) names the backend
// that must reconstruct it, so the loader table is the registry's dual.
// Built-in formats register loaders automatically; custom backends that
// override PackedWeight::save() plug theirs in here.

/// Reads one backend payload written by PackedWeight::save().  `k`/`n`
/// come from the container header; loaders must validate the payload
/// against them and throw std::runtime_error on disagreement.  `layout`
/// is the container's wire layout — formats whose payload is headerless
/// (dense, tw-int8) need it; self-describing payloads may ignore it.
using BackendLoader = std::function<std::unique_ptr<PackedWeight>(
    std::istream& in, std::size_t k, std::size_t n, wire::Layout layout)>;

/// Registers (or replaces) a loader.  Thread-compatible, like
/// register_backend.
void register_backend_loader(const std::string& format, BackendLoader loader);

/// True when `format` has a registered loader.
bool backend_loader_registered(const std::string& format);

/// Reads one whole-PackedWeight container (magic, version, format name,
/// k/n, payload) and dispatches on the stored format name.  Accepts
/// both v1 and v2 containers.  Throws std::runtime_error for a bad
/// magic, an unsupported version, an unknown format name, or a payload
/// that fails validation — never UB, and never bad_alloc when the
/// stream is seekable (files and string streams; a garbage length on a
/// pipe cannot be pre-validated).
std::unique_ptr<PackedWeight> load_packed_weight(std::istream& in);

// ------------------------------------------------------ zero-copy loading
//
// The mmap dual of the loader table: view-loaders resolve a payload to
// spans into a read-only mapping (io/mmap_file.hpp) instead of reading
// it into owned storage.  Built-in formats register view-loaders
// automatically; a format without one simply cannot be mapped (callers
// fall back to the stream path).

/// Reads one backend payload from a mapped artifact, borrowing bulk
/// sections in place.  Same validation contract as BackendLoader.
using BackendViewLoader = std::function<std::unique_ptr<PackedWeight>(
    MappedArtifact& in, std::size_t k, std::size_t n)>;

/// Registers (or replaces) a view-loader.  Thread-compatible, like
/// register_backend.
void register_backend_view_loader(const std::string& format,
                                  BackendViewLoader loader);

/// True when `format` has a registered view-loader.
bool backend_view_loader_registered(const std::string& format);

/// Parses one whole-PackedWeight container from a mapped artifact and
/// dispatches on the stored format name, producing a weight whose bulk
/// payload borrows the mapping (PackedWeight::borrows_storage()).
/// Requires a v2 (aligned-layout) artifact: v1 payloads are not
/// alignment-padded, so mapping them is rejected with a message
/// pointing at the stream loader.  Same error contract as
/// load_packed_weight — corrupt or truncated artifacts throw with an
/// offset diagnostic, they never fault.
std::unique_ptr<PackedWeight> load_packed_weight_mapped(MappedArtifact& in);

}  // namespace tilesparse
