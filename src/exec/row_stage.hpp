#pragma once
// RowStage — the wide-M staging buffer behind cross-request batching.
//
// The micro-kernel core is fastest in the wide-M regime (BENCH_gemm:
// throughput climbs steeply with M), but serving traffic arrives as
// many narrow activations.  RowStage turns a set of per-request row
// blocks into ONE contiguous M x K activation (gather) and hands each
// requester back its own rows of the batched output (scatter).
//
// Bit-identity contract: for C = A * W under every PackedWeight format,
// row r of C depends only on row r of A — the micro-kernel packs A
// panels zero-padded to the full register-tile height (gemm/
// micro_kernel.hpp), per-element accumulation runs over k in a fixed
// order, and host ops in serving graphs are row-wise (layernorm, gelu)
// or group-wise (attention/pooling over whole sequences).  A gathered
// run therefore produces, row for row, exactly the bits each member's
// solo run would have produced; serve_batch_test proves it per format.
//
// The buffer is grow-only and reusable: a serving batcher gathers into
// the same stage across flushes without reallocating on the hot path.

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

class RowStage {
 public:
  /// The row interval one gathered part occupies in the staged matrix.
  struct Slice {
    std::size_t row0 = 0;
    std::size_t rows = 0;
  };

  /// Gathers `parts` — row blocks that all share one column count —
  /// into a single (sum of rows) x cols matrix, in order.  Returns the
  /// staged matrix; slices() reports where each part landed.  Throws
  /// std::invalid_argument on an empty part list or a column mismatch.
  const MatrixF& gather(const std::vector<const MatrixF*>& parts);

  const MatrixF& staged() const noexcept { return view_; }
  const std::vector<Slice>& slices() const noexcept { return slices_; }

  /// Copies rows [slice.row0, slice.row0 + slice.rows) of `batched`
  /// into an owned matrix — the member's private view of a batched
  /// output.  Throws std::invalid_argument when the slice is out of
  /// range.
  static MatrixF scatter(const MatrixF& batched, const Slice& slice);

  /// Maps an input-row slice to the matching output-row slice when the
  /// graph contracts rows group-wise (group_in input rows become
  /// group_out output rows, e.g. sequence pooling).  Throws
  /// std::invalid_argument when the slice is not group-aligned.
  static Slice map_groups(const Slice& in, std::size_t group_in,
                          std::size_t group_out);

 private:
  MatrixF buffer_;  ///< grow-only staging storage (capacity_rows_ rows)
  MatrixF view_;    ///< borrowed batch-rows view over buffer_
  std::size_t capacity_rows_ = 0;
  std::vector<Slice> slices_;
};

}  // namespace tilesparse
