#include "exec/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "exec/validate.hpp"
#include "tensor/ops.hpp"
#include "util/fault_injection.hpp"
#include "util/guards.hpp"

namespace tilesparse {
namespace {

/// Dense rate assumed when the host never ran calibrate_planner; only
/// sets the sharding floor, so an order of magnitude is enough.
constexpr double kFallbackDenseGflops = 8.0;

}  // namespace

ExecScheduler::ExecScheduler(SchedulerOptions options, ThreadPool* pool)
    : options_(options), pool_(pool ? pool : &ThreadPool::global()) {
  if (options_.min_shard_cols == 0) options_.min_shard_cols = 1;
}

std::size_t ExecScheduler::streams() const noexcept {
  return options_.streams > 0 ? options_.streams : pool_->worker_count();
}

std::size_t ExecScheduler::shard_count(const ExecGraph::Node& node) const {
  if (node.kind != ExecGraph::NodeKind::kGemm) return 1;
  if (!options_.shard_wide_n) return 1;
  const std::size_t streams = this->streams();
  if (streams < 2) return 1;
  // Per-tensor dynamic int8 scales are a property of the *whole*
  // weight; slicing would re-quantise and change results.
  if (!node.weight->col_shardable() || node.ctx.int8()) return 1;

  const PlannerCalibration& calibration =
      options_.calibration ? *options_.calibration : planner_calibration();
  const double dense_gflops =
      calibration.measured() ? calibration.dense_gflops : kFallbackDenseGflops;
  // Per-format effective rate: a slow format (csr penalty > 1) covers
  // the dispatch overhead with fewer of its own MACs, so it shards
  // earlier than dense for the same nominal MAC count.
  const double gflops =
      dense_gflops /
      std::max(0.05, calibration.mac_penalty(node.weight->format()));
  const double overhead_us = options_.dispatch_overhead_us >= 0.0
                                 ? options_.dispatch_overhead_us
                                 : calibration.shard_overhead_us;
  // gflops * 1e9 flop/s * overhead_us * 1e-6 s, at 2 flops per MAC.
  const double min_macs_per_shard =
      std::max(1.0, gflops * overhead_us * 1e3 / 2.0);
  const double macs = node.weight->macs(options_.reference_m);
  const auto by_cost = static_cast<std::size_t>(macs / min_macs_per_shard);
  const std::size_t by_cols = node.weight->n() / options_.min_shard_cols;
  return std::max<std::size_t>(1, std::min({streams, by_cost, by_cols}));
}

void ExecScheduler::prepare(ExecGraph& graph) {
  const auto& nodes = graph.nodes();
  if (planned_build_id_ == graph.build_id() &&
      planned_node_count_ == nodes.size() && planned_streams_ == streams()) {
    return;
  }
  plans_.clear();
  plans_.resize(nodes.size());
  planned_sharded_nodes_ = 0;
  planned_shards_ = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::size_t count = shard_count(nodes[i]);
    if (count < 2) continue;
    const std::size_t n = nodes[i].weight->n();
    const std::size_t base = n / count, rem = n % count;
    std::size_t n0 = 0;
    plans_[i].shards.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t n1 = n0 + base + (s < rem ? 1 : 0);
      Shard shard;
      shard.weight = nodes[i].weight->shard_cols(n0, n1);
      shard.n0 = n0;
      shard.n1 = n1;
      plans_[i].shards.push_back(std::move(shard));
      n0 = n1;
    }
    if (options_.validate && !plans_[i].shards.empty()) {
      // Audit the *actual* plan, not a re-derivation: the slices above
      // are what will execute, so a shard_cols implementation that
      // mis-shapes a slice is caught before it computes a single MAC.
      std::vector<std::pair<std::size_t, std::size_t>> slices;
      slices.reserve(plans_[i].shards.size());
      for (const Shard& shard : plans_[i].shards)
        slices.emplace_back(shard.n0, shard.n1);
      auto findings = audit_shard_slices(*nodes[i].weight, slices);
      for (const GraphFinding& finding : findings) {
        if (finding.severity == FindingSeverity::kError)
          throw GraphValidationError(std::move(findings));
      }
    }
  }

  // Expand nodes into dispatch tasks: one per whole node, or S column
  // shards plus a join for sharded GEMMs.  The expansion is static
  // across runs; only the pending counters are per-run state.
  tasks_.clear();
  initially_ready_.clear();
  std::vector<std::vector<std::size_t>> entry(nodes.size());  // receive deps
  std::vector<std::size_t> exit(nodes.size());                // signal dependents
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::vector<Shard>& shards = plans_[i].shards;
    if (shards.empty()) {
      Task task;
      task.node = i;
      task.initial_pending = nodes[i].deps.size();
      tasks_.push_back(std::move(task));
      entry[i] = {tasks_.size() - 1};
      exit[i] = tasks_.size() - 1;
      continue;
    }
    ++planned_sharded_nodes_;
    const std::size_t join_id = tasks_.size() + shards.size();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Task task;
      task.node = i;
      task.shard = static_cast<std::ptrdiff_t>(s);
      task.initial_pending = nodes[i].deps.size();
      task.successors = {join_id};
      tasks_.push_back(std::move(task));
      entry[i].push_back(tasks_.size() - 1);
      ++planned_shards_;
    }
    Task join;
    join.node = i;
    join.shard = -2;
    join.initial_pending = shards.size();
    tasks_.push_back(std::move(join));
    exit[i] = join_id;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (ExecGraph::NodeId dependent : nodes[i].dependents) {
      auto& successors = tasks_[exit[i]].successors;
      successors.insert(successors.end(), entry[dependent].begin(),
                        entry[dependent].end());
    }
  }
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (tasks_[t].initial_pending == 0) initially_ready_.push_back(t);
  }

  planned_build_id_ = graph.build_id();
  planned_node_count_ = nodes.size();
  planned_streams_ = streams();
}

void ExecScheduler::run_serial(ExecGraph& graph) {
  for (ExecGraph::NodeId id : graph.topo_order()) {
    if (cancel_) cancel_->throw_if_expired();
    fault_point(FaultSite::kSchedulerDispatch);
    graph.execute_node(id);
  }
  stats_ = RunStats{};
  stats_.nodes = graph.node_count();
  stats_.tasks = graph.node_count();
}

void ExecScheduler::run(ExecGraph& graph) {
  if (graph.node_count() == 0) {
    stats_ = RunStats{};
    return;
  }
  if (options_.validate && validated_build_id_ != graph.build_id()) {
    // One static pass per graph: def-use, hazard coverage, acyclicity,
    // shapes, shard plans.  Throws GraphValidationError (all findings
    // listed) instead of dispatching a malformed plan.
    validate_graph_or_throw(graph);
    validated_build_id_ = graph.build_id();
  }
  graph.poison_slots();  // guards builds: NaN out every non-input slot
  if (streams() <= 1) {
    run_serial(graph);
    return;
  }
  run_concurrent(graph);
}

void ExecScheduler::execute_task(ExecGraph& graph, const Task& task) {
  // Node-boundary cancellation point + injected stream faults: both
  // throw here, inside the stream loop's try, so an expired deadline or
  // an injected fault aborts the run through the same first-exception
  // path a real node failure takes.
  if (cancel_) cancel_->throw_if_expired();
  fault_point(FaultSite::kSchedulerDispatch);
  if (task.shard == -1) {
    graph.execute_node(task.node);
    return;
  }
  const ExecGraph::Node& node = graph.nodes()[task.node];
  if (task.shard >= 0) {
    TS_ASSERT(static_cast<std::size_t>(task.shard) <
              plans_[task.node].shards.size());
    Shard& shard = plans_[task.node].shards[static_cast<std::size_t>(task.shard)];
    const MatrixF& a = graph.slot(node.in);
    const std::size_t width = shard.n1 - shard.n0;
    if (shard.scratch.rows() != a.rows() || shard.scratch.cols() != width)
      shard.scratch = MatrixF(a.rows(), width);
    shard.weight->matmul(node.ctx, a, shard.scratch);
    return;
  }
  // Join: stitch the shard columns into the output slot, then bias.
  const MatrixF& a = graph.slot(node.in);
  MatrixF& c = graph.slot(node.out);
  if (c.rows() != a.rows() || c.cols() != node.weight->n())
    c = MatrixF(a.rows(), node.weight->n());
  for (const Shard& shard : plans_[task.node].shards) {
    const std::size_t width = shard.n1 - shard.n0;
    for (std::size_t r = 0; r < c.rows(); ++r) {
      const float* src = shard.scratch.data() + r * width;
      float* dst = c.data() + r * c.cols() + shard.n0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = src[j];
    }
  }
  if (node.bias) add_row_bias(c, *node.bias);
}

void ExecScheduler::run_concurrent(ExecGraph& graph) {
  prepare(graph);
  stats_ = RunStats{};
  stats_.nodes = graph.node_count();
  stats_.tasks = tasks_.size();
  stats_.sharded_nodes = planned_sharded_nodes_;
  stats_.shards = planned_shards_;

  // Per-run state: pending counters and the ready queue, seeded from
  // the cached expansion.  Everything below the mutex; the kernels
  // themselves run unlocked.
  std::vector<std::size_t> pending(tasks_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t)
    pending[t] = tasks_[t].initial_pending;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::size_t> ready = initially_ready_;
  std::size_t next_ready = 0;
  std::size_t executed = 0;
  bool aborted = false;
  std::exception_ptr error;

  auto stream_loop = [&](std::size_t) {
    std::unique_lock lock(mutex);
    for (;;) {
      cv.wait(lock, [&] {
        return aborted || executed == tasks_.size() || next_ready < ready.size();
      });
      if (aborted || executed == tasks_.size()) return;
      const std::size_t id = ready[next_ready++];
      lock.unlock();
      try {
        execute_task(graph, tasks_[id]);
      } catch (...) {
        lock.lock();
        if (!error) error = std::current_exception();
        aborted = true;
        cv.notify_all();
        return;
      }
      lock.lock();
      ++executed;
      bool woke_any = false;
      for (std::size_t successor : tasks_[id].successors) {
        if (--pending[successor] == 0) {
          ready.push_back(successor);
          woke_any = true;
        }
      }
      if (executed == tasks_.size() || woke_any) cv.notify_all();
    }
  };

  pool_->parallel_for(0, streams(), stream_loop);
  if (error) std::rethrow_exception(error);
  TS_CHECK(executed == tasks_.size(),
           "ExecScheduler: graph did not complete (dispatch invariant)");
}

}  // namespace tilesparse
