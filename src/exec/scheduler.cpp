#include "exec/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "exec/validate.hpp"
#include "tensor/ops.hpp"
#include "util/fault_injection.hpp"
#include "util/guards.hpp"

namespace tilesparse {
namespace {

/// Dense rate assumed when the host never ran calibrate_planner; only
/// sets the sharding floor, so an order of magnitude is enough.
constexpr double kFallbackDenseGflops = 8.0;

}  // namespace

ExecScheduler::ExecScheduler(SchedulerOptions options, ThreadPool* pool)
    : options_(options), pool_(pool ? pool : &ThreadPool::global()) {
  if (options_.min_shard_cols == 0) options_.min_shard_cols = 1;
}

std::size_t ExecScheduler::streams() const noexcept {
  return options_.streams > 0 ? options_.streams : pool_->worker_count();
}

std::size_t ExecScheduler::shard_count(const ExecGraph::Node& node) const {
  if (node.kind != ExecGraph::NodeKind::kGemm) return 1;
  if (!options_.shard_wide_n) return 1;
  const std::size_t streams = this->streams();
  if (streams < 2) return 1;
  // Per-tensor dynamic int8 scales are a property of the *whole*
  // weight; slicing would re-quantise and change results.
  if (!node.weight->col_shardable() || node.ctx.int8()) return 1;

  const PlannerCalibration& calibration =
      options_.calibration ? *options_.calibration : planner_calibration();
  const double dense_gflops =
      calibration.measured() ? calibration.dense_gflops : kFallbackDenseGflops;
  // Per-format effective rate: a slow format (csr penalty > 1) covers
  // the dispatch overhead with fewer of its own MACs, so it shards
  // earlier than dense for the same nominal MAC count.
  const double gflops =
      dense_gflops /
      std::max(0.05, calibration.mac_penalty(node.weight->format()));
  const double overhead_us = options_.dispatch_overhead_us >= 0.0
                                 ? options_.dispatch_overhead_us
                                 : calibration.shard_overhead_us;
  // gflops * 1e9 flop/s * overhead_us * 1e-6 s, at 2 flops per MAC.
  const double min_macs_per_shard =
      std::max(1.0, gflops * overhead_us * 1e3 / 2.0);
  const double macs = node.weight->macs(options_.reference_m);
  const auto by_cost = static_cast<std::size_t>(macs / min_macs_per_shard);
  const std::size_t by_cols = node.weight->n() / options_.min_shard_cols;
  return std::max<std::size_t>(1, std::min({streams, by_cost, by_cols}));
}

ExecScheduler::Plan& ExecScheduler::prepare(ExecGraph& graph) {
  const auto& nodes = graph.nodes();
  for (auto& cached : plan_cache_) {
    if (cached->build_id == graph.build_id() &&
        cached->node_count == nodes.size() && cached->streams == streams()) {
      cached->last_used = ++plan_stamp_;
      return *cached;
    }
  }

  // Miss: build a fresh plan, evicting the least-recently-used entry
  // once the cache is full.
  auto fresh = std::make_unique<Plan>();
  Plan& plan = *fresh;
  plan.node_plans.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::size_t count = shard_count(nodes[i]);
    if (count < 2) continue;
    const std::size_t n = nodes[i].weight->n();
    const std::size_t base = n / count, rem = n % count;
    std::size_t n0 = 0;
    plan.node_plans[i].shards.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t n1 = n0 + base + (s < rem ? 1 : 0);
      Shard shard;
      shard.weight = nodes[i].weight->shard_cols(n0, n1);
      shard.n0 = n0;
      shard.n1 = n1;
      plan.node_plans[i].shards.push_back(std::move(shard));
      n0 = n1;
    }
    if (options_.validate && !plan.node_plans[i].shards.empty()) {
      // Audit the *actual* plan, not a re-derivation: the slices above
      // are what will execute, so a shard_cols implementation that
      // mis-shapes a slice is caught before it computes a single MAC.
      std::vector<std::pair<std::size_t, std::size_t>> slices;
      slices.reserve(plan.node_plans[i].shards.size());
      for (const Shard& shard : plan.node_plans[i].shards)
        slices.emplace_back(shard.n0, shard.n1);
      auto findings = audit_shard_slices(*nodes[i].weight, slices);
      for (const GraphFinding& finding : findings) {
        if (finding.severity == FindingSeverity::kError)
          throw GraphValidationError(std::move(findings));
      }
    }
  }

  // Expand nodes into dispatch tasks: one per whole node, or S column
  // shards plus a join for sharded GEMMs.  The expansion is static
  // across runs; only the pending counters are per-run state.
  std::vector<std::vector<std::size_t>> entry(nodes.size());  // receive deps
  std::vector<std::size_t> exit(nodes.size());                // signal dependents
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::vector<Shard>& shards = plan.node_plans[i].shards;
    if (shards.empty()) {
      Task task;
      task.node = i;
      task.initial_pending = nodes[i].deps.size();
      plan.tasks.push_back(std::move(task));
      entry[i] = {plan.tasks.size() - 1};
      exit[i] = plan.tasks.size() - 1;
      continue;
    }
    ++plan.sharded_nodes;
    const std::size_t join_id = plan.tasks.size() + shards.size();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Task task;
      task.node = i;
      task.shard = static_cast<std::ptrdiff_t>(s);
      task.initial_pending = nodes[i].deps.size();
      task.successors = {join_id};
      plan.tasks.push_back(std::move(task));
      entry[i].push_back(plan.tasks.size() - 1);
      ++plan.shards;
    }
    Task join;
    join.node = i;
    join.shard = -2;
    join.initial_pending = shards.size();
    plan.tasks.push_back(std::move(join));
    exit[i] = join_id;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (ExecGraph::NodeId dependent : nodes[i].dependents) {
      auto& successors = plan.tasks[exit[i]].successors;
      successors.insert(successors.end(), entry[dependent].begin(),
                        entry[dependent].end());
    }
  }
  for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
    if (plan.tasks[t].initial_pending == 0) plan.initially_ready.push_back(t);
  }

  plan.build_id = graph.build_id();
  plan.node_count = nodes.size();
  plan.streams = streams();
  plan.last_used = ++plan_stamp_;

  if (plan_cache_.size() >= kPlanCacheCapacity) {
    auto lru = std::min_element(plan_cache_.begin(), plan_cache_.end(),
                                [](const auto& a, const auto& b) {
                                  return a->last_used < b->last_used;
                                });
    *lru = std::move(fresh);
    return **lru;
  }
  plan_cache_.push_back(std::move(fresh));
  return *plan_cache_.back();
}

void ExecScheduler::run_serial(ExecGraph& graph) {
  for (ExecGraph::NodeId id : graph.topo_order()) {
    if (cancel_) cancel_->throw_if_expired();
    fault_point(FaultSite::kSchedulerDispatch);
    graph.execute_node(id);
  }
  stats_ = RunStats{};
  stats_.nodes = graph.node_count();
  stats_.tasks = graph.node_count();
}

void ExecScheduler::run(ExecGraph& graph) {
  if (graph.node_count() == 0) {
    stats_ = RunStats{};
    return;
  }
  if (options_.validate &&
      std::find(validated_build_ids_.begin(), validated_build_ids_.end(),
                graph.build_id()) == validated_build_ids_.end()) {
    // One static pass per graph: def-use, hazard coverage, acyclicity,
    // shapes, shard plans.  Throws GraphValidationError (all findings
    // listed) instead of dispatching a malformed plan.  The validated
    // set is a bounded ring for the same reason the plan cache is an
    // LRU: batching rotates several M-keyed graphs through one
    // scheduler.
    validate_graph_or_throw(graph);
    if (validated_build_ids_.size() >= 2 * kPlanCacheCapacity)
      validated_build_ids_.erase(validated_build_ids_.begin());
    validated_build_ids_.push_back(graph.build_id());
  }
  graph.poison_slots();  // guards builds: NaN out every non-input slot
  if (streams() <= 1) {
    run_serial(graph);
    return;
  }
  run_concurrent(graph);
}

void ExecScheduler::execute_task(ExecGraph& graph, Plan& plan,
                                 const Task& task) {
  // Node-boundary cancellation point + injected stream faults: both
  // throw here, inside the stream loop's try, so an expired deadline or
  // an injected fault aborts the run through the same first-exception
  // path a real node failure takes.
  if (cancel_) cancel_->throw_if_expired();
  fault_point(FaultSite::kSchedulerDispatch);
  if (task.shard == -1) {
    graph.execute_node(task.node);
    return;
  }
  const ExecGraph::Node& node = graph.nodes()[task.node];
  if (task.shard >= 0) {
    TS_ASSERT(static_cast<std::size_t>(task.shard) <
              plan.node_plans[task.node].shards.size());
    Shard& shard =
        plan.node_plans[task.node].shards[static_cast<std::size_t>(task.shard)];
    const MatrixF& a = graph.slot(node.in);
    const std::size_t width = shard.n1 - shard.n0;
    if (shard.scratch.rows() != a.rows() || shard.scratch.cols() != width)
      shard.scratch = MatrixF(a.rows(), width);
    shard.weight->matmul(node.ctx, a, shard.scratch);
    return;
  }
  // Join: stitch the shard columns into the output slot, then bias.
  const MatrixF& a = graph.slot(node.in);
  MatrixF& c = graph.slot(node.out);
  if (c.rows() != a.rows() || c.cols() != node.weight->n())
    c = MatrixF(a.rows(), node.weight->n());
  for (const Shard& shard : plan.node_plans[task.node].shards) {
    const std::size_t width = shard.n1 - shard.n0;
    for (std::size_t r = 0; r < c.rows(); ++r) {
      const float* src = shard.scratch.data() + r * width;
      float* dst = c.data() + r * c.cols() + shard.n0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = src[j];
    }
  }
  if (node.bias) add_row_bias(c, *node.bias);
}

void ExecScheduler::run_concurrent(ExecGraph& graph) {
  Plan& plan = prepare(graph);
  const std::vector<Task>& tasks = plan.tasks;
  stats_ = RunStats{};
  stats_.nodes = graph.node_count();
  stats_.tasks = tasks.size();
  stats_.sharded_nodes = plan.sharded_nodes;
  stats_.shards = plan.shards;

  // Per-run state: pending counters and the ready queue, seeded from
  // the cached expansion.  Everything below the mutex; the kernels
  // themselves run unlocked.
  std::vector<std::size_t> pending(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t)
    pending[t] = tasks[t].initial_pending;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::size_t> ready = plan.initially_ready;
  std::size_t next_ready = 0;
  std::size_t executed = 0;
  bool aborted = false;
  std::exception_ptr error;

  auto stream_loop = [&](std::size_t) {
    std::unique_lock lock(mutex);
    for (;;) {
      cv.wait(lock, [&] {
        return aborted || executed == tasks.size() || next_ready < ready.size();
      });
      if (aborted || executed == tasks.size()) return;
      const std::size_t id = ready[next_ready++];
      lock.unlock();
      try {
        execute_task(graph, plan, tasks[id]);
      } catch (...) {
        lock.lock();
        if (!error) error = std::current_exception();
        aborted = true;
        cv.notify_all();
        return;
      }
      lock.lock();
      ++executed;
      bool woke_any = false;
      for (std::size_t successor : tasks[id].successors) {
        if (--pending[successor] == 0) {
          ready.push_back(successor);
          woke_any = true;
        }
      }
      if (executed == tasks.size() || woke_any) cv.notify_all();
    }
  };

  pool_->parallel_for(0, streams(), stream_loop);
  if (error) std::rethrow_exception(error);
  TS_CHECK(executed == tasks.size(),
           "ExecScheduler: graph did not complete (dispatch invariant)");
}

}  // namespace tilesparse
