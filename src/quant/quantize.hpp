#pragma once
// Symmetric INT8 quantization.  The paper leaves "how to integrate tile
// sparsity with quantization" as future work (Sec. VIII, citing Yang et
// al.'s sparsity-quantization joint compression); this module provides
// that integration: TW-compacted tiles quantize per-tile (each tile has
// its own scale, which the tile-level regularity makes free), and the
// masked GEMM runs in int8 with int32 accumulation.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

using MatrixI8 = Matrix<std::int8_t>;

/// A quantised matrix: q = clamp(round(x / scale), -127, 127).
struct QuantMatrix {
  MatrixI8 values;
  float scale = 1.0f;
};

/// Symmetric per-tensor quantisation with the scale chosen from the
/// absolute maximum.  An all-zero input gets scale 1.
QuantMatrix quantize(const MatrixF& m);

/// Reconstructs floats (q * scale).
MatrixF dequantize(const QuantMatrix& q);

/// Worst-case absolute reconstruction error of this quantisation:
/// half a quantisation step.
inline float quantization_step(const QuantMatrix& q) noexcept {
  return q.scale;
}

}  // namespace tilesparse
