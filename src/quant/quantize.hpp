#pragma once
// Symmetric INT8 quantization.  The paper leaves "how to integrate tile
// sparsity with quantization" as future work (Sec. VIII, citing Yang et
// al.'s sparsity-quantization joint compression); this module provides
// that integration: TW-compacted tiles quantize per-tile (each tile has
// its own scale, which the tile-level regularity makes free), and the
// masked GEMM runs in int8 with int32 accumulation.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse {

using MatrixI8 = Matrix<std::int8_t>;

/// A quantised matrix: q = clamp(round(x / scale), -127, 127).
struct QuantMatrix {
  MatrixI8 values;
  float scale = 1.0f;
};

/// Symmetric per-tensor quantisation with the scale chosen from the
/// absolute maximum.  An all-zero input gets scale 1.
QuantMatrix quantize(const MatrixF& m);

/// A per-row quantised matrix: row r uses scales[r], chosen from that
/// row's own absolute maximum.  Row r of the result depends only on
/// row r of the input, which is what makes dynamic activation
/// quantisation batching-invariant: a row quantises to the same bits
/// whether it travels alone or gathered into a wide-M batch (see
/// exec/row_stage.hpp).
struct QuantRowMatrix {
  MatrixI8 values;
  std::vector<float> scales;  ///< one per row; 1 for an all-zero row
};

/// Symmetric per-row quantisation.
QuantRowMatrix quantize_rows(const MatrixF& m);

/// Reconstructs floats (q * scale).
MatrixF dequantize(const QuantMatrix& q);

/// Worst-case absolute reconstruction error of this quantisation:
/// half a quantisation step.
inline float quantization_step(const QuantMatrix& q) noexcept {
  return q.scale;
}

}  // namespace tilesparse
