#pragma once
// INT8 execution of TW-pruned weights: per-tile weight scales +
// per-ROW dynamic activation scales, int32 accumulation, float output.
// Per-row activation scaling keeps each output row a function of its
// own input row alone, so batched and solo execution are bit-identical
// (the serving batcher's contract, exec/row_stage.hpp).

#include <cstdint>
#include <vector>

#include "gemm/masked_gemm.hpp"
#include "quant/quantize.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

/// A compacted TW tile with int8 weights and its own scale.
struct QuantMaskedTile {
  MatrixI8 weights;  ///< K_t x W_t
  float scale = 1.0f;
  std::vector<std::int32_t> kept_rows;
  std::vector<std::int32_t> out_cols;
};

/// Quantises each compacted tile independently (per-tile scales — the
/// regular tile structure is what makes this granularity natural).
std::vector<QuantMaskedTile> quantize_tiles(const std::vector<MaskedTile>& tiles);

/// Dense int8 GEMM reference: C = (Aq * Bq) * (a.scale * b.scale).
MatrixF quant_matmul(const QuantMatrix& a, const QuantMatrix& b);

/// C = A * W for TW-pruned int8 weights.  A is quantised internally
/// (dynamic per-row scales); accumulation is int32 per tile, scaled to
/// float on store.  Parallel across tiles (disjoint output columns).
MatrixF quant_tw_matmul(const MatrixF& a,
                        const std::vector<QuantMaskedTile>& tiles,
                        std::size_t n);

/// Accumulating variant: C += A * W.  C must be M x N.  Entry point for
/// the QuantTwWeight execution backend.
void quant_tw_gemm(const MatrixF& a, const std::vector<QuantMaskedTile>& tiles,
                   MatrixF& c);

/// Dense K x N reconstruction of quantised tiles (dequantised values,
/// zeros where pruned) — what the int8 kernel arithmetically executes.
MatrixF quant_tiles_to_dense(const std::vector<QuantMaskedTile>& tiles,
                             std::size_t k, std::size_t n);

}  // namespace tilesparse
