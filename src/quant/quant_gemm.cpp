#include "quant/quant_gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tilesparse {

std::vector<QuantMaskedTile> quantize_tiles(
    const std::vector<MaskedTile>& tiles) {
  std::vector<QuantMaskedTile> out;
  out.reserve(tiles.size());
  for (const auto& tile : tiles) {
    QuantMaskedTile q;
    const QuantMatrix qw = quantize(tile.weights);
    q.weights = qw.values;
    q.scale = qw.scale;
    q.kept_rows = tile.kept_rows;
    q.out_cols = tile.out_cols;
    out.push_back(std::move(q));
  }
  return out;
}

MatrixF quant_matmul(const QuantMatrix& a, const QuantMatrix& b) {
  assert(a.values.cols() == b.values.rows());
  const std::size_t m = a.values.rows();
  const std::size_t k = a.values.cols();
  const std::size_t n = b.values.cols();
  MatrixF c(m, n);
  const float out_scale = a.scale * b.scale;
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::int32_t> acc(n, 0);
    const std::int8_t* arow = a.values.data() + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = arow[kk];
      if (av == 0) continue;
      const std::int8_t* brow = b.values.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j)
        acc[j] += av * static_cast<std::int32_t>(brow[j]);
    }
    float* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j)
      crow[j] = static_cast<float>(acc[j]) * out_scale;
  }
  return c;
}

MatrixF quant_tw_matmul(const MatrixF& a,
                        const std::vector<QuantMaskedTile>& tiles,
                        std::size_t n) {
  MatrixF c(a.rows(), n);
  quant_tw_gemm(a, tiles, c);
  return c;
}

MatrixF quant_tiles_to_dense(const std::vector<QuantMaskedTile>& tiles,
                             std::size_t k, std::size_t n) {
  MatrixF dense(k, n);
  for (const auto& tile : tiles) {
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t) {
      for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
        dense(static_cast<std::size_t>(tile.kept_rows[t]),
              static_cast<std::size_t>(tile.out_cols[j])) =
            static_cast<float>(tile.weights(t, j)) * tile.scale;
      }
    }
  }
  return dense;
}

void quant_tw_gemm(const MatrixF& a, const std::vector<QuantMaskedTile>& tiles,
                   MatrixF& c) {
  assert(c.rows() == a.rows());
  const QuantMatrix aq = quantize(a);
  const std::size_t m = a.rows();
  const std::size_t n = c.cols();

#pragma omp parallel for schedule(dynamic)
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const auto& tile = tiles[t];
    const std::size_t kt = tile.kept_rows.size();
    const std::size_t wt = tile.out_cols.size();
    if (kt == 0 || wt == 0) continue;
    const float out_scale = aq.scale * tile.scale;

    constexpr std::size_t kRowBlock = 32;
    std::vector<std::int8_t> panel(kRowBlock * kt);
    std::vector<std::int32_t> acc(kRowBlock * wt);
    for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
      const std::size_t rows = std::min(kRowBlock, m - i0);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::int8_t* arow = aq.values.data() + (i0 + r) * a.cols();
        std::int8_t* prow = panel.data() + r * kt;
        for (std::size_t j = 0; j < kt; ++j) prow[j] = arow[tile.kept_rows[j]];
      }
      std::fill(acc.begin(), acc.begin() + rows * wt, 0);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::int8_t* prow = panel.data() + r * kt;
        std::int32_t* arow = acc.data() + r * wt;
        for (std::size_t j = 0; j < kt; ++j) {
          const std::int32_t av = prow[j];
          if (av == 0) continue;
          const std::int8_t* wrow = tile.weights.data() + j * wt;
          for (std::size_t x = 0; x < wt; ++x)
            arow[x] += av * static_cast<std::int32_t>(wrow[x]);
        }
      }
      for (std::size_t r = 0; r < rows; ++r) {
        float* crow = c.data() + (i0 + r) * n;
        const std::int32_t* arow = acc.data() + r * wt;
        for (std::size_t x = 0; x < wt; ++x)
          crow[tile.out_cols[x]] += static_cast<float>(arow[x]) * out_scale;
      }
    }
  }
}

}  // namespace tilesparse
