#include "quant/quant_gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gemm/micro_kernel.hpp"

namespace tilesparse {

std::vector<QuantMaskedTile> quantize_tiles(
    const std::vector<MaskedTile>& tiles) {
  std::vector<QuantMaskedTile> out;
  out.reserve(tiles.size());
  for (const auto& tile : tiles) {
    QuantMaskedTile q;
    const QuantMatrix qw = quantize(tile.weights);
    q.weights = qw.values;
    q.scale = qw.scale;
    q.kept_rows = tile.kept_rows;
    q.out_cols = tile.out_cols;
    out.push_back(std::move(q));
  }
  return out;
}

MatrixF quant_matmul(const QuantMatrix& a, const QuantMatrix& b) {
  assert(a.values.cols() == b.values.rows());
  const std::size_t m = a.values.rows();
  const std::size_t k = a.values.cols();
  const std::size_t n = b.values.cols();
  MatrixF c(m, n);
  if (m == 0 || k == 0 || n == 0) return c;
  const float out_scale = a.scale * b.scale;

  // int8 panels are 4x smaller than fp32, so the whole K extent stays
  // cache resident per strip: one kernel call covers all of K with the
  // int32 accumulators entirely in registers (fused dequant on store).
  const std::size_t k_even = round_up_pair(k);
  const std::size_t strips = (n + kNr - 1) / kNr;
  std::vector<std::int8_t> b_packed(k_even * strips * kNr);
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t j0 = s * kNr;
    pack_b_panel_i8(b.values.data() + j0, n, k, std::min(kNr, n - j0),
                    b_packed.data() + s * k_even * kNr);
  }

  const std::size_t row_blocks = (m + kMr - 1) / kMr;
#pragma omp parallel for schedule(static)
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t i = rb * kMr;
    const std::size_t rows = std::min(kMr, m - i);
    GemmScratch& scratch = thread_gemm_scratch();
    scratch.a_i8.resize(k_even * kMr);
    std::int8_t* a_panel = scratch.a_i8.data();
    pack_a_panel_i8(a.values.data() + i * k, k, rows, k, a_panel);
    for (std::size_t s = 0; s < strips; ++s) {
      const std::size_t j0 = s * kNr;
      micro_kernel_i8(k, a_panel, b_packed.data() + s * k_even * kNr,
                      out_scale, &c(i, j0), n, rows, std::min(kNr, n - j0));
    }
  }
  return c;
}

MatrixF quant_tw_matmul(const MatrixF& a,
                        const std::vector<QuantMaskedTile>& tiles,
                        std::size_t n) {
  MatrixF c(a.rows(), n);
  quant_tw_gemm(a, tiles, c);
  return c;
}

MatrixF quant_tiles_to_dense(const std::vector<QuantMaskedTile>& tiles,
                             std::size_t k, std::size_t n) {
  MatrixF dense(k, n);
  for (const auto& tile : tiles) {
    for (std::size_t t = 0; t < tile.kept_rows.size(); ++t) {
      for (std::size_t j = 0; j < tile.out_cols.size(); ++j) {
        dense(static_cast<std::size_t>(tile.kept_rows[t]),
              static_cast<std::size_t>(tile.out_cols[j])) =
            static_cast<float>(tile.weights(t, j)) * tile.scale;
      }
    }
  }
  return dense;
}

void quant_tw_gemm(const MatrixF& a, const std::vector<QuantMaskedTile>& tiles,
                   MatrixF& c) {
  assert(c.rows() == a.rows());
  // Per-ROW activation scales: each output row is scale_r * tile.scale
  // * int32, a function of that row alone, so a row computes the same
  // bits batched or solo (the batching bit-identity contract,
  // exec/row_stage.hpp).  A per-tensor scale would couple every row to
  // the batch-wide abs-max.
  const QuantRowMatrix aq = quantize_rows(a);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();

#pragma omp parallel for schedule(dynamic)
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const auto& tile = tiles[t];
    const std::size_t kt = tile.kept_rows.size();
    const std::size_t wt = tile.out_cols.size();
    if (m == 0 || kt == 0 || wt == 0) continue;

    const std::size_t kt_even = round_up_pair(kt);
    const std::size_t strips = (wt + kNr - 1) / kNr;
    const std::size_t wt_round = strips * kNr;
    constexpr std::size_t kMc = 96;  // M chunk: accumulator stays cache
                                     // resident and scratch stays bounded
    const std::size_t mcap = std::min(kMc, m);

    // Per-thread scratch (one tile per worker, reused across tiles).
    GemmScratch& scratch = thread_gemm_scratch();
    scratch.a_i8.resize(kt_even * kMr);
    scratch.b_i8.resize(kt_even * wt_round);
    scratch.acc_f32.resize(mcap * wt_round);
    std::int8_t* a_panel = scratch.a_i8.data();
    std::int8_t* b_panels = scratch.b_i8.data();
    float* acc = scratch.acc_f32.data();

    for (std::size_t s = 0; s < strips; ++s) {
      const std::size_t j0 = s * kNr;
      pack_b_panel_i8(tile.weights.data() + j0, wt, kt,
                      std::min(kNr, wt - j0), b_panels + s * kt_even * kNr);
    }
    for (std::size_t i0 = 0; i0 < m; i0 += mcap) {
      const std::size_t mlen = std::min(mcap, m - i0);
      std::fill_n(acc, mlen * wt_round, 0.0f);
      for (std::size_t i = 0; i < mlen; i += kMr) {
        const std::size_t rows = std::min(kMr, mlen - i);
        pack_a_panel_gather_i8(aq.values.data() + (i0 + i) * k, k, rows,
                               tile.kept_rows.data(), kt, a_panel);
        for (std::size_t s = 0; s < strips; ++s) {
          micro_kernel_i8(kt, a_panel, b_panels + s * kt_even * kNr,
                          tile.scale, acc + i * wt_round + s * kNr, wt_round,
                          rows, kNr);
        }
      }
      for (std::size_t i = 0; i < mlen; ++i) {
        const float* arow = acc + i * wt_round;
        const float row_scale = aq.scales[i0 + i];
        float* crow = c.data() + (i0 + i) * c.cols();
        for (std::size_t j = 0; j < wt; ++j)
          crow[static_cast<std::size_t>(tile.out_cols[j])] +=
              arow[j] * row_scale;
      }
    }
  }
}

}  // namespace tilesparse
