#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace tilesparse {

QuantMatrix quantize(const MatrixF& m) {
  QuantMatrix q;
  q.values = MatrixI8(m.rows(), m.cols());
  float abs_max = 0.0f;
  for (float v : m.flat()) abs_max = std::max(abs_max, std::fabs(v));
  q.scale = abs_max > 0.0f ? abs_max / 127.0f : 1.0f;
  const float inv = 1.0f / q.scale;
  const float* src = m.data();
  std::int8_t* dst = q.values.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const float scaled = src[i] * inv;
    dst[i] = static_cast<std::int8_t>(
        std::clamp(std::lround(scaled), -127l, 127l));
  }
  return q;
}

QuantRowMatrix quantize_rows(const MatrixF& m) {
  QuantRowMatrix q;
  q.values = MatrixI8(m.rows(), m.cols());
  q.scales.resize(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* src = m.data() + r * m.cols();
    std::int8_t* dst = q.values.data() + r * m.cols();
    float abs_max = 0.0f;
    for (std::size_t j = 0; j < m.cols(); ++j)
      abs_max = std::max(abs_max, std::fabs(src[j]));
    const float scale = abs_max > 0.0f ? abs_max / 127.0f : 1.0f;
    q.scales[r] = scale;
    const float inv = 1.0f / scale;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      dst[j] = static_cast<std::int8_t>(
          std::clamp(std::lround(src[j] * inv), -127l, 127l));
    }
  }
  return q;
}

MatrixF dequantize(const QuantMatrix& q) {
  MatrixF m(q.values.rows(), q.values.cols());
  const std::int8_t* src = q.values.data();
  float* dst = m.data();
  for (std::size_t i = 0; i < m.size(); ++i)
    dst[i] = static_cast<float>(src[i]) * q.scale;
  return m;
}

}  // namespace tilesparse
