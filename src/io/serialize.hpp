#pragma once
// Binary serialization for deployment artifacts: a pruned model ships
// its TilePatterns, compacted tiles and — via the whole-PackedWeight
// container — complete execution backends to the inference side, which
// must not redo the (training-time) pruning or quantisation.  Format:
// little-endian (enforced at compile time in io/wire.hpp), magic +
// version header per object, size-prefixed arrays validated against the
// stream length before allocation.  Errors (short reads, bad magic,
// version mismatch, corrupt sizes) throw std::runtime_error.
//
// Two wire layouts coexist (wire::Layout):
//  * v1 — packed back-to-back, stream-loadable only;
//  * v2 (default) — every bulk array/matrix payload is padded to a
//    64-byte-aligned absolute file offset, so a file mapped at a
//    page-aligned base can hand out typed spans directly into the
//    mapping (zero-copy; see io/mmap_file.hpp and the read_*(
//    MappedArtifact&) overloads below).
// Readers never assume a version: every nested header carries it, and
// both layouts stream-load transparently.

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/calibration.hpp"
#include "exec/packed_weight.hpp"
#include "exec/weight_storage.hpp"
#include "gemm/masked_gemm.hpp"
#include "io/wire.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

class MappedArtifact;

// Streams.  Writers default to the current layout (v2, aligned); pass
// wire::Layout{wire::kContainerVersionV1} to emit legacy artifacts.
void write_matrix(std::ostream& out, const MatrixF& m, wire::Layout layout = {});
MatrixF read_matrix(std::istream& in);

void write_pattern(std::ostream& out, const TilePattern& pattern,
                   wire::Layout layout = {});
TilePattern read_pattern(std::istream& in);

void write_tiles(std::ostream& out, const std::vector<MaskedTile>& tiles,
                 wire::Layout layout = {});
std::vector<MaskedTile> read_tiles(std::istream& in);

void write_csr(std::ostream& out, const CsrRef& m, wire::Layout layout = {});
inline void write_csr(std::ostream& out, const Csr& m,
                      wire::Layout layout = {}) {
  write_csr(out, m.ref(), layout);
}
Csr read_csr(std::istream& in);

void write_csc(std::ostream& out, const CscRef& m, wire::Layout layout = {});
inline void write_csc(std::ostream& out, const Csc& m,
                      wire::Layout layout = {}) {
  write_csc(out, m.ref(), layout);
}
Csc read_csc(std::istream& in);

// Zero-copy duals of the readers above: parse the same wire objects
// from a mapped v2 artifact, borrowing bulk sections (matrix panels,
// index/value arrays) in place of copying them.  Small metadata (tile
// index vectors, the pattern) is still copied — it is a few percent of
// the payload and downstream code keeps plain vectors.  Whoever holds
// the returned views must keep the mapping alive (MappedArtifact::
// keepalive); the PackedWeight load_view paths do this automatically.
TilePattern read_pattern(MappedArtifact& in);
std::vector<MaskedTile> read_tiles(MappedArtifact& in);
CsrStore read_csr(MappedArtifact& in);
CscStore read_csc(MappedArtifact& in);

// ---------------------------------------------- whole-PackedWeight container
//
// Layout: magic "TSPW", version, format name (from PackedWeight::
// format()), k, n, then a backend-owned payload written by
// PackedWeight::save() — dense panels, TW/TEW tiles + pattern, CSR
// arrays, or int8 tiles *with their scales*, so loading never re-packs
// or re-quantises.  Reading dispatches on the stored format name
// through the BackendRegistry loader table (see load_packed_weight in
// exec/backend_registry.hpp); unknown formats throw std::runtime_error.

void write_packed_weight(std::ostream& out, const PackedWeight& weight,
                         wire::Layout layout = {});
std::unique_ptr<PackedWeight> read_packed_weight(std::istream& in);

/// One entry of a model-level artifact.
struct NamedWeight {
  std::string name;
  std::unique_ptr<PackedWeight> weight;
};

// Model-level artifact: magic "TSMW", version, then a count-prefixed
// sequence of (layer name, packed-weight container) — one file serves a
// whole model.
void write_model_weights(
    std::ostream& out,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers,
    wire::Layout layout = {});
std::vector<NamedWeight> read_model_weights(std::istream& in);

/// Zero-copy dual: every weight's bulk payload borrows the mapping
/// (and holds its keepalive), so N processes loading the same file
/// share one physical copy of the weights through the page cache.
std::vector<NamedWeight> read_model_weights(MappedArtifact& in);

// Planner calibration — JSON, not the binary container: the artifact
// is meant to be human-inspected and diffed across hosts.  Unknown keys
// are ignored on read; missing keys keep their defaults.
void write_calibration_json(std::ostream& out,
                            const PlannerCalibration& calibration);
PlannerCalibration read_calibration_json(std::istream& in);

// File convenience wrappers.  The artifact savers (save_packed_weight,
// save_model_weights) write atomically: the bytes go to a temp file in
// the same directory which is rename(2)d over `path` only after a
// clean flush, so a crash mid-save never leaves a torn artifact where
// a serving process could map it.
void save_pattern(const std::string& path, const TilePattern& pattern);
TilePattern load_pattern(const std::string& path);
void save_tiles(const std::string& path, const std::vector<MaskedTile>& tiles);
std::vector<MaskedTile> load_tiles(const std::string& path);
void save_packed_weight(const std::string& path, const PackedWeight& weight,
                        wire::Layout layout = {});
std::unique_ptr<PackedWeight> load_packed_weight(const std::string& path);
void save_model_weights(
    const std::string& path,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers,
    wire::Layout layout = {});
std::vector<NamedWeight> load_model_weights(const std::string& path);

/// Maps `path` (MAP_SHARED, read-only) and loads every layer zero-copy;
/// the mapping lives as long as any returned weight.  Requires a v2
/// artifact — v1 files throw with a message pointing at
/// load_model_weights.
std::vector<NamedWeight> load_model_weights_mapped(const std::string& path);

/// Zero-copy dual of load_packed_weight(path) for a single weight.
std::unique_ptr<PackedWeight> load_packed_weight_mapped(
    const std::string& path);

void save_calibration(const std::string& path,
                      const PlannerCalibration& calibration);
PlannerCalibration load_calibration(const std::string& path);

/// Loads `path` and installs it as the process-wide planner
/// calibration (set_planner_calibration).  Returns the loaded values.
PlannerCalibration load_planner_calibration(const std::string& path);

}  // namespace tilesparse
