#pragma once
// Binary serialization for deployment artifacts: a pruned model ships
// its TilePatterns and compacted tiles to the inference side, which
// must not redo the (training-time) pruning.  Format: little-endian,
// magic + version header per object, size-prefixed arrays.  Errors
// (short reads, bad magic, version mismatch) throw std::runtime_error.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/calibration.hpp"
#include "gemm/masked_gemm.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

// Streams.
void write_matrix(std::ostream& out, const MatrixF& m);
MatrixF read_matrix(std::istream& in);

void write_pattern(std::ostream& out, const TilePattern& pattern);
TilePattern read_pattern(std::istream& in);

void write_tiles(std::ostream& out, const std::vector<MaskedTile>& tiles);
std::vector<MaskedTile> read_tiles(std::istream& in);

void write_csr(std::ostream& out, const Csr& m);
Csr read_csr(std::istream& in);

// Planner calibration — JSON, not the binary container: the artifact
// is meant to be human-inspected and diffed across hosts.  Unknown keys
// are ignored on read; missing keys keep their defaults.
void write_calibration_json(std::ostream& out,
                            const PlannerCalibration& calibration);
PlannerCalibration read_calibration_json(std::istream& in);

// File convenience wrappers.
void save_pattern(const std::string& path, const TilePattern& pattern);
TilePattern load_pattern(const std::string& path);
void save_tiles(const std::string& path, const std::vector<MaskedTile>& tiles);
std::vector<MaskedTile> load_tiles(const std::string& path);
void save_calibration(const std::string& path,
                      const PlannerCalibration& calibration);
PlannerCalibration load_calibration(const std::string& path);

/// Loads `path` and installs it as the process-wide planner
/// calibration (set_planner_calibration).  Returns the loaded values.
PlannerCalibration load_planner_calibration(const std::string& path);

}  // namespace tilesparse
