#pragma once
// Binary serialization for deployment artifacts: a pruned model ships
// its TilePatterns, compacted tiles and — via the whole-PackedWeight
// container — complete execution backends to the inference side, which
// must not redo the (training-time) pruning or quantisation.  Format:
// little-endian (enforced at compile time in io/wire.hpp), magic +
// version header per object, size-prefixed arrays validated against the
// stream length before allocation.  Errors (short reads, bad magic,
// version mismatch, corrupt sizes) throw std::runtime_error.

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tile_pattern.hpp"
#include "exec/calibration.hpp"
#include "exec/packed_weight.hpp"
#include "gemm/masked_gemm.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace tilesparse {

// Streams.
void write_matrix(std::ostream& out, const MatrixF& m);
MatrixF read_matrix(std::istream& in);

void write_pattern(std::ostream& out, const TilePattern& pattern);
TilePattern read_pattern(std::istream& in);

void write_tiles(std::ostream& out, const std::vector<MaskedTile>& tiles);
std::vector<MaskedTile> read_tiles(std::istream& in);

void write_csr(std::ostream& out, const Csr& m);
Csr read_csr(std::istream& in);

void write_csc(std::ostream& out, const Csc& m);
Csc read_csc(std::istream& in);

// ---------------------------------------------- whole-PackedWeight container
//
// Layout: magic "TSPW", version, format name (from PackedWeight::
// format()), k, n, then a backend-owned payload written by
// PackedWeight::save() — dense panels, TW/TEW tiles + pattern, CSR
// arrays, or int8 tiles *with their scales*, so loading never re-packs
// or re-quantises.  Reading dispatches on the stored format name
// through the BackendRegistry loader table (see load_packed_weight in
// exec/backend_registry.hpp); unknown formats throw std::runtime_error.

void write_packed_weight(std::ostream& out, const PackedWeight& weight);
std::unique_ptr<PackedWeight> read_packed_weight(std::istream& in);

/// One entry of a model-level artifact.
struct NamedWeight {
  std::string name;
  std::unique_ptr<PackedWeight> weight;
};

// Model-level artifact: magic "TSMW", version, then a count-prefixed
// sequence of (layer name, packed-weight container) — one file serves a
// whole model.
void write_model_weights(
    std::ostream& out,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers);
std::vector<NamedWeight> read_model_weights(std::istream& in);

// Planner calibration — JSON, not the binary container: the artifact
// is meant to be human-inspected and diffed across hosts.  Unknown keys
// are ignored on read; missing keys keep their defaults.
void write_calibration_json(std::ostream& out,
                            const PlannerCalibration& calibration);
PlannerCalibration read_calibration_json(std::istream& in);

// File convenience wrappers.
void save_pattern(const std::string& path, const TilePattern& pattern);
TilePattern load_pattern(const std::string& path);
void save_tiles(const std::string& path, const std::vector<MaskedTile>& tiles);
std::vector<MaskedTile> load_tiles(const std::string& path);
void save_packed_weight(const std::string& path, const PackedWeight& weight);
std::unique_ptr<PackedWeight> load_packed_weight(const std::string& path);
void save_model_weights(
    const std::string& path,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers);
std::vector<NamedWeight> load_model_weights(const std::string& path);
void save_calibration(const std::string& path,
                      const PlannerCalibration& calibration);
PlannerCalibration load_calibration(const std::string& path);

/// Loads `path` and installs it as the process-wide planner
/// calibration (set_planner_calibration).  Returns the loaded values.
PlannerCalibration load_planner_calibration(const std::string& path);

}  // namespace tilesparse
