#pragma once
// Low-level wire helpers shared by io/serialize and the PackedWeight
// save/load payload code.
//
// All artifacts are little-endian on the wire.  write_pod emits host
// byte order, so the library refuses to compile on big-endian hosts
// rather than silently producing artifacts no little-endian reader can
// open; porting to such a host means adding byte-swap shims here.
//
// Every size prefix read from a stream is validated against the bytes
// actually remaining before any allocation: a truncated or corrupt
// artifact throws std::runtime_error, never std::bad_alloc (a garbage
// 64-bit length would otherwise ask the allocator for exabytes).

#include <bit>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "tensor/matrix.hpp"

namespace tilesparse::wire {

static_assert(std::endian::native == std::endian::little,
              "tilesparse artifacts are little-endian; this host is not — "
              "add byte-swap shims in io/wire.hpp before building here");

// Container magics shared by the writer (io/serialize) and the reader
// dispatch (exec/backend_registry).
inline constexpr std::uint32_t kMagicPackedWeight = 0x54535057;  // "TSPW"
inline constexpr std::uint32_t kMagicModelWeights = 0x54534d57;  // "TSMW"

// Wire-layout versions.  v1 packs payloads back to back; v2 pads every
// bulk payload (dense panels, tile matrices, CSR/CSC index + value
// arrays, int8 tiles) out to a 64-byte aligned absolute file offset, so
// an mmap of the artifact can hand the arrays to the kernels in place
// (io/mmap_file.hpp).  Writers emit v2; stream readers accept both.
inline constexpr std::uint32_t kContainerVersionV1 = 1;
inline constexpr std::uint32_t kContainerVersionV2 = 2;
inline constexpr std::uint32_t kContainerVersion = kContainerVersionV2;

/// Alignment of every v2 bulk payload, relative to the start of the
/// file.  64 covers the strictest element type and matches the cache
/// line the GEMM micro-kernels are laid out for; mmap bases are
/// page-aligned, so file offset == in-memory alignment.
inline constexpr std::size_t kPayloadAlign = 64;

/// Wire layout selector threaded through the writers and the
/// headerless payload readers (dense / tw-int8 — the nested TSMF/TSTP/
/// TSTL/TSCR/TSCC blobs carry their own version header and are
/// self-describing).
struct Layout {
  std::uint32_t version = kContainerVersion;
  bool aligned() const noexcept { return version >= kContainerVersionV2; }
};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("tilesparse::io: short read");
  return value;
}

/// Bytes left between the read position and the end of the stream, or
/// uint64 max when the stream is not seekable (no clamp possible there;
/// the subsequent short-read check still fires, but a garbage length
/// may surface as bad_alloc — artifacts are expected to arrive via
/// seekable file or string streams).
inline std::uint64_t remaining_bytes(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1))
    return std::numeric_limits<std::uint64_t>::max();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos)
    return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(end - pos);
}

/// Validates a just-read element count against the stream's remaining
/// bytes *before* anything is allocated.  Counts below 1 MiB skip the
/// (seek-based, buffer-discarding) length probe: allocating that much
/// transiently is harmless and the short-read check still rejects the
/// artifact, so the hot tile-loading path stays purely sequential.
inline void check_size_prefix(std::istream& in, std::uint64_t count,
                              std::size_t element_bytes) {
  if (element_bytes == 0 || count <= (1u << 20) / element_bytes) return;
  if (count > remaining_bytes(in) / element_bytes)
    throw std::runtime_error(
        "tilesparse::io: corrupt size prefix (larger than the artifact)");
}

/// Zero-pads `out` so the next byte lands on a kPayloadAlign boundary
/// (absolute file offset).  v2 writers call this before every bulk
/// payload; requires a positioned stream (files, string streams).
inline void pad_to_alignment(std::ostream& out) {
  const auto pos = out.tellp();
  if (pos == std::ostream::pos_type(-1))
    throw std::runtime_error(
        "tilesparse::io: aligned (v2) artifacts need a positioned stream");
  const auto rem = static_cast<std::size_t>(
      static_cast<std::uint64_t>(pos) % kPayloadAlign);
  if (rem == 0) return;
  static constexpr char kZeros[kPayloadAlign] = {};
  out.write(kZeros, static_cast<std::streamsize>(kPayloadAlign - rem));
}

/// Consumes the padding pad_to_alignment wrote.  Pad bytes are skipped,
/// not validated — their content carries no information.
inline void skip_alignment(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1))
    throw std::runtime_error(
        "tilesparse::io: aligned (v2) artifacts need a positioned stream");
  const auto rem = static_cast<std::size_t>(
      static_cast<std::uint64_t>(pos) % kPayloadAlign);
  if (rem == 0) return;
  const auto pad = static_cast<std::streamsize>(kPayloadAlign - rem);
  in.ignore(pad);
  if (in.gcount() != pad)
    throw std::runtime_error("tilesparse::io: short read");
}

/// Size-prefixed array write from any contiguous storage (vectors and
/// the owning-or-borrowing ArrayStore spans serialize identically).
template <typename T>
void write_span(std::ostream& out, std::span<const T> v, Layout layout = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(out, v.size());
  if (layout.aligned()) pad_to_alignment(out);
  if (!v.empty())
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v,
                  Layout layout = {}) {
  write_span<T>(out, std::span<const T>(v), layout);
}

/// `layout` comes from the enclosing header — readers never assume a
/// version, so there is deliberately no default here.
template <typename T>
std::vector<T> read_vector(std::istream& in, Layout layout) {
  const auto size = read_pod<std::uint64_t>(in);
  check_size_prefix(in, size, sizeof(T));
  if (layout.aligned()) skip_alignment(in);
  std::vector<T> v(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    if (!in) throw std::runtime_error("tilesparse::io: short read");
  }
  return v;
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  check_size_prefix(in, size, 1);
  std::string s(static_cast<std::size_t>(size), '\0');
  if (size > 0) {
    in.read(s.data(), static_cast<std::streamsize>(size));
    if (!in) throw std::runtime_error("tilesparse::io: short read");
  }
  return s;
}

/// Matrix payload: rows, cols, row-major data — no magic framing (the
/// enclosing object provides it).  Works for any trivially copyable
/// element type (float tiles, int8 quantised tiles, u8 masks).
template <typename T>
void write_matrix_payload(std::ostream& out, const Matrix<T>& m,
                          Layout layout = {}) {
  write_pod<std::uint64_t>(out, m.rows());
  write_pod<std::uint64_t>(out, m.cols());
  if (layout.aligned()) pad_to_alignment(out);
  if (!m.empty())
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(T)));
}

/// `layout` comes from the enclosing header, like read_vector's.
template <typename T>
Matrix<T> read_matrix_payload(std::istream& in, Layout layout) {
  const auto rows = read_pod<std::uint64_t>(in);
  const auto cols = read_pod<std::uint64_t>(in);
  if (cols != 0 && rows > std::numeric_limits<std::uint64_t>::max() / cols)
    throw std::runtime_error("tilesparse::io: corrupt matrix shape");
  check_size_prefix(in, rows * cols, sizeof(T));
  if (layout.aligned()) skip_alignment(in);
  Matrix<T> m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  if (!m.empty()) {
    in.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(T)));
    if (!in) throw std::runtime_error("tilesparse::io: short read");
  }
  return m;
}

/// Index-vector sanity shared by the tile loaders: strictly ascending
/// and within [0, limit).  Throws std::runtime_error — a file is never
/// trusted.
inline void check_index_vector(std::span<const std::int32_t> indices,
                               std::size_t limit, const char* what) {
  std::int64_t prev = -1;
  for (const std::int32_t idx : indices) {
    if (idx <= prev || static_cast<std::size_t>(idx) >= limit)
      throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                               " index vector");
    prev = idx;
  }
}

}  // namespace tilesparse::wire
