#include "io/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tilesparse {

namespace {

[[noreturn]] void fail_errno(const std::string& path, const char* what) {
  throw std::runtime_error("tilesparse::io: " + std::string(what) + " '" +
                           path + "': " + std::strerror(errno));
}

}  // namespace

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_errno(path, "cannot open");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno(path, "cannot stat");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw std::runtime_error("tilesparse::io: '" + path +
                             "' is empty — not an artifact");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  // MAP_SHARED + PROT_READ: every process mapping this artifact shares
  // the same page-cache pages; nothing here can dirty them.
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  const int saved = errno;
  ::close(fd);  // the mapping holds its own reference to the file
  if (p == MAP_FAILED) {
    errno = saved;
    fail_errno(path, "cannot mmap");
  }
  data_ = static_cast<const std::byte*>(p);
  size_ = size;
}

MmapFile::~MmapFile() {
  if (data_) ::munmap(const_cast<std::byte*>(data_), size_);
}

}  // namespace tilesparse
