#pragma once
// Read-only memory-mapped artifacts and the MappedArtifact cursor that
// parses them in place.
//
// The zero-copy load path: an artifact file is mapped once (MmapFile,
// page-aligned, read-only, MAP_SHARED so every process mapping the same
// file shares one physical copy of the page cache), and MappedArtifact
// walks the v2 wire layout resolving each bulk section to a typed
// ConstSpan<T> pointing straight into the mapping.  Exec backends wrap
// those spans in borrowed storage (exec/weight_storage.hpp) and keep
// the MmapFile alive through a shared_ptr keepalive, so weights from N
// serving processes cost one physical copy of RSS between them.
//
// Validation contract: every read is bounds-checked against the mapping
// before it is performed and every typed span is checked for element
// alignment, so a corrupt or truncated artifact throws
// std::runtime_error (with the failing offset in the message) — it
// never faults, overflows, or hands a kernel a misaligned pointer.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace tilesparse {

/// Immutable typed view into a mapped artifact section.
template <typename T>
using ConstSpan = std::span<const T>;

/// RAII read-only file mapping.  Not copyable or movable: share it via
/// shared_ptr (the keepalive the borrowing weights hold).
class MmapFile {
 public:
  /// Maps `path` read-only.  Throws std::runtime_error (with errno
  /// text) when the file cannot be opened, statted, or mapped; an
  /// empty file is rejected here — there is no artifact to parse.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Sequential cursor over a mapped (or in-memory) v2 artifact image.
/// Mirrors the stream readers in io/wire.hpp, but resolves bulk
/// payloads to spans into the image instead of copying them out.
class MappedArtifact {
 public:
  /// Cursor over a whole mapped file; the cursor (and every weight
  /// loaded through it) keeps the mapping alive via keepalive().
  explicit MappedArtifact(std::shared_ptr<const MmapFile> file)
      : MappedArtifact(file ? file->data() : nullptr,
                       file ? file->size() : 0, file) {
    if (!file)
      throw std::invalid_argument("MappedArtifact: null mapping");
  }

  /// Cursor over an arbitrary in-memory image (tests, the fuzz
  /// harness).  `data` must be 64-byte aligned — the mmap path gets
  /// that for free from page alignment, and the v2 layout's absolute
  /// offsets only translate to element alignment on an aligned base.
  MappedArtifact(const std::byte* data, std::size_t size,
                 std::shared_ptr<const void> keepalive = nullptr)
      : data_(data), size_(size), keepalive_(std::move(keepalive)) {
    if (size_ > 0 && reinterpret_cast<std::uintptr_t>(data_) % 64 != 0)
      throw std::runtime_error(
          "MappedArtifact: image base is not 64-byte aligned");
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return size_ - offset_; }

  /// The mapping (or other owner) every borrowed span must outlive.
  const std::shared_ptr<const void>& keepalive() const noexcept {
    return keepalive_;
  }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) fail("short artifact (pod read)");
    T value{};
    std::memcpy(&value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  /// u64 length + bytes, copied out (names and format tags are small).
  std::string string() {
    const auto size = pod<std::uint64_t>();
    if (size > remaining()) fail("corrupt string length");
    std::string s(reinterpret_cast<const char*>(data_ + offset_),
                  static_cast<std::size_t>(size));
    offset_ += static_cast<std::size_t>(size);
    return s;
  }

  /// Advances past the zero padding the v2 writer emitted before a
  /// bulk payload (wire::pad_to_alignment).
  void skip_alignment() {
    const std::size_t rem = offset_ % 64;
    if (rem == 0) return;
    if (64 - rem > remaining()) fail("truncated inside alignment padding");
    offset_ += 64 - rem;
  }

  /// Resolves `count` elements of T in place, after the v2 alignment
  /// padding.  Bounds- and alignment-checked; the returned span aliases
  /// the mapping and is valid for the keepalive's lifetime.
  template <typename T>
  ConstSpan<T> span(std::uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    skip_alignment();
    if (count > remaining() / sizeof(T)) fail("corrupt section size");
    if (offset_ % alignof(T) != 0) fail("misaligned section");
    const T* p = reinterpret_cast<const T*>(data_ + offset_);
    offset_ += static_cast<std::size_t>(count) * sizeof(T);
    return {p, static_cast<std::size_t>(count)};
  }

  /// u64 count + aligned payload — the mapped mirror of
  /// wire::read_vector under a v2 layout.
  template <typename T>
  ConstSpan<T> array() {
    return span<T>(pod<std::uint64_t>());
  }

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("tilesparse::io: " + std::string(what) +
                             " at mapped offset " + std::to_string(offset_) +
                             " of " + std::to_string(size_));
  }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t offset_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace tilesparse
