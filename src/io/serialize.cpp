#include "io/serialize.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "exec/backend_registry.hpp"
#include "io/mmap_file.hpp"
#include "io/wire.hpp"
#include "util/fault_injection.hpp"

namespace tilesparse {
namespace {

constexpr std::uint32_t kMagicMatrix = 0x54534d46;   // "TSMF"
constexpr std::uint32_t kMagicPattern = 0x54535450;  // "TSTP"
constexpr std::uint32_t kMagicTiles = 0x5453544c;    // "TSTL"
constexpr std::uint32_t kMagicCsr = 0x54534352;      // "TSCR"
constexpr std::uint32_t kMagicCsc = 0x54534343;      // "TSCC"

using wire::read_pod;
using wire::read_vector;
using wire::write_pod;
using wire::write_vector;

void write_header(std::ostream& out, std::uint32_t magic, wire::Layout layout) {
  write_pod(out, magic);
  write_pod(out, layout.version);
}

/// Nested object headers carry the wire-layout version (1 = packed,
/// 2 = aligned), so every blob is self-describing; the returned layout
/// drives the payload reads.
wire::Layout check_header(std::istream& in, std::uint32_t magic) {
  if (read_pod<std::uint32_t>(in) != magic)
    throw std::runtime_error("tilesparse::io: bad magic");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != wire::kContainerVersionV1 &&
      version != wire::kContainerVersionV2)
    throw std::runtime_error("tilesparse::io: unsupported version");
  return wire::Layout{version};
}

/// Mapped mirror of check_header.  Mapped parsing additionally requires
/// the aligned (v2) layout — a v1 blob's payloads cannot be resolved to
/// element-aligned spans.
void check_mapped_header(MappedArtifact& in, std::uint32_t magic) {
  if (in.pod<std::uint32_t>() != magic) in.fail("bad magic");
  const auto version = in.pod<std::uint32_t>();
  if (version == wire::kContainerVersionV1)
    in.fail(
        "v1 (unaligned) blob cannot be mapped zero-copy — use the stream "
        "loader");
  if (version != wire::kContainerVersionV2) in.fail("unsupported version");
}

// Shared CSR/CSC sanity: pointer array monotonic from 0 to nnz, every
// index within the minor dimension.  The sparse kernels index straight
// through these arrays, so a corrupt file must be rejected here.
void check_compressed_axes(std::span<const std::int64_t> ptr,
                           std::span<const std::int32_t> idx,
                           std::size_t minor_dim, const char* what) {
  if (ptr.empty() || ptr.front() != 0 ||
      ptr.back() != static_cast<std::int64_t>(idx.size()))
    throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                             " pointer array");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    if (ptr[i] < ptr[i - 1])
      throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                               " pointer array");
  for (const std::int32_t j : idx)
    if (j < 0 || static_cast<std::size_t>(j) >= minor_dim)
      throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                               " index array");
}

}  // namespace

void write_matrix(std::ostream& out, const MatrixF& m, wire::Layout layout) {
  write_header(out, kMagicMatrix, layout);
  wire::write_matrix_payload(out, m, layout);
}

MatrixF read_matrix(std::istream& in) {
  const wire::Layout layout = check_header(in, kMagicMatrix);
  return wire::read_matrix_payload<float>(in, layout);
}

namespace {

/// Mapped mirror of read_matrix: a borrowed MatrixF over the panel in
/// the mapping.  The caller owns keeping the mapping alive.
MatrixF read_matrix_view(MappedArtifact& in) {
  check_mapped_header(in, kMagicMatrix);
  const auto rows = in.pod<std::uint64_t>();
  const auto cols = in.pod<std::uint64_t>();
  if (cols != 0 && rows > in.remaining() / cols)
    in.fail("corrupt matrix shape");
  const ConstSpan<float> panel = in.span<float>(rows * cols);
  return MatrixF::borrowed(panel.data(), static_cast<std::size_t>(rows),
                           static_cast<std::size_t>(cols));
}

}  // namespace

void write_pattern(std::ostream& out, const TilePattern& pattern,
                   wire::Layout layout) {
  write_header(out, kMagicPattern, layout);
  write_pod<std::uint64_t>(out, pattern.k);
  write_pod<std::uint64_t>(out, pattern.n);
  write_pod<std::uint64_t>(out, pattern.g);
  write_vector(out, pattern.col_keep, layout);
  write_pod<std::uint64_t>(out, pattern.tiles.size());
  for (const auto& tile : pattern.tiles) {
    write_vector(out, tile.out_cols, layout);
    write_vector(out, tile.row_keep, layout);
  }
}

TilePattern read_pattern(std::istream& in) {
  const wire::Layout layout = check_header(in, kMagicPattern);
  TilePattern pattern;
  pattern.k = read_pod<std::uint64_t>(in);
  pattern.n = read_pod<std::uint64_t>(in);
  pattern.g = read_pod<std::uint64_t>(in);
  pattern.col_keep = read_vector<std::uint8_t>(in, layout);
  const auto tile_count = read_pod<std::uint64_t>(in);
  // Each tile occupies at least two size prefixes on the wire.
  wire::check_size_prefix(in, tile_count, 2 * sizeof(std::uint64_t));
  pattern.tiles.resize(tile_count);
  for (auto& tile : pattern.tiles) {
    tile.out_cols = read_vector<std::int32_t>(in, layout);
    tile.row_keep = read_vector<std::uint8_t>(in, layout);
  }
  validate_pattern(pattern);  // never trust a file
  return pattern;
}

TilePattern read_pattern(MappedArtifact& in) {
  check_mapped_header(in, kMagicPattern);
  TilePattern pattern;
  pattern.k = in.pod<std::uint64_t>();
  pattern.n = in.pod<std::uint64_t>();
  pattern.g = in.pod<std::uint64_t>();
  // The pattern is pure metadata (bitmasks + column lists), a few
  // percent of a real artifact — copied so TilePattern keeps vectors.
  const ConstSpan<std::uint8_t> col_keep = in.array<std::uint8_t>();
  pattern.col_keep.assign(col_keep.begin(), col_keep.end());
  const auto tile_count = in.pod<std::uint64_t>();
  if (tile_count > in.remaining() / (2 * sizeof(std::uint64_t)))
    in.fail("corrupt size prefix (larger than the artifact)");
  pattern.tiles.resize(static_cast<std::size_t>(tile_count));
  for (auto& tile : pattern.tiles) {
    const ConstSpan<std::int32_t> out_cols = in.array<std::int32_t>();
    const ConstSpan<std::uint8_t> row_keep = in.array<std::uint8_t>();
    tile.out_cols.assign(out_cols.begin(), out_cols.end());
    tile.row_keep.assign(row_keep.begin(), row_keep.end());
  }
  validate_pattern(pattern);
  return pattern;
}

void write_tiles(std::ostream& out, const std::vector<MaskedTile>& tiles,
                 wire::Layout layout) {
  write_header(out, kMagicTiles, layout);
  write_pod<std::uint64_t>(out, tiles.size());
  for (const auto& tile : tiles) {
    write_vector(out, tile.kept_rows, layout);
    write_vector(out, tile.out_cols, layout);
    write_matrix(out, tile.weights, layout);
  }
}

std::vector<MaskedTile> read_tiles(std::istream& in) {
  const wire::Layout layout = check_header(in, kMagicTiles);
  const auto count = read_pod<std::uint64_t>(in);
  wire::check_size_prefix(in, count, 2 * sizeof(std::uint64_t));
  std::vector<MaskedTile> tiles(count);
  for (auto& tile : tiles) {
    tile.kept_rows = read_vector<std::int32_t>(in, layout);
    tile.out_cols = read_vector<std::int32_t>(in, layout);
    tile.weights = read_matrix(in);
    if (tile.weights.rows() != tile.kept_rows.size() ||
        tile.weights.cols() != tile.out_cols.size())
      throw std::runtime_error("tilesparse::io: inconsistent tile");
  }
  return tiles;
}

std::vector<MaskedTile> read_tiles(MappedArtifact& in) {
  check_mapped_header(in, kMagicTiles);
  const auto count = in.pod<std::uint64_t>();
  if (count > in.remaining() / (2 * sizeof(std::uint64_t)))
    in.fail("corrupt size prefix (larger than the artifact)");
  std::vector<MaskedTile> tiles(static_cast<std::size_t>(count));
  for (auto& tile : tiles) {
    // Index vectors copied (small); tile weight panels borrowed.
    const ConstSpan<std::int32_t> kept_rows = in.array<std::int32_t>();
    const ConstSpan<std::int32_t> out_cols = in.array<std::int32_t>();
    tile.kept_rows.assign(kept_rows.begin(), kept_rows.end());
    tile.out_cols.assign(out_cols.begin(), out_cols.end());
    tile.weights = read_matrix_view(in);
    if (tile.weights.rows() != tile.kept_rows.size() ||
        tile.weights.cols() != tile.out_cols.size())
      throw std::runtime_error("tilesparse::io: inconsistent tile");
  }
  return tiles;
}

void write_csr(std::ostream& out, const CsrRef& m, wire::Layout layout) {
  write_header(out, kMagicCsr, layout);
  write_pod<std::uint64_t>(out, m.rows);
  write_pod<std::uint64_t>(out, m.cols);
  wire::write_span(out, m.row_ptr, layout);
  wire::write_span(out, m.col_idx, layout);
  wire::write_span(out, m.values, layout);
}

Csr read_csr(std::istream& in) {
  const wire::Layout layout = check_header(in, kMagicCsr);
  Csr m;
  m.rows = read_pod<std::uint64_t>(in);
  m.cols = read_pod<std::uint64_t>(in);
  m.row_ptr = read_vector<std::int64_t>(in, layout);
  m.col_idx = read_vector<std::int32_t>(in, layout);
  m.values = read_vector<float>(in, layout);
  if (m.row_ptr.size() != m.rows + 1 || m.col_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSR");
  check_compressed_axes(m.row_ptr, m.col_idx, m.cols, "CSR");
  return m;
}

CsrStore read_csr(MappedArtifact& in) {
  check_mapped_header(in, kMagicCsr);
  CsrStore m;
  m.rows = static_cast<std::size_t>(in.pod<std::uint64_t>());
  m.cols = static_cast<std::size_t>(in.pod<std::uint64_t>());
  m.row_ptr = ArrayStore<std::int64_t>::borrowed(in.array<std::int64_t>());
  m.col_idx = ArrayStore<std::int32_t>::borrowed(in.array<std::int32_t>());
  m.values = ArrayStore<float>::borrowed(in.array<float>());
  if (m.row_ptr.size() != m.rows + 1 || m.col_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSR");
  check_compressed_axes(m.row_ptr.span(), m.col_idx.span(), m.cols, "CSR");
  return m;
}

void write_csc(std::ostream& out, const CscRef& m, wire::Layout layout) {
  write_header(out, kMagicCsc, layout);
  write_pod<std::uint64_t>(out, m.rows);
  write_pod<std::uint64_t>(out, m.cols);
  wire::write_span(out, m.col_ptr, layout);
  wire::write_span(out, m.row_idx, layout);
  wire::write_span(out, m.values, layout);
}

Csc read_csc(std::istream& in) {
  const wire::Layout layout = check_header(in, kMagicCsc);
  Csc m;
  m.rows = read_pod<std::uint64_t>(in);
  m.cols = read_pod<std::uint64_t>(in);
  m.col_ptr = read_vector<std::int64_t>(in, layout);
  m.row_idx = read_vector<std::int32_t>(in, layout);
  m.values = read_vector<float>(in, layout);
  if (m.col_ptr.size() != m.cols + 1 || m.row_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSC");
  check_compressed_axes(m.col_ptr, m.row_idx, m.rows, "CSC");
  return m;
}

CscStore read_csc(MappedArtifact& in) {
  check_mapped_header(in, kMagicCsc);
  CscStore m;
  m.rows = static_cast<std::size_t>(in.pod<std::uint64_t>());
  m.cols = static_cast<std::size_t>(in.pod<std::uint64_t>());
  m.col_ptr = ArrayStore<std::int64_t>::borrowed(in.array<std::int64_t>());
  m.row_idx = ArrayStore<std::int32_t>::borrowed(in.array<std::int32_t>());
  m.values = ArrayStore<float>::borrowed(in.array<float>());
  if (m.col_ptr.size() != m.cols + 1 || m.row_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSC");
  check_compressed_axes(m.col_ptr.span(), m.row_idx.span(), m.rows, "CSC");
  return m;
}

void write_packed_weight(std::ostream& out, const PackedWeight& weight,
                         wire::Layout layout) {
  write_pod(out, wire::kMagicPackedWeight);
  write_pod(out, layout.version);
  wire::write_string(out, std::string(weight.format()));
  write_pod<std::uint64_t>(out, weight.k());
  write_pod<std::uint64_t>(out, weight.n());
  weight.save(out, layout);
}

std::unique_ptr<PackedWeight> read_packed_weight(std::istream& in) {
  // io.read fault site: an armed injection here models a corrupt or
  // unreadable artifact, and must surface as a request error (the same
  // runtime_error contract real wire-format corruption follows).
  fault_point(FaultSite::kIoRead);
  // The registry owns the format-name dispatch; this is the io-side
  // spelling of the same operation.
  return load_packed_weight(in);
}

void write_model_weights(
    std::ostream& out,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers,
    wire::Layout layout) {
  for (const auto& [name, weight] : layers)
    if (!weight)
      throw std::invalid_argument("write_model_weights: layer '" + name +
                                  "' has no packed weight");
  write_pod(out, wire::kMagicModelWeights);
  write_pod(out, layout.version);
  write_pod<std::uint64_t>(out, layers.size());
  for (const auto& [name, weight] : layers) {
    wire::write_string(out, name);
    write_packed_weight(out, *weight, layout);
  }
}

std::vector<NamedWeight> read_model_weights(std::istream& in) {
  fault_point(FaultSite::kIoRead);
  if (read_pod<std::uint32_t>(in) != wire::kMagicModelWeights)
    throw std::runtime_error(
        "tilesparse::io: not a model-weights artifact (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != wire::kContainerVersionV1 &&
      version != wire::kContainerVersionV2)
    throw std::runtime_error(
        "tilesparse::io: unsupported model-weights version");
  const auto count = read_pod<std::uint64_t>(in);
  // Each layer costs at least a name prefix plus a container header.
  wire::check_size_prefix(in, count, 2 * sizeof(std::uint64_t));
  std::vector<NamedWeight> layers;
  layers.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedWeight entry;
    entry.name = wire::read_string(in);
    entry.weight = load_packed_weight(in);
    layers.push_back(std::move(entry));
  }
  return layers;
}

std::vector<NamedWeight> read_model_weights(MappedArtifact& in) {
  fault_point(FaultSite::kIoRead);
  if (in.pod<std::uint32_t>() != wire::kMagicModelWeights)
    throw std::runtime_error(
        "tilesparse::io: not a model-weights artifact (bad magic)");
  const auto version = in.pod<std::uint32_t>();
  if (version == wire::kContainerVersionV1)
    throw std::runtime_error(
        "tilesparse::io: v1 model-weights artifacts are not "
        "alignment-padded and cannot be mapped zero-copy — use "
        "load_model_weights, or re-save to upgrade to v2");
  if (version != wire::kContainerVersionV2)
    throw std::runtime_error(
        "tilesparse::io: unsupported model-weights version");
  const auto count = in.pod<std::uint64_t>();
  if (count > in.remaining() / (2 * sizeof(std::uint64_t)))
    in.fail("corrupt size prefix (larger than the artifact)");
  std::vector<NamedWeight> layers;
  layers.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedWeight entry;
    entry.name = in.string();
    entry.weight = load_packed_weight_mapped(in);
    layers.push_back(std::move(entry));
  }
  return layers;
}

void write_calibration_json(std::ostream& out,
                            const PlannerCalibration& calibration) {
  // Escape-free on purpose: `source` is a provenance tag we write
  // ourselves (hostname/date/shape); quotes and backslashes are
  // dropped rather than escaped.
  std::string source;
  for (char ch : calibration.source)
    if (ch != '"' && ch != '\\' && ch != '\n') source += ch;
  out << "{\n"
      << "  \"csr_mac_penalty\": " << calibration.csr_mac_penalty << ",\n"
      << "  \"tw_mac_penalty\": " << calibration.tw_mac_penalty << ",\n"
      << "  \"bsr_mac_penalty\": " << calibration.bsr_mac_penalty << ",\n"
      << "  \"int8_mac_discount\": " << calibration.int8_mac_discount << ",\n"
      << "  \"macs_per_byte\": " << calibration.macs_per_byte << ",\n"
      << "  \"shard_overhead_us\": " << calibration.shard_overhead_us << ",\n"
      << "  \"dense_gflops\": " << calibration.dense_gflops << ",\n"
      << "  \"source\": \"" << source << "\"\n"
      << "}\n";
}

namespace {

// Minimal flat-object JSON scan: finds "key": and parses the value
// (number or string).  Enough for the calibration artifact; not a
// general JSON parser.
bool json_number(const std::string& text, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  try {
    out = std::stod(text.substr(pos));
  } catch (const std::exception&) {
    throw std::runtime_error("tilesparse::io: bad calibration value for '" +
                             key + "'");
  }
  return true;
}

bool json_string(const std::string& text, const std::string& key,
                 std::string& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  pos = text.find('"', pos);
  if (pos == std::string::npos) return false;
  const auto end = text.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = text.substr(pos + 1, end - pos - 1);
  return true;
}

}  // namespace

PlannerCalibration read_calibration_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.find('{') == std::string::npos)
    throw std::runtime_error("tilesparse::io: calibration is not JSON");
  PlannerCalibration calibration;
  json_number(text, "csr_mac_penalty", calibration.csr_mac_penalty);
  json_number(text, "tw_mac_penalty", calibration.tw_mac_penalty);
  json_number(text, "bsr_mac_penalty", calibration.bsr_mac_penalty);
  json_number(text, "int8_mac_discount", calibration.int8_mac_discount);
  json_number(text, "macs_per_byte", calibration.macs_per_byte);
  json_number(text, "shard_overhead_us", calibration.shard_overhead_us);
  json_number(text, "dense_gflops", calibration.dense_gflops);
  json_string(text, "source", calibration.source);
  return calibration;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tilesparse::io: cannot open " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tilesparse::io: cannot open " + path);
  return in;
}

/// Writes through a same-directory temp file renamed over `path` after
/// a clean flush, so a crash or write error mid-save never leaves a
/// torn artifact where a concurrent reader (stream or mmap) could open
/// it.  rename(2) within one directory is atomic on POSIX.
void atomic_save(const std::string& path,
                 const std::function<void(std::ostream&)>& write_body) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  try {
    {
      auto out = open_out(tmp);
      write_body(out);
      out.flush();
      if (!out)
        throw std::runtime_error("tilesparse::io: write failed for " + path);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
      throw std::runtime_error("tilesparse::io: cannot rename " + tmp +
                               " over " + path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace

void save_pattern(const std::string& path, const TilePattern& pattern) {
  auto out = open_out(path);
  write_pattern(out, pattern);
}
TilePattern load_pattern(const std::string& path) {
  auto in = open_in(path);
  return read_pattern(in);
}
void save_tiles(const std::string& path, const std::vector<MaskedTile>& tiles) {
  auto out = open_out(path);
  write_tiles(out, tiles);
}
std::vector<MaskedTile> load_tiles(const std::string& path) {
  auto in = open_in(path);
  return read_tiles(in);
}
void save_packed_weight(const std::string& path, const PackedWeight& weight,
                        wire::Layout layout) {
  atomic_save(path, [&](std::ostream& out) {
    write_packed_weight(out, weight, layout);
  });
}
std::unique_ptr<PackedWeight> load_packed_weight(const std::string& path) {
  auto in = open_in(path);
  return read_packed_weight(in);
}
void save_model_weights(
    const std::string& path,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers,
    wire::Layout layout) {
  atomic_save(path, [&](std::ostream& out) {
    write_model_weights(out, layers, layout);
  });
}
std::vector<NamedWeight> load_model_weights(const std::string& path) {
  auto in = open_in(path);
  return read_model_weights(in);
}
std::vector<NamedWeight> load_model_weights_mapped(const std::string& path) {
  MappedArtifact artifact(std::make_shared<const MmapFile>(path));
  return read_model_weights(artifact);
}
std::unique_ptr<PackedWeight> load_packed_weight_mapped(
    const std::string& path) {
  MappedArtifact artifact(std::make_shared<const MmapFile>(path));
  return load_packed_weight_mapped(artifact);
}
void save_calibration(const std::string& path,
                      const PlannerCalibration& calibration) {
  auto out = open_out(path);
  write_calibration_json(out, calibration);
}
PlannerCalibration load_calibration(const std::string& path) {
  auto in = open_in(path);
  return read_calibration_json(in);
}
PlannerCalibration load_planner_calibration(const std::string& path) {
  const PlannerCalibration calibration = load_calibration(path);
  set_planner_calibration(calibration);
  return calibration;
}

}  // namespace tilesparse
