#include "io/serialize.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exec/backend_registry.hpp"
#include "io/wire.hpp"
#include "util/fault_injection.hpp"

namespace tilesparse {
namespace {

constexpr std::uint32_t kMagicMatrix = 0x54534d46;   // "TSMF"
constexpr std::uint32_t kMagicPattern = 0x54535450;  // "TSTP"
constexpr std::uint32_t kMagicTiles = 0x5453544c;    // "TSTL"
constexpr std::uint32_t kMagicCsr = 0x54534352;      // "TSCR"
constexpr std::uint32_t kMagicCsc = 0x54534343;      // "TSCC"
constexpr std::uint32_t kVersion = 1;

using wire::read_pod;
using wire::read_vector;
using wire::write_pod;
using wire::write_vector;

void write_header(std::ostream& out, std::uint32_t magic) {
  write_pod(out, magic);
  write_pod(out, kVersion);
}

void check_header(std::istream& in, std::uint32_t magic) {
  if (read_pod<std::uint32_t>(in) != magic)
    throw std::runtime_error("tilesparse::io: bad magic");
  if (read_pod<std::uint32_t>(in) != kVersion)
    throw std::runtime_error("tilesparse::io: unsupported version");
}

// Shared CSR/CSC sanity: pointer array monotonic from 0 to nnz, every
// index within the minor dimension.  The sparse kernels index straight
// through these arrays, so a corrupt file must be rejected here.
void check_compressed_axes(const std::vector<std::int64_t>& ptr,
                           const std::vector<std::int32_t>& idx,
                           std::size_t minor_dim, const char* what) {
  if (ptr.empty() || ptr.front() != 0 ||
      ptr.back() != static_cast<std::int64_t>(idx.size()))
    throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                             " pointer array");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    if (ptr[i] < ptr[i - 1])
      throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                               " pointer array");
  for (const std::int32_t j : idx)
    if (j < 0 || static_cast<std::size_t>(j) >= minor_dim)
      throw std::runtime_error(std::string("tilesparse::io: corrupt ") + what +
                               " index array");
}

}  // namespace

void write_matrix(std::ostream& out, const MatrixF& m) {
  write_header(out, kMagicMatrix);
  wire::write_matrix_payload(out, m);
}

MatrixF read_matrix(std::istream& in) {
  check_header(in, kMagicMatrix);
  return wire::read_matrix_payload<float>(in);
}

void write_pattern(std::ostream& out, const TilePattern& pattern) {
  write_header(out, kMagicPattern);
  write_pod<std::uint64_t>(out, pattern.k);
  write_pod<std::uint64_t>(out, pattern.n);
  write_pod<std::uint64_t>(out, pattern.g);
  write_vector(out, pattern.col_keep);
  write_pod<std::uint64_t>(out, pattern.tiles.size());
  for (const auto& tile : pattern.tiles) {
    write_vector(out, tile.out_cols);
    write_vector(out, tile.row_keep);
  }
}

TilePattern read_pattern(std::istream& in) {
  check_header(in, kMagicPattern);
  TilePattern pattern;
  pattern.k = read_pod<std::uint64_t>(in);
  pattern.n = read_pod<std::uint64_t>(in);
  pattern.g = read_pod<std::uint64_t>(in);
  pattern.col_keep = read_vector<std::uint8_t>(in);
  const auto tile_count = read_pod<std::uint64_t>(in);
  // Each tile occupies at least two size prefixes on the wire.
  wire::check_size_prefix(in, tile_count, 2 * sizeof(std::uint64_t));
  pattern.tiles.resize(tile_count);
  for (auto& tile : pattern.tiles) {
    tile.out_cols = read_vector<std::int32_t>(in);
    tile.row_keep = read_vector<std::uint8_t>(in);
  }
  validate_pattern(pattern);  // never trust a file
  return pattern;
}

void write_tiles(std::ostream& out, const std::vector<MaskedTile>& tiles) {
  write_header(out, kMagicTiles);
  write_pod<std::uint64_t>(out, tiles.size());
  for (const auto& tile : tiles) {
    write_vector(out, tile.kept_rows);
    write_vector(out, tile.out_cols);
    write_matrix(out, tile.weights);
  }
}

std::vector<MaskedTile> read_tiles(std::istream& in) {
  check_header(in, kMagicTiles);
  const auto count = read_pod<std::uint64_t>(in);
  wire::check_size_prefix(in, count, 2 * sizeof(std::uint64_t));
  std::vector<MaskedTile> tiles(count);
  for (auto& tile : tiles) {
    tile.kept_rows = read_vector<std::int32_t>(in);
    tile.out_cols = read_vector<std::int32_t>(in);
    tile.weights = read_matrix(in);
    if (tile.weights.rows() != tile.kept_rows.size() ||
        tile.weights.cols() != tile.out_cols.size())
      throw std::runtime_error("tilesparse::io: inconsistent tile");
  }
  return tiles;
}

void write_csr(std::ostream& out, const Csr& m) {
  write_header(out, kMagicCsr);
  write_pod<std::uint64_t>(out, m.rows);
  write_pod<std::uint64_t>(out, m.cols);
  write_vector(out, m.row_ptr);
  write_vector(out, m.col_idx);
  write_vector(out, m.values);
}

Csr read_csr(std::istream& in) {
  check_header(in, kMagicCsr);
  Csr m;
  m.rows = read_pod<std::uint64_t>(in);
  m.cols = read_pod<std::uint64_t>(in);
  m.row_ptr = read_vector<std::int64_t>(in);
  m.col_idx = read_vector<std::int32_t>(in);
  m.values = read_vector<float>(in);
  if (m.row_ptr.size() != m.rows + 1 || m.col_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSR");
  check_compressed_axes(m.row_ptr, m.col_idx, m.cols, "CSR");
  return m;
}

void write_csc(std::ostream& out, const Csc& m) {
  write_header(out, kMagicCsc);
  write_pod<std::uint64_t>(out, m.rows);
  write_pod<std::uint64_t>(out, m.cols);
  write_vector(out, m.col_ptr);
  write_vector(out, m.row_idx);
  write_vector(out, m.values);
}

Csc read_csc(std::istream& in) {
  check_header(in, kMagicCsc);
  Csc m;
  m.rows = read_pod<std::uint64_t>(in);
  m.cols = read_pod<std::uint64_t>(in);
  m.col_ptr = read_vector<std::int64_t>(in);
  m.row_idx = read_vector<std::int32_t>(in);
  m.values = read_vector<float>(in);
  if (m.col_ptr.size() != m.cols + 1 || m.row_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSC");
  check_compressed_axes(m.col_ptr, m.row_idx, m.rows, "CSC");
  return m;
}

void write_packed_weight(std::ostream& out, const PackedWeight& weight) {
  write_pod(out, wire::kMagicPackedWeight);
  write_pod(out, wire::kContainerVersion);
  wire::write_string(out, std::string(weight.format()));
  write_pod<std::uint64_t>(out, weight.k());
  write_pod<std::uint64_t>(out, weight.n());
  weight.save(out);
}

std::unique_ptr<PackedWeight> read_packed_weight(std::istream& in) {
  // io.read fault site: an armed injection here models a corrupt or
  // unreadable artifact, and must surface as a request error (the same
  // runtime_error contract real wire-format corruption follows).
  fault_point(FaultSite::kIoRead);
  // The registry owns the format-name dispatch; this is the io-side
  // spelling of the same operation.
  return load_packed_weight(in);
}

void write_model_weights(
    std::ostream& out,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers) {
  for (const auto& [name, weight] : layers)
    if (!weight)
      throw std::invalid_argument("write_model_weights: layer '" + name +
                                  "' has no packed weight");
  write_pod(out, wire::kMagicModelWeights);
  write_pod(out, wire::kContainerVersion);
  write_pod<std::uint64_t>(out, layers.size());
  for (const auto& [name, weight] : layers) {
    wire::write_string(out, name);
    write_packed_weight(out, *weight);
  }
}

std::vector<NamedWeight> read_model_weights(std::istream& in) {
  fault_point(FaultSite::kIoRead);
  if (read_pod<std::uint32_t>(in) != wire::kMagicModelWeights)
    throw std::runtime_error(
        "tilesparse::io: not a model-weights artifact (bad magic)");
  if (read_pod<std::uint32_t>(in) != wire::kContainerVersion)
    throw std::runtime_error(
        "tilesparse::io: unsupported model-weights version");
  const auto count = read_pod<std::uint64_t>(in);
  // Each layer costs at least a name prefix plus a container header.
  wire::check_size_prefix(in, count, 2 * sizeof(std::uint64_t));
  std::vector<NamedWeight> layers;
  layers.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedWeight entry;
    entry.name = wire::read_string(in);
    entry.weight = load_packed_weight(in);
    layers.push_back(std::move(entry));
  }
  return layers;
}

void write_calibration_json(std::ostream& out,
                            const PlannerCalibration& calibration) {
  // Escape-free on purpose: `source` is a provenance tag we write
  // ourselves (hostname/date/shape); quotes and backslashes are
  // dropped rather than escaped.
  std::string source;
  for (char ch : calibration.source)
    if (ch != '"' && ch != '\\' && ch != '\n') source += ch;
  out << "{\n"
      << "  \"csr_mac_penalty\": " << calibration.csr_mac_penalty << ",\n"
      << "  \"tw_mac_penalty\": " << calibration.tw_mac_penalty << ",\n"
      << "  \"bsr_mac_penalty\": " << calibration.bsr_mac_penalty << ",\n"
      << "  \"int8_mac_discount\": " << calibration.int8_mac_discount << ",\n"
      << "  \"macs_per_byte\": " << calibration.macs_per_byte << ",\n"
      << "  \"shard_overhead_us\": " << calibration.shard_overhead_us << ",\n"
      << "  \"dense_gflops\": " << calibration.dense_gflops << ",\n"
      << "  \"source\": \"" << source << "\"\n"
      << "}\n";
}

namespace {

// Minimal flat-object JSON scan: finds "key": and parses the value
// (number or string).  Enough for the calibration artifact; not a
// general JSON parser.
bool json_number(const std::string& text, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  try {
    out = std::stod(text.substr(pos));
  } catch (const std::exception&) {
    throw std::runtime_error("tilesparse::io: bad calibration value for '" +
                             key + "'");
  }
  return true;
}

bool json_string(const std::string& text, const std::string& key,
                 std::string& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  pos = text.find('"', pos);
  if (pos == std::string::npos) return false;
  const auto end = text.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = text.substr(pos + 1, end - pos - 1);
  return true;
}

}  // namespace

PlannerCalibration read_calibration_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.find('{') == std::string::npos)
    throw std::runtime_error("tilesparse::io: calibration is not JSON");
  PlannerCalibration calibration;
  json_number(text, "csr_mac_penalty", calibration.csr_mac_penalty);
  json_number(text, "tw_mac_penalty", calibration.tw_mac_penalty);
  json_number(text, "bsr_mac_penalty", calibration.bsr_mac_penalty);
  json_number(text, "int8_mac_discount", calibration.int8_mac_discount);
  json_number(text, "macs_per_byte", calibration.macs_per_byte);
  json_number(text, "shard_overhead_us", calibration.shard_overhead_us);
  json_number(text, "dense_gflops", calibration.dense_gflops);
  json_string(text, "source", calibration.source);
  return calibration;
}

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tilesparse::io: cannot open " + path);
  return out;
}
std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tilesparse::io: cannot open " + path);
  return in;
}
}  // namespace

void save_pattern(const std::string& path, const TilePattern& pattern) {
  auto out = open_out(path);
  write_pattern(out, pattern);
}
TilePattern load_pattern(const std::string& path) {
  auto in = open_in(path);
  return read_pattern(in);
}
void save_tiles(const std::string& path, const std::vector<MaskedTile>& tiles) {
  auto out = open_out(path);
  write_tiles(out, tiles);
}
std::vector<MaskedTile> load_tiles(const std::string& path) {
  auto in = open_in(path);
  return read_tiles(in);
}
void save_packed_weight(const std::string& path, const PackedWeight& weight) {
  auto out = open_out(path);
  write_packed_weight(out, weight);
}
std::unique_ptr<PackedWeight> load_packed_weight(const std::string& path) {
  auto in = open_in(path);
  return read_packed_weight(in);
}
void save_model_weights(
    const std::string& path,
    const std::vector<std::pair<std::string, const PackedWeight*>>& layers) {
  auto out = open_out(path);
  write_model_weights(out, layers);
}
std::vector<NamedWeight> load_model_weights(const std::string& path) {
  auto in = open_in(path);
  return read_model_weights(in);
}
void save_calibration(const std::string& path,
                      const PlannerCalibration& calibration) {
  auto out = open_out(path);
  write_calibration_json(out, calibration);
}
PlannerCalibration load_calibration(const std::string& path) {
  auto in = open_in(path);
  return read_calibration_json(in);
}
PlannerCalibration load_planner_calibration(const std::string& path) {
  const PlannerCalibration calibration = load_calibration(path);
  set_planner_calibration(calibration);
  return calibration;
}

}  // namespace tilesparse
