#include "io/serialize.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tilesparse {
namespace {

constexpr std::uint32_t kMagicMatrix = 0x54534d46;   // "TSMF"
constexpr std::uint32_t kMagicPattern = 0x54535450;  // "TSTP"
constexpr std::uint32_t kMagicTiles = 0x5453544c;    // "TSTL"
constexpr std::uint32_t kMagicCsr = 0x54534352;      // "TSCR"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("tilesparse::io: short read");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  if (!v.empty())
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  std::vector<T> v(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    if (!in) throw std::runtime_error("tilesparse::io: short read");
  }
  return v;
}

void write_header(std::ostream& out, std::uint32_t magic) {
  write_pod(out, magic);
  write_pod(out, kVersion);
}

void check_header(std::istream& in, std::uint32_t magic) {
  if (read_pod<std::uint32_t>(in) != magic)
    throw std::runtime_error("tilesparse::io: bad magic");
  if (read_pod<std::uint32_t>(in) != kVersion)
    throw std::runtime_error("tilesparse::io: unsupported version");
}

}  // namespace

void write_matrix(std::ostream& out, const MatrixF& m) {
  write_header(out, kMagicMatrix);
  write_pod<std::uint64_t>(out, m.rows());
  write_pod<std::uint64_t>(out, m.cols());
  if (!m.empty())
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(float)));
}

MatrixF read_matrix(std::istream& in) {
  check_header(in, kMagicMatrix);
  const auto rows = read_pod<std::uint64_t>(in);
  const auto cols = read_pod<std::uint64_t>(in);
  MatrixF m(rows, cols);
  if (!m.empty()) {
    in.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!in) throw std::runtime_error("tilesparse::io: short read");
  }
  return m;
}

void write_pattern(std::ostream& out, const TilePattern& pattern) {
  write_header(out, kMagicPattern);
  write_pod<std::uint64_t>(out, pattern.k);
  write_pod<std::uint64_t>(out, pattern.n);
  write_pod<std::uint64_t>(out, pattern.g);
  write_vector(out, pattern.col_keep);
  write_pod<std::uint64_t>(out, pattern.tiles.size());
  for (const auto& tile : pattern.tiles) {
    write_vector(out, tile.out_cols);
    write_vector(out, tile.row_keep);
  }
}

TilePattern read_pattern(std::istream& in) {
  check_header(in, kMagicPattern);
  TilePattern pattern;
  pattern.k = read_pod<std::uint64_t>(in);
  pattern.n = read_pod<std::uint64_t>(in);
  pattern.g = read_pod<std::uint64_t>(in);
  pattern.col_keep = read_vector<std::uint8_t>(in);
  const auto tile_count = read_pod<std::uint64_t>(in);
  pattern.tiles.resize(tile_count);
  for (auto& tile : pattern.tiles) {
    tile.out_cols = read_vector<std::int32_t>(in);
    tile.row_keep = read_vector<std::uint8_t>(in);
  }
  validate_pattern(pattern);  // never trust a file
  return pattern;
}

void write_tiles(std::ostream& out, const std::vector<MaskedTile>& tiles) {
  write_header(out, kMagicTiles);
  write_pod<std::uint64_t>(out, tiles.size());
  for (const auto& tile : tiles) {
    write_vector(out, tile.kept_rows);
    write_vector(out, tile.out_cols);
    write_matrix(out, tile.weights);
  }
}

std::vector<MaskedTile> read_tiles(std::istream& in) {
  check_header(in, kMagicTiles);
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<MaskedTile> tiles(count);
  for (auto& tile : tiles) {
    tile.kept_rows = read_vector<std::int32_t>(in);
    tile.out_cols = read_vector<std::int32_t>(in);
    tile.weights = read_matrix(in);
    if (tile.weights.rows() != tile.kept_rows.size() ||
        tile.weights.cols() != tile.out_cols.size())
      throw std::runtime_error("tilesparse::io: inconsistent tile");
  }
  return tiles;
}

void write_csr(std::ostream& out, const Csr& m) {
  write_header(out, kMagicCsr);
  write_pod<std::uint64_t>(out, m.rows);
  write_pod<std::uint64_t>(out, m.cols);
  write_vector(out, m.row_ptr);
  write_vector(out, m.col_idx);
  write_vector(out, m.values);
}

Csr read_csr(std::istream& in) {
  check_header(in, kMagicCsr);
  Csr m;
  m.rows = read_pod<std::uint64_t>(in);
  m.cols = read_pod<std::uint64_t>(in);
  m.row_ptr = read_vector<std::int64_t>(in);
  m.col_idx = read_vector<std::int32_t>(in);
  m.values = read_vector<float>(in);
  if (m.row_ptr.size() != m.rows + 1 || m.col_idx.size() != m.values.size())
    throw std::runtime_error("tilesparse::io: inconsistent CSR");
  return m;
}

void write_calibration_json(std::ostream& out,
                            const PlannerCalibration& calibration) {
  // Escape-free on purpose: `source` is a provenance tag we write
  // ourselves (hostname/date/shape); quotes and backslashes are
  // dropped rather than escaped.
  std::string source;
  for (char ch : calibration.source)
    if (ch != '"' && ch != '\\' && ch != '\n') source += ch;
  out << "{\n"
      << "  \"csr_mac_penalty\": " << calibration.csr_mac_penalty << ",\n"
      << "  \"tw_mac_penalty\": " << calibration.tw_mac_penalty << ",\n"
      << "  \"int8_mac_discount\": " << calibration.int8_mac_discount << ",\n"
      << "  \"macs_per_byte\": " << calibration.macs_per_byte << ",\n"
      << "  \"dense_gflops\": " << calibration.dense_gflops << ",\n"
      << "  \"source\": \"" << source << "\"\n"
      << "}\n";
}

namespace {

// Minimal flat-object JSON scan: finds "key": and parses the value
// (number or string).  Enough for the calibration artifact; not a
// general JSON parser.
bool json_number(const std::string& text, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  try {
    out = std::stod(text.substr(pos));
  } catch (const std::exception&) {
    throw std::runtime_error("tilesparse::io: bad calibration value for '" +
                             key + "'");
  }
  return true;
}

bool json_string(const std::string& text, const std::string& key,
                 std::string& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  pos = text.find('"', pos);
  if (pos == std::string::npos) return false;
  const auto end = text.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = text.substr(pos + 1, end - pos - 1);
  return true;
}

}  // namespace

PlannerCalibration read_calibration_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.find('{') == std::string::npos)
    throw std::runtime_error("tilesparse::io: calibration is not JSON");
  PlannerCalibration calibration;
  json_number(text, "csr_mac_penalty", calibration.csr_mac_penalty);
  json_number(text, "tw_mac_penalty", calibration.tw_mac_penalty);
  json_number(text, "int8_mac_discount", calibration.int8_mac_discount);
  json_number(text, "macs_per_byte", calibration.macs_per_byte);
  json_number(text, "dense_gflops", calibration.dense_gflops);
  json_string(text, "source", calibration.source);
  return calibration;
}

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tilesparse::io: cannot open " + path);
  return out;
}
std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tilesparse::io: cannot open " + path);
  return in;
}
}  // namespace

void save_pattern(const std::string& path, const TilePattern& pattern) {
  auto out = open_out(path);
  write_pattern(out, pattern);
}
TilePattern load_pattern(const std::string& path) {
  auto in = open_in(path);
  return read_pattern(in);
}
void save_tiles(const std::string& path, const std::vector<MaskedTile>& tiles) {
  auto out = open_out(path);
  write_tiles(out, tiles);
}
std::vector<MaskedTile> load_tiles(const std::string& path) {
  auto in = open_in(path);
  return read_tiles(in);
}
void save_calibration(const std::string& path,
                      const PlannerCalibration& calibration) {
  auto out = open_out(path);
  write_calibration_json(out, calibration);
}
PlannerCalibration load_calibration(const std::string& path) {
  auto in = open_in(path);
  return read_calibration_json(in);
}
PlannerCalibration load_planner_calibration(const std::string& path) {
  const PlannerCalibration calibration = load_calibration(path);
  set_planner_calibration(calibration);
  return calibration;
}

}  // namespace tilesparse
