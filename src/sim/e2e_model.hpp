#pragma once
// End-to-end model timeline (paper Sec. VII-D, Fig. 15): a DNN forward
// pass is a sequence of GEMM kernels, element-wise kernels (add-bias,
// LayerNorm, softmax, activations) and — for the TW data layout — matrix
// transposes.  Kernel fusion merges adjacent element-wise kernels; the
// transpose optimization moves all but the first/last transpose out of
// the steady-state loop.

#include <cstddef>
#include <string>
#include <vector>

#include "core/tile_pattern.hpp"
#include "sim/device_model.hpp"
#include "sim/tw_model.hpp"

namespace tilesparse {

struct E2eOp {
  enum class Kind {
    kGemm,        ///< weight GEMM; runs dense or TW-sparse depending on options
    kGemmFixed,   ///< activation-activation GEMM (e.g. QK^T) — never pruned
    kElementwise, ///< bias/LayerNorm/softmax/activation
    kTranspose    ///< layout change required by the TW transposed storage
  };
  Kind kind = Kind::kElementwise;
  GemmShape shape;                    ///< for the GEMM kinds
  const TilePattern* pattern = nullptr;  ///< TW pattern when pruned
  double bytes = 0.0;                 ///< tensor size for elementwise/transpose
  bool fusable = true;                ///< may merge into the previous elementwise
};

struct E2eOptions {
  Core core = Core::kTensor;
  bool use_tw = true;          ///< execute kGemm ops with their TW pattern
  bool transpose_opt = true;   ///< hoist per-layer transposes (Fig. 15)
  bool fusion = true;          ///< fuse adjacent elementwise kernels
  TwExecOptions tw;            ///< kernel-level toggles for the TW GEMMs
};

struct E2eBreakdown {
  double gemm_s = 0.0;
  double transpose_s = 0.0;
  double other_s = 0.0;  ///< element-wise / non-GEMM
  double total() const noexcept { return gemm_s + transpose_s + other_s; }
};

/// Walks the op list and accumulates the latency breakdown.
E2eBreakdown e2e_latency(const DeviceModel& dev, const std::vector<E2eOp>& ops,
                         const E2eOptions& options);

}  // namespace tilesparse
