#pragma once
// Dense GEMM latency model (cuBLAS / CUTLASS on tensor or CUDA cores).

#include "sim/device_model.hpp"

namespace tilesparse {

/// Utilisation of a batch of `count` equal (m x n) output grids.
/// Models two CUTLASS/cuBLAS behaviours:
///  * adaptive thread-block tile selection — when the default 128x128
///    grid cannot fill the SMs, the library falls back to 64x64 / 32x32
///    tiles (at reduced per-tile efficiency) to restore occupancy;
///  * tile + wave quantisation — padded tiles and a partially filled
///    last wave waste issue slots.
/// Returns the combined efficiency factor in (0, 1].
double batch_utilization(const DeviceModel& dev, std::size_t m, std::size_t n,
                         std::size_t count);

/// Single-problem convenience wrapper.
double wave_utilization(const DeviceModel& dev, std::size_t m, std::size_t n);

/// Latency of one dense GEMM C(MxN) = A(MxK) * B(KxN).
/// Traffic model: A, B, C streamed once from DRAM; A is re-streamed once
/// per extra N-tile from L2 (the output-tiled execution of paper
/// Fig. 4-1 re-reads A per B-tile; on real GPUs those re-reads mostly
/// hit L2, hence the separate bandwidth tier).
LatencyResult dense_gemm_latency(const DeviceModel& dev, const GemmShape& shape,
                                 Core core);

/// Latency of a batched dense GEMM of `count` equal problems: one launch,
/// utilisation computed over the concatenated tile grid.
LatencyResult batched_gemm_latency(const DeviceModel& dev,
                                   const GemmShape& shape, std::size_t count,
                                   Core core);

}  // namespace tilesparse
