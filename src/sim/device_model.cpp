#include "sim/device_model.hpp"

namespace tilesparse {

double DeviceModel::bsr_efficiency(std::size_t block) const noexcept {
  // Calibrated to the paper's BW anchors: with 32x32 blocks BlockSparse
  // is ~3x slower than dense-TC at ~55% sparsity, and with 64x64 it only
  // beats dense beyond ~90% sparsity.  Efficiency grows with block edge
  // (bigger dense fragments feed the tensor cores better) and collapses
  // for tiny blocks.
  if (block >= 64) return 0.080;
  if (block >= 32) return 0.065;
  if (block >= 16) return 0.030;
  return 0.015;
}

DeviceModel DeviceModel::v100() { return DeviceModel{}; }

double LatencyResult::energy_joules(const DeviceModel& dev,
                                    Core core) const noexcept {
  const double pj_flop = core == Core::kTensor ? dev.pj_per_flop_tensor
                                               : dev.pj_per_flop_cuda;
  const double dynamic = useful_flops * pj_flop * 1e-12 +
                         (load_bytes + store_bytes) * dev.pj_per_dram_byte * 1e-12;
  return dynamic + dev.static_watts * seconds();
}

LatencyResult& LatencyResult::operator+=(const LatencyResult& other) noexcept {
  compute_s += other.compute_s;
  memory_s += other.memory_s;
  launch_s += other.launch_s;
  load_bytes += other.load_bytes;
  store_bytes += other.store_bytes;
  useful_flops += other.useful_flops;
  return *this;
}

}  // namespace tilesparse
