#pragma once
// Latency models for the sparse baselines:
//  * CSR SpMM on CUDA cores (cuSparse) — EW and VW sparse models;
//  * BSR block-sparse GEMM on tensor cores (BlockSparse) — BW models.

#include "sim/device_model.hpp"

namespace tilesparse {

/// C(MxN) = A(MxK) * W(KxN) with unstructured-sparse W of the given
/// density (nnz / (K*N)).  `vector_wise` selects the slightly more
/// regular VW flavour.  Always CUDA cores (cuSparse has no tensor-core
/// path for FP32 CSR).
LatencyResult csr_spmm_latency(const DeviceModel& dev, const GemmShape& shape,
                               double density, bool vector_wise = false);

/// C = A * W with block-sparse W: `block_density` fraction of b x b
/// blocks present.  Tensor cores (the BlockSparse library path).
LatencyResult bsr_gemm_latency(const DeviceModel& dev, const GemmShape& shape,
                               double block_density, std::size_t block);

/// The *hypothetical* sparse tensor core of Zhu et al. (MICRO'19), which
/// the paper contrasts against: VW sparsity executed on a modified
/// tensor core reaches ~1.5x over dense at 75% sparsity — but requires
/// changing the hardware.  Modelled as dense tensor-core execution with
/// work scaled by density and a fixed architectural efficiency, so the
/// comparison bench can show what TW forgoes by staying software-only.
LatencyResult vw_sparse_tensor_core_latency(const DeviceModel& dev,
                                            const GemmShape& shape,
                                            double density);

}  // namespace tilesparse
