#include "sim/tw_model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/gemm_model.hpp"
#include "sim/sparse_model.hpp"

namespace tilesparse {
namespace {

/// One kernel launch covering `count` tile-problems of equal width (the
/// batched GEMM of Fig. 7-3), described in machine-independent terms so
/// the stream scheduler can merge launches.
struct LaunchDesc {
  double padded_flops = 0.0;   ///< work on the padded tile grid
  double useful_flops = 0.0;
  double tiles = 0.0;          ///< thread-block tiles at the chosen edge
  double tile_multiplier = 1.0;///< small-tile efficiency penalty
  double l2_bytes = 0.0;       ///< gathered A panels + masks (coalesced path)
  double dram_bytes = 0.0;     ///< B tiles + C stores (+ everything if uncoalesced)
  double load_bytes = 0.0;
  double store_bytes = 0.0;
};

LaunchDesc describe_launch(const DeviceModel& dev, std::size_t m,
                           std::size_t width,
                           const std::vector<std::size_t>& kept_rows,
                           const TwExecOptions& options) {
  LaunchDesc d;
  const double bytes = static_cast<double>(dev.dtype_bytes(options.core));
  const double md = static_cast<double>(m);
  const double wd = static_cast<double>(width);
  double sum_k = 0.0;
  for (auto kt : kept_rows) sum_k += static_cast<double>(kt);
  const auto count = kept_rows.size();

  d.useful_flops = 2.0 * md * wd * sum_k;

  // Adaptive thread-block tile edge, as in batch_utilization: pick the
  // largest edge that fills the SMs, padding m and width up to it.
  struct TileChoice {
    std::size_t edge;
    double multiplier;
  };
  static constexpr TileChoice kChoices[] = {{128, 1.0}, {64, 0.85}, {32, 0.70}};
  for (const auto& choice : kChoices) {
    const double e = static_cast<double>(choice.edge);
    const double m_pad = std::ceil(md / e) * e;
    const double w_pad = std::ceil(wd / e) * e;
    d.tiles = (m_pad / e) * (w_pad / e) * static_cast<double>(count);
    d.tile_multiplier = choice.multiplier;
    d.padded_flops = 2.0 * m_pad * w_pad * sum_k;
    if (d.tiles >= static_cast<double>(dev.sm_count)) break;
  }

  // Traffic.  Per tile: the gathered A panel (M x K_t) re-streamed from
  // L2, plus the int32 row/column masks read alongside every A panel
  // element — reproducing the paper's measured ~2x load transactions at
  // zero sparsity.  B tiles stream once from DRAM, C stores once.
  const double a_gather = md * sum_k * bytes;
  // int32 masks accompany every gathered A panel; with shared-memory
  // reuse the net extra traffic is about the size of the A gather itself,
  // which is what doubles total load transactions at zero sparsity in
  // the paper's counter measurements (Fig. 11).
  const double mask_bytes = md * sum_k * bytes;
  const double b_bytes = sum_k * wd * bytes;
  const double c_bytes = md * wd * bytes * static_cast<double>(count);
  const double uncoalesced =
      options.transpose_opt ? 1.0 : dev.uncoalesced_penalty;

  const double gather_total = (a_gather + mask_bytes) * uncoalesced;
  const double store_total = c_bytes * uncoalesced;
  if (options.transpose_opt) {
    d.l2_bytes = gather_total;
    d.dram_bytes = b_bytes + store_total;
  } else {
    d.dram_bytes = gather_total + b_bytes + store_total;
  }
  d.load_bytes = gather_total + b_bytes;
  d.store_bytes = store_total;
  return d;
}

double launch_memory_seconds(const DeviceModel& dev, const LaunchDesc& d) {
  return d.l2_bytes / dev.l2_bandwidth + d.dram_bytes / dev.dram_bandwidth;
}

double wave_factor(const DeviceModel& dev, double tiles) {
  if (tiles <= 0.0) return 1.0;
  const double waves = std::ceil(tiles / static_cast<double>(dev.sm_count));
  return tiles / (waves * static_cast<double>(dev.sm_count));
}

}  // namespace

LatencyResult tw_gemm_latency(const DeviceModel& dev, std::size_t m,
                              const TilePattern& pattern,
                              const TwExecOptions& options) {
  // Build launches: with batching, one per equal-width group; without,
  // one per tile.
  std::vector<LaunchDesc> launches;
  const auto groups = build_batch_groups(pattern);
  for (const auto& group : groups) {
    if (options.batching) {
      launches.push_back(
          describe_launch(dev, m, group.width, group.kept_rows, options));
    } else {
      for (auto kt : group.kept_rows) {
        launches.push_back(describe_launch(dev, m, group.width, {kt}, options));
      }
    }
  }

  LatencyResult total;
  // First touch of A from DRAM, once per weight matrix.
  const double bytes = static_cast<double>(dev.dtype_bytes(options.core));
  const double a_first =
      static_cast<double>(m) * static_cast<double>(pattern.k) * bytes;
  total.memory_s += a_first / dev.dram_bandwidth;
  total.load_bytes += a_first;
  if (launches.empty()) return total;

  const double peak = dev.peak_flops(options.core) * dev.tw_kernel_efficiency;

  if (options.streams) {
    // Streams merge the concurrent grids: utilisation is computed over
    // the union of all launches' tiles, launch gaps amortise across the
    // available streams.
    double padded = 0.0, tiles = 0.0, mult_weighted = 0.0;
    for (const auto& l : launches) {
      padded += l.padded_flops;
      tiles += l.tiles;
      mult_weighted += l.tile_multiplier * l.padded_flops;
      total.memory_s += launch_memory_seconds(dev, l);
      total.load_bytes += l.load_bytes;
      total.store_bytes += l.store_bytes;
      total.useful_flops += l.useful_flops;
    }
    const double mult = padded > 0.0 ? mult_weighted / padded : 1.0;
    const double util = std::clamp(wave_factor(dev, tiles) * mult, 0.02, 1.0);
    total.compute_s += padded / (peak * util);
    // Streams hide most of the launch gap but each kernel still pays a
    // CPU-side dispatch cost that cannot overlap (this is why batching
    // matters even with streams, paper Fig. 7-3 vs 7-4).
    const double launch_groups =
        std::ceil(static_cast<double>(launches.size()) /
                  static_cast<double>(std::max(1, dev.max_streams)));
    constexpr double kDispatchCost = 0.3e-6;
    total.launch_s = dev.kernel_launch_s * launch_groups +
                     kDispatchCost * static_cast<double>(launches.size());
  } else {
    // Serial: each launch's roofline body completes before the next
    // starts; fold the bodies into compute_s.
    double body = 0.0;
    for (const auto& l : launches) {
      const double util =
          std::clamp(wave_factor(dev, l.tiles) * l.tile_multiplier, 0.02, 1.0);
      const double compute = l.padded_flops / (peak * util);
      body += std::max(compute, launch_memory_seconds(dev, l));
      total.load_bytes += l.load_bytes;
      total.store_bytes += l.store_bytes;
      total.useful_flops += l.useful_flops;
      total.launch_s += dev.kernel_launch_s;
    }
    total.compute_s += body;
  }
  return total;
}

LatencyResult tew_gemm_latency(const DeviceModel& dev, std::size_t m,
                               const TilePattern& pattern, double ew_fraction,
                               const TwExecOptions& options) {
  LatencyResult tw = tw_gemm_latency(dev, m, pattern, options);
  const GemmShape shape{m, pattern.n, pattern.k};
  LatencyResult ew = csr_spmm_latency(dev, shape, ew_fraction);
  // Serialize the two phases: body times add, counters add.
  LatencyResult total;
  total.compute_s = tw.seconds() - tw.launch_s + (ew.seconds() - ew.launch_s);
  total.launch_s = tw.launch_s + ew.launch_s;
  total.load_bytes = tw.load_bytes + ew.load_bytes;
  total.store_bytes = tw.store_bytes + ew.store_bytes;
  total.useful_flops = tw.useful_flops + ew.useful_flops;
  return total;
}

}  // namespace tilesparse
