#pragma once
// TPU-style systolic-array execution model — the paper's "TW on Other
// Platforms" discussion (Sec. VIII): supporting TW on a TPU is feasible
// because the fundamental requirement is a medium-size GEMM (TW with
// G = 128 needs 128 x N x 128 products, matching the 128x128 systolic
// array), but the TPU only exposes a high-level GEMM interface, so the
// stream-concurrency optimization is unavailable and leftover batch
// groups serialize.

#include "core/tile_pattern.hpp"
#include "sim/device_model.hpp"

namespace tilesparse {

struct SystolicModel {
  std::size_t array_dim = 128;     ///< PEs per edge (128x128 MXU)
  double clock_hz = 940e6;         ///< TPUv3-class clock
  double hbm_bandwidth = 900e9;    ///< bytes/s
  std::size_t dtype_bytes = 2;     ///< bf16 inputs
  double invoke_overhead_s = 10e-6;///< per high-level GEMM call
  /// The high-level interface cannot overlap independent GEMMs: batch
  /// groups serialize (the paper's point about missing low-level access).
  bool allows_stream_overlap = false;

  /// Peak MACs/s of the array.
  double peak_macs() const noexcept {
    return static_cast<double>(array_dim) * static_cast<double>(array_dim) *
           clock_hz;
  }

  static SystolicModel tpu_v3();
};

/// Latency of a dense M x N x K GEMM on the systolic array: K-dim passes
/// of the weight-stationary pipeline with array-quantised M and N, plus
/// pipeline fill/drain and the invocation overhead.
LatencyResult systolic_dense_latency(const SystolicModel& tpu,
                                     const GemmShape& shape);

/// Latency of a TW-pruned weight GEMM on the systolic array: one GEMM
/// invocation per batch group (equal-width tiles share an invocation
/// with the K dimension set to the group's maximum kept rows — the
/// high-level interface cannot skip rows per tile, so each group pays
/// its tallest member; this is the fidelity loss versus the GPU path).
LatencyResult systolic_tw_latency(const SystolicModel& tpu, std::size_t m,
                                  const TilePattern& pattern);

}  // namespace tilesparse
