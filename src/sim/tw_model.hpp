#pragma once
// Latency model of the TW execution pipeline (paper Sec. VI, Fig. 7):
// compacted tiles -> equal-width batched GEMMs -> stream overlap, with
// toggles for each optimization so the ablations of Fig. 15 /
// bench/ablation_opts can turn them off individually.

#include "core/tile_exec.hpp"
#include "core/tile_pattern.hpp"
#include "sim/device_model.hpp"

namespace tilesparse {

struct TwExecOptions {
  Core core = Core::kTensor;
  /// Transposed data layout restoring coalesced accesses (Fig. 7-2).
  bool transpose_opt = true;
  /// Equal-width tile batching into shared launches (Fig. 7-3).
  bool batching = true;
  /// Stream concurrency across batch groups (Fig. 7-4).
  bool streams = true;
};

/// Latency of C(M x N) = A(M x K) * W where W carries the TW pattern.
/// Includes the int32 mask-load overhead the paper measures as 2x load
/// transactions at zero sparsity (Fig. 11).
LatencyResult tw_gemm_latency(const DeviceModel& dev, std::size_t m,
                              const TilePattern& pattern,
                              const TwExecOptions& options = {});

/// Latency of a TEW product: the TW part per tw_gemm_latency plus the
/// restored EW remainder executed as CSR SpMM on the CUDA cores.  The
/// two parts serialize (different core families cannot productively
/// share the SMs' issue slots — this is exactly why TEW loses its edge
/// on tensor cores, Fig. 10b).
LatencyResult tew_gemm_latency(const DeviceModel& dev, std::size_t m,
                               const TilePattern& pattern, double ew_fraction,
                               const TwExecOptions& options = {});

}  // namespace tilesparse
