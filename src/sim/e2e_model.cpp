#include "sim/e2e_model.hpp"

#include <algorithm>

#include "sim/gemm_model.hpp"

namespace tilesparse {
namespace {

/// Memory-bound kernel: read + write the tensor once.
double elementwise_seconds(const DeviceModel& dev, double bytes) {
  return 2.0 * bytes / dev.dram_bandwidth + dev.kernel_launch_s;
}

}  // namespace

E2eBreakdown e2e_latency(const DeviceModel& dev, const std::vector<E2eOp>& ops,
                         const E2eOptions& options) {
  E2eBreakdown out;
  TwExecOptions tw = options.tw;
  tw.core = options.core;
  tw.transpose_opt = options.transpose_opt && tw.transpose_opt;

  bool first_transpose_seen = false;
  double pending_fused_bytes = 0.0;
  bool previous_was_elementwise = false;

  auto flush_fused = [&] {
    if (pending_fused_bytes > 0.0) {
      out.other_s += elementwise_seconds(dev, pending_fused_bytes);
      pending_fused_bytes = 0.0;
    }
    previous_was_elementwise = false;
  };

  for (const auto& op : ops) {
    switch (op.kind) {
      case E2eOp::Kind::kGemm: {
        flush_fused();
        if (options.use_tw && op.pattern != nullptr) {
          out.gemm_s += tw_gemm_latency(dev, op.shape.m, *op.pattern, tw).seconds();
        } else {
          out.gemm_s += dense_gemm_latency(dev, op.shape, options.core).seconds();
        }
        break;
      }
      case E2eOp::Kind::kGemmFixed: {
        flush_fused();
        out.gemm_s += dense_gemm_latency(dev, op.shape, options.core).seconds();
        break;
      }
      case E2eOp::Kind::kElementwise: {
        if (options.fusion && previous_was_elementwise && op.fusable) {
          // Fused into the running chain: no extra launch, and the
          // intermediate tensor stays in registers — only the largest
          // read/write of the chain is charged.
          pending_fused_bytes = std::max(pending_fused_bytes, op.bytes);
        } else {
          flush_fused();
          pending_fused_bytes = op.bytes;
          previous_was_elementwise = true;
        }
        break;
      }
      case E2eOp::Kind::kTranspose: {
        flush_fused();
        const bool needed = !options.transpose_opt || !first_transpose_seen;
        if (options.transpose_opt) first_transpose_seen = true;
        if (needed && options.use_tw) {
          // read + write, partially uncoalesced by nature of transposition
          out.transpose_s +=
              2.0 * op.bytes * 1.5 / dev.dram_bandwidth + dev.kernel_launch_s;
        }
        break;
      }
    }
  }
  flush_fused();
  return out;
}

}  // namespace tilesparse
