#include "sim/systolic_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/tile_exec.hpp"

namespace tilesparse {

SystolicModel SystolicModel::tpu_v3() { return SystolicModel{}; }

LatencyResult systolic_dense_latency(const SystolicModel& tpu,
                                     const GemmShape& shape) {
  LatencyResult r;
  if (shape.m == 0 || shape.n == 0 || shape.k == 0) return r;
  const double dim = static_cast<double>(tpu.array_dim);
  // Weight-stationary execution: for every (K-panel, N-panel) pair the
  // array holds a dim x dim weight block and streams M activations rows
  // through; a panel switch costs a pipeline fill of `dim` cycles.
  const double k_panels = std::ceil(static_cast<double>(shape.k) / dim);
  const double n_panels = std::ceil(static_cast<double>(shape.n) / dim);
  const double cycles =
      k_panels * n_panels * (static_cast<double>(shape.m) + 2.0 * dim);
  r.compute_s = cycles / tpu.clock_hz;
  r.useful_flops = shape.flops();

  const double bytes = static_cast<double>(tpu.dtype_bytes);
  const double m = static_cast<double>(shape.m);
  const double k = static_cast<double>(shape.k);
  const double n = static_cast<double>(shape.n);
  r.load_bytes = (m * k * n_panels + k * n) * bytes;  // A re-read per N panel
  r.store_bytes = m * n * bytes;
  r.memory_s = (r.load_bytes + r.store_bytes) / tpu.hbm_bandwidth;
  r.launch_s = tpu.invoke_overhead_s;
  return r;
}

LatencyResult systolic_tw_latency(const SystolicModel& tpu, std::size_t m,
                                  const TilePattern& pattern) {
  LatencyResult total;
  const auto groups = build_batch_groups(pattern);
  for (const auto& group : groups) {
    // One invocation per group; the interface has no per-tile row masks,
    // so the whole group runs with the tallest tile's K.
    std::size_t k_max = 0;
    for (auto kt : group.kept_rows) k_max = std::max(k_max, kt);
    if (k_max == 0 || group.width == 0) continue;
    const GemmShape shape{m, group.width * group.kept_rows.size(), k_max};
    const LatencyResult r = systolic_dense_latency(tpu, shape);
    if (tpu.allows_stream_overlap) {
      total += r;  // bodies overlap-able: summed counters, roofline later
    } else {
      // Serialized invocations: fold each call's roofline body.
      total.compute_s += std::max(r.compute_s, r.memory_s);
      total.launch_s += r.launch_s;
      total.load_bytes += r.load_bytes;
      total.store_bytes += r.store_bytes;
      total.useful_flops += 2.0 * static_cast<double>(m) *
                            static_cast<double>(group.width) *
                            [&] {
                              double sum = 0.0;
                              for (auto kt : group.kept_rows)
                                sum += static_cast<double>(kt);
                              return sum;
                            }();
    }
  }
  return total;
}

}  // namespace tilesparse
