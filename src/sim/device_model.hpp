#pragma once
// Analytical device model of a V100-class GPU.
//
// This is the substitution for the paper's Tesla V100 testbed (see
// DESIGN.md): a roofline-style model with tile/wave quantisation,
// kernel-launch overhead, an L2 tier for re-streamed operands, an
// uncoalesced-access penalty, and stream concurrency.  Constants come
// from the V100 whitepaper (peaks) or are calibrated once against the
// qualitative anchors the paper reports (Sec. VII-B, Fig. 11):
//   * cuSparse SpMM slower than dense below ~95% sparsity,
//   * BlockSparse 32x32 ~3x slower than dense-TC at ~55% sparsity,
//     crossing over only above ~90%,
//   * TW masking overhead: 2x load transactions and ~35% loss at 0%
//     sparsity, break-even near 40%, ~2.26x at 75%, ~11x at 99%.

#include <cstddef>

namespace tilesparse {

enum class Core { kTensor, kCuda };

struct DeviceModel {
  // Peaks (V100 whitepaper).
  double tensor_core_flops = 125e12;  ///< FP16 FMA peak
  double cuda_core_flops = 15.7e12;   ///< FP32 peak
  double dram_bandwidth = 900e9;      ///< bytes/s (HBM2)
  double l2_bandwidth = 2500e9;       ///< effective re-stream bandwidth
  int sm_count = 80;
  double kernel_launch_s = 2e-6;
  int max_streams = 16;

  // Achieved-efficiency knobs (calibrated, see header comment).
  double dense_tc_efficiency = 0.70;  ///< cuBLAS-like large-GEMM fraction of peak
  double dense_cc_efficiency = 0.80;
  double csr_spmm_efficiency = 0.045; ///< cuSparse unstructured gather
  double vw_spmm_efficiency = 0.050;  ///< VW has intra-vector regularity
  /// Masked CUTLASS kernel vs cuBLAS: the per-element mask predication
  /// and the gather stage cost ~30% of the dense kernel's throughput —
  /// this reproduces the paper's ~35% slowdown at zero sparsity.
  double tw_kernel_efficiency = 0.50;
  double uncoalesced_penalty = 4.0;   ///< txn multiplier without transpose opt

  /// CUTLASS-style thread-block tile edge used for wave quantisation.
  std::size_t tile_m = 128;
  std::size_t tile_n = 128;

  // Energy model (first-order, 12 nm-class constants): compute energy
  // per FLOP, DRAM energy per byte, static power while the kernel runs.
  // The paper notes TW "removes redundant computations and thus could
  // also reduce energy" (Sec. VIII) — this quantifies that claim.
  double pj_per_flop_tensor = 0.4;
  double pj_per_flop_cuda = 1.2;
  double pj_per_dram_byte = 15.0;
  double static_watts = 60.0;

  /// BlockSparse achieved efficiency by block edge (paper cites 32x32 as
  /// the minimum for "high" performance; smaller blocks collapse).
  double bsr_efficiency(std::size_t block) const noexcept;

  double peak_flops(Core core) const noexcept {
    return core == Core::kTensor ? tensor_core_flops : cuda_core_flops;
  }
  /// Element size of the datatype each core family computes in.
  std::size_t dtype_bytes(Core core) const noexcept {
    return core == Core::kTensor ? 2 : 4;
  }
  double dense_efficiency(Core core) const noexcept {
    return core == Core::kTensor ? dense_tc_efficiency : dense_cc_efficiency;
  }

  static DeviceModel v100();
};

/// Latency decomposition of one kernel (or kernel group).
struct LatencyResult {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double launch_s = 0.0;
  double load_bytes = 0.0;
  double store_bytes = 0.0;
  double useful_flops = 0.0;

  /// Roofline combination: compute and memory overlap, launch does not.
  double seconds() const noexcept {
    const double body = compute_s > memory_s ? compute_s : memory_s;
    return body + launch_s;
  }
  /// Measured-FLOPS / peak-FLOPS given the core's peak.
  double flops_efficiency(double peak) const noexcept {
    const double s = seconds();
    return (s > 0 && peak > 0) ? useful_flops / (s * peak) : 0.0;
  }
  /// First-order energy estimate: dynamic compute + DRAM traffic +
  /// static power over the kernel duration.
  double energy_joules(const DeviceModel& dev, Core core) const noexcept;

  LatencyResult& operator+=(const LatencyResult& other) noexcept;
};

struct GemmShape {
  std::size_t m = 0, n = 0, k = 0;
  double flops() const noexcept {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
};

}  // namespace tilesparse
