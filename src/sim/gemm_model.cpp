#include "sim/gemm_model.hpp"

#include <algorithm>
#include <cmath>

namespace tilesparse {

double batch_utilization(const DeviceModel& dev, std::size_t m, std::size_t n,
                         std::size_t count) {
  if (m == 0 || n == 0 || count == 0) return 1.0;
  // Adaptive tile selection: prefer the largest tile edge that still
  // fills the machine; smaller tiles pay an efficiency multiplier
  // (less data reuse inside the tile).
  struct TileChoice {
    std::size_t edge;
    double multiplier;
  };
  static constexpr TileChoice kChoices[] = {{128, 1.0}, {64, 0.85}, {32, 0.70}};

  double best = 0.0;
  for (const auto& choice : kChoices) {
    const double tiles_m = std::ceil(static_cast<double>(m) /
                                     static_cast<double>(choice.edge));
    const double tiles_n = std::ceil(static_cast<double>(n) /
                                     static_cast<double>(choice.edge));
    const double tiles = tiles_m * tiles_n * static_cast<double>(count);
    // Tile quantisation: useful fraction of the padded grid.
    const double quant =
        (static_cast<double>(m) * static_cast<double>(n)) /
        (tiles_m * static_cast<double>(choice.edge) * tiles_n *
         static_cast<double>(choice.edge));
    // Wave quantisation: the last wave may not fill all SMs.
    const double waves = std::ceil(tiles / static_cast<double>(dev.sm_count));
    const double wave = tiles / (waves * static_cast<double>(dev.sm_count));
    best = std::max(best, quant * wave * choice.multiplier);
    if (tiles >= static_cast<double>(dev.sm_count)) break;  // machine filled
  }
  return std::clamp(best, 0.02, 1.0);
}

double wave_utilization(const DeviceModel& dev, std::size_t m, std::size_t n) {
  return batch_utilization(dev, m, n, 1);
}

LatencyResult dense_gemm_latency(const DeviceModel& dev, const GemmShape& shape,
                                 Core core) {
  return batched_gemm_latency(dev, shape, 1, core);
}

LatencyResult batched_gemm_latency(const DeviceModel& dev,
                                   const GemmShape& shape, std::size_t count,
                                   Core core) {
  LatencyResult r;
  if (shape.m == 0 || shape.n == 0 || shape.k == 0 || count == 0) return r;
  const double bytes = static_cast<double>(dev.dtype_bytes(core));
  const double m = static_cast<double>(shape.m);
  const double n = static_cast<double>(shape.n);
  const double k = static_cast<double>(shape.k);
  const double c = static_cast<double>(count);

  r.useful_flops = c * shape.flops();

  const double util = batch_utilization(dev, shape.m, shape.n, count);
  r.compute_s = r.useful_flops / (dev.peak_flops(core) * dev.dense_efficiency(core) * util);

  // First-touch traffic at DRAM; A re-streams (one per extra N-tile) at L2.
  const double n_tiles = std::ceil(n / static_cast<double>(dev.tile_n));
  const double dram_bytes = c * (m * k + k * n + m * n) * bytes;
  const double l2_bytes = c * std::max(0.0, n_tiles - 1.0) * m * k * bytes;
  r.memory_s = dram_bytes / dev.dram_bandwidth + l2_bytes / dev.l2_bandwidth;
  r.load_bytes = c * (m * k + k * n) * bytes + l2_bytes;
  r.store_bytes = c * m * n * bytes;
  r.launch_s = dev.kernel_launch_s;
  return r;
}

}  // namespace tilesparse
