#include "sim/sparse_model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/gemm_model.hpp"

namespace tilesparse {

LatencyResult csr_spmm_latency(const DeviceModel& dev, const GemmShape& shape,
                               double density, bool vector_wise) {
  LatencyResult r;
  density = std::clamp(density, 0.0, 1.0);
  const double m = static_cast<double>(shape.m);
  const double n = static_cast<double>(shape.n);
  const double k = static_cast<double>(shape.k);
  const double nnz = density * k * n;

  r.useful_flops = 2.0 * m * nnz;
  const double eff =
      vector_wise ? dev.vw_spmm_efficiency : dev.csr_spmm_efficiency;
  r.compute_s = r.useful_flops / (dev.cuda_core_flops * eff);

  // Traffic: values + int32 indices once, dense A once, scattered C
  // updates are uncoalesced (each nnz touches an M-tall C column strip
  // through gathered A columns).
  const double index_bytes = nnz * (4.0 + 4.0) + (n + 1.0) * 8.0;
  const double a_bytes = m * k * 4.0;
  const double c_bytes = m * n * 4.0;
  const double gather_bytes = dev.uncoalesced_penalty * m * nnz * 4.0 * 0.02;
  r.load_bytes = index_bytes + a_bytes + gather_bytes;
  r.store_bytes = c_bytes;
  r.memory_s = (r.load_bytes + r.store_bytes) / dev.dram_bandwidth;
  r.launch_s = dev.kernel_launch_s;
  return r;
}

LatencyResult bsr_gemm_latency(const DeviceModel& dev, const GemmShape& shape,
                               double block_density, std::size_t block) {
  LatencyResult r;
  block_density = std::clamp(block_density, 0.0, 1.0);
  const double m = static_cast<double>(shape.m);
  const double n = static_cast<double>(shape.n);
  const double k = static_cast<double>(shape.k);
  const double bytes = 2.0;  // fp16 on tensor cores

  r.useful_flops = 2.0 * m * n * k * block_density;
  const double util = wave_utilization(dev, shape.m, shape.n);
  r.compute_s = r.useful_flops /
                (dev.tensor_core_flops * dev.bsr_efficiency(block) * util);

  const double stored = block_density * (k / static_cast<double>(block)) *
                        (n / static_cast<double>(block));
  const double value_bytes = stored * static_cast<double>(block) *
                             static_cast<double>(block) * bytes;
  const double a_bytes = m * k * bytes;
  const double c_bytes = m * n * bytes;
  r.load_bytes = value_bytes + stored * 4.0 + a_bytes;
  r.store_bytes = c_bytes;
  r.memory_s = (r.load_bytes + r.store_bytes) / dev.dram_bandwidth;
  r.launch_s = dev.kernel_launch_s;
  return r;
}

LatencyResult vw_sparse_tensor_core_latency(const DeviceModel& dev,
                                            const GemmShape& shape,
                                            double density) {
  LatencyResult r;
  density = std::clamp(density, 0.0, 1.0);
  // Calibrated so 25% density (75% sparsity) yields ~1.5x over dense
  // tensor cores, the figure Zhu et al. report.  The modified datapath
  // pays a fixed decode/mux overhead relative to the dense pipeline.
  constexpr double kSparseDatapathEfficiency = 0.30;
  const double util = wave_utilization(dev, shape.m, shape.n);
  r.useful_flops = shape.flops() * density;
  // The structured format keeps half the dense work as the floor: the
  // vector metadata and operand alignment cannot be skipped.
  const double effective_work = shape.flops() * std::max(density, 0.20);
  r.compute_s = effective_work / (dev.tensor_core_flops *
                                  kSparseDatapathEfficiency * util);
  const double bytes = 2.0;
  const double m = static_cast<double>(shape.m);
  const double n = static_cast<double>(shape.n);
  const double k = static_cast<double>(shape.k);
  r.load_bytes = (m * k + density * k * n * 1.5) * bytes;  // values + meta
  r.store_bytes = m * n * bytes;
  r.memory_s = (r.load_bytes + r.store_bytes) / dev.dram_bandwidth;
  r.launch_s = dev.kernel_launch_s;
  return r;
}

}  // namespace tilesparse
