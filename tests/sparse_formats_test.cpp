#include <gtest/gtest.h>

#include "sparse/bsr.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

/// Random matrix with approximately `sparsity` zero fraction.
MatrixF random_sparse(std::size_t rows, std::size_t cols, double sparsity,
                      std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  for (float& v : m.flat())
    v = (rng.uniform() < sparsity) ? 0.0f : rng.normal();
  return m;
}

TEST(Csr, RoundTripExact) {
  const MatrixF dense = random_sparse(17, 23, 0.7, 1);
  const Csr csr = csr_from_dense(dense);
  const MatrixF back = csr_to_dense(csr);
  EXPECT_FLOAT_EQ(max_abs_diff(dense, back), 0.0f);
}

TEST(Csr, NnzMatchesCount) {
  const MatrixF dense = random_sparse(20, 20, 0.5, 2);
  const Csr csr = csr_from_dense(dense);
  EXPECT_EQ(csr.nnz(), count_nonzero(dense));
  EXPECT_EQ(csr.row_ptr.size(), 21u);
  EXPECT_EQ(csr.row_ptr.back(), static_cast<std::int64_t>(csr.nnz()));
}

TEST(Csr, ColumnIndicesAscendingWithinRows) {
  const MatrixF dense = random_sparse(10, 30, 0.6, 3);
  const Csr csr = csr_from_dense(dense);
  for (std::size_t r = 0; r < csr.rows; ++r)
    for (auto i = csr.row_ptr[r] + 1; i < csr.row_ptr[r + 1]; ++i)
      EXPECT_LT(csr.col_idx[i - 1], csr.col_idx[i]);
}

TEST(Csr, ToleranceDropsSmallValues) {
  MatrixF dense(1, 3);
  dense(0, 0) = 0.01f;
  dense(0, 1) = 0.5f;
  dense(0, 2) = -0.02f;
  const Csr csr = csr_from_dense(dense, 0.1f);
  EXPECT_EQ(csr.nnz(), 1u);
}

TEST(Csr, DensityAndBytes) {
  const MatrixF dense = random_sparse(10, 10, 0.75, 4);
  const Csr csr = csr_from_dense(dense);
  EXPECT_NEAR(csr.density(), 1.0 - sparsity(dense), 1e-12);
  EXPECT_GT(csr_bytes(csr), 0u);
}

TEST(Csc, RoundTripExact) {
  const MatrixF dense = random_sparse(13, 19, 0.8, 5);
  const Csc csc = csc_from_dense(dense);
  const MatrixF back = csc_to_dense(csc);
  EXPECT_FLOAT_EQ(max_abs_diff(dense, back), 0.0f);
}

TEST(Csc, GemmAccumulateMatchesDense) {
  Rng rng(6);
  MatrixF a(9, 13);
  fill_normal(a, rng);
  const MatrixF w = random_sparse(13, 7, 0.6, 7);
  MatrixF c(9, 7);
  c.fill(0.5f);
  csc_gemm_accumulate(a, csc_from_dense(w), c);
  const MatrixF ref = matmul_reference(a, w);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c.data()[i], ref.data()[i] + 0.5f, 1e-4f);
}

TEST(Bsr, RoundTripExact) {
  const MatrixF dense = random_sparse(16, 24, 0.9, 8);
  const Bsr bsr = bsr_from_dense(dense, 4);
  const MatrixF back = bsr_to_dense(bsr);
  EXPECT_FLOAT_EQ(max_abs_diff(dense, back), 0.0f);
}

TEST(Bsr, RejectsIndivisibleShapes) {
  const MatrixF dense(10, 10);
  EXPECT_THROW(bsr_from_dense(dense, 3), std::invalid_argument);
  EXPECT_THROW(bsr_from_dense(dense, 0), std::invalid_argument);
}

TEST(Bsr, BlockDensityCountsStoredBlocks) {
  MatrixF dense(8, 8);
  dense(0, 0) = 1.0f;  // exactly one non-zero block of 4x4
  const Bsr bsr = bsr_from_dense(dense, 4);
  EXPECT_EQ(bsr.stored_blocks(), 1u);
  EXPECT_DOUBLE_EQ(bsr.block_density(), 0.25);
}

TEST(Bsr, GemmAccumulateMatchesDense) {
  Rng rng(9);
  MatrixF a(11, 16);
  fill_normal(a, rng);
  const MatrixF w = random_sparse(16, 12, 0.7, 10);
  const Bsr bsr = bsr_from_dense(w, 4);
  MatrixF c(11, 12);
  bsr_gemm_accumulate(a, bsr, c);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, w)), 1e-4f);
}

TEST(Bsr, AllZeroMatrixStoresNothing) {
  const MatrixF dense(8, 8);
  const Bsr bsr = bsr_from_dense(dense, 4);
  EXPECT_EQ(bsr.stored_blocks(), 0u);
  EXPECT_EQ(bsr.values.size(), 0u);
}

}  // namespace
}  // namespace tilesparse
