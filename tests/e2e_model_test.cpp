#include <gtest/gtest.h>

#include "prune/tw_pruner.hpp"
#include "sim/e2e_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/model_ops.hpp"
#include "workload/shapes.hpp"

namespace tilesparse {
namespace {

const DeviceModel kDev = DeviceModel::v100();

std::vector<TilePattern> bert_patterns(double sparsity) {
  Rng rng(1);
  std::vector<TilePattern> patterns;
  for (const auto& gemm : bert_base_gemms()) {
    MatrixF scores(gemm.shape.k, gemm.shape.n);
    fill_uniform(scores, rng, 0.01f, 1.0f);
    patterns.push_back(tw_pattern_from_scores(scores, sparsity, 128));
  }
  return patterns;
}

TEST(E2eModel, DenseBertHasSubstantialNonGemmShare) {
  const auto ops = build_bert_ops(128, 1);
  E2eOptions options;
  options.use_tw = false;
  options.fusion = false;
  const auto breakdown = e2e_latency(kDev, ops, options);
  const double other_share = breakdown.other_s / breakdown.total();
  // Paper: ~39% non-GEMM before fusion.
  EXPECT_GT(other_share, 0.25);
  EXPECT_LT(other_share, 0.55);
}

TEST(E2eModel, FusionReducesNonGemmShare) {
  const auto ops = build_bert_ops(128, 1);
  E2eOptions unfused, fused;
  unfused.use_tw = fused.use_tw = false;
  unfused.fusion = false;
  const auto before = e2e_latency(kDev, ops, unfused);
  const auto after = e2e_latency(kDev, ops, fused);
  EXPECT_LT(after.other_s, before.other_s);
  EXPECT_DOUBLE_EQ(after.gemm_s, before.gemm_s);
}

TEST(E2eModel, TransposeOptRemovesSteadyStateTransposes) {
  const auto patterns = bert_patterns(0.75);
  std::vector<const TilePattern*> ptrs;
  for (const auto& p : patterns) ptrs.push_back(&p);
  const auto ops = build_bert_ops(128, 1, &ptrs);

  E2eOptions with, without;
  without.transpose_opt = false;
  const auto opt = e2e_latency(kDev, ops, with);
  const auto naive = e2e_latency(kDev, ops, without);
  EXPECT_LT(opt.transpose_s, naive.transpose_s);
  EXPECT_GT(naive.transpose_s, 0.0);
}

TEST(E2eModel, TwSparsityDeliversEndToEndSpeedup) {
  // Paper Fig. 15: ~1.61x end-to-end for BERT at 75% (GEMM-only 2.26x).
  const auto patterns = bert_patterns(0.75);
  std::vector<const TilePattern*> ptrs;
  for (const auto& p : patterns) ptrs.push_back(&p);
  const auto sparse_ops = build_bert_ops(128, 1, &ptrs);
  const auto dense_ops = build_bert_ops(128, 1);

  E2eOptions dense_opt;
  dense_opt.use_tw = false;
  E2eOptions tw_opt;
  const double dense_time = e2e_latency(kDev, dense_ops, dense_opt).total();
  const double tw_time = e2e_latency(kDev, sparse_ops, tw_opt).total();
  const double e2e_speedup = dense_time / tw_time;
  EXPECT_GT(e2e_speedup, 1.2);
  EXPECT_LT(e2e_speedup, 2.6);
}

TEST(E2eModel, NmtOpsBuildAndRun) {
  const auto ops = build_nmt_ops(32, 32);
  E2eOptions options;
  options.use_tw = false;
  const auto breakdown = e2e_latency(kDev, ops, options);
  EXPECT_GT(breakdown.gemm_s, 0.0);
  EXPECT_GT(breakdown.other_s, 0.0);
}

TEST(E2eModel, GemmOnlySpeedupExceedsEndToEnd) {
  // Amdahl: the non-GEMM share dilutes the GEMM speedup.
  const auto patterns = bert_patterns(0.75);
  std::vector<const TilePattern*> ptrs;
  for (const auto& p : patterns) ptrs.push_back(&p);
  const auto sparse_ops = build_bert_ops(128, 1, &ptrs);
  const auto dense_ops = build_bert_ops(128, 1);

  E2eOptions dense_opt;
  dense_opt.use_tw = false;
  E2eOptions tw_opt;
  const auto dense_breakdown = e2e_latency(kDev, dense_ops, dense_opt);
  const auto tw_breakdown = e2e_latency(kDev, sparse_ops, tw_opt);
  const double gemm_speedup = dense_breakdown.gemm_s / tw_breakdown.gemm_s;
  const double e2e_speedup = dense_breakdown.total() / tw_breakdown.total();
  EXPECT_GT(gemm_speedup, e2e_speedup);
}

}  // namespace
}  // namespace tilesparse
