#include <gtest/gtest.h>

#include "core/tile_exec.hpp"
#include "prune/tw_pruner.hpp"
#include "prune/importance.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

TEST(CompactTiles, PreservesValuesAndIndices) {
  const MatrixF w = random_matrix(6, 8, 1);
  std::vector<std::uint8_t> keep(8, 1);
  keep[3] = 0;
  TilePattern p = reorganize_columns(6, 8, 4, keep);
  p.tiles[0].row_keep[2] = 0;
  const auto tiles = compact_tiles(w, p);
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_EQ(tiles[0].kept_rows.size(), 5u);
  EXPECT_EQ(tiles[0].out_cols.size(), 4u);
  // Spot-check a value: tile 0 row 0 col 0 is w(0, 0).
  EXPECT_EQ(tiles[0].weights(0, 0), w(0, 0));
  // Row 2 is skipped: compacted row 2 corresponds to original row 3.
  EXPECT_EQ(tiles[0].kept_rows[2], 3);
  EXPECT_EQ(tiles[0].weights(2, 0), w(3, 0));
}

TEST(CompactTiles, TwMatmulMatchesMaskedDenseGemm) {
  const MatrixF w = random_matrix(32, 48, 2);
  const TilePattern p =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  MatrixF pruned = w;
  apply_pattern(p, pruned);
  const auto tiles = compact_tiles(w, p);
  const MatrixF a = random_matrix(10, 32, 3);
  const MatrixF c = tw_matmul(a, tiles, 48);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, pruned)), 1e-3f);
}

TEST(BatchGroups, GroupsByWidthWidestFirst) {
  // 10 columns, G=4, keep all -> widths 4, 4, 2.
  const TilePattern p = full_pattern(4, 10, 4);
  const auto groups = build_batch_groups(p);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].width, 4u);
  EXPECT_EQ(groups[0].tile_ids.size(), 2u);
  EXPECT_EQ(groups[1].width, 2u);
  EXPECT_EQ(groups[1].tile_ids.size(), 1u);
}

TEST(BatchGroups, KeptRowsTrackTiles) {
  TilePattern p = full_pattern(8, 8, 4);
  p.tiles[1].row_keep[0] = 0;
  const auto groups = build_batch_groups(p);
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].kept_rows.size(), 2u);
  EXPECT_EQ(groups[0].kept_rows[0], 8u);
  EXPECT_EQ(groups[0].kept_rows[1], 7u);
}

TEST(BatchGroups, EmptyPatternGivesNoGroups) {
  std::vector<std::uint8_t> keep(6, 0);
  const TilePattern p = reorganize_columns(4, 6, 2, keep);
  EXPECT_TRUE(build_batch_groups(p).empty());
}

}  // namespace
}  // namespace tilesparse
