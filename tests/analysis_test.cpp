// Characterisation-level properties behind the paper's motivation
// figures: uneven per-matrix sparsity under global EW (Fig. 5) and the
// zero-capture advantage of TW row-vectors over BW blocks (Fig. 6).

#include <gtest/gtest.h>

#include <algorithm>

#include "prune/analysis.hpp"
#include "prune/patterns.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tilesparse {
namespace {

/// Layer-like score matrices with different magnitudes (as real DNN
/// layers have) so global EW produces uneven sparsity.
std::vector<MatrixF> layered_scores(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MatrixF> scores;
  for (std::size_t i = 0; i < count; ++i) {
    MatrixF m(64, 64);
    const float scale = 0.5f + 1.5f * static_cast<float>(i) /
                                   static_cast<float>(count);
    for (float& v : m.flat()) v = std::fabs(rng.normal(0.0f, scale));
    scores.push_back(std::move(m));
  }
  return scores;
}

TEST(Fig5Property, GlobalEwSparsityIsUnevenAcrossMatrices) {
  const auto scores = layered_scores(12, 1);
  std::vector<const MatrixF*> ptrs;
  for (const auto& s : scores) ptrs.push_back(&s);
  const auto masks = ew_mask_global(ptrs, 0.75);
  const auto sparsities = mask_sparsities(masks);

  double lo = 1.0, hi = 0.0, sum = 0.0;
  for (double s : sparsities) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    sum += s;
  }
  // Average hits the target but the spread is wide (the paper reports
  // 0.5 .. 1.0 per-matrix sparsity at a 75% global target).
  EXPECT_NEAR(sum / sparsities.size(), 0.75, 0.03);
  EXPECT_GT(hi - lo, 0.2);
}

TEST(Fig6Property, TwRowVectorsCaptureMoreFullZeroUnitsThanBwBlocks) {
  // EW-pruned mask at 75%: count units that are *fully* zero — those are
  // the prunable-without-loss units for each pattern.
  Rng rng(2);
  MatrixF scores(256, 256);
  for (float& v : scores.flat()) v = std::fabs(rng.normal());
  // Inject the structure trained nets have: some columns (output
  // neurons) and some rows (dead input features) are globally weak.
  for (std::size_t c = 0; c < 256; c += 7)
    for (std::size_t r = 0; r < 256; ++r) scores(r, c) *= 0.05f;
  for (std::size_t r = 0; r < 256; r += 9)
    for (std::size_t c = 0; c < 256; ++c) scores(r, c) *= 0.05f;
  const MatrixU8 mask = ew_mask(scores, 0.75);

  const auto tw_units = unit_zero_fractions(mask, 1, 64);
  const auto bw8 = unit_zero_fractions(mask, 8, 8);
  const auto bw32 = unit_zero_fractions(mask, 32, 32);

  auto full_zero_fraction = [](const std::vector<float>& units) {
    const auto full = std::count_if(units.begin(), units.end(),
                                    [](float f) { return f >= 1.0f; });
    return static_cast<double>(full) / static_cast<double>(units.size());
  };
  // TW(1x64) units go fully-zero more often than same-size BW(8x8)
  // blocks, and far more often than BW(32x32).
  EXPECT_GE(full_zero_fraction(tw_units), full_zero_fraction(bw8));
  EXPECT_GT(full_zero_fraction(tw_units), full_zero_fraction(bw32));
}

TEST(Fig6Property, CdfGridIsMonotone) {
  Rng rng(3);
  MatrixF scores(128, 128);
  for (float& v : scores.flat()) v = std::fabs(rng.normal());
  const MatrixU8 mask = ew_mask(scores, 0.75);
  const auto units = unit_zero_fractions(mask, 8, 8);
  std::vector<float> grid;
  for (float g = 0.5f; g <= 1.0f; g += 0.05f) grid.push_back(g);
  const auto cdf = empirical_cdf(units, grid);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
}

}  // namespace
}  // namespace tilesparse
