#include <gtest/gtest.h>

#include <cmath>

#include "core/tile_exec.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "quant/quant_gemm.hpp"
#include "quant/quantize.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                      float stddev = 1.0f) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng, 0.0f, stddev);
  return m;
}

TEST(Quantize, RoundTripErrorBoundedByStep) {
  const MatrixF m = random_matrix(32, 32, 1);
  const QuantMatrix q = quantize(m);
  const MatrixF back = dequantize(q);
  EXPECT_LE(max_abs_diff(m, back), quantization_step(q) * 0.5f + 1e-7f);
}

TEST(Quantize, ScaleCoversAbsMax) {
  MatrixF m(1, 3);
  m(0, 0) = -12.7f;
  m(0, 1) = 5.0f;
  m(0, 2) = 0.0f;
  const QuantMatrix q = quantize(m);
  EXPECT_FLOAT_EQ(q.scale, 12.7f / 127.0f);
  EXPECT_EQ(q.values(0, 0), -127);
  EXPECT_EQ(q.values(0, 2), 0);
}

TEST(Quantize, AllZeroMatrixIsStable) {
  const QuantMatrix q = quantize(MatrixF(4, 4));
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  for (auto v : q.values.flat()) EXPECT_EQ(v, 0);
}

TEST(QuantGemm, DenseInt8CloseToFloat) {
  const MatrixF a = random_matrix(16, 64, 2, 0.5f);
  const MatrixF b = random_matrix(64, 24, 3, 0.5f);
  const MatrixF c_fp = matmul_reference(a, b);
  const MatrixF c_q = quant_matmul(quantize(a), quantize(b));
  // Relative error of int8 GEMM: ~1% of output magnitude for these sizes.
  const double norm = frobenius_norm(c_fp) / std::sqrt(c_fp.size());
  EXPECT_LT(max_abs_diff(c_fp, c_q), 0.05f * norm * 10.0f);
  EXPECT_GT(max_abs_diff(c_fp, c_q), 0.0f);  // quantisation did happen
}

TEST(QuantGemm, TwInt8MatchesFloatTwWithinError) {
  MatrixF w = random_matrix(96, 128, 4, 0.3f);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.6, 32);
  apply_pattern(pattern, w);
  const auto tiles = compact_tiles(w, pattern);
  const auto qtiles = quantize_tiles(tiles);

  const MatrixF a = random_matrix(16, 96, 5, 0.3f);
  const MatrixF c_fp = tw_matmul(a, tiles, 128);
  const MatrixF c_q = quant_tw_matmul(a, qtiles, 128);
  const double norm = frobenius_norm(c_fp) / std::sqrt(c_fp.size());
  EXPECT_LT(max_abs_diff(c_fp, c_q), static_cast<float>(0.1 * norm * 10.0));
}

TEST(QuantGemm, PerTileScalesBeatSingleGlobalScaleOnSkewedTiles) {
  // Two tiles with very different magnitudes: per-tile quantisation must
  // reconstruct the small tile far better than one global scale would.
  MatrixF w(8, 8);
  Rng rng(6);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      w(r, c) = rng.normal() * (c < 4 ? 100.0f : 0.01f);
  const TilePattern pattern = full_pattern(8, 8, 4);
  const auto qtiles = quantize_tiles(compact_tiles(w, pattern));
  ASSERT_EQ(qtiles.size(), 2u);
  EXPECT_GT(qtiles[0].scale, qtiles[1].scale * 100.0f);

  // Reconstruction error of the small tile stays proportional to its own
  // magnitude, not the large tile's.
  const float small_step = qtiles[1].scale;
  EXPECT_LT(small_step, 0.01f);
}

TEST(QuantGemm, ZeroTilesSkipCleanly) {
  const std::vector<QuantMaskedTile> none;
  const MatrixF a = random_matrix(4, 8, 7);
  const MatrixF c = quant_tw_matmul(a, none, 6);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(QuantGemm, PreservesPrunedColumnsAsZero) {
  MatrixF w = random_matrix(32, 32, 8);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.7, 8);
  apply_pattern(pattern, w);
  const auto qtiles = quantize_tiles(compact_tiles(w, pattern));
  const MatrixF a = random_matrix(4, 32, 9);
  const MatrixF c = quant_tw_matmul(a, qtiles, 32);
  for (std::size_t col = 0; col < 32; ++col) {
    if (pattern.col_keep[col]) continue;
    for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(c(r, col), 0.0f);
  }
}

}  // namespace
}  // namespace tilesparse
