#include <gtest/gtest.h>

#include <tuple>

#include "gemm/batched_gemm.hpp"
#include "gemm/dense_gemm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

TEST(DenseGemm, MatchesReferenceSmall) {
  const MatrixF a = random_matrix(7, 11, 1);
  const MatrixF b = random_matrix(11, 5, 2);
  const MatrixF c = matmul(a, b);
  const MatrixF ref = matmul_reference(a, b);
  EXPECT_LT(max_abs_diff(c, ref), 1e-4f);
}

TEST(DenseGemm, AlphaBetaSemantics) {
  const MatrixF a = random_matrix(4, 6, 3);
  const MatrixF b = random_matrix(6, 3, 4);
  MatrixF c = random_matrix(4, 3, 5);
  const MatrixF c0 = c;
  dense_gemm(a, b, c, 2.0f, 0.5f);
  const MatrixF ab = matmul_reference(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], 2.0f * ab.data()[i] + 0.5f * c0.data()[i], 1e-4f);
  }
}

TEST(DenseGemm, ZeroAlphaLeavesScaledC) {
  const MatrixF a = random_matrix(3, 3, 6);
  const MatrixF b = random_matrix(3, 3, 7);
  MatrixF c(3, 3);
  c.fill(4.0f);
  dense_gemm(a, b, c, 0.0f, 1.0f);
  for (float v : c.flat()) EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(DenseGemm, Fp16InputsCloseToFp32) {
  const MatrixF a = random_matrix(16, 32, 8);
  MatrixF b = random_matrix(32, 16, 9);
  GemmConfig cfg;
  cfg.fp16_inputs = true;
  round_matrix_to_half(b);  // B is pre-rounded (tensor-core weight path)
  MatrixF c(16, 16);
  dense_gemm(a, b, c, 1.0f, 0.0f, cfg);
  const MatrixF ref = matmul_reference(a, b);
  // fp16 inputs with fp32 accumulate: relative error ~2^-11 per operand.
  EXPECT_LT(max_abs_diff(c, ref), 0.1f);
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesReference) {
  const auto [m, n, k] = GetParam();
  const MatrixF a = random_matrix(m, k, 17 + m);
  const MatrixF b = random_matrix(k, n, 31 + n);
  const MatrixF c = matmul(a, b);
  const MatrixF ref = matmul_reference(a, b);
  EXPECT_LT(max_abs_diff(c, ref), 1e-3f) << m << "x" << n << "x" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 17, 9),
                      std::make_tuple(64, 64, 64), std::make_tuple(5, 3, 129),
                      std::make_tuple(33, 65, 127), std::make_tuple(128, 256, 64),
                      std::make_tuple(100, 1, 50), std::make_tuple(2, 300, 7),
                      std::make_tuple(255, 33, 254)));

TEST(BatchedGemm, MatchesIndividualGemms) {
  const MatrixF a1 = random_matrix(20, 30, 40);
  const MatrixF b1 = random_matrix(30, 10, 41);
  const MatrixF a2 = random_matrix(50, 8, 42);
  const MatrixF b2 = random_matrix(8, 25, 43);
  MatrixF c1(20, 10), c2(50, 25);
  batched_gemm({{&a1, &b1, &c1}, {&a2, &b2, &c2}});
  EXPECT_LT(max_abs_diff(c1, matmul_reference(a1, b1)), 1e-4f);
  EXPECT_LT(max_abs_diff(c2, matmul_reference(a2, b2)), 1e-4f);
}

TEST(BatchedGemm, AccumulatesIntoC) {
  const MatrixF a = random_matrix(4, 4, 44);
  const MatrixF b = random_matrix(4, 4, 45);
  MatrixF c(4, 4);
  c.fill(1.0f);
  batched_gemm({{&a, &b, &c}});
  const MatrixF ref = matmul_reference(a, b);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c.data()[i], ref.data()[i] + 1.0f, 1e-4f);
}

TEST(BatchedGemm, EmptyBatchIsNoop) {
  batched_gemm({});  // must not crash
}

TEST(GemmFlops, Formula) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

}  // namespace
}  // namespace tilesparse
