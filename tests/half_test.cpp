#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/half.hpp"

namespace tilesparse {
namespace {

TEST(Half, ExactSmallIntegers) {
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, -2048.0f}) {
    EXPECT_EQ(round_to_half(v), v) << v;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3c00);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xc000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7bff);  // max finite half
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_EQ(float_to_half_bits(1e6f), 0x7c00);
  EXPECT_EQ(float_to_half_bits(-1e6f), 0xfc00);
  EXPECT_TRUE(std::isinf(half_bits_to_float(0x7c00)));
}

TEST(Half, NanPropagates) {
  const auto bits = float_to_half_bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(half_bits_to_float(bits)));
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive half subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(round_to_half(tiny), tiny);
  // Half of that rounds to zero or the subnormal (round-to-even -> 0).
  EXPECT_EQ(round_to_half(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Half, RelativeErrorWithinHalfUlp) {
  // binary16 has 11 significand bits: relative error <= 2^-11.
  for (float v = 0.001f; v < 1000.0f; v *= 1.37f) {
    const float r = round_to_half(v);
    EXPECT_NEAR(r, v, v * 0x1.0p-11f + 1e-8f) << v;
  }
}

TEST(Half, RoundTripThroughClassIsIdentity) {
  for (std::uint32_t bits = 0; bits < 0x10000; bits += 7) {
    const auto h = half::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(float_to_half_bits(f), h.bits()) << bits;
  }
}

}  // namespace
}  // namespace tilesparse
